// Streaming surveillance ingestion: TMerge as the pre-processing step of a
// video query system over an unbounded feed (paper §II / §V-H).
//
// A long PathTrack-like video stands in for a surveillance stream. We
// consume it window by window (half-overlapping, L = 2000 frames),
// running the tracker incrementally and TMerge per window as soon as its
// pair set is complete — the periodic invocation during metadata
// extraction the paper describes. Confirmed merges are folded into a
// running track database, and the Count query is answered at the end on
// raw vs merged metadata.
//
// Run: ./build/examples/surveillance_stream

#include <cstdio>
#include <iostream>
#include <set>

#include "tmerge/core/table_printer.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/query/query_recall.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/sort_tracker.h"

int main() {
  using namespace tmerge;

  sim::SyntheticVideo stream = sim::GenerateVideo(
      sim::ProfileConfig(sim::DatasetProfile::kPathTrackLike), /*seed=*/31);
  std::printf("stream: %d frames (%.1f min), %zu GT objects\n",
              stream.num_frames, stream.num_frames / (30.0 * 60.0),
              stream.tracks.size());

  // Ingestion: detection + tracking + windowing. (The tracker runs over
  // the full feed here; windows are then processed in arrival order,
  // which is equivalent to the paper's per-window invocation.)
  track::SortTracker tracker;
  merge::PipelineConfig config;
  config.window.length = 2000;
  merge::PreparedVideo prepared = merge::PrepareVideo(stream, tracker, config);
  std::printf("tracker: %zu tracks, %zu windows, %lld candidate pairs, "
              "%zu truly polyonymous\n\n",
              prepared.tracking.tracks.size(), prepared.windows.size(),
              static_cast<long long>(prepared.TotalPairs()),
              prepared.truth.size());

  // Per-window TMerge, as each window's data "arrives".
  merge::TMergeSelector selector;
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  reid::FeatureCache cache;  // Shared across windows: feature reuse.
  std::set<metrics::TrackPairKey> truth(prepared.truth.begin(),
                                        prepared.truth.end());
  std::vector<metrics::TrackPairKey> accepted;

  core::TablePrinter progress({"window", "frames", "pairs", "candidates",
                               "confirmed", "sim-seconds"});
  for (const auto& window : prepared.windows) {
    if (window.pairs.empty()) continue;
    merge::PairContext context(prepared.tracking, window.pairs);
    merge::SelectorOptions window_options = options;
    window_options.seed = 17 + window.window_index;
    merge::SelectionResult result =
        selector.Select(context, *prepared.model, cache, window_options);
    int confirmed = 0;
    for (const auto& pair : result.candidates) {
      if (truth.contains(pair)) {  // "Human inspection" confirms.
        accepted.push_back(pair);
        ++confirmed;
      }
    }
    progress.AddRow()
        .AddInt(window.window_index)
        .AddCell(std::to_string(window.start_frame) + "-" +
                 std::to_string(window.end_frame))
        .AddInt(static_cast<long long>(window.pairs.size()))
        .AddInt(static_cast<long long>(result.candidates.size()))
        .AddInt(confirmed)
        .AddNumber(result.simulated_seconds, 2);
  }
  progress.Print(std::cout);

  track::TrackingResult merged =
      merge::ApplyMerges(prepared.tracking, accepted);
  std::printf("\nmerged %zu pairs: %zu tracks -> %zu tracks\n",
              accepted.size(), prepared.tracking.tracks.size(),
              merged.tracks.size());

  // Downstream query: objects loitering longer than 20 seconds.
  query::CountQuery query;
  query.min_frames = 600;
  double raw =
      query::CountQueryRecall(stream, prepared.tracking, query).Value();
  double clean = query::CountQueryRecall(stream, merged, query).Value();
  std::printf("Count query (>600 frames) recall: %.3f raw -> %.3f merged\n",
              raw, clean);
  return 0;
}
