// Traffic analytics: the highway-camera scenario from the paper's
// introduction ("capturing cars on highways", "find traffic congestion
// video clips", "identify cars visible longer than a certain time").
//
// Builds a vehicle scene (wide boxes, fast lateral motion, a signage
// gantry occluder), runs the full pipeline with the Tracktor-like tracker,
// and answers both §V-H queries on raw vs TMerge-cleaned metadata.
//
// Run: ./build/examples/traffic_analytics

#include <cstdio>
#include <iostream>

#include "tmerge/core/table_printer.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/metrics/clear_mot.h"
#include "tmerge/metrics/id_metrics.h"
#include "tmerge/query/query_recall.h"
#include "tmerge/sim/video_generator.h"
#include "tmerge/track/regression_tracker.h"

namespace {

tmerge::sim::VideoConfig HighwayConfig() {
  using namespace tmerge;
  sim::VideoConfig config;
  config.name = "highway";
  config.num_frames = 1500;
  config.frame_width = 1920.0;
  config.frame_height = 1080.0;
  config.object_class = sim::ObjectClass::kVehicle;
  config.initial_objects = 6;
  config.spawn_rate = 0.01;
  config.min_track_length = 150;
  config.max_track_length = 700;
  // Vehicles: wide, flat boxes, faster and straighter than pedestrians.
  config.min_box_width = 90.0;
  config.max_box_width = 200.0;
  config.box_aspect = 0.6;
  config.initial_speed = 4.0;
  config.motion.accel_stddev = 0.05;
  config.motion.max_speed = 6.0;
  // A signage gantry: a wide occluder vehicles pass behind.
  config.num_occluders = 2;
  config.occluder_min_size = 120.0;
  config.occluder_max_size = 260.0;
  // Sun glare on the windshield region of the scene.
  config.glare_rate = 0.003;
  config.glare_full_frame_prob = 0.3;
  return config;
}

}  // namespace

int main() {
  using namespace tmerge;

  sim::SyntheticVideo video = sim::GenerateVideo(HighwayConfig(), /*seed=*/12);
  std::printf("highway feed: %d frames, %zu vehicles (GT)\n", video.num_frames,
              video.tracks.size());

  track::RegressionTracker tracker;  // Tracktor-like, best accuracy.
  merge::PipelineConfig config;
  config.window.single_window = true;
  merge::PreparedVideo prepared = merge::PrepareVideo(video, tracker, config);
  std::printf("tracker: %zu tracks, %lld pairs, %zu polyonymous\n\n",
              prepared.tracking.tracks.size(),
              static_cast<long long>(prepared.TotalPairs()),
              prepared.truth.size());

  merge::TMergeSelector selector;
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  track::TrackingResult merged =
      merge::SelectAndMerge(prepared, selector, options);

  core::TablePrinter table({"metric", "raw tracking", "after TMerge"});
  metrics::IdMetricsResult id_before =
      metrics::ComputeIdMetrics(video, prepared.tracking);
  metrics::IdMetricsResult id_after = metrics::ComputeIdMetrics(video, merged);
  table.AddRow()
      .AddCell("tracks")
      .AddInt(static_cast<long long>(prepared.tracking.tracks.size()))
      .AddInt(static_cast<long long>(merged.tracks.size()));
  table.AddRow()
      .AddCell("IDF1")
      .AddNumber(id_before.Idf1(), 3)
      .AddNumber(id_after.Idf1(), 3);

  // Query 1: vehicles that stay visible >10s — slow traffic / congestion.
  query::CountQuery congestion;
  congestion.min_frames = 300;
  table.AddRow()
      .AddCell("Count recall (>300 frames)")
      .AddNumber(
          query::CountQueryRecall(video, prepared.tracking, congestion).Value(),
          3)
      .AddNumber(query::CountQueryRecall(video, merged, congestion).Value(),
                 3);

  // Query 2: the same three vehicles driving together for >5s — platooning.
  query::CoOccurrenceQuery platoon;
  platoon.min_frames = 150;
  table.AddRow()
      .AddCell("Co-occurrence recall (3, >150 frames)")
      .AddNumber(
          query::CoOccurrenceQueryRecall(video, prepared.tracking, platoon)
              .Value(),
          3)
      .AddNumber(
          query::CoOccurrenceQueryRecall(video, merged, platoon).Value(), 3);
  table.Print(std::cout);
  return 0;
}
