// Quickstart: the full TMerge ingestion pipeline on one synthetic video.
//
// Generates a MOT-17-like scene, simulates detection + tracking (which
// fragments tracks at occlusions), runs the TMerge selector to find
// polyonymous track-pair candidates, merges them, and shows the effect on
// tracking quality.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/metrics/clear_mot.h"
#include "tmerge/metrics/id_metrics.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/sort_tracker.h"

int main() {
  using namespace tmerge;

  // 0. Turn instrumentation on: every pipeline phase below records spans
  //    and counters into obs::DefaultRegistry() (off by default; one
  //    switch, no other code changes).
  obs::SetEnabled(true);

  // 1. A synthetic video in place of a real MOT-17 sequence (no pixels —
  //    just ground-truth tracks with occlusion/glare events).
  sim::VideoConfig video_config = sim::ProfileConfig(sim::DatasetProfile::kMot17Like);
  sim::SyntheticVideo video = sim::GenerateVideo(video_config, /*seed=*/7);
  std::printf("video: %d frames, %zu GT tracks, %lld GT boxes\n",
              video.num_frames, video.tracks.size(),
              static_cast<long long>(video.TotalBoxes()));

  // 2. Detection + tracking. SORT loses objects during occlusions, so one
  //    physical object can come back under a new TID: polyonymous tracks.
  merge::PipelineConfig pipeline;
  pipeline.window.single_window = true;  // MOT-17 mode: whole video.
  track::SortTracker tracker;
  merge::PreparedVideo prepared = merge::PrepareVideo(video, tracker, pipeline);
  std::printf("tracker: %zu tracks (GT has %zu) -> %zu polyonymous pairs\n",
              prepared.tracking.tracks.size(), video.tracks.size(),
              prepared.truth.size());
  std::printf("pair universe: %lld track pairs across %zu window(s)\n",
              static_cast<long long>(prepared.TotalPairs()),
              prepared.windows.size());

  // 3. TMerge: Thompson sampling finds the candidates with a fraction of
  //    the ReID work the brute-force baseline needs.
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  merge::TMergeSelector tmerge;
  merge::EvalResult tmerge_eval = merge::EvaluateSelector(prepared, tmerge, options);

  merge::BaselineSelector baseline;
  merge::EvalResult bl_eval = merge::EvaluateSelector(prepared, baseline, options);

  std::printf("\n%-8s %6s %10s %12s %12s\n", "method", "REC", "FPS",
              "inferences", "distances");
  auto report = [](const char* name, const merge::EvalResult& eval) {
    std::printf("%-8s %6.3f %10.2f %12lld %12lld\n", name, eval.rec, eval.fps,
                static_cast<long long>(eval.usage.TotalInferences()),
                static_cast<long long>(eval.usage.distance_evals));
  };
  report("TMerge", tmerge_eval);
  report("BL", bl_eval);

  // 4. Merge the confirmed candidates and measure the quality gain.
  track::TrackingResult merged =
      merge::SelectAndMerge(prepared, tmerge, options);
  metrics::IdMetricsResult before = metrics::ComputeIdMetrics(video, prepared.tracking);
  metrics::IdMetricsResult after = metrics::ComputeIdMetrics(video, merged);
  std::printf("\nIDF1 %.3f -> %.3f   (tracks %zu -> %zu)\n", before.Idf1(),
              after.Idf1(), prepared.tracking.tracks.size(),
              merged.tracks.size());

  // 5. Where did the work go? Dump the instrumentation the run recorded:
  //    per-phase span timings and the pipeline's operation counters.
  obs::RegistrySnapshot snapshot = obs::DefaultRegistry().Snapshot();
  std::printf("\n--- instrumentation (tmerge::obs) ---\n");
  core::TablePrinter spans({"span", "count", "total-s", "mean-ms"});
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name.find(".seconds") == std::string::npos || hist.count == 0) {
      continue;
    }
    spans.AddRow()
        .AddCell(name)
        .AddInt(hist.count)
        .AddNumber(hist.sum, 4)
        .AddNumber(hist.sum / hist.count * 1e3, 3);
  }
  spans.Print(std::cout);
  std::printf("\n");
  core::TablePrinter counters({"counter", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    counters.AddRow().AddCell(name).AddInt(value);
  }
  counters.Print(std::cout);
  return 0;
}
