// Real-data adoption path: run the merging layer on *imported* tracking
// data instead of the built-in simulator.
//
// A real deployment would export (a) its tracker's output in MOTChallenge
// format and (b) a feature table with one ReID embedding per tracked box.
// This example manufactures those two files from a synthetic video (so it
// runs self-contained), then forgets the simulator entirely: it reads the
// files back, wraps the features in reid::PrecomputedReidModel, runs
// TMerge, and merges — exactly the code path a downstream user with real
// data would follow. Ground truth (also round-tripped through MOT GT
// format) is used only to evaluate the result.
//
// Run: ./build/examples/mot_roundtrip

#include <cstdio>
#include <sstream>

#include "tmerge/io/mot_format.h"
#include "tmerge/merge/merger.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/metrics/id_metrics.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/sort_tracker.h"

int main() {
  using namespace tmerge;

  // --- "Offline" phase: a deployment exports its data. ---
  sim::SyntheticVideo video = sim::GenerateVideo(
      sim::ProfileConfig(sim::DatasetProfile::kMot17Like), /*seed=*/7);
  track::SortTracker tracker;
  merge::PipelineConfig config;
  config.window.single_window = true;
  merge::PreparedVideo prepared = merge::PrepareVideo(video, tracker, config);

  std::stringstream tracks_file, features_file, gt_file;
  io::WriteTracks(prepared.tracking, tracks_file);
  const reid::ReidModel& exporter_model = *prepared.model;
  io::WriteFeatureTable(
      prepared.tracking,
      [&](const track::TrackedBox& box) {
        // A real deployment embeds the crop pixels here; detection ids in
        // the file are derived from (frame, tid), so re-key accordingly.
        return exporter_model.Embed({box.detection_id, box.gt_id,
                                     box.visibility, box.glared,
                                     box.noise_seed});
      },
      features_file);
  io::WriteGroundTruth(video, gt_file);
  std::printf("exported: %lld track rows, %zu feature rows\n",
              static_cast<long long>(prepared.tracking.TotalBoxes()),
              prepared.tracking.TotalBoxes() == 0
                  ? 0
                  : static_cast<std::size_t>(prepared.tracking.TotalBoxes()));

  // --- Import phase: only the three files are used from here on. ---
  auto imported = io::ReadTracks(tracks_file);
  auto features = io::ReadFeatureTable(features_file);
  auto gt = io::ReadGroundTruth(gt_file);
  if (!imported.ok() || !features.ok() || !gt.ok()) {
    std::fprintf(stderr, "import failed: %s %s %s\n",
                 imported.status().ToString().c_str(),
                 features.status().ToString().c_str(),
                 gt.status().ToString().c_str());
    return 1;
  }
  reid::PrecomputedReidModel model(std::move(*features),
                                   exporter_model.normalization_scale());
  std::printf("imported: %zu tracks, %zu features (dim %zu)\n",
              imported->tracks.size(), model.size(), model.feature_dim());

  // Windowing + TMerge on the imported data.
  merge::WindowConfig window;
  window.single_window = true;
  std::vector<merge::WindowPairs> windows =
      merge::BuildWindows(*imported, window);
  merge::TMergeSelector selector;
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  reid::FeatureCache cache;
  std::vector<metrics::TrackPairKey> candidates;
  for (const auto& w : windows) {
    if (w.pairs.empty()) continue;
    merge::PairContext context(*imported, w.pairs);
    merge::SelectionResult result =
        selector.Select(context, model, cache, options);
    candidates.insert(candidates.end(), result.candidates.begin(),
                      result.candidates.end());
  }

  // Confirm against the (imported) GT oracle and merge.
  metrics::TrackGtAssignment assignment =
      metrics::MatchTracksToGt(*gt, *imported);
  std::vector<metrics::TrackPairKey> truth =
      metrics::PolyonymousPairs(*imported, assignment);
  std::vector<metrics::TrackPairKey> accepted =
      merge::OracleFilter(candidates, truth);
  track::TrackingResult merged = merge::ApplyMerges(*imported, accepted);

  double idf1_before = metrics::ComputeIdMetrics(*gt, *imported).Idf1();
  double idf1_after = metrics::ComputeIdMetrics(*gt, merged).Idf1();
  std::printf("candidates %zu, confirmed %zu of %zu true pairs\n",
              candidates.size(), accepted.size(), truth.size());
  std::printf("IDF1 on imported data: %.3f -> %.3f (tracks %zu -> %zu)\n",
              idf1_before, idf1_after, imported->tracks.size(),
              merged.tracks.size());
  return 0;
}
