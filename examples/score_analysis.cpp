// Score-distribution analysis: why polyonymous pairs are findable, and how
// hard they are to find.
//
// Computes the exact track-pair score (Def. 3.1) of every pair in a video,
// splits the population into polyonymous / same-appearance-cluster /
// ordinary pairs, prints distribution statistics, the REC-K curve of the
// exact ranking, and a TMerge tau_max sweep. Handy when tuning scene or
// ReID noise parameters.
//
// Run: ./build/examples/score_analysis

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>
#include <vector>

#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/sort_tracker.h"

namespace {

struct Stats {
  double min = 1.0, max = 0.0, mean = 0.0;
  std::size_t count = 0;
};

Stats Summarize(const std::vector<double>& values) {
  Stats stats;
  stats.count = values.size();
  for (double v : values) {
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    stats.mean += v;
  }
  if (!values.empty()) stats.mean /= static_cast<double>(values.size());
  if (values.empty()) stats.min = 0.0;
  return stats;
}

}  // namespace

int main() {
  using namespace tmerge;

  sim::SyntheticVideo video = sim::GenerateVideo(
      sim::ProfileConfig(sim::DatasetProfile::kMot17Like), /*seed=*/7);
  merge::PipelineConfig pipeline;
  pipeline.window.single_window = true;
  track::SortTracker tracker;
  merge::PreparedVideo prepared = merge::PrepareVideo(video, tracker, pipeline);
  std::set<metrics::TrackPairKey> truth(prepared.truth.begin(),
                                        prepared.truth.end());

  // Exact scores via the baseline (free: simulated cost only).
  merge::SelectorOptions options;
  options.k_fraction = 1.0;  // Rank everything.
  merge::BaselineSelector baseline;
  merge::PairContext context(prepared.tracking, prepared.windows[0].pairs);
  reid::FeatureCache cache;
  merge::SelectionResult ranked =
      baseline.Select(context, *prepared.model, cache, options);

  std::vector<double> poly_scores, other_scores;
  for (std::size_t p = 0; p < context.num_pairs(); ++p) {
    double score = baseline.last_scores()[p];
    if (truth.contains(context.pair(p))) {
      poly_scores.push_back(score);
    } else {
      other_scores.push_back(score);
    }
  }
  Stats poly = Summarize(poly_scores);
  Stats other = Summarize(other_scores);
  std::printf("pairs: %zu total, %zu polyonymous\n", context.num_pairs(),
              poly_scores.size());
  std::printf("poly scores:  min %.3f mean %.3f max %.3f\n", poly.min,
              poly.mean, poly.max);
  std::printf("other scores: min %.3f mean %.3f max %.3f\n", other.min,
              other.mean, other.max);

  // REC-K of the exact ranking (the information ceiling; paper Fig. 3).
  core::TablePrinter rec_k({"K", "REC(exact)"});
  for (double k : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    std::size_t take = merge::TopKCount(k, context.num_pairs());
    std::size_t hits = 0;
    // ranked.candidates is the full ranking because k_fraction was 1.
    for (std::size_t i = 0; i < take && i < ranked.candidates.size(); ++i) {
      if (truth.contains(ranked.candidates[i])) ++hits;
    }
    rec_k.AddRow().AddNumber(k, 2).AddNumber(
        poly_scores.empty() ? 1.0
                            : static_cast<double>(hits) / poly_scores.size(),
        3);
  }
  rec_k.Print(std::cout);

  // TMerge tau sweep at K = 5%.
  options.k_fraction = 0.05;
  core::TablePrinter sweep(
      {"tau_max", "REC", "FPS", "inferences", "cache_hits"});
  for (std::int64_t tau : {1000, 2000, 5000, 10000, 20000, 40000}) {
    merge::TMergeOptions tmerge_options;
    tmerge_options.tau_max = tau;
    merge::TMergeSelector selector(tmerge_options);
    merge::EvalResult eval =
        merge::EvaluateSelector(prepared, selector, options);
    sweep.AddRow()
        .AddInt(tau)
        .AddNumber(eval.rec, 3)
        .AddNumber(eval.fps, 2)
        .AddInt(eval.usage.TotalInferences())
        .AddInt(eval.usage.cache_hits);
  }
  sweep.Print(std::cout);
  return 0;
}
