// Dataset statistics: what the synthetic datasets look like to the merging
// layer. For each profile this prints, per video: GT tracks, tracker
// tracks, windows, track pairs, polyonymous pairs and the polyonymous rate
// — the quantities §II and §V-A of the paper report for MOT-17, KITTI and
// PathTrack.
//
// Run: ./build/examples/dataset_stats

#include <cstdio>
#include <iostream>

#include "tmerge/core/table_printer.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/sort_tracker.h"

int main() {
  using namespace tmerge;

  for (sim::DatasetProfile profile :
       {sim::DatasetProfile::kMot17Like, sim::DatasetProfile::kKittiLike,
        sim::DatasetProfile::kPathTrackLike}) {
    sim::Dataset dataset = sim::MakeDataset(profile, /*num_videos=*/3,
                                            /*seed=*/77);
    merge::PipelineConfig pipeline;
    // Whole-video windows for MOT-17/KITTI; L=2000 windows for PathTrack
    // (the paper's windowing strategy, §V-A).
    pipeline.window.single_window =
        profile != sim::DatasetProfile::kPathTrackLike;
    pipeline.window.length = 2000;
    pipeline.seed = 1234;
    // Prepare the dataset's videos concurrently; 0 = one worker per core.
    // Per-video seeds are derived by index, so the stats below are the
    // same for any thread count.
    pipeline.num_threads = 0;

    track::SortTracker tracker;
    std::vector<merge::PreparedVideo> prepared_videos =
        merge::PrepareDataset(dataset, tracker, pipeline);

    std::printf("=== %s-like (SORT) ===\n", sim::DatasetProfileName(profile));
    core::TablePrinter table({"video", "frames", "gt", "tracks", "boxes",
                              "windows", "pairs", "poly", "poly%"});
    for (std::size_t v = 0; v < dataset.videos.size(); ++v) {
      const merge::PreparedVideo& prepared = prepared_videos[v];
      std::int64_t pairs = prepared.TotalPairs();
      table.AddRow()
          .AddCell(dataset.videos[v].name)
          .AddInt(dataset.videos[v].num_frames)
          .AddInt(static_cast<long long>(dataset.videos[v].tracks.size()))
          .AddInt(static_cast<long long>(prepared.tracking.tracks.size()))
          .AddInt(prepared.tracking.TotalBoxes())
          .AddInt(static_cast<long long>(prepared.windows.size()))
          .AddInt(pairs)
          .AddInt(static_cast<long long>(prepared.truth.size()))
          .AddNumber(pairs > 0 ? 100.0 * prepared.truth.size() / pairs : 0.0,
                     1);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
