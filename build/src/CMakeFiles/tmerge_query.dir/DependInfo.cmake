
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmerge/query/cooccurrence_query.cc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/cooccurrence_query.cc.o" "gcc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/cooccurrence_query.cc.o.d"
  "/root/repo/src/tmerge/query/count_query.cc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/count_query.cc.o" "gcc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/count_query.cc.o.d"
  "/root/repo/src/tmerge/query/query_recall.cc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/query_recall.cc.o" "gcc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/query_recall.cc.o.d"
  "/root/repo/src/tmerge/query/track_database.cc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/track_database.cc.o" "gcc" "src/CMakeFiles/tmerge_query.dir/tmerge/query/track_database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmerge_track.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_reid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
