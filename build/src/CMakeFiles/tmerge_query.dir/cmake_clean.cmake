file(REMOVE_RECURSE
  "CMakeFiles/tmerge_query.dir/tmerge/query/cooccurrence_query.cc.o"
  "CMakeFiles/tmerge_query.dir/tmerge/query/cooccurrence_query.cc.o.d"
  "CMakeFiles/tmerge_query.dir/tmerge/query/count_query.cc.o"
  "CMakeFiles/tmerge_query.dir/tmerge/query/count_query.cc.o.d"
  "CMakeFiles/tmerge_query.dir/tmerge/query/query_recall.cc.o"
  "CMakeFiles/tmerge_query.dir/tmerge/query/query_recall.cc.o.d"
  "CMakeFiles/tmerge_query.dir/tmerge/query/track_database.cc.o"
  "CMakeFiles/tmerge_query.dir/tmerge/query/track_database.cc.o.d"
  "libtmerge_query.a"
  "libtmerge_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
