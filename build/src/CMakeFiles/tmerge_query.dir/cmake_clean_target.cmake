file(REMOVE_RECURSE
  "libtmerge_query.a"
)
