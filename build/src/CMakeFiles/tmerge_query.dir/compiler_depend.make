# Empty compiler generated dependencies file for tmerge_query.
# This may be replaced when dependencies are built.
