file(REMOVE_RECURSE
  "libtmerge_detect.a"
)
