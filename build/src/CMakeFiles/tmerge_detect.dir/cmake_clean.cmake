file(REMOVE_RECURSE
  "CMakeFiles/tmerge_detect.dir/tmerge/detect/detection_simulator.cc.o"
  "CMakeFiles/tmerge_detect.dir/tmerge/detect/detection_simulator.cc.o.d"
  "libtmerge_detect.a"
  "libtmerge_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
