# Empty compiler generated dependencies file for tmerge_detect.
# This may be replaced when dependencies are built.
