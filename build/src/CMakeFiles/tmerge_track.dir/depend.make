# Empty dependencies file for tmerge_track.
# This may be replaced when dependencies are built.
