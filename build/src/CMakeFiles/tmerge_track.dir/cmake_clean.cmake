file(REMOVE_RECURSE
  "CMakeFiles/tmerge_track.dir/tmerge/track/appearance_tracker.cc.o"
  "CMakeFiles/tmerge_track.dir/tmerge/track/appearance_tracker.cc.o.d"
  "CMakeFiles/tmerge_track.dir/tmerge/track/hungarian.cc.o"
  "CMakeFiles/tmerge_track.dir/tmerge/track/hungarian.cc.o.d"
  "CMakeFiles/tmerge_track.dir/tmerge/track/kalman_filter.cc.o"
  "CMakeFiles/tmerge_track.dir/tmerge/track/kalman_filter.cc.o.d"
  "CMakeFiles/tmerge_track.dir/tmerge/track/regression_tracker.cc.o"
  "CMakeFiles/tmerge_track.dir/tmerge/track/regression_tracker.cc.o.d"
  "CMakeFiles/tmerge_track.dir/tmerge/track/sort_tracker.cc.o"
  "CMakeFiles/tmerge_track.dir/tmerge/track/sort_tracker.cc.o.d"
  "CMakeFiles/tmerge_track.dir/tmerge/track/track.cc.o"
  "CMakeFiles/tmerge_track.dir/tmerge/track/track.cc.o.d"
  "libtmerge_track.a"
  "libtmerge_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
