file(REMOVE_RECURSE
  "libtmerge_track.a"
)
