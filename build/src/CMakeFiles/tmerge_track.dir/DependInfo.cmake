
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmerge/track/appearance_tracker.cc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/appearance_tracker.cc.o" "gcc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/appearance_tracker.cc.o.d"
  "/root/repo/src/tmerge/track/hungarian.cc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/hungarian.cc.o" "gcc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/hungarian.cc.o.d"
  "/root/repo/src/tmerge/track/kalman_filter.cc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/kalman_filter.cc.o" "gcc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/kalman_filter.cc.o.d"
  "/root/repo/src/tmerge/track/regression_tracker.cc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/regression_tracker.cc.o" "gcc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/regression_tracker.cc.o.d"
  "/root/repo/src/tmerge/track/sort_tracker.cc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/sort_tracker.cc.o" "gcc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/sort_tracker.cc.o.d"
  "/root/repo/src/tmerge/track/track.cc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/track.cc.o" "gcc" "src/CMakeFiles/tmerge_track.dir/tmerge/track/track.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmerge_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_reid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
