file(REMOVE_RECURSE
  "libtmerge_sim.a"
)
