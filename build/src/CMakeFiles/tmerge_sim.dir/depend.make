# Empty dependencies file for tmerge_sim.
# This may be replaced when dependencies are built.
