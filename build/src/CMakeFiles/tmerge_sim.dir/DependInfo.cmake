
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmerge/sim/appearance.cc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/appearance.cc.o" "gcc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/appearance.cc.o.d"
  "/root/repo/src/tmerge/sim/dataset.cc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/dataset.cc.o" "gcc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/dataset.cc.o.d"
  "/root/repo/src/tmerge/sim/motion.cc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/motion.cc.o" "gcc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/motion.cc.o.d"
  "/root/repo/src/tmerge/sim/video_generator.cc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/video_generator.cc.o" "gcc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/video_generator.cc.o.d"
  "/root/repo/src/tmerge/sim/world.cc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/world.cc.o" "gcc" "src/CMakeFiles/tmerge_sim.dir/tmerge/sim/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmerge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
