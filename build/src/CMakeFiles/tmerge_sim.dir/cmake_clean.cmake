file(REMOVE_RECURSE
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/appearance.cc.o"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/appearance.cc.o.d"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/dataset.cc.o"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/dataset.cc.o.d"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/motion.cc.o"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/motion.cc.o.d"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/video_generator.cc.o"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/video_generator.cc.o.d"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/world.cc.o"
  "CMakeFiles/tmerge_sim.dir/tmerge/sim/world.cc.o.d"
  "libtmerge_sim.a"
  "libtmerge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
