# Empty dependencies file for tmerge_metrics.
# This may be replaced when dependencies are built.
