file(REMOVE_RECURSE
  "libtmerge_metrics.a"
)
