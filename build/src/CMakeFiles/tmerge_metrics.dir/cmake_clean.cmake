file(REMOVE_RECURSE
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/clear_mot.cc.o"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/clear_mot.cc.o.d"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/gt_matcher.cc.o"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/gt_matcher.cc.o.d"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/id_metrics.cc.o"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/id_metrics.cc.o.d"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/recall.cc.o"
  "CMakeFiles/tmerge_metrics.dir/tmerge/metrics/recall.cc.o.d"
  "libtmerge_metrics.a"
  "libtmerge_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
