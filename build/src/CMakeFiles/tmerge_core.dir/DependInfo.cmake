
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmerge/core/beta.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/beta.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/beta.cc.o.d"
  "/root/repo/src/tmerge/core/geometry.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/geometry.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/geometry.cc.o.d"
  "/root/repo/src/tmerge/core/rng.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/rng.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/rng.cc.o.d"
  "/root/repo/src/tmerge/core/sim_clock.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/sim_clock.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/sim_clock.cc.o.d"
  "/root/repo/src/tmerge/core/status.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/status.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/status.cc.o.d"
  "/root/repo/src/tmerge/core/table_printer.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/table_printer.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/table_printer.cc.o.d"
  "/root/repo/src/tmerge/core/union_find.cc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/union_find.cc.o" "gcc" "src/CMakeFiles/tmerge_core.dir/tmerge/core/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
