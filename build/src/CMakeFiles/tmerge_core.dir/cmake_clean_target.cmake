file(REMOVE_RECURSE
  "libtmerge_core.a"
)
