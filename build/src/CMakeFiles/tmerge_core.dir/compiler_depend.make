# Empty compiler generated dependencies file for tmerge_core.
# This may be replaced when dependencies are built.
