file(REMOVE_RECURSE
  "CMakeFiles/tmerge_core.dir/tmerge/core/beta.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/beta.cc.o.d"
  "CMakeFiles/tmerge_core.dir/tmerge/core/geometry.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/geometry.cc.o.d"
  "CMakeFiles/tmerge_core.dir/tmerge/core/rng.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/rng.cc.o.d"
  "CMakeFiles/tmerge_core.dir/tmerge/core/sim_clock.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/sim_clock.cc.o.d"
  "CMakeFiles/tmerge_core.dir/tmerge/core/status.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/status.cc.o.d"
  "CMakeFiles/tmerge_core.dir/tmerge/core/table_printer.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/table_printer.cc.o.d"
  "CMakeFiles/tmerge_core.dir/tmerge/core/union_find.cc.o"
  "CMakeFiles/tmerge_core.dir/tmerge/core/union_find.cc.o.d"
  "libtmerge_core.a"
  "libtmerge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
