file(REMOVE_RECURSE
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/cost_model.cc.o"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/cost_model.cc.o.d"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/feature.cc.o"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/feature.cc.o.d"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/feature_cache.cc.o"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/feature_cache.cc.o.d"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/reid_model.cc.o"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/reid_model.cc.o.d"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/synthetic_reid_model.cc.o"
  "CMakeFiles/tmerge_reid.dir/tmerge/reid/synthetic_reid_model.cc.o.d"
  "libtmerge_reid.a"
  "libtmerge_reid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_reid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
