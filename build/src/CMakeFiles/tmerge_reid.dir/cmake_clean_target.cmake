file(REMOVE_RECURSE
  "libtmerge_reid.a"
)
