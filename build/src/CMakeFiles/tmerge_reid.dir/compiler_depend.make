# Empty compiler generated dependencies file for tmerge_reid.
# This may be replaced when dependencies are built.
