file(REMOVE_RECURSE
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/baseline.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/baseline.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/lcb.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/lcb.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/merger.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/merger.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/pair_store.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/pair_store.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/pipeline.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/pipeline.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/proportional.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/proportional.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/selector.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/selector.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/tmerge.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/tmerge.cc.o.d"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/window.cc.o"
  "CMakeFiles/tmerge_merge.dir/tmerge/merge/window.cc.o.d"
  "libtmerge_merge.a"
  "libtmerge_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
