
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmerge/merge/baseline.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/baseline.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/baseline.cc.o.d"
  "/root/repo/src/tmerge/merge/lcb.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/lcb.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/lcb.cc.o.d"
  "/root/repo/src/tmerge/merge/merger.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/merger.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/merger.cc.o.d"
  "/root/repo/src/tmerge/merge/pair_store.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/pair_store.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/pair_store.cc.o.d"
  "/root/repo/src/tmerge/merge/pipeline.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/pipeline.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/pipeline.cc.o.d"
  "/root/repo/src/tmerge/merge/proportional.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/proportional.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/proportional.cc.o.d"
  "/root/repo/src/tmerge/merge/selector.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/selector.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/selector.cc.o.d"
  "/root/repo/src/tmerge/merge/tmerge.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/tmerge.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/tmerge.cc.o.d"
  "/root/repo/src/tmerge/merge/window.cc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/window.cc.o" "gcc" "src/CMakeFiles/tmerge_merge.dir/tmerge/merge/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmerge_track.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_reid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
