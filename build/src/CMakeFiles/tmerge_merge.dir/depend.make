# Empty dependencies file for tmerge_merge.
# This may be replaced when dependencies are built.
