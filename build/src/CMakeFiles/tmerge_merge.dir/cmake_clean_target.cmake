file(REMOVE_RECURSE
  "libtmerge_merge.a"
)
