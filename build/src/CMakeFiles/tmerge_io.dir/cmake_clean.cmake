file(REMOVE_RECURSE
  "CMakeFiles/tmerge_io.dir/tmerge/io/mot_format.cc.o"
  "CMakeFiles/tmerge_io.dir/tmerge/io/mot_format.cc.o.d"
  "libtmerge_io.a"
  "libtmerge_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
