file(REMOVE_RECURSE
  "libtmerge_io.a"
)
