# Empty dependencies file for tmerge_io.
# This may be replaced when dependencies are built.
