# Empty dependencies file for surveillance_stream.
# This may be replaced when dependencies are built.
