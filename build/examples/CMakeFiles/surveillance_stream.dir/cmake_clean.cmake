file(REMOVE_RECURSE
  "CMakeFiles/surveillance_stream.dir/surveillance_stream.cpp.o"
  "CMakeFiles/surveillance_stream.dir/surveillance_stream.cpp.o.d"
  "surveillance_stream"
  "surveillance_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
