file(REMOVE_RECURSE
  "CMakeFiles/mot_roundtrip.dir/mot_roundtrip.cpp.o"
  "CMakeFiles/mot_roundtrip.dir/mot_roundtrip.cpp.o.d"
  "mot_roundtrip"
  "mot_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
