# Empty dependencies file for mot_roundtrip.
# This may be replaced when dependencies are built.
