file(REMOVE_RECURSE
  "CMakeFiles/score_analysis.dir/score_analysis.cpp.o"
  "CMakeFiles/score_analysis.dir/score_analysis.cpp.o.d"
  "score_analysis"
  "score_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
