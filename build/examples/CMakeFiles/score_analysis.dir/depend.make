# Empty dependencies file for score_analysis.
# This may be replaced when dependencies are built.
