file(REMOVE_RECURSE
  "CMakeFiles/query_recall_test.dir/query/query_recall_test.cc.o"
  "CMakeFiles/query_recall_test.dir/query/query_recall_test.cc.o.d"
  "query_recall_test"
  "query_recall_test.pdb"
  "query_recall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_recall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
