# Empty compiler generated dependencies file for query_recall_test.
# This may be replaced when dependencies are built.
