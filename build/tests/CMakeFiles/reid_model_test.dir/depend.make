# Empty dependencies file for reid_model_test.
# This may be replaced when dependencies are built.
