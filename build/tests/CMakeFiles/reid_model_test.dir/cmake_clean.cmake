file(REMOVE_RECURSE
  "CMakeFiles/reid_model_test.dir/reid/reid_model_test.cc.o"
  "CMakeFiles/reid_model_test.dir/reid/reid_model_test.cc.o.d"
  "reid_model_test"
  "reid_model_test.pdb"
  "reid_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reid_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
