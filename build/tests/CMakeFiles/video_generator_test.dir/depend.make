# Empty dependencies file for video_generator_test.
# This may be replaced when dependencies are built.
