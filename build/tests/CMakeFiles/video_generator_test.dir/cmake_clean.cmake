file(REMOVE_RECURSE
  "CMakeFiles/video_generator_test.dir/sim/video_generator_test.cc.o"
  "CMakeFiles/video_generator_test.dir/sim/video_generator_test.cc.o.d"
  "video_generator_test"
  "video_generator_test.pdb"
  "video_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
