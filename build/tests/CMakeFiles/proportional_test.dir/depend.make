# Empty dependencies file for proportional_test.
# This may be replaced when dependencies are built.
