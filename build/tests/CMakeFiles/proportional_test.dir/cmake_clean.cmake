file(REMOVE_RECURSE
  "CMakeFiles/proportional_test.dir/merge/proportional_test.cc.o"
  "CMakeFiles/proportional_test.dir/merge/proportional_test.cc.o.d"
  "proportional_test"
  "proportional_test.pdb"
  "proportional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proportional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
