# Empty compiler generated dependencies file for appearance_test.
# This may be replaced when dependencies are built.
