file(REMOVE_RECURSE
  "CMakeFiles/appearance_test.dir/sim/appearance_test.cc.o"
  "CMakeFiles/appearance_test.dir/sim/appearance_test.cc.o.d"
  "appearance_test"
  "appearance_test.pdb"
  "appearance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appearance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
