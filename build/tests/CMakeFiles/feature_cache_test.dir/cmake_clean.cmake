file(REMOVE_RECURSE
  "CMakeFiles/feature_cache_test.dir/reid/feature_cache_test.cc.o"
  "CMakeFiles/feature_cache_test.dir/reid/feature_cache_test.cc.o.d"
  "feature_cache_test"
  "feature_cache_test.pdb"
  "feature_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
