# Empty dependencies file for feature_cache_test.
# This may be replaced when dependencies are built.
