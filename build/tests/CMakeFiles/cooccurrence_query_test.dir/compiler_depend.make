# Empty compiler generated dependencies file for cooccurrence_query_test.
# This may be replaced when dependencies are built.
