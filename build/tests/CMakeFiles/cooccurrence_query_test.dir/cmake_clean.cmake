file(REMOVE_RECURSE
  "CMakeFiles/cooccurrence_query_test.dir/query/cooccurrence_query_test.cc.o"
  "CMakeFiles/cooccurrence_query_test.dir/query/cooccurrence_query_test.cc.o.d"
  "cooccurrence_query_test"
  "cooccurrence_query_test.pdb"
  "cooccurrence_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooccurrence_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
