# Empty dependencies file for id_metrics_test.
# This may be replaced when dependencies are built.
