file(REMOVE_RECURSE
  "CMakeFiles/id_metrics_test.dir/metrics/id_metrics_test.cc.o"
  "CMakeFiles/id_metrics_test.dir/metrics/id_metrics_test.cc.o.d"
  "id_metrics_test"
  "id_metrics_test.pdb"
  "id_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
