# Empty dependencies file for sort_tracker_test.
# This may be replaced when dependencies are built.
