file(REMOVE_RECURSE
  "CMakeFiles/sort_tracker_test.dir/track/sort_tracker_test.cc.o"
  "CMakeFiles/sort_tracker_test.dir/track/sort_tracker_test.cc.o.d"
  "sort_tracker_test"
  "sort_tracker_test.pdb"
  "sort_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
