# Empty dependencies file for regression_tracker_test.
# This may be replaced when dependencies are built.
