file(REMOVE_RECURSE
  "CMakeFiles/regression_tracker_test.dir/track/regression_tracker_test.cc.o"
  "CMakeFiles/regression_tracker_test.dir/track/regression_tracker_test.cc.o.d"
  "regression_tracker_test"
  "regression_tracker_test.pdb"
  "regression_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
