file(REMOVE_RECURSE
  "CMakeFiles/detection_simulator_test.dir/detect/detection_simulator_test.cc.o"
  "CMakeFiles/detection_simulator_test.dir/detect/detection_simulator_test.cc.o.d"
  "detection_simulator_test"
  "detection_simulator_test.pdb"
  "detection_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
