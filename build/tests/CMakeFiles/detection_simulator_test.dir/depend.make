# Empty dependencies file for detection_simulator_test.
# This may be replaced when dependencies are built.
