file(REMOVE_RECURSE
  "CMakeFiles/synthetic_reid_model_test.dir/reid/synthetic_reid_model_test.cc.o"
  "CMakeFiles/synthetic_reid_model_test.dir/reid/synthetic_reid_model_test.cc.o.d"
  "synthetic_reid_model_test"
  "synthetic_reid_model_test.pdb"
  "synthetic_reid_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_reid_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
