# Empty dependencies file for synthetic_reid_model_test.
# This may be replaced when dependencies are built.
