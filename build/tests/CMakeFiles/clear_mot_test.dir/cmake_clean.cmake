file(REMOVE_RECURSE
  "CMakeFiles/clear_mot_test.dir/metrics/clear_mot_test.cc.o"
  "CMakeFiles/clear_mot_test.dir/metrics/clear_mot_test.cc.o.d"
  "clear_mot_test"
  "clear_mot_test.pdb"
  "clear_mot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clear_mot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
