# Empty compiler generated dependencies file for clear_mot_test.
# This may be replaced when dependencies are built.
