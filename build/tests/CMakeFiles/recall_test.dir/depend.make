# Empty dependencies file for recall_test.
# This may be replaced when dependencies are built.
