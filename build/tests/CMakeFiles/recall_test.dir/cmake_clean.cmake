file(REMOVE_RECURSE
  "CMakeFiles/recall_test.dir/metrics/recall_test.cc.o"
  "CMakeFiles/recall_test.dir/metrics/recall_test.cc.o.d"
  "recall_test"
  "recall_test.pdb"
  "recall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
