# Empty compiler generated dependencies file for gt_matcher_test.
# This may be replaced when dependencies are built.
