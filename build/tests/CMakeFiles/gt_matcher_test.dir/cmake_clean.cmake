file(REMOVE_RECURSE
  "CMakeFiles/gt_matcher_test.dir/metrics/gt_matcher_test.cc.o"
  "CMakeFiles/gt_matcher_test.dir/metrics/gt_matcher_test.cc.o.d"
  "gt_matcher_test"
  "gt_matcher_test.pdb"
  "gt_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
