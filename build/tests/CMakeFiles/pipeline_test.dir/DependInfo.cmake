
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/merge/pipeline_test.cc" "tests/CMakeFiles/pipeline_test.dir/merge/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/merge/pipeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmerge_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_track.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_reid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
