file(REMOVE_RECURSE
  "CMakeFiles/beta_test.dir/core/beta_test.cc.o"
  "CMakeFiles/beta_test.dir/core/beta_test.cc.o.d"
  "beta_test"
  "beta_test.pdb"
  "beta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
