# Empty compiler generated dependencies file for track_database_test.
# This may be replaced when dependencies are built.
