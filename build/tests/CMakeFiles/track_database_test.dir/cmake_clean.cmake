file(REMOVE_RECURSE
  "CMakeFiles/track_database_test.dir/query/track_database_test.cc.o"
  "CMakeFiles/track_database_test.dir/query/track_database_test.cc.o.d"
  "track_database_test"
  "track_database_test.pdb"
  "track_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
