file(REMOVE_RECURSE
  "CMakeFiles/kalman_filter_test.dir/track/kalman_filter_test.cc.o"
  "CMakeFiles/kalman_filter_test.dir/track/kalman_filter_test.cc.o.d"
  "kalman_filter_test"
  "kalman_filter_test.pdb"
  "kalman_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kalman_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
