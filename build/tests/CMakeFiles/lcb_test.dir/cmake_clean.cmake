file(REMOVE_RECURSE
  "CMakeFiles/lcb_test.dir/merge/lcb_test.cc.o"
  "CMakeFiles/lcb_test.dir/merge/lcb_test.cc.o.d"
  "lcb_test"
  "lcb_test.pdb"
  "lcb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
