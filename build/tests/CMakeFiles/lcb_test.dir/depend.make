# Empty dependencies file for lcb_test.
# This may be replaced when dependencies are built.
