file(REMOVE_RECURSE
  "CMakeFiles/merger_test.dir/merge/merger_test.cc.o"
  "CMakeFiles/merger_test.dir/merge/merger_test.cc.o.d"
  "merger_test"
  "merger_test.pdb"
  "merger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
