file(REMOVE_RECURSE
  "CMakeFiles/mot_format_test.dir/io/mot_format_test.cc.o"
  "CMakeFiles/mot_format_test.dir/io/mot_format_test.cc.o.d"
  "mot_format_test"
  "mot_format_test.pdb"
  "mot_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
