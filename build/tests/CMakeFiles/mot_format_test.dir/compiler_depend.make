# Empty compiler generated dependencies file for mot_format_test.
# This may be replaced when dependencies are built.
