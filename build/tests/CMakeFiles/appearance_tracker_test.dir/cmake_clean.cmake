file(REMOVE_RECURSE
  "CMakeFiles/appearance_tracker_test.dir/track/appearance_tracker_test.cc.o"
  "CMakeFiles/appearance_tracker_test.dir/track/appearance_tracker_test.cc.o.d"
  "appearance_tracker_test"
  "appearance_tracker_test.pdb"
  "appearance_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appearance_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
