# Empty compiler generated dependencies file for appearance_tracker_test.
# This may be replaced when dependencies are built.
