file(REMOVE_RECURSE
  "CMakeFiles/count_query_test.dir/query/count_query_test.cc.o"
  "CMakeFiles/count_query_test.dir/query/count_query_test.cc.o.d"
  "count_query_test"
  "count_query_test.pdb"
  "count_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
