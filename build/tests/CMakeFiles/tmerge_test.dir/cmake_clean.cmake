file(REMOVE_RECURSE
  "CMakeFiles/tmerge_test.dir/merge/tmerge_test.cc.o"
  "CMakeFiles/tmerge_test.dir/merge/tmerge_test.cc.o.d"
  "tmerge_test"
  "tmerge_test.pdb"
  "tmerge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
