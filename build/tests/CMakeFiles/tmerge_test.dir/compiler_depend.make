# Empty compiler generated dependencies file for tmerge_test.
# This may be replaced when dependencies are built.
