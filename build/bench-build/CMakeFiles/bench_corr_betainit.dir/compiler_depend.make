# Empty compiler generated dependencies file for bench_corr_betainit.
# This may be replaced when dependencies are built.
