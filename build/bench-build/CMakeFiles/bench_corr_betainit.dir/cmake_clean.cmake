file(REMOVE_RECURSE
  "../bench/bench_corr_betainit"
  "../bench/bench_corr_betainit.pdb"
  "CMakeFiles/bench_corr_betainit.dir/bench_corr_betainit.cc.o"
  "CMakeFiles/bench_corr_betainit.dir/bench_corr_betainit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corr_betainit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
