file(REMOVE_RECURSE
  "../bench/bench_regret"
  "../bench/bench_regret.pdb"
  "CMakeFiles/bench_regret.dir/bench_regret.cc.o"
  "CMakeFiles/bench_regret.dir/bench_regret.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
