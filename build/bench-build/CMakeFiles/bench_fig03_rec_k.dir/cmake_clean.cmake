file(REMOVE_RECURSE
  "../bench/bench_fig03_rec_k"
  "../bench/bench_fig03_rec_k.pdb"
  "CMakeFiles/bench_fig03_rec_k.dir/bench_fig03_rec_k.cc.o"
  "CMakeFiles/bench_fig03_rec_k.dir/bench_fig03_rec_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_rec_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
