# Empty compiler generated dependencies file for bench_fig03_rec_k.
# This may be replaced when dependencies are built.
