file(REMOVE_RECURSE
  "../bench/bench_fig10_thr_s"
  "../bench/bench_fig10_thr_s.pdb"
  "CMakeFiles/bench_fig10_thr_s.dir/bench_fig10_thr_s.cc.o"
  "CMakeFiles/bench_fig10_thr_s.dir/bench_fig10_thr_s.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_thr_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
