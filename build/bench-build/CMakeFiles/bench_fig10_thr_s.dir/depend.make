# Empty dependencies file for bench_fig10_thr_s.
# This may be replaced when dependencies are built.
