file(REMOVE_RECURSE
  "CMakeFiles/tmerge_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/tmerge_bench_util.dir/bench_util.cc.o.d"
  "libtmerge_bench_util.a"
  "libtmerge_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmerge_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
