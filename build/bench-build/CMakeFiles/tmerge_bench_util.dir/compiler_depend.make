# Empty compiler generated dependencies file for tmerge_bench_util.
# This may be replaced when dependencies are built.
