file(REMOVE_RECURSE
  "libtmerge_bench_util.a"
)
