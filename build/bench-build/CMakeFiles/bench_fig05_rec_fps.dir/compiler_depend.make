# Empty compiler generated dependencies file for bench_fig05_rec_fps.
# This may be replaced when dependencies are built.
