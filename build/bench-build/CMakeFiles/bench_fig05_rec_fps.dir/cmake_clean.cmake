file(REMOVE_RECURSE
  "../bench/bench_fig05_rec_fps"
  "../bench/bench_fig05_rec_fps.pdb"
  "CMakeFiles/bench_fig05_rec_fps.dir/bench_fig05_rec_fps.cc.o"
  "CMakeFiles/bench_fig05_rec_fps.dir/bench_fig05_rec_fps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_rec_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
