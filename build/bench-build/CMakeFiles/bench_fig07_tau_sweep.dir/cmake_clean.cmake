file(REMOVE_RECURSE
  "../bench/bench_fig07_tau_sweep"
  "../bench/bench_fig07_tau_sweep.pdb"
  "CMakeFiles/bench_fig07_tau_sweep.dir/bench_fig07_tau_sweep.cc.o"
  "CMakeFiles/bench_fig07_tau_sweep.dir/bench_fig07_tau_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_tau_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
