# Empty compiler generated dependencies file for bench_fig07_tau_sweep.
# This may be replaced when dependencies are built.
