file(REMOVE_RECURSE
  "../bench/bench_tab02_fps_at_rec"
  "../bench/bench_tab02_fps_at_rec.pdb"
  "CMakeFiles/bench_tab02_fps_at_rec.dir/bench_tab02_fps_at_rec.cc.o"
  "CMakeFiles/bench_tab02_fps_at_rec.dir/bench_tab02_fps_at_rec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_fps_at_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
