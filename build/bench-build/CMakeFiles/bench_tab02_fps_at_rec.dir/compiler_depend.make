# Empty compiler generated dependencies file for bench_tab02_fps_at_rec.
# This may be replaced when dependencies are built.
