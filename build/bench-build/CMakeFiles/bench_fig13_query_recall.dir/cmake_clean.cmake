file(REMOVE_RECURSE
  "../bench/bench_fig13_query_recall"
  "../bench/bench_fig13_query_recall.pdb"
  "CMakeFiles/bench_fig13_query_recall.dir/bench_fig13_query_recall.cc.o"
  "CMakeFiles/bench_fig13_query_recall.dir/bench_fig13_query_recall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_query_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
