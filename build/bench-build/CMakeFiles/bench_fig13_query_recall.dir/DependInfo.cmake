
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_query_recall.cc" "bench-build/CMakeFiles/bench_fig13_query_recall.dir/bench_fig13_query_recall.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig13_query_recall.dir/bench_fig13_query_recall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/tmerge_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_track.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_reid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmerge_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
