file(REMOVE_RECURSE
  "../bench/bench_fig09_window_len"
  "../bench/bench_fig09_window_len.pdb"
  "CMakeFiles/bench_fig09_window_len.dir/bench_fig09_window_len.cc.o"
  "CMakeFiles/bench_fig09_window_len.dir/bench_fig09_window_len.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_window_len.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
