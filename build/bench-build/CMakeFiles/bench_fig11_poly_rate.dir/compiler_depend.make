# Empty compiler generated dependencies file for bench_fig11_poly_rate.
# This may be replaced when dependencies are built.
