#!/usr/bin/env python3
"""Compare BENCH_JSON lines against the committed perf baseline.

Benches print machine-readable lines of the form

    BENCH_JSON {"bench":"micro_one_vs_many","map_scalar_ns":3010.2,...}

(bench/bench_util.h, EmitBenchJson). This tool parses those lines from a
log file (or stdin), looks each bench up in the committed baseline
(bench/BENCH_tier1.json by default), and compares every field.

Two regimes per field, chosen by the baseline itself:

* **Gated** — the bench's baseline entry carries a ``"_tolerance"`` map
  from field name to a relative tolerance. Those fields are a *blocking*
  gate: a violation prints a ``::error::`` annotation and the exit code
  is non-zero regardless of flags. Time-like fields (ending in ``_ns``)
  gate upward only (``now <= base * (1 + tol)``); all other fields gate
  in both directions (``|now - base| <= tol * |base|``), so a tolerance
  of ``0`` demands an exact match — the right setting for output counts
  that determinism guarantees (windows, pairs), while wall-clock fields
  get a generous tolerance that only trips on catastrophic regressions.
  A gated field missing from the run is itself a blocking error.

* **Advisory** — fields without a tolerance entry keep the historical
  tripwire behavior: ``_ns`` fields regressing beyond ``--threshold``
  (default 25%) print ``::warning::`` annotations, and the exit stays 0
  unless ``--strict`` (for quiet, dedicated hardware). Non-``_ns``
  fields are printed informationally.

Structural problems — unreadable baseline, no BENCH_JSON lines at all,
malformed JSON — always fail: a perf job that silently measured nothing
is worse than none.
"""

import argparse
import json
import sys

BENCH_PREFIX = "BENCH_JSON "


def parse_bench_lines(stream):
    """Returns {bench_name: {field: value}} from BENCH_JSON lines."""
    benches = {}
    for line in stream:
        line = line.strip()
        if not line.startswith(BENCH_PREFIX):
            continue
        payload = json.loads(line[len(BENCH_PREFIX):])
        name = payload.pop("bench")
        benches[name] = payload
    return benches


def check_gated(name, field, base, now, tol):
    """Returns an error string for a tolerance violation, else None."""
    if field.endswith("_ns"):
        bound = base * (1.0 + tol)
        if now > bound:
            return (f"{name}.{field} gate: {now:g} ns exceeds "
                    f"{base:g} * (1 + {tol:g}) = {bound:g} ns")
        return None
    denom = abs(base) if base != 0 else 1.0
    if abs(now - base) > tol * denom:
        return (f"{name}.{field} gate: {now:g} outside "
                f"{base:g} +/- {tol:.0%}")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?", default="-",
                        help="file with BENCH_JSON lines (default: stdin)")
    parser.add_argument("--baseline", default="bench/BENCH_tier1.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that triggers an advisory "
                             "warning on ungated _ns fields")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any advisory field "
                             "regressed (gated fields always block)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)["benches"]

    if args.log == "-":
        current = parse_bench_lines(sys.stdin)
    else:
        with open(args.log, encoding="utf-8") as f:
            current = parse_bench_lines(f)
    if not current:
        print("::error::no BENCH_JSON lines found in input")
        return 2

    gate_failures = 0
    advisory_regressions = 0
    for name, entry in sorted(baseline.items()):
        tolerances = entry.get("_tolerance", {})
        base_fields = {k: v for k, v in entry.items() if k != "_tolerance"}
        if name not in current:
            if tolerances:
                print(f"::error::gated bench {name} missing from run")
                gate_failures += 1
            else:
                print(f"::warning::bench {name} in baseline but not in run")
            continue
        for field, base in sorted(base_fields.items()):
            gated = field in tolerances
            if field not in current[name]:
                if gated:
                    print(f"::error::gated field {name}.{field} missing "
                          f"from run")
                    gate_failures += 1
                else:
                    print(f"::warning::{name}.{field} missing from run")
                continue
            now = current[name][field]
            if gated:
                error = check_gated(name, field, base, now, tolerances[field])
                if error:
                    gate_failures += 1
                    print(f"::error::{error}")
                    print(f"{name}.{field}: {base:g} -> {now:g} "
                          f"[GATE FAILED tol={tolerances[field]:g}]")
                else:
                    print(f"{name}.{field}: {base:g} -> {now:g} "
                          f"[gate ok tol={tolerances[field]:g}]")
                continue
            if not field.endswith("_ns"):
                print(f"{name}.{field}: {base:g} -> {now:g}")
                continue
            ratio = now / base if base > 0 else float("inf")
            marker = ""
            if ratio > 1.0 + args.threshold:
                advisory_regressions += 1
                marker = " REGRESSED"
                print(f"::warning::{name}.{field} regressed "
                      f"{base:g} -> {now:g} ns ({ratio:.2f}x baseline)")
            print(f"{name}.{field}: {base:g} -> {now:g} ns "
                  f"({ratio:.2f}x){marker}")
        for field in sorted(set(tolerances) - set(base_fields)):
            print(f"::error::{name}._tolerance names unknown field "
                  f"{field!r}")
            gate_failures += 1
    for name in sorted(set(current) - set(baseline)):
        print(f"::notice::bench {name} has no baseline yet")

    if gate_failures:
        print(f"{gate_failures} gated field(s) outside tolerance — "
              f"failing the run")
        return 1
    if advisory_regressions:
        print(f"{advisory_regressions} advisory field(s) regressed beyond "
              f"{args.threshold:.0%} of baseline")
        return 1 if args.strict else 0
    print("all gates passed; no advisory regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
