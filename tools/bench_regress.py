#!/usr/bin/env python3
"""Compare BENCH_JSON lines against the committed perf baseline.

Benches print machine-readable lines of the form

    BENCH_JSON {"bench":"micro_one_vs_many","map_scalar_ns":3010.2,...}

(bench/bench_util.h, EmitBenchJson). This tool parses those lines from a
log file (or stdin), looks each bench up in the committed baseline
(bench/BENCH_tier1.json by default), and flags every time-like field —
keys ending in ``_ns`` — that regressed by more than the threshold
(default 25%).

Regressions are reported as GitHub-annotation warnings and the exit code
stays 0: shared CI runners are far too noisy for a hard perf gate, so the
job is a tripwire, not a blocker. Pass --strict to turn regressions into
a non-zero exit (for quiet, dedicated hardware). Structural problems —
unreadable baseline, no BENCH_JSON lines at all, malformed JSON — always
fail: a perf-smoke job that silently measured nothing is worse than none.

Speedup-style fields (everything not ending in ``_ns``) are compared
informationally only; they are ratios of two measurements taken on the
same run and the _ns fields already cover both sides.
"""

import argparse
import json
import sys

BENCH_PREFIX = "BENCH_JSON "


def parse_bench_lines(stream):
    """Returns {bench_name: {field: value}} from BENCH_JSON lines."""
    benches = {}
    for line in stream:
        line = line.strip()
        if not line.startswith(BENCH_PREFIX):
            continue
        payload = json.loads(line[len(BENCH_PREFIX):])
        name = payload.pop("bench")
        benches[name] = payload
    return benches


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?", default="-",
                        help="file with BENCH_JSON lines (default: stdin)")
    parser.add_argument("--baseline", default="bench/BENCH_tier1.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that triggers a warning")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any field regressed")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)["benches"]

    if args.log == "-":
        current = parse_bench_lines(sys.stdin)
    else:
        with open(args.log, encoding="utf-8") as f:
            current = parse_bench_lines(f)
    if not current:
        print("::error::no BENCH_JSON lines found in input")
        return 2

    regressions = 0
    for name, base_fields in sorted(baseline.items()):
        if name not in current:
            print(f"::warning::bench {name} in baseline but not in run")
            continue
        for field, base in sorted(base_fields.items()):
            if field not in current[name]:
                print(f"::warning::{name}.{field} missing from run")
                continue
            now = current[name][field]
            if not field.endswith("_ns"):
                print(f"{name}.{field}: {base:g} -> {now:g}")
                continue
            ratio = now / base if base > 0 else float("inf")
            marker = ""
            if ratio > 1.0 + args.threshold:
                regressions += 1
                marker = " REGRESSED"
                print(f"::warning::{name}.{field} regressed "
                      f"{base:g} -> {now:g} ns ({ratio:.2f}x baseline)")
            print(f"{name}.{field}: {base:g} -> {now:g} ns "
                  f"({ratio:.2f}x){marker}")
    for name in sorted(set(current) - set(baseline)):
        print(f"::notice::bench {name} has no baseline yet")

    if regressions:
        print(f"{regressions} field(s) regressed beyond "
              f"{args.threshold:.0%} of baseline")
        return 1 if args.strict else 0
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
