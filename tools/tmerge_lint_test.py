#!/usr/bin/env python3
"""Self-test for tmerge_lint.py: seeds a temporary bad tree and asserts
every rule fires (and that suppressions and comment-stripping keep the
false-positive rate at zero). Registered as the `tmerge_lint_selftest`
ctest — a linter that silently stopped matching would otherwise keep
reporting a clean tree forever."""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import tmerge_lint  # noqa: E402


def run_on(tree: dict[str, str]) -> list[str]:
    """Writes {relpath: content} into a temp root and lints it."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src").mkdir()
        for rel, content in tree.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
        linter = tmerge_lint.Linter(root)
        linter.run(["src", "bench", "tests", "examples"])
        return linter.violations


GOOD_HEADER = """#ifndef TMERGE_X_GOOD_H_
#define TMERGE_X_GOOD_H_
namespace tmerge::x {
inline int Ok() { return 0; }
}  // namespace tmerge::x
#endif  // TMERGE_X_GOOD_H_
"""


class RuleFiringTest(unittest.TestCase):
    def assert_rule(self, content, rule, rel="src/tmerge/x/f.cc"):
        violations = run_on({rel: content})
        self.assertTrue(
            any(f"[{rule}]" in v for v in violations),
            f"expected [{rule}] violation, got: {violations}")

    def test_random_device_banned(self):
        self.assert_rule("int f() { std::random_device rd; return rd(); }",
                        "randomness")

    def test_rand_banned(self):
        self.assert_rule("int f() { return rand(); }", "randomness")

    def test_srand_banned(self):
        self.assert_rule("void f() { srand(42); }", "randomness")

    def test_system_clock_banned(self):
        self.assert_rule(
            "auto f() { return std::chrono::system_clock::now(); }",
            "wall-clock")

    def test_steady_clock_outside_allowlist_banned(self):
        self.assert_rule(
            "auto f() { return std::chrono::steady_clock::now(); }",
            "wall-clock")

    def test_sleep_for_banned(self):
        self.assert_rule(
            "void f() { std::this_thread::sleep_for(1ms); }", "no-sleep")

    def test_sleep_until_banned(self):
        self.assert_rule(
            "void f() { std::this_thread::sleep_until(t); }", "no-sleep")

    def test_posix_sleep_banned(self):
        self.assert_rule("void f() { usleep(100); }", "no-sleep")
        self.assert_rule("void f() { sleep(1); }", "no-sleep")
        self.assert_rule("void f() { nanosleep(&ts, nullptr); }", "no-sleep")

    def test_wrong_header_guard(self):
        self.assert_rule("#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n",
                        "header-guard", rel="src/tmerge/x/f.h")

    def test_mismatched_define(self):
        self.assert_rule(
            "#ifndef TMERGE_X_F_H_\n#define OTHER_H_\n#endif\n",
            "header-guard", rel="src/tmerge/x/f.h")

    def test_using_namespace_in_header(self):
        self.assert_rule(
            "#ifndef TMERGE_X_F_H_\n#define TMERGE_X_F_H_\n"
            "using namespace std;\n#endif\n",
            "using-namespace", rel="src/tmerge/x/f.h")

    def test_iostream_in_header(self):
        self.assert_rule(
            "#ifndef TMERGE_X_F_H_\n#define TMERGE_X_F_H_\n"
            "#include <iostream>\n#endif\n",
            "iostream-header", rel="src/tmerge/x/f.h")

    def test_naked_new_banned(self):
        self.assert_rule("int* f() { return new int(3); }", "naked-new")

    def test_naked_array_new_banned(self):
        self.assert_rule("int* f() { return new int[8]; }", "naked-new")

    def test_naked_delete_banned(self):
        self.assert_rule("void f(int* p) { delete p; }", "naked-new")

    def test_naked_array_delete_banned(self):
        self.assert_rule("void f(int* p) { delete[] p; }", "naked-new")

    def test_event_name_uppercase_banned(self):
        self.assert_rule('void f() { TMERGE_SPAN("Stream.Ingest"); }',
                        "event-name")

    def test_event_name_space_banned(self):
        self.assert_rule(
            'void f() { TMERGE_TRACE_INSTANT("stream admit"); }',
            "event-name")

    def test_event_name_registry_getters_checked(self):
        self.assert_rule(
            'auto& c = registry.GetCounter("stream.Bad-Name");',
            "event-name")

    def test_event_name_checked_in_tests_dir_too(self):
        # The naming grammar is repo-wide: test metrics feed the same
        # exporters and goldens.
        self.assert_rule('void f() { TMERGE_TRACE_COUNTER("BadName", 1); }',
                        "event-name", rel="tests/x/f.cc")


class NoFalsePositiveTest(unittest.TestCase):
    def test_clean_header_passes(self):
        self.assertEqual(run_on({"src/tmerge/x/good.h": GOOD_HEADER}), [])

    def test_comments_do_not_fire(self):
        content = ("// std::random_device is banned; so is system_clock\n"
                   "/* rand() and srand() too */\n"
                   "int f() { return 0; }\n")
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_string_literals_do_not_fire(self):
        content = 'const char* kMsg = "never call srand() here";\n'
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_allow_suppression(self):
        content = ("int f() { return rand(); }"
                   "  // tmerge-lint: allow(randomness)\n")
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_allow_is_rule_specific(self):
        content = ("int f() { return rand(); }"
                   "  // tmerge-lint: allow(wall-clock)\n")
        violations = run_on({"src/tmerge/x/f.cc": content})
        self.assertTrue(any("[randomness]" in v for v in violations))

    def test_randomness_free_in_tests_dir(self):
        # The randomness ban is scoped to src/ — tests may use ad-hoc
        # entropy-free LCGs or (rarely) ambient entropy.
        content = "int f() { return rand(); }\n"
        self.assertEqual(run_on({"tests/x/f.cc": content}), [])

    def test_identifier_substrings_do_not_fire(self):
        content = ("int operand(int x) { return x; }\n"
                   "int g() { return operand(1); }\n")
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_sleep_identifier_substrings_do_not_fire(self):
        # Mentions in comments and sleep-like identifiers must not fire.
        content = ("// never sleep_for in src/ (see no-sleep rule)\n"
                   "int oversleep(int x) { return x; }\n"
                   "int g() { return oversleep(1); }\n")
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_sleep_allowed_in_tests_dir(self):
        content = "void f() { std::this_thread::sleep_for(1ms); }\n"
        self.assertEqual(run_on({"tests/x/f.cc": content}), [])

    def test_deleted_member_is_not_naked_delete(self):
        content = ("struct NoCopy {\n"
                   "  NoCopy(const NoCopy&) = delete;\n"
                   "  NoCopy& operator=(const NoCopy&) =\n"
                   "      delete;\n"
                   "};\n")
        self.assertEqual(run_on({"src/tmerge/x/f.h": content
                                 .replace("struct",
                                          "#ifndef TMERGE_X_F_H_\n"
                                          "#define TMERGE_X_F_H_\n"
                                          "struct", 1) + "#endif\n"}), [])

    def test_operator_new_declaration_is_not_naked(self):
        content = ("struct Arena {\n"
                   "  void* operator new(std::size_t n);\n"
                   "  void operator delete(void* p);\n"
                   "};\n")
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_new_identifier_substrings_do_not_fire(self):
        content = ("int renew(int x) { return x; }\n"
                   "int new_count = 0;  // `new` name prefix, not the "
                   "keyword\n")
        violations = run_on({"src/tmerge/x/f.cc": content})
        self.assertEqual(
            [v for v in violations if "[naked-new]" in v], [])

    def test_naked_new_allowed_in_tests_dir(self):
        content = "int* f() { return new int(3); }\n"
        self.assertEqual(run_on({"tests/x/f.cc": content}), [])

    def test_naked_new_allow_suppression(self):
        content = ("static Registry* r = new Registry();"
                   "  // tmerge-lint: allow(naked-new)\n")
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_event_name_valid_names_pass(self):
        content = ('void f() {\n'
                   '  TMERGE_SPAN("stream.merge_job.seconds");\n'
                   '  TMERGE_TRACE_SCOPE("stream.frame.ingest");\n'
                   '  TMERGE_TRACE_COUNTER("core.pool.tasks2", 1);\n'
                   '}\n')
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_event_name_non_literal_args_skipped(self):
        # Computed names (LabeledName etc.) are out of the rule's reach.
        content = ('auto& g = registry.GetGauge(\n'
                   '    obs::LabeledName("stream.q", {{"camera", id}}));\n')
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_event_name_allow_suppression(self):
        content = ('void f() { TMERGE_SPAN("Legacy.Name"); }'
                   '  // tmerge-lint: allow(event-name)\n')
        self.assertEqual(run_on({"src/tmerge/x/f.cc": content}), [])

    def test_steady_clock_allowlist_is_trace_clock_only(self):
        self.assertEqual(tmerge_lint.STEADY_CLOCK_ALLOWLIST,
                         {"src/tmerge/obs/trace_clock.h"})


class GuardDerivationTest(unittest.TestCase):
    def test_src_prefix_stripped(self):
        self.assertEqual(
            tmerge_lint.expected_guard(
                pathlib.PurePosixPath("src/tmerge/core/rng.h")),
            "TMERGE_CORE_RNG_H_")

    def test_non_src_keeps_tmerge_root(self):
        self.assertEqual(
            tmerge_lint.expected_guard(
                pathlib.PurePosixPath("tests/testing/test_util.h")),
            "TMERGE_TESTS_TESTING_TEST_UTIL_H_")
        self.assertEqual(
            tmerge_lint.expected_guard(
                pathlib.PurePosixPath("bench/bench_util.h")),
            "TMERGE_BENCH_BENCH_UTIL_H_")


if __name__ == "__main__":
    unittest.main()
