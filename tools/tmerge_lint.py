#!/usr/bin/env python3
"""tmerge repo-invariant linter.

Enforces the source-tree contracts that neither the compiler nor the unit
tests can see (DESIGN.md "Static analysis & enforced invariants"):

  determinism
    - no std::random_device / rand() / srand() anywhere under src/ —
      every random draw must flow from an explicit seed through
      core/rng.h, or TMerge's reproducibility claims (bit-identical
      results for any thread count) silently rot.
    - no std::chrono::system_clock under src/, and steady_clock only in
      an explicit allowlist (obs/trace_clock.h — the one sanctioned
      wall-clock source; spans, WallTimer and the thread pool all read it).
      Recall/FPS numbers come from the simulated cost model; a stray
      wall-clock read would let host load leak into "measurements".
    - no sleeping under src/ (this_thread::sleep_for/sleep_until,
      sleep/usleep/nanosleep). Simulated latency — retry backoff and
      injected latency spikes above all — is *charged* to the cost-model
      SimClock (reid/cost_model.h), never slept: a real sleep would make
      wall-clock results scheduler-dependent and stall test suites.

  hygiene
    - header guards must be TMERGE_<PATH>_H_ derived from the file path,
      so guards never collide as the tree grows.
    - no `using namespace` in headers (leaks into every includer).
    - no <iostream> in headers (global-constructor and compile-time tax;
      headers needing formatted output take a stream or use <cstdio> in
      the .cc).
    - no naked `new` / `delete` expressions under src/. Ownership flows
      through std::unique_ptr / make_unique (or containers); the only
      sanctioned exception is the intentionally-leaked function-local
      singleton (Meyers-singleton-with-leak, used by the obs and fault
      registries to dodge shutdown-order fiascos), which carries an
      explicit allow comment. `= delete`d special members and
      `operator new/delete` declarations are not expressions and don't
      fire.
    - metric/trace event names passed as literals to TMERGE_SPAN,
      TMERGE_TRACE_*, or registry Get* must be lowercase dotted
      identifiers (`stream.merge_job.seconds`), so exporters, dashboards
      and trace_summarize.py can rely on one naming grammar. Computed
      names (e.g. obs::LabeledName) are out of this rule's reach and
      follow the same convention by construction.

Zero third-party dependencies; runs as a tier-1 ctest and in the CI
static-analysis job. Exit code 0 = clean, 1 = violations, 2 = usage error.

A line can opt out of a named rule with a trailing comment:
    foo();  // tmerge-lint: allow(<rule>)
where <rule> is one of: randomness, wall-clock, no-sleep, header-guard,
using-namespace, iostream-header, event-name, naked-new. Use sparingly;
the allowlists above are preferred for whole-file exemptions.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# steady_clock is legitimate in exactly one place: the obs trace clock.
# Every real-time measurement (trace events, span histograms, WallTimer,
# thread-pool queue-wait timing) routes through obs::TraceClockNanos(), so
# the determinism audit is a one-header read.
STEADY_CLOCK_ALLOWLIST = {
    "src/tmerge/obs/trace_clock.h",
}

HEADER_EXTENSIONS = {".h", ".hpp", ".hh"}
SOURCE_EXTENSIONS = HEADER_EXTENSIONS | {".cc", ".cpp", ".cxx"}

ALLOW_RE = re.compile(r"tmerge-lint:\s*allow\(([a-z-]+)\)")

RANDOMNESS_RE = re.compile(
    r"std::random_device|\brandom_device\b|(?<![\w:.])s?rand\s*\(")
SYSTEM_CLOCK_RE = re.compile(r"\bsystem_clock\b")
STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")
SLEEP_RE = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|(?<![\w:.])(?:sleep|usleep|nanosleep)\s*\(")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
# `new` as an expression head: `new T(...)`, `new T[...]`, placement new.
# The lookbehind keeps identifiers like `renew`/`anew` and qualified names
# out; `operator new` declarations and `= delete`d members are filtered at
# the match site (they are declarations, not expressions).
NAKED_NEW_RE = re.compile(r"(?<![\w:.])(new|delete)\b")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')

# A metric/trace name site whose first argument is a string literal opening
# on the same line. strip_comments() blanks literal *contents* but keeps
# the quote characters in place, so the match is found on the stripped line
# and the name itself is sliced out of the raw line at the same columns.
EVENT_NAME_CALL_RE = re.compile(
    r"\b(?:TMERGE_SPAN|TMERGE_TRACE_SCOPE|TMERGE_TRACE_INSTANT|"
    r"TMERGE_TRACE_COUNTER|GetCounter|GetGauge|GetHistogram)\s*\(\s*\"")
EVENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)*$")


def strip_comments(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines.

    Keeps line/column positions stable so diagnostics still point at the
    original source. Good enough for the token-level bans above; not a full
    lexer (raw strings are treated as plain strings).
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" and c != quote else c)
        i += 1
    return "".join(out)


def expected_guard(relpath: pathlib.PurePosixPath) -> str:
    """src/tmerge/core/rng.h -> TMERGE_CORE_RNG_H_ (and bench/tests files
    keep their directory prefix: tests/testing/test_util.h ->
    TMERGE_TESTS_TESTING_TEST_UTIL_H_)."""
    parts = list(relpath.parts)
    if parts[0] == "src":
        parts = parts[1:]  # src/tmerge/... -> tmerge/...
    else:
        parts = ["tmerge"] + parts  # bench/..., tests/... keep a TMERGE_ root
    stem = "/".join(parts)
    return re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[str] = []

    def report(self, path: pathlib.Path, line: int, rule: str, message: str):
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{line}: [{rule}] {message}")

    def allowed(self, raw_line: str, rule: str) -> bool:
        match = ALLOW_RE.search(raw_line)
        return match is not None and match.group(1) == rule

    def lint_file(self, path: pathlib.Path):
        rel = pathlib.PurePosixPath(path.relative_to(self.root).as_posix())
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code_lines = strip_comments(raw).splitlines()
        in_src = rel.parts[0] == "src"
        is_header = path.suffix in HEADER_EXTENSIONS

        for lineno, (code, orig) in enumerate(zip(code_lines, raw_lines), 1):
            if in_src and RANDOMNESS_RE.search(code):
                if not self.allowed(orig, "randomness"):
                    self.report(path, lineno, "randomness",
                                "ambient randomness is banned in src/; "
                                "derive draws from an explicit seed via "
                                "core/rng.h")
            if in_src and SYSTEM_CLOCK_RE.search(code):
                if not self.allowed(orig, "wall-clock"):
                    self.report(path, lineno, "wall-clock",
                                "system_clock is banned in src/; simulated "
                                "time comes from core/sim_clock.h")
            if (in_src and str(rel) not in STEADY_CLOCK_ALLOWLIST
                    and STEADY_CLOCK_RE.search(code)):
                if not self.allowed(orig, "wall-clock"):
                    self.report(path, lineno, "wall-clock",
                                "steady_clock outside the allowlist "
                                f"({', '.join(sorted(STEADY_CLOCK_ALLOWLIST))}); "
                                "route timing through obs spans or "
                                "core/sim_clock.h")
            if in_src and SLEEP_RE.search(code):
                if not self.allowed(orig, "no-sleep"):
                    self.report(path, lineno, "no-sleep",
                                "sleeping is banned in src/; charge "
                                "simulated latency to the cost-model "
                                "SimClock (reid/cost_model.h) instead")
            if in_src:
                for m in NAKED_NEW_RE.finditer(code):
                    kw = m.group(1)
                    before = code[:m.start()].rstrip()
                    if kw == "delete" and not before:
                        # Wrapped `... =\n    delete;` — look back.
                        for prev in reversed(code_lines[:lineno - 1]):
                            if prev.strip():
                                before = prev.rstrip()
                                break
                    if kw == "delete" and before.endswith("="):
                        continue  # `= delete`d member: a declaration
                    if before.endswith("operator"):
                        continue  # operator new/delete declaration
                    if self.allowed(orig, "naked-new"):
                        continue
                    self.report(path, lineno, "naked-new",
                                f"naked `{kw}` in src/; own memory with "
                                "std::unique_ptr / make_unique (leaked "
                                "function-local singletons carry an "
                                "explicit allow comment)")
            if is_header and USING_NAMESPACE_RE.search(code):
                if not self.allowed(orig, "using-namespace"):
                    self.report(path, lineno, "using-namespace",
                                "`using namespace` in a header leaks into "
                                "every includer")
            if is_header and IOSTREAM_RE.search(code):
                if not self.allowed(orig, "iostream-header"):
                    self.report(path, lineno, "iostream-header",
                                "<iostream> in a header; include it in the "
                                ".cc or take a std::ostream&")
            for m in EVENT_NAME_CALL_RE.finditer(code):
                start = m.end()  # just past the opening quote
                end = code.find('"', start)
                if end == -1:
                    continue  # literal spans lines; out of this rule's reach
                name = orig[start:end]
                if not EVENT_NAME_RE.match(name):
                    if not self.allowed(orig, "event-name"):
                        self.report(path, lineno, "event-name",
                                    f'metric/trace name "{name}" must be a '
                                    "lowercase dotted identifier "
                                    "([a-z0-9_] segments joined by '.')")

        if is_header:
            self.lint_header_guard(path, rel, code_lines, raw_lines)

    def lint_header_guard(self, path, rel, code_lines, raw_lines):
        guard = expected_guard(rel)
        ifndef_re = re.compile(r"#\s*ifndef\s+(\w+)")
        define_re = re.compile(r"#\s*define\s+(\w+)")
        for lineno, code in enumerate(code_lines, 1):
            if not code.strip():
                continue
            m = ifndef_re.match(code.strip())
            if not m:
                self.report(path, lineno, "header-guard",
                            f"first directive must be `#ifndef {guard}`")
                return
            if m.group(1) != guard:
                if not self.allowed(raw_lines[lineno - 1], "header-guard"):
                    self.report(path, lineno, "header-guard",
                                f"guard {m.group(1)} should be {guard} "
                                "(derived from the file path)")
                return
            # The very next non-blank code line must define the same guard.
            for lineno2, code2 in enumerate(code_lines[lineno:], lineno + 1):
                if not code2.strip():
                    continue
                m2 = define_re.match(code2.strip())
                if not m2 or m2.group(1) != guard:
                    self.report(path, lineno2, "header-guard",
                                f"`#ifndef {guard}` must be followed by "
                                f"`#define {guard}`")
                return
            return

    def run(self, subdirs) -> int:
        files = []
        for sub in subdirs:
            base = self.root / sub
            if not base.is_dir():
                continue
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in SOURCE_EXTENSIONS and p.is_file())
        for path in files:
            self.lint_file(path)
        for violation in self.violations:
            print(violation)
        print(f"tmerge_lint: {len(files)} files scanned, "
              f"{len(self.violations)} violation(s)")
        return 1 if self.violations else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent's "
                             "parent)")
    parser.add_argument("subdirs", nargs="*",
                        default=["src", "bench", "tests", "examples"],
                        help="subtrees to scan (default: src bench tests "
                             "examples)")
    args = parser.parse_args()
    root = (pathlib.Path(args.root).resolve() if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    if not (root / "src").is_dir():
        print(f"tmerge_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    return Linter(root).run(args.subdirs)


if __name__ == "__main__":
    sys.exit(main())
