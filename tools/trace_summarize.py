#!/usr/bin/env python3
"""Summarize a tmerge Chrome-trace JSON dump as per-stage latency tables.

The flight recorder (src/tmerge/obs/trace.h) exports Chrome trace-event
JSON — {"traceEvents": [...]} with B/E duration pairs, "i" instants and
"C" counter samples, timestamps in microseconds. This tool turns one such
dump (bench_stream's TRACE_JSON artifact, a stall post-mortem, a test
golden) into the tables a human actually wants from a soak log:

* **spans** — for every B/E event name: count, and the
  min/mean/p50/p90/p99/max of the begin-to-end wall duration, computed
  per thread with a per-name stack so nested and repeated scopes pair
  correctly. Unbalanced events (a begin whose end was overwritten by the
  ring, or vice versa) are counted, not guessed at.
* **instants** — occurrence counts per name (admission verdicts,
  force-flushes, enqueue/dequeue marks).
* **counters** — last/min/max of each sampled series (queue depths,
  in-flight jobs).

Spans whose begin event carries a simulated timestamp ("sim_s" arg) get
a sim-time column reporting the mean sim clock at stage entry: wall
duration tells you what the host did, the sim timestamp locates the
stage on the deterministic clock the pipeline runs on. (Scope end
events deliberately do not re-record sim time — it cannot advance
inside a scope — so a sim *duration* would always be zero.)

Zero third-party dependencies (json + argparse only), same policy as the
other tools here. Exit 0 on success, 1 for unreadable/empty input, so CI
can use it as a cheap trace validity check:

    python3 tools/trace_summarize.py bench_stream_trace.json
"""

import argparse
import json
import sys


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list (fraction in [0,1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * fraction // 1))  # ceil
    index = min(len(sorted_values), int(rank)) - 1
    return sorted_values[index]


def load_events(path):
    """Returns the traceEvents list, or raises ValueError."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError('no "traceEvents" array — not a Chrome trace')
    return events


def pair_spans(events):
    """Matches B/E pairs per (tid, name) with a stack per key.

    Returns (spans, unbalanced) where spans maps name -> list of
    {"wall_us": float, "sim_s": float | None} and unbalanced counts
    begins without ends plus ends without begins.
    """
    stacks = {}
    spans = {}
    unbalanced = 0
    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        key = (event.get("tid"), event.get("name"))
        if phase == "B":
            stacks.setdefault(key, []).append(event)
            continue
        stack = stacks.get(key)
        if not stack:
            unbalanced += 1  # end survived the ring; its begin did not
            continue
        begin = stack.pop()
        record = {"wall_us": event["ts"] - begin["ts"],
                  "sim_s": begin.get("args", {}).get("sim_s")}
        spans.setdefault(event["name"], []).append(record)
    unbalanced += sum(len(stack) for stack in stacks.values())
    return spans, unbalanced


def format_table(headers, rows):
    """Plain fixed-width table (the core/table_printer.h look)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def span_rows(spans):
    rows = []
    for name in sorted(spans):
        wall = sorted(s["wall_us"] for s in spans[name])
        sims = [s["sim_s"] for s in spans[name] if s["sim_s"] is not None]
        mean = sum(wall) / len(wall)
        row = [
            name,
            str(len(wall)),
            "%.1f" % wall[0],
            "%.1f" % mean,
            "%.1f" % percentile(wall, 0.50),
            "%.1f" % percentile(wall, 0.90),
            "%.1f" % percentile(wall, 0.99),
            "%.1f" % wall[-1],
        ]
        if sims:
            row.append("%.3f" % (sum(sims) / len(sims)))
        else:
            row.append("-")
        rows.append(row)
    return rows


def counter_rows(events):
    series = {}
    for event in events:
        if event.get("ph") != "C":
            continue
        value = event.get("args", {}).get("value", 0)
        series.setdefault(event["name"], []).append(value)
    rows = []
    for name in sorted(series):
        values = series[name]
        rows.append([name, str(len(values)), str(min(values)),
                     str(max(values)), str(values[-1])])
    return rows


def instant_rows(events):
    counts = {}
    for event in events:
        if event.get("ph") == "i":
            counts[event["name"]] = counts.get(event["name"], 0) + 1
    return [[name, str(counts[name])] for name in sorted(counts)]


def main(argv):
    parser = argparse.ArgumentParser(
        description="Per-stage latency summary of a tmerge Chrome trace.")
    parser.add_argument("trace", help="Chrome trace JSON file (traceEvents)")
    args = parser.parse_args(argv)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace_summarize: cannot read {args.trace}: {error}",
              file=sys.stderr)
        return 1
    if not events:
        print(f"trace_summarize: {args.trace} has zero events",
              file=sys.stderr)
        return 1

    threads = {e.get("tid") for e in events}
    print(f"{args.trace}: {len(events)} events across "
          f"{len(threads)} thread(s)")

    spans, unbalanced = pair_spans(events)
    if spans:
        print("\n== spans (wall microseconds; sim seconds where recorded) ==")
        print(format_table(
            ["stage", "count", "min", "mean", "p50", "p90", "p99", "max",
             "sim-mean-s"],
            span_rows(spans)))
    if unbalanced:
        print(f"({unbalanced} unbalanced begin/end events — ring "
              "wraparound trimmed their partners; durations above use "
              "complete pairs only)")

    rows = instant_rows(events)
    if rows:
        print("\n== instants ==")
        print(format_table(["event", "count"], rows))

    rows = counter_rows(events)
    if rows:
        print("\n== counters ==")
        print(format_table(["series", "samples", "min", "max", "last"],
                           rows))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
