#!/usr/bin/env sh
# Negative-compile check for the Clang Thread Safety annotations.
#
# Usage: tools/check_thread_safety.sh [clang++-binary]
#
# Compiles tests/static/thread_safety_positive.cc (correct locking; must
# succeed) and tests/static/thread_safety_negative.cc (lock misuse; must
# FAIL with a -Wthread-safety diagnostic) under `-Wthread-safety -Werror`.
# Passing both directions proves the analysis is actually armed: a
# misconfigured job would wave the negative file through.
#
# Registered as the ctest `thread_safety_negative_compile` when the build
# compiler is clang, and run against a pinned clang in the CI
# static-analysis job.

set -u

CXX="${1:-clang++}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
STATIC_DIR="$ROOT/tests/static"
FLAGS="-std=c++20 -fsyntax-only -Wthread-safety -Werror -I$ROOT/src"

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "check_thread_safety: '$CXX' is not clang; the analysis only exists" \
       "there" >&2
  exit 1
fi

echo "check_thread_safety: positive file (must compile)"
if ! "$CXX" $FLAGS "$STATIC_DIR/thread_safety_positive.cc"; then
  echo "FAIL: thread_safety_positive.cc did not compile under" \
       "-Wthread-safety -Werror; the annotations in core/mutex.h or the" \
       "test file are broken" >&2
  exit 1
fi

echo "check_thread_safety: negative file (must be rejected)"
DIAG="$("$CXX" $FLAGS "$STATIC_DIR/thread_safety_negative.cc" 2>&1)"
STATUS=$?
if [ "$STATUS" -eq 0 ]; then
  echo "FAIL: thread_safety_negative.cc compiled — the thread-safety" \
       "analysis is not rejecting lock misuse" >&2
  exit 1
fi
if ! printf '%s\n' "$DIAG" | grep -q "thread-safety"; then
  echo "FAIL: thread_safety_negative.cc failed for the wrong reason" \
       "(expected a -Wthread-safety diagnostic):" >&2
  printf '%s\n' "$DIAG" >&2
  exit 1
fi

echo "check_thread_safety: OK (positive compiles, negative rejected)"
exit 0
