#!/usr/bin/env python3
"""libclang frontend: builds the same Model as cpp_model from real ASTs.

This frontend is *gated*: it needs the `clang` python bindings plus a
loadable libclang shared library, which the dev container does not ship
(and installing packages is out of scope for the analyzer). The driver's
`--frontend auto` therefore tries this module and falls back — loudly — to
the builtin frontend on any failure; CI installs python3-clang and runs
with the real AST. Both frontends feed the identical rules in rules.py, and
the selftest corpus pins the expected findings for whichever frontend is
active, so a frontend swap cannot silently change what the suite enforces.

Scope notes: libclang gives exact type/reference resolution (receiver
typing, overloads, using-decls) which the builtin reader only
approximates. The held-set computation is the same RAII-scope logic —
`MutexLock` VarDecl extents — because libclang exposes no CFG; that keeps
the two frontends' outputs directly comparable.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from cpp_model import (
    Acquisition, CallSite, ClassInfo, Field, FieldWrite, FileFacts,
    FunctionInfo, Model, NameUse, NAME_SITES, PRIMITIVE_FILES,
)


class ClangUnavailableError(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex  # noqa: PLC0415 (gated import)
    except ImportError as exc:
        raise ClangUnavailableError(
            "python clang bindings not installed (python3-clang)") from exc
    try:
        cindex.Index.create()
    except Exception as exc:  # cindex raises LibclangError and friends
        raise ClangUnavailableError(
            f"libclang shared library not loadable: {exc}") from exc
    return cindex


def build_model(root: pathlib.Path, files: Iterable[pathlib.Path],
                compdb_dir: pathlib.Path) -> Model:
    """Parses every translation unit listed in the compilation database and
    folds declarations from headers under `files` into one Model."""
    cindex = _load_cindex()
    ck = cindex.CursorKind
    model = Model()
    model.frontend = "libclang"
    wanted = {p.resolve() for p in files}

    db = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
    index = cindex.Index.create()
    seen_files: set[pathlib.Path] = set()

    for cmd in db.getAllCompileCommands():
        src = pathlib.Path(cmd.directory, cmd.filename).resolve()
        if src not in wanted:
            continue
        args = [a for a in list(cmd.arguments)[1:]
                if a not in (str(cmd.filename), "-c", "-o")][:-1]
        tu = index.parse(str(src), args=args,
                         options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        _walk_tu(model, root, tu, ck, wanted, seen_files)
    return model


def _rel(root: pathlib.Path, location) -> str | None:
    if location.file is None:
        return None
    try:
        return pathlib.Path(location.file.name).resolve() \
            .relative_to(root.resolve()).as_posix()
    except ValueError:
        return None


def _qualified(cursor) -> str:
    parts = []
    cur = cursor
    while cur is not None and cur.spelling and \
            cur.kind.name != "TRANSLATION_UNIT":
        if cur.spelling != "tmerge":
            parts.append(cur.spelling)
        cur = cur.semantic_parent
    return "::".join(reversed(parts))


def _tokens_text(cursor) -> str:
    return " ".join(t.spelling for t in cursor.get_tokens())


def _walk_tu(model: Model, root: pathlib.Path, tu, ck,
             wanted: set[pathlib.Path], seen_files: set[pathlib.Path]
             ) -> None:
    import re

    def visit(cursor, enclosing_fn=None, held=()):
        rel = _rel(root, cursor.location)
        if rel is None or rel in PRIMITIVE_FILES:
            for child in cursor.get_children():
                visit(child, enclosing_fn, held)
            return

        if cursor.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                cursor.is_definition():
            qual = _qualified(cursor)
            info = model.classes.setdefault(qual, ClassInfo(
                qualified=qual, file=rel, line=cursor.location.line))
            for child in cursor.get_children():
                if child.kind == ck.FIELD_DECL:
                    text = _tokens_text(child)
                    type_text = child.type.spelling
                    field = Field(
                        cls=qual, name=child.spelling, type_text=type_text,
                        line=child.location.line,
                        is_mutex=type_text.endswith("core::Mutex"),
                        is_condvar=type_text.endswith("core::CondVar"),
                        is_atomic="atomic" in type_text,
                        is_const=child.type.is_const_qualified())
                    m = re.search(r"TMERGE_GUARDED_BY\s*\(\s*([^()]+?)\s*\)",
                                  text)
                    if m:
                        field.guarded_by = f"{qual}::{m.group(1)}" \
                            if re.fullmatch(r"\w+", m.group(1)) \
                            else m.group(1)
                    info.fields[child.spelling] = field

        if cursor.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR,
                           ck.DESTRUCTOR):
            qual = _qualified(cursor)
            fn = model.functions.get(qual)
            if fn is None:
                parent = cursor.semantic_parent
                cls = _qualified(parent) if parent is not None and \
                    parent.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) else None
                fn = FunctionInfo(qualified=qual, cls=cls, file=rel,
                                  line=cursor.location.line)
                model.functions[qual] = fn
            text = _tokens_text(cursor) if not cursor.is_definition() else ""
            for macro, target in (("TMERGE_REQUIRES", fn.requires),
                                  ("TMERGE_EXCLUDES", fn.excludes)):
                for m in re.finditer(macro + r"\s*\(\s*([^()]+?)\s*\)", text):
                    expr = m.group(1)
                    target.add(f"{fn.cls}::{expr}" if fn.cls and
                               re.fullmatch(r"\w+", expr) else expr)
            if cursor.is_definition():
                fn.has_body = True
                _walk_body(model, root, cursor, fn, ck)
            return

        for child in cursor.get_children():
            visit(child, enclosing_fn, held)

    visit(tu.cursor)


def _walk_body(model: Model, root: pathlib.Path, fn_cursor, fn, ck) -> None:
    """Call sites, MutexLock acquisitions and member writes with RAII-scope
    held tracking, mirroring the builtin frontend's semantics."""
    requires_held = tuple(sorted(fn.requires))

    def mutex_name(expr_cursor) -> str:
        ref = expr_cursor.referenced
        if ref is not None and ref.semantic_parent is not None:
            return _qualified(ref)
        return expr_cursor.spelling or "?"

    def walk(cursor, held):
        rel = _rel(root, cursor.location)
        for child in cursor.get_children():
            if child.kind == ck.VAR_DECL and \
                    child.type.spelling.endswith("MutexLock"):
                inits = [g for g in child.get_children()
                         if g.kind.is_expression()]
                name = "?"
                for init in inits:
                    for ref in init.walk_preorder():
                        if ref.kind in (ck.MEMBER_REF_EXPR, ck.DECL_REF_EXPR) \
                                and ref.type.spelling.endswith("core::Mutex"):
                            name = mutex_name(ref)
                            break
                fn.acquires.append(Acquisition(
                    mutex=name, file=rel or fn.file,
                    line=child.location.line, held=tuple(held)))
                held = held + [name]
            elif child.kind == ck.CALL_EXPR:
                callee = child.referenced
                qual = _qualified(callee) if callee is not None \
                    else child.spelling
                args = list(child.get_arguments())
                first = args[0].spelling if args else ""
                site = CallSite(
                    callee=qual or child.spelling, raw=child.spelling,
                    file=rel or fn.file, line=child.location.line,
                    held=tuple(held), first_arg=first,
                    in_lambda=False)
                fn.calls.append(site)
                walk(child, held)
            elif child.kind == ck.LAMBDA_EXPR:
                walk(child, [])   # deferred: starts with nothing held
            elif child.kind in (ck.BINARY_OPERATOR,
                                ck.COMPOUND_ASSIGNMENT_OPERATOR,
                                ck.UNARY_OPERATOR):
                _maybe_record_write(model, fn, child, held, ck, rel)
                walk(child, held)
            else:
                walk(child, held)

    walk(fn_cursor, list(requires_held))


def _maybe_record_write(model: Model, fn, cursor, held, ck, rel) -> None:
    if fn.cls is None or fn.cls not in model.classes:
        return
    children = list(cursor.get_children())
    if not children:
        return
    lhs = children[0]
    if lhs.kind != ck.MEMBER_REF_EXPR:
        return
    name = lhs.spelling
    if name in model.classes[fn.cls].fields:
        fn.writes.append(FieldWrite(
            cls=fn.cls, field=name, file=rel or fn.file,
            line=cursor.location.line, held=tuple(held),
            in_ctor=fn.qualified.rsplit("::", 1)[-1] ==
            (fn.cls or "").rsplit("::", 1)[-1]))
