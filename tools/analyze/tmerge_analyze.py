#!/usr/bin/env python3
"""tmerge semantic static-analysis driver.

Runs the lock-order / blocking-under-mutex / guarded-by / include-hygiene /
name-registry rules (rules.py) over a Model of the C++ tree and exits
non-zero on any finding. Registered as a tier-1 ctest (`tmerge_analyze`)
and run as the blocking `semantic-analysis` CI job.

Frontends:
  --frontend builtin   pure-Python reader (cpp_model.py) — always available,
                       fully covered by the selftest corpus.
  --frontend libclang  real AST via python clang bindings + a compilation
                       database (clang_frontend.py) — used in CI where the
                       pinned toolchain ships libclang.
  --frontend auto      libclang when importable, else a loud fallback to
                       builtin (never a silent skip).

The compilation database gate (--compdb) is deliberate even for the builtin
frontend: it proves the analyzed file set matches what the build actually
compiles, so dead files can't carry stale annotations through the check.
Pass --compdb none only for corpus trees without a build (selftests).

Exit codes: 0 clean, 1 findings, 2 configuration/usage error.

Usage:
  tools/analyze/tmerge_analyze.py [--root R] [--compdb build/compile_commands.json]
      [--frontend auto|builtin|libclang] [--config-dir tools/analyze]
      [--design DESIGN.md] [--emit-lock-graph out.json] [--emit-dot out.dot]
      [--emit-registry registry.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import cpp_model  # noqa: E402
import rules      # noqa: E402

# Artifacts outside src/ whose metric/trace/failpoint references must not
# drift from the registry (rule: name-registry, direction 3).
EXTRA_TEXT_FILES = (
    ".github/workflows/ci.yml",
    "README.md",
    "DESIGN.md",
)


def repo_files(root: pathlib.Path) -> list[pathlib.Path]:
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(list(src.rglob("*.h")) + list(src.rglob("*.cc")))


def harvest_files(root: pathlib.Path) -> list[pathlib.Path]:
    out: list[pathlib.Path] = []
    for sub in ("bench", "tests"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(list(base.rglob("*.cc")) + list(base.rglob("*.h"))):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tests/static/"):
                continue  # corpus trees use deliberately fake names
            out.append(path)
    return out


def check_compdb(root: pathlib.Path, compdb: pathlib.Path,
                 files: list[pathlib.Path]) -> pathlib.Path:
    if not compdb.is_file():
        sys.exit(f"error: compilation database not found at {compdb}.\n"
                 f"Configure the build first (CMAKE_EXPORT_COMPILE_COMMANDS "
                 f"is always on):  cmake -B build -S {root}\n"
                 f"or pass --compdb none for a corpus tree.")
    try:
        entries = json.loads(compdb.read_text())
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {compdb} is not valid JSON: {exc}")
    listed = set()
    for entry in entries:
        listed.add((pathlib.Path(entry["directory"]) /
                    entry["file"]).resolve())
    missing = [f for f in files
               if f.suffix == ".cc" and f.resolve() not in listed]
    if missing:
        names = "\n  ".join(str(m) for m in missing)
        sys.exit(f"error: source files missing from {compdb} — the build "
                 f"does not compile what the analyzer would check "
                 f"(stale configure?):\n  {names}")
    return compdb.parent


def build_model(root: pathlib.Path, files: list[pathlib.Path],
                frontend: str, compdb_dir: pathlib.Path | None):
    """Builds the semantic model; textual facts (includes, name literals)
    always come from the builtin pass, the AST frontend replaces the
    semantic core (classes/functions) when selected."""
    model = cpp_model.build_model(root, files)
    if frontend == "builtin":
        return model
    try:
        import clang_frontend
        if compdb_dir is None:
            raise clang_frontend.ClangUnavailableError(
                "libclang frontend needs a compilation database "
                "(--compdb must not be 'none')")
        ast_model = clang_frontend.build_model(root, files, compdb_dir)
        model.classes = ast_model.classes
        model.functions = ast_model.functions
        model.frontend = "libclang"
        return model
    except Exception as exc:  # loud fallback, never a silent skip
        if frontend == "libclang":
            sys.exit(f"error: --frontend libclang requested but "
                     f"unavailable: {exc}")
        print(f"tmerge_analyze: libclang frontend unavailable "
              f"({exc}); falling back to builtin frontend",
              file=sys.stderr)
        return model


def main(argv: list[str]) -> int:
    here = pathlib.Path(__file__).resolve().parent
    default_root = here.parents[1]
    parser = argparse.ArgumentParser(
        description="tmerge semantic static analysis")
    parser.add_argument("--root", type=pathlib.Path, default=default_root)
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path, or 'none' "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "builtin", "libclang"))
    parser.add_argument("--config-dir", type=pathlib.Path, default=here,
                        help="directory holding lock_order.json, "
                             "registry.json, suppressions.json")
    parser.add_argument("--design", type=pathlib.Path, default=None,
                        help="DESIGN.md path for suppression design_refs "
                             "(default: <root>/DESIGN.md)")
    parser.add_argument("--emit-lock-graph", type=pathlib.Path)
    parser.add_argument("--emit-dot", type=pathlib.Path)
    parser.add_argument("--emit-registry", type=pathlib.Path,
                        help="regenerate the registry from harvested names "
                             "(keeps the existing fixtures bucket) and exit")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    files = repo_files(root)
    if not files:
        sys.exit(f"error: no C++ sources under {root}/src")

    compdb_dir: pathlib.Path | None = None
    if args.compdb != "none":
        compdb = pathlib.Path(args.compdb) if args.compdb else \
            root / "build" / "compile_commands.json"
        compdb_dir = check_compdb(root, compdb, files)

    model = build_model(root, files, args.frontend, compdb_dir)
    for path in harvest_files(root):
        cpp_model.harvest_names_only(root, path, model)

    design = args.design if args.design else root / "DESIGN.md"
    config = rules.Config(args.config_dir, design)

    if args.emit_registry:
        registry = rules.generate_registry(
            model, config.registry.get("fixtures", []))
        args.emit_registry.write_text(
            json.dumps(registry, indent=2) + "\n")
        print(f"wrote {args.emit_registry} "
              f"({sum(len(v) for v in registry.values())} names)")
        return 0

    extra_texts = {}
    for rel in EXTRA_TEXT_FILES:
        path = root / rel
        if path.is_file():
            extra_texts[rel] = path.read_text(encoding="utf-8")

    findings = rules.run_all(model, config, root, extra_texts)

    if args.emit_lock_graph or args.emit_dot:
        graph = rules.lock_graph_json(model, config)
        if args.emit_lock_graph:
            args.emit_lock_graph.write_text(
                json.dumps(graph, indent=2) + "\n")
        if args.emit_dot:
            args.emit_dot.write_text(rules.lock_graph_dot(graph))

    for finding in findings:
        print(finding.render())
    summary = (f"tmerge_analyze [{model.frontend}]: "
               f"{len(model.functions)} functions, "
               f"{len(model.classes)} classes, "
               f"{len(model.name_uses)} name uses — "
               f"{len(findings)} finding(s)")
    print(summary, file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
