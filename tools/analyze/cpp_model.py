#!/usr/bin/env python3
"""Semantic model of the tmerge C++ tree, extracted without a compiler.

This is the *builtin* frontend of tools/analyze: a deliberately scoped C++
reader that understands the repo's uniform idiom (Google-style classes,
`core::MutexLock lock(mu_)` RAII locking, TMERGE_* capability annotations
on declarations, instrumentation macros with literal names) well enough to
build the structures the rules in rules.py consume:

  - classes and their data members, with mutex/condvar/atomic typing and
    TMERGE_GUARDED_BY annotations;
  - functions (declarations and definitions merged by qualified name) with
    their REQUIRES/EXCLUDES contracts, the mutexes their bodies acquire,
    every call site annotated with the set of mutexes held at that point,
    and every write to a member field with the same held-set;
  - metric/trace/failpoint name literals with their registration kind;
  - per-file direct includes and Mutex/annotation-macro usage lines.

The libclang frontend (clang_frontend.py) produces the same Model from a
real AST when python bindings are installed; the driver picks whichever is
available (see tmerge_analyze.py --frontend). Keeping the builtin reader
self-contained means the analyzer — a tier-1 ctest and a blocking CI gate —
never silently degrades to "skipped" on a machine without libclang.

Parsing strategy: one linear scan per file tracking a context stack
(namespace / class / function / lambda / block) keyed on brace depth, with
comments and string contents blanked (positions preserved) so regexes never
fire inside either. Held-mutex sets are tracked by attaching each
`MutexLock` to the brace depth of its declaration and popping it when that
block closes, which mirrors the RAII lifetime exactly. This is not a C++
parser; it is a reader for *this* codebase's subset, and the selftest
corpus (tests/static/analyze/) pins the constructs it must understand.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
from typing import Iterable


# ---------------------------------------------------------------------------
# Shared model dataclasses (both frontends produce these).
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Field:
    """One data member of a class."""

    cls: str                 # qualified class name, e.g. "stream::StreamService"
    name: str
    type_text: str
    line: int
    guarded_by: str | None = None   # qualified mutex name when annotated
    is_mutex: bool = False
    is_condvar: bool = False
    is_atomic: bool = False
    is_const: bool = False


@dataclasses.dataclass
class ClassInfo:
    qualified: str
    file: str
    line: int
    fields: dict[str, Field] = dataclasses.field(default_factory=dict)

    @property
    def mutexes(self) -> list[Field]:
        return [f for f in self.fields.values() if f.is_mutex]


@dataclasses.dataclass
class CallSite:
    """One resolved (or best-effort) call within a function body."""

    callee: str              # qualified function when resolved, raw chain otherwise
    raw: str                 # the receiver.method chain as written
    file: str
    line: int
    held: tuple[str, ...]    # qualified mutexes held at the call site
    first_arg: str = ""      # normalized first-argument text (CondVar::Wait)
    in_lambda: bool = False


@dataclasses.dataclass
class FieldWrite:
    cls: str
    field: str
    file: str
    line: int
    held: tuple[str, ...]
    in_ctor: bool = False


@dataclasses.dataclass
class Acquisition:
    """One MutexLock (or scoped acquire) inside a function body."""

    mutex: str               # qualified mutex
    file: str
    line: int
    held: tuple[str, ...]    # mutexes already held when this one is taken


@dataclasses.dataclass
class FunctionInfo:
    qualified: str
    cls: str | None
    file: str
    line: int
    requires: set[str] = dataclasses.field(default_factory=set)
    excludes: set[str] = dataclasses.field(default_factory=set)
    acquires: list[Acquisition] = dataclasses.field(default_factory=list)
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    writes: list[FieldWrite] = dataclasses.field(default_factory=list)
    has_body: bool = False

    def merge_decl(self, other: "FunctionInfo") -> None:
        """Folds a declaration's contracts into this (defined) function."""
        self.requires |= other.requires
        self.excludes |= other.excludes


@dataclasses.dataclass
class NameUse:
    """One metric/trace/span/failpoint name literal at a known site."""

    name: str
    kind: str                # counter|gauge|histogram|span|trace|failpoint
    file: str
    line: int


@dataclasses.dataclass
class FileFacts:
    """Per-file include hygiene facts."""

    path: str
    includes: set[str] = dataclasses.field(default_factory=set)
    mutex_use_lines: list[int] = dataclasses.field(default_factory=list)
    annotation_use_lines: list[int] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Model:
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    functions: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    name_uses: list[NameUse] = dataclasses.field(default_factory=list)
    files: dict[str, FileFacts] = dataclasses.field(default_factory=dict)
    frontend: str = "builtin"

    def function_index(self) -> dict[str, list[FunctionInfo]]:
        """Maps unqualified method name -> functions carrying it."""
        index: dict[str, list[FunctionInfo]] = {}
        for fn in self.functions.values():
            index.setdefault(fn.qualified.rsplit("::", 1)[-1], []).append(fn)
        return index


# ---------------------------------------------------------------------------
# Name-literal harvesting configuration.
#
# Callee -> registry kind for calls whose first argument is a string
# literal. Wrappers local to one file (StreamCounter, DirectorCounter) are
# listed alongside the registry methods they forward to, so harvesting does
# not depend on inlining them.
# ---------------------------------------------------------------------------

NAME_SITES: dict[str, str] = {
    "GetCounter": "counter",
    "StreamCounter": "counter",
    "DirectorCounter": "counter",
    "GetGauge": "gauge",
    "GetHistogram": "histogram",
    "LabeledName": "labeled_base",
    "TMERGE_SPAN": "span",
    "TMERGE_TRACE_SCOPE": "trace",
    "TMERGE_TRACE_INSTANT": "trace",
    "TMERGE_TRACE_COUNTER": "trace",
    "TraceInstant": "trace",
    "TraceCounter": "trace",
    "TMERGE_FAILPOINT": "failpoint",
    "TMERGE_FAILPOINT_LATENCY": "failpoint",
    "Arm": "failpoint",
    "Disarm": "failpoint",
    "fires": "failpoint",
}

# Macros that expand to calls into known lock-acquiring machinery. The
# builtin frontend records these as synthetic call sites so lock-order and
# blocking analysis see through the instrumentation layer.
MACRO_CALLEES: dict[str, tuple[str, ...]] = {
    "TMERGE_FAILPOINT": ("fault::Registry::ShouldFail",),
    "TMERGE_FAILPOINT_LATENCY": ("fault::Registry::LatencySpike",),
    "TMERGE_TRACE_SCOPE": ("obs::TraceRecorder::Record",),
    "TMERGE_TRACE_INSTANT": ("obs::TraceRecorder::Record",),
    "TMERGE_TRACE_COUNTER": ("obs::TraceRecorder::Record",),
    "TMERGE_SPAN": (
        "obs::MetricsRegistry::GetHistogram",
        "obs::TraceRecorder::Record",
    ),
}

ANNOTATION_MACROS = (
    "TMERGE_GUARDED_BY|TMERGE_PT_GUARDED_BY|TMERGE_REQUIRES|"
    "TMERGE_REQUIRES_SHARED|TMERGE_ACQUIRE|TMERGE_RELEASE|"
    "TMERGE_TRY_ACQUIRE|TMERGE_EXCLUDES|TMERGE_CAPABILITY|"
    "TMERGE_SCOPED_CAPABILITY|TMERGE_RETURN_CAPABILITY|"
    "TMERGE_ASSERT_CAPABILITY|TMERGE_NO_THREAD_SAFETY_ANALYSIS"
)

# Files that *define* the locking primitives; they are the vocabulary, not
# subjects of the analysis.
PRIMITIVE_FILES = {
    "src/tmerge/core/mutex.h",
    "src/tmerge/core/thread_annotations.h",
}

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "alignof", "decltype", "assert", "defined", "else", "do",
    "case", "not", "and", "or", "void", "int", "bool", "double", "float",
    "char", "auto", "explicit", "operator", "noexcept", "template",
    "typename", "using", "namespace", "static_assert",
}


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks comments (and optionally string/char contents), preserving
    every newline and column so offsets map back to the original text."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, i = "line", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                state, i = "block", i + 2
                out.append("  ")
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append(c if c == "\n" else " ")
        else:  # string | char
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif keep_strings:
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


# --- regexes over blanked code --------------------------------------------

_NAMESPACE_RE = re.compile(r"\bnamespace\s+((?:\w+(?:::\w+)*)?)\s*$")
_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:TMERGE_\w+(?:\([^()]*\))?\s+)*(\w+(?:::\w+)*)"
    r"(?:\s+final)?(?:\s*:\s*(?!:)[^{;]*)?\s*$")
_CONTROL_RE = re.compile(r"\b(?:if|for|while|switch|catch)\s*\($")
_LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[\w:&<>*\s]+?)?\s*$")
_FUNC_SIG_RE = re.compile(
    r"(~?\w[\w:]*(?:<[^<>()]*>)?)\s*\(", re.DOTALL)
_MUTEXLOCK_RE = re.compile(
    r"\b(?:core::)?MutexLock\s+\w+\s*\(\s*([^()]+?)\s*\)\s*;")
_CALL_RE = re.compile(
    r"(?<![\w.:])((?:::)?[A-Za-z_]\w*(?:(?:::|\.|->)[A-Za-z_~]\w*)*)\s*\(")
_CHAINED_CALL_RE = re.compile(r"\)\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
_ANNOTATION_USE_RE = re.compile(r"\b(?:%s)\b" % ANNOTATION_MACROS)
_MUTEX_USE_RE = re.compile(
    r"\bcore::(?:Mutex|MutexLock|CondVar)\b|\b(?:MutexLock|CondVar)\b")
_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
_GUARDED_BY_RE = re.compile(r"TMERGE_GUARDED_BY\s*\(\s*([^()]+?)\s*\)")
_REQUIRES_RE = re.compile(r"TMERGE_REQUIRES\s*\(\s*([^()]+?)\s*\)")
_EXCLUDES_RE = re.compile(r"TMERGE_EXCLUDES\s*\(\s*([^()]+?)\s*\)")
_FIELD_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+)*"
    r"(const\s+)?([\w:]+(?:<.*>)?(?:\s*[*&])?)\s+"
    r"(\w+)\s*(TMERGE_GUARDED_BY\s*\([^()]*\))?\s*(?:=[^;]*|\{[^{};]*\})?;")
_LOCAL_DECL_RE = re.compile(
    r"\b([A-Z]\w*(?:::\w+)*)&?\s+(\w+)\s*(?:;|=)")


def _blank_template_args(text: str) -> str:
    """Blanks the contents of balanced <...> spans (keeps length)."""
    out = []
    depth = 0
    for ch in text:
        if ch == "<":
            depth += 1
            out.append(ch)
        elif ch == ">":
            depth = max(0, depth - 1)
            out.append(ch)
        else:
            out.append(" " if depth > 0 and ch != "\n" else ch)
    return "".join(out)


def _split_lines_offsets(text: str) -> list[int]:
    """Start offset of each line (1-based indexable via bisect)."""
    offsets = [0]
    for m in re.finditer("\n", text):
        offsets.append(m.end())
    return offsets


def _line_of(offsets: list[int], pos: int) -> int:
    import bisect
    return bisect.bisect_right(offsets, pos)


class _FileParser:
    """Single-file extraction pass (see module docstring)."""

    def __init__(self, root: pathlib.Path, path: pathlib.Path, model: Model):
        self.root = root
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.model = model
        raw = path.read_text(encoding="utf-8")
        self.raw = raw
        self.code = strip_comments_and_strings(raw)            # no strings
        self.code_s = strip_comments_and_strings(raw, True)    # with strings
        self.offsets = _split_lines_offsets(raw)

    def line(self, pos: int) -> int:
        return _line_of(self.offsets, pos)

    # -- pass 1: file facts (includes, primitive-usage lines) --------------

    def collect_file_facts(self) -> None:
        facts = FileFacts(path=self.rel)
        for m in _INCLUDE_RE.finditer(self.code_s):
            facts.includes.add(m.group(1))
        if self.rel not in PRIMITIVE_FILES:
            for lineno, line in enumerate(self.code.splitlines(), 1):
                if _MUTEX_USE_RE.search(line):
                    facts.mutex_use_lines.append(lineno)
                if _ANNOTATION_USE_RE.search(line):
                    facts.annotation_use_lines.append(lineno)
        self.model.files[self.rel] = facts

    # -- pass 2: structure (namespaces, classes, functions) -----------------

    def parse(self) -> None:
        self.collect_file_facts()
        if self.rel in PRIMITIVE_FILES:
            return
        self._walk_structure()
        self._harvest_names()

    def _segment_before(self, pos: int) -> str:
        """Code text from the previous structural delimiter up to pos."""
        start = max(self.code.rfind(ch, 0, pos) for ch in ";{}")
        return self.code[start + 1:pos].strip()

    def _walk_structure(self) -> None:
        code = self.code
        stack: list[tuple[str, str | None, int]] = []  # (kind, name, depth)
        depth = 0
        i, n = 0, len(code)
        while i < n:
            c = code[i]
            if c == "{":
                seg = self._segment_before(i)
                kind, name = self._classify_block(seg, stack)
                depth += 1
                stack.append((kind, name, depth))
                if kind == "function":
                    end = self._matching_brace(i)
                    self._parse_function_body(seg, i, end, stack)
                    # Skip the body; _parse_function_body handled it.
                    depth -= 1
                    stack.pop()
                    i = end + 1
                    continue
                if kind == "class":
                    end = self._matching_brace(i)
                    self._parse_class_body(name, i + 1, end, stack)
                    # Fall through: still walk inside for member function
                    # definitions (inline methods).
            elif c == "}":
                if stack and stack[-1][2] == depth:
                    stack.pop()
                depth = max(0, depth - 1)
            i += 1

    def _namespace_prefix(self, stack) -> str:
        parts = [name for kind, name, _ in stack if kind == "namespace" and name]
        return "::".join(parts)

    def _class_prefix(self, stack) -> str:
        parts = [name for kind, name, _ in stack if kind == "namespace" and name]
        parts += [name for kind, name, _ in stack if kind == "class"]
        return "::".join(parts)

    def _classify_block(self, seg: str, stack) -> tuple[str, str | None]:
        if not seg:
            return "block", None
        m = _NAMESPACE_RE.search(seg)
        if m is not None:
            return "namespace", m.group(1)
        m = _CLASS_RE.search(seg)
        if m is not None and "enum" not in seg.split():
            return "class", m.group(1)
        if _LAMBDA_RE.search(seg):
            return "lambda", None
        if _CONTROL_RE.search(seg) or seg.endswith("else") or \
                seg.endswith("do") or seg.endswith("try"):
            return "block", None
        sig = self._function_name_of(seg)
        if sig is not None:
            return "function", sig
        return "block", None

    def _function_name_of(self, seg: str) -> str | None:
        """Extracts Class::Name from a segment that ends a function
        signature (just before its body brace), or None."""
        # The signature's parameter list is the last balanced (...) group;
        # annotations/const/noexcept may follow it.
        close = seg.rfind(")")
        if close == -1:
            return None
        trailer = seg[close + 1:]
        if not re.fullmatch(
                r"(?:\s|const|noexcept|override|final|mutable|->.*|"
                r"TMERGE_\w+(?:\([^()]*\))?|:\s*.*)*", trailer, re.DOTALL):
            return None
        # Constructor initializer lists (`: field_(x)`) end with ')' too;
        # the regex above tolerates them via the `:` branch.
        open_pos = self._matching_open_paren(seg, close)
        if open_pos is None:
            return None
        head = seg[:open_pos]
        # An initializer list means the real parameter list is earlier:
        # `StreamService::StreamService(const ...& c) : config_(c)`.
        colon = self._top_level_ctor_colon(head)
        if colon is not None:
            close2 = head.rfind(")", 0, colon)
            if close2 == -1:
                return None
            open2 = self._matching_open_paren(head, close2)
            if open2 is None:
                return None
            head = head[:open2]
        m = re.search(r"(~?\w[\w:~]*)\s*$", head)
        if m is None:
            return None
        name = m.group(1)
        last = name.rsplit("::", 1)[-1]
        if last in _KEYWORDS or name in _KEYWORDS:
            return None
        return name

    def _top_level_ctor_colon(self, text: str) -> int | None:
        depth = 0
        for idx, ch in enumerate(text):
            if ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth -= 1
            elif ch == ":" and depth == 0:
                if idx + 1 < len(text) and text[idx + 1] == ":":
                    continue
                if idx > 0 and text[idx - 1] == ":":
                    continue
                return idx
        return None

    def _matching_open_paren(self, text: str, close: int) -> int | None:
        depth = 0
        for idx in range(close, -1, -1):
            if text[idx] == ")":
                depth += 1
            elif idx < len(text) and text[idx] == "(":
                depth -= 1
                if depth == 0:
                    return idx
        return None

    def _matching_brace(self, open_pos: int) -> int:
        depth = 0
        for idx in range(open_pos, len(self.code)):
            if self.code[idx] == "{":
                depth += 1
            elif self.code[idx] == "}":
                depth -= 1
                if depth == 0:
                    return idx
        return len(self.code) - 1

    # -- class bodies -------------------------------------------------------

    def _parse_class_body(self, name: str, start: int, end: int, stack) -> None:
        qualified = self._strip_tmerge(self._class_prefix(stack))
        cls = self.model.classes.setdefault(
            qualified,
            ClassInfo(qualified=qualified, file=self.rel,
                      line=self.line(start)))
        body = self.code[start:end]
        # Blank nested braces (methods, nested classes) so field regexes see
        # only this class's declaration lines; nested classes were / will be
        # visited by the structural walk.
        flat = self._blank_nested_braces(body)
        for m in re.finditer(r"[^;{}]*;", flat):
            # Access-specifier labels glue onto the following declaration
            # in the flattened body; strip them before classifying.
            stmt = re.sub(r"\b(?:public|private|protected)\s*:", " ",
                          m.group(0))
            # A '(' outside template arguments means a method declaration
            # (parens *inside* <...> are function types like
            # std::function<void()> — still a field).
            head = _blank_template_args(stmt.split("TMERGE_GUARDED_BY")[0])
            if "(" in head:
                # Method declaration — capture its REQUIRES/EXCLUDES.
                self._parse_method_decl(stmt, qualified, start + m.start())
                continue
            fm = _FIELD_DECL_RE.match(stmt)
            if fm is None:
                continue
            is_const, type_text, fname, guard = fm.groups()
            if type_text in ("return", "using", "friend", "typedef", "class",
                            "struct", "enum", "public", "private",
                            "protected"):
                continue
            field = Field(
                cls=qualified, name=fname, type_text=type_text.strip(),
                line=self.line(start + m.start()),
                is_const=bool(is_const))
            base = type_text.replace("core::", "").strip()
            field.is_mutex = base == "Mutex"
            field.is_condvar = base == "CondVar"
            field.is_atomic = "atomic" in type_text
            if guard:
                gm = _GUARDED_BY_RE.search(guard)
                if gm:
                    field.guarded_by = self._qualify_mutex(
                        gm.group(1), qualified)
            cls.fields[fname] = field

    def _parse_method_decl(self, stmt: str, cls: str, pos: int) -> None:
        requires = {m.group(1) for m in _REQUIRES_RE.finditer(stmt)}
        excludes = {m.group(1) for m in _EXCLUDES_RE.finditer(stmt)}
        if not requires and not excludes:
            return
        open_paren = stmt.find("(")
        m = re.search(r"(~?\w+)\s*$", stmt[:open_paren])
        if m is None:
            return
        qualified = f"{cls}::{m.group(1)}"
        info = FunctionInfo(qualified=qualified, cls=cls, file=self.rel,
                            line=self.line(pos))
        info.requires = {self._qualify_mutex(r, cls) for r in requires}
        info.excludes = {self._qualify_mutex(e, cls) for e in excludes}
        existing = self.model.functions.get(qualified)
        if existing is None:
            self.model.functions[qualified] = info
        else:
            existing.merge_decl(info)

    def _blank_nested_braces(self, body: str) -> str:
        out = []
        depth = 0
        for ch in body:
            if ch == "{":
                depth += 1
                out.append(" ")
            elif ch == "}":
                depth -= 1
                out.append(";" if depth == 0 else " ")
            else:
                out.append(ch if depth == 0 or ch == "\n" else " ")
        return "".join(out)

    # -- function bodies ----------------------------------------------------

    def _strip_tmerge(self, qualified: str) -> str:
        return re.sub(r"^tmerge::", "", qualified)

    def _enclosing_class(self, stack, func_name: str) -> str | None:
        for kind, name, _ in reversed(stack[:-1]):
            if kind == "class":
                return self._strip_tmerge(self._class_prefix(stack[:-1]))
        if "::" in func_name:
            # Out-of-line definition: Class::Method — qualify with the
            # namespace prefix.
            ns = self._namespace_prefix(stack[:-1])
            cls_part = func_name.rsplit("::", 1)[0]
            full = f"{ns}::{cls_part}" if ns else cls_part
            return self._strip_tmerge(full)
        return None

    def _qualify_mutex(self, expr: str, cls: str | None) -> str:
        """Normalizes a mutex expression to Class::member where possible."""
        expr = expr.strip()
        if re.fullmatch(r"\w+", expr):
            if cls is not None:
                owner = self.model.classes.get(cls)
                if owner is not None and expr in owner.fields:
                    return f"{cls}::{expr}"
                return f"{cls}::{expr}"
            return expr
        # `obj.member` / `obj->member`: resolve obj via known classes later;
        # keep raw here, resolution happens in _parse_function_body where
        # locals are visible.
        return expr

    def _parse_function_body(self, seg: str, open_pos: int, end: int,
                             stack) -> None:
        func_name = stack[-1][1] or "(anonymous)"
        cls = self._enclosing_class(stack, func_name)
        ns = self._namespace_prefix(stack)
        short = func_name.rsplit("::", 1)[-1]
        if cls is not None:
            qualified = f"{cls}::{short}"
        else:
            qualified = self._strip_tmerge(
                f"{ns}::{short}" if ns else short)
        is_ctor = cls is not None and cls.rsplit("::", 1)[-1] == short
        info = self.model.functions.get(qualified)
        if info is None or info.has_body:
            if info is not None and info.has_body:
                # Overload of an already-seen function: analyze under a
                # distinct key so neither body is dropped.
                qualified = f"{qualified}@{self.line(open_pos)}"
            info = FunctionInfo(qualified=qualified, cls=cls, file=self.rel,
                                line=self.line(open_pos))
            self.model.functions[qualified] = info
        info.has_body = True
        info.file = self.rel
        info.line = self.line(open_pos)
        for m in _REQUIRES_RE.finditer(seg):
            info.requires.add(self._qualify_mutex(m.group(1), cls))
        for m in _EXCLUDES_RE.finditer(seg):
            info.excludes.add(self._qualify_mutex(m.group(1), cls))

        body = self.code[open_pos + 1:end]
        base = open_pos + 1

        # Local declarations of known class types (for receiver typing).
        locals_: dict[str, str] = {}
        for lm in _LOCAL_DECL_RE.finditer(body):
            type_name, var = lm.group(1), lm.group(2)
            resolved = self._resolve_class_name(type_name, cls, ns)
            if resolved is not None:
                locals_[var] = resolved

        # Lambda body ranges: calls inside run deferred, so they are
        # attributed to a synthetic function, not charged against the
        # enclosing function's held set.
        lambda_ranges: list[tuple[int, int]] = []
        for lm in re.finditer(
                r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?\{", body):
            lopen = lm.end() - 1
            lclose = self._matching_brace_in(body, lopen)
            lambda_ranges.append((lopen, lclose))

        def in_lambda(pos: int) -> bool:
            return any(a < pos < b for a, b in lambda_ranges)

        # Events: brace open/close, MutexLock decls, calls. Processed in
        # offset order with a depth-keyed stack of held mutexes.
        events: list[tuple[int, str, object]] = []
        for idx, ch in enumerate(body):
            if ch == "{":
                events.append((idx, "open", None))
            elif ch == "}":
                events.append((idx, "close", None))
        for m in _MUTEXLOCK_RE.finditer(body):
            expr = self._resolve_mutex_expr(m.group(1), cls, locals_)
            events.append((m.start(), "lock", (expr, m.start())))
        for m in _CALL_RE.finditer(body):
            events.append((m.start(), "call", m))
        for m in _CHAINED_CALL_RE.finditer(body):
            events.append((m.start(1), "chain", m))
        write_pat = self._field_write_pattern(cls)
        if write_pat is not None:
            for m in write_pat.finditer(body):
                events.append((m.start(), "write", m))
        events.sort(key=lambda e: (e[0], e[1] == "open"))

        depth = 0
        held: list[tuple[int, str]] = []  # (depth at decl, mutex)
        if not is_ctor:
            held.extend((-1, r) for r in info.requires)

        lambda_held: dict[int, list[tuple[int, str]]] = {}

        def current_held(pos: int) -> tuple[str, ...]:
            if in_lambda(pos):
                for (a, b) in lambda_ranges:
                    if a < pos < b:
                        return tuple(m for _, m in lambda_held.get(a, []))
                return ()
            return tuple(m for _, m in held)

        for pos, kind, payload in events:
            if kind == "open":
                depth += 1
            elif kind == "close":
                if in_lambda(pos + 1) or any(pos == b for _, b in lambda_ranges):
                    pass
                while held and held[-1][0] == depth:
                    held.pop()
                for a in list(lambda_held):
                    lambda_held[a] = [e for e in lambda_held[a]
                                      if e[0] != depth]
                depth = max(0, depth - 1)
            elif kind == "lock":
                expr, _ = payload
                if in_lambda(pos):
                    for (a, b) in lambda_ranges:
                        if a < pos < b:
                            lambda_held.setdefault(a, []).append((depth, expr))
                            info.acquires.append(Acquisition(
                                mutex=expr, file=self.rel,
                                line=self.line(base + pos),
                                held=tuple(m for _, m
                                           in lambda_held.get(a, [])[:-1])))
                            break
                else:
                    info.acquires.append(Acquisition(
                        mutex=expr, file=self.rel, line=self.line(base + pos),
                        held=tuple(m for _, m in held)))
                    held.append((depth, expr))
            elif kind in ("call", "chain"):
                m = payload
                chain = m.group(1)
                short_name = re.split(r"::|\.|->", chain)[-1]
                if short_name in _KEYWORDS or chain.rsplit(
                        "::", 1)[-1] in _KEYWORDS:
                    continue
                if kind == "call" and re.fullmatch(
                        r"(?:core::)?MutexLock|MutexLock", chain):
                    continue
                first_arg = self._first_arg(body, m.end())
                site = CallSite(
                    callee=chain, raw=chain, file=self.rel,
                    line=self.line(base + m.start(1) if kind == "chain"
                                   else base + m.start()),
                    held=current_held(m.start()),
                    first_arg=first_arg,
                    in_lambda=in_lambda(m.start()))
                self._resolve_call(site, cls, locals_)
                info.calls.append(site)
                if chain in MACRO_CALLEES:
                    for target in MACRO_CALLEES[chain]:
                        info.calls.append(dataclasses.replace(
                            site, callee=target, raw=chain))
            elif kind == "write":
                m = payload
                info.writes.append(FieldWrite(
                    cls=cls, field=m.group(1) or m.group(2), file=self.rel,
                    line=self.line(base + m.start()),
                    held=current_held(m.start()), in_ctor=is_ctor))

    def _field_write_pattern(self, cls: str | None) -> re.Pattern | None:
        """Regex matching mutations of `cls`'s own data members: prefix and
        postfix ++/--, (compound) assignment, and mutating container calls.
        `obj.field` accesses are excluded by the lookbehind — only writes to
        the enclosing object's members count."""
        if cls is None:
            return None
        owner = self.model.classes.get(cls)
        if owner is None or not owner.fields:
            return None
        names = "|".join(re.escape(n) for n in sorted(owner.fields))
        mutators = ("push_back|pop_front|pop_back|push_front|clear|insert|"
                    "erase|emplace|emplace_back|assign|reserve|resize|store|"
                    "swap|reset")
        return re.compile(
            rf"(?:(?:\+\+|--)\s*({names})\b"
            rf"|(?<![\w.:>])({names})\s*"
            rf"(?:=(?!=)|[+\-*/%|&^]=|<<=|>>=|\+\+|--"
            rf"|\.(?:{mutators})\s*\())")

    def _matching_brace_in(self, text: str, open_pos: int) -> int:
        depth = 0
        for idx in range(open_pos, len(text)):
            if text[idx] == "{":
                depth += 1
            elif text[idx] == "}":
                depth -= 1
                if depth == 0:
                    return idx
        return len(text) - 1

    def _resolve_class_name(self, type_name: str, cls: str | None,
                            ns: str) -> str | None:
        type_name = self._strip_tmerge(type_name)
        candidates = [type_name]
        if cls is not None:
            candidates.append(f"{cls}::{type_name}")
        if ns:
            candidates.append(
                self._strip_tmerge(f"{ns}::{type_name}"))
        for cand in candidates:
            if cand in self.model.classes:
                return cand
        # Last-segment match (unique suffix).
        tail = type_name.rsplit("::", 1)[-1]
        matches = [q for q in self.model.classes
                   if q.rsplit("::", 1)[-1] == tail]
        if len(matches) == 1:
            return matches[0]
        return None

    def _resolve_mutex_expr(self, expr: str, cls: str | None,
                            locals_: dict[str, str]) -> str:
        expr = expr.strip()
        m = re.fullmatch(r"(\w+)\s*(?:\.|->)\s*(\w+)", expr)
        if m is not None:
            obj, member = m.groups()
            owner = locals_.get(obj)
            if owner is None and cls is not None:
                # Maybe obj is a member of cls with a known class type.
                owner_cls = self.model.classes.get(cls)
                if owner_cls is not None and obj in owner_cls.fields:
                    owner = self._resolve_class_name(
                        owner_cls.fields[obj].type_text, cls, "")
            if owner is not None:
                return f"{owner}::{member}"
            return expr
        if re.fullmatch(r"\w+", expr):
            return self._qualify_mutex(expr, cls)
        return expr

    def _first_arg(self, body: str, after_paren: int) -> str:
        depth = 1
        out = []
        for idx in range(after_paren, min(len(body), after_paren + 400)):
            ch = body[idx]
            if ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth -= 1
                if depth == 0:
                    break
            elif ch == "," and depth == 1:
                break
            out.append(ch)
        return "".join(out).strip()

    def _type_of_expr(self, name: str, cls: str | None,
                      locals_: dict[str, str]) -> str | None:
        """Best-effort type of a bare identifier: local, member, or this."""
        if name == "this":
            return cls
        if name in locals_:
            return locals_[name]
        if cls is not None:
            owner_cls = self.model.classes.get(cls)
            if owner_cls is not None and name in owner_cls.fields:
                return self._field_type(owner_cls.fields[name], cls)
        return None

    def _field_type(self, field: Field, cls: str) -> str | None:
        if field.is_mutex:
            return "core::Mutex"
        if field.is_condvar:
            return "core::CondVar"
        return self._resolve_class_name(
            re.sub(r"(?:std::unique_ptr|std::shared_ptr)<(.+)>", r"\1",
                   field.type_text).strip("*& "), cls, "")

    def _resolve_call(self, site: CallSite, cls: str | None,
                      locals_: dict[str, str]) -> None:
        chain = site.raw
        if chain in MACRO_CALLEES or (chain in NAME_SITES and
                                      chain.startswith("TMERGE_")):
            return
        segs = re.split(r"\.|->", chain)
        method = segs[-1].rsplit("::", 1)[-1]
        if len(segs) >= 2:
            # Member call: type the receiver chain left to right.
            cur = self._type_of_expr(segs[0].rsplit("::", 1)[-1], cls, locals_)
            for seg in segs[1:-1]:
                if cur is None:
                    break
                owner_cls = self.model.classes.get(cur)
                if owner_cls is not None and seg in owner_cls.fields:
                    cur = self._field_type(owner_cls.fields[seg], cur)
                else:
                    cur = None
            if cur is not None:
                site.callee = f"{cur}::{method}"
                if site.callee == "core::CondVar::Wait":
                    site.first_arg = self._resolve_mutex_expr(
                        site.first_arg, cls, locals_)
                return
        elif "::" not in chain and cls is not None:
            # Unqualified call inside a class: prefer a sibling method.
            if f"{cls}::{method}" in self.model.functions:
                site.callee = f"{cls}::{method}"
                return
        # Fallback: unique method-name match across known functions
        # (rules.py re-resolves against the final merged index).
        site.callee = chain

    # -- name harvesting ----------------------------------------------------

    def _harvest_names(self) -> None:
        pattern = re.compile(
            r"\b(%s)\s*\(\s*\"([^\"]*)\"" % "|".join(
                re.escape(k) for k in NAME_SITES))
        for m in pattern.finditer(self.code_s):
            callee, literal = m.group(1), m.group(2)
            self.model.name_uses.append(NameUse(
                name=literal, kind=NAME_SITES[callee], file=self.rel,
                line=self.line(m.start())))
        # Fault-spec strings: "a.b=0.3;c.d=0.1@0.05" arm the named points.
        spec_pattern = re.compile(
            r"\bApplySpec\s*\(\s*\"([^\"]*)\"")
        for m in spec_pattern.finditer(self.code_s):
            for entry in m.group(1).split(";"):
                if "=" in entry:
                    self.model.name_uses.append(NameUse(
                        name=entry.split("=", 1)[0].strip(), kind="failpoint",
                        file=self.rel, line=self.line(m.start())))


def harvest_names_only(root: pathlib.Path, path: pathlib.Path,
                       model: Model) -> None:
    """Name-literal harvest for files outside the semantic scope (bench/,
    tests/): only NameUses are recorded, no classes/functions/facts."""
    _FileParser(root, path, model)._harvest_names()


def build_model(root: pathlib.Path, files: Iterable[pathlib.Path]) -> Model:
    """Parses `files` (two passes: classes first so receiver typing works,
    then bodies) into one Model."""
    model = Model()
    parsers = [_FileParser(root, path, model) for path in sorted(files)]
    # Pass 1: collect classes/fields from every file (headers declare the
    # classes whose out-of-line methods live in the .cc files).
    for parser in parsers:
        parser.collect_file_facts()
        if parser.rel in PRIMITIVE_FILES:
            continue
        parser._walk_structure_classes_only()
    # Pass 2: full structural walk with the class index available.
    for parser in parsers:
        if parser.rel in PRIMITIVE_FILES:
            continue
        parser._walk_structure()
        parser._harvest_names()
    return model


def _walk_structure_classes_only(self) -> None:
    """First pass: classes and fields only (no function bodies)."""
    code = self.code
    stack: list[tuple[str, str | None, int]] = []
    depth = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "{":
            seg = self._segment_before(i)
            kind, name = self._classify_block(seg, stack)
            depth += 1
            stack.append((kind, name, depth))
            if kind == "function":
                end = self._matching_brace(i)
                depth -= 1
                stack.pop()
                i = end + 1
                continue
            if kind == "class":
                end = self._matching_brace(i)
                self._parse_class_body(name, i + 1, end, stack)
        elif c == "}":
            if stack and stack[-1][2] == depth:
                stack.pop()
            depth = max(0, depth - 1)
        i += 1


_FileParser._walk_structure_classes_only = _walk_structure_classes_only
