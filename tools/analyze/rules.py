#!/usr/bin/env python3
"""Analysis rules over the Model produced by a frontend (builtin/libclang).

Rules (ids are stable — suppressions.json and the selftest corpus key on
them):

  lock-order          static lock-graph extraction: any cycle, and any edge
                      that does not go strictly forward in the canonical
                      order (tools/analyze/lock_order.json), is a finding.
  blocking-under-mutex condvar waits on a *different* mutex, ParallelFor,
                      file I/O, trace snapshots/dumps, sleeps and joins
                      while holding any mutex. Per-site allowlist entries in
                      suppressions.json must cite a DESIGN.md liveness
                      argument (design_ref must literally occur there).
  guarded-by          fields of mutex-owning classes mutated under a held
                      class mutex but not TMERGE_GUARDED_BY-annotated, or
                      annotated with a different mutex than the one held.
  include-hygiene     files using Mutex/MutexLock/CondVar or TMERGE_*
                      annotation macros must directly include
                      tmerge/core/mutex.h / tmerge/core/thread_annotations.h
                      rather than lean on transitive includes.
  name-registry       every metric/span/trace/failpoint name literal in src/
                      must be listed in registry.json and vice versa; names
                      in bench/tests/CI/docs whose family (first dotted
                      segment) is a registry family must be listed too.
  suppression         stale or incomplete suppressions.json entries (wrong
                      rule id, never matched, or missing/unknown design_ref)
                      — this is what makes "zero unexplained suppressions"
                      enforceable rather than aspirational.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re

import cpp_model
from cpp_model import Model, FunctionInfo


@dataclasses.dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class LockEdge:
    src: str
    dst: str
    witness_file: str
    witness_line: int
    via: str          # "<holder_fn> -> <callee_fn>" or "direct acquire"


class Config:
    """Analyzer configuration living next to the sources it describes."""

    def __init__(self, config_dir: pathlib.Path, design_path: pathlib.Path):
        self.dir = config_dir
        self.lock_order: list[str] = []
        self.suppressions: list[dict] = []
        self.registry: dict = {"metrics": [], "traces": [], "failpoints": [],
                               "fixtures": []}
        lock_path = config_dir / "lock_order.json"
        if lock_path.exists():
            self.lock_order = json.loads(lock_path.read_text())["order"]
        supp_path = config_dir / "suppressions.json"
        if supp_path.exists():
            self.suppressions = json.loads(supp_path.read_text())
        reg_path = config_dir / "registry.json"
        if reg_path.exists():
            self.registry.update(json.loads(reg_path.read_text()))
        self.design_text = ""
        if design_path.exists():
            self.design_text = design_path.read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# Call resolution against the merged function index.
# ---------------------------------------------------------------------------


def finalize_resolution(model: Model) -> None:
    """Resolves leftover raw call chains by unique method name."""
    index = model.function_index()
    for fn in model.functions.values():
        for site in fn.calls:
            if site.callee in model.functions or "::" in site.callee and \
                    site.callee.startswith(("core::", "obs::", "fault::")):
                continue
            short = re.split(r"::|\.|->", site.callee)[-1]
            matches = index.get(short, [])
            if len(matches) == 1:
                site.callee = matches[0].qualified


def may_acquire(model: Model) -> dict[str, set[str]]:
    """Fixpoint: the set of mutexes each function may take (transitively),
    excluding work deferred through lambdas (executed later, lock-free from
    the caller's perspective)."""
    acq: dict[str, set[str]] = {
        q: {a.mutex for a in fn.acquires}
        for q, fn in model.functions.items()}
    changed = True
    while changed:
        changed = False
        for q, fn in model.functions.items():
            for site in fn.calls:
                if site.in_lambda:
                    continue
                extra = acq.get(site.callee)
                if extra and not extra <= acq[q]:
                    acq[q] |= extra
                    changed = True
    return acq


def lock_edges(model: Model) -> list[LockEdge]:
    acq = may_acquire(model)
    edges: list[LockEdge] = []
    seen: set[tuple[str, str, str]] = set()

    def add(src: str, dst: str, file: str, line: int, via: str) -> None:
        if src == dst:
            return
        key = (src, dst, via)
        if key in seen:
            return
        seen.add(key)
        edges.append(LockEdge(src, dst, file, line, via))

    for fn in model.functions.values():
        for a in fn.acquires:
            for held in a.held:
                add(held, a.mutex, a.file, a.line,
                    f"{fn.qualified} (direct acquire)")
        for site in fn.calls:
            if site.in_lambda or not site.held:
                continue
            for target in acq.get(site.callee, ()):  # transitive acquires
                for held in site.held:
                    add(held, target, site.file, site.line,
                        f"{fn.qualified} -> {site.callee}")
    return edges


def check_lock_order(model: Model, config: Config) -> list[Finding]:
    findings: list[Finding] = []
    edges = lock_edges(model)
    adj: dict[str, list[LockEdge]] = {}
    for e in edges:
        adj.setdefault(e.src, []).append(e)

    # Cycle detection (DFS with colors), independent of the declared order.
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}

    def dfs(node: str, path: list[LockEdge]) -> list[LockEdge] | None:
        color[node] = GREY
        for e in adj.get(node, []):
            if color.get(e.dst, WHITE) == GREY:
                return path + [e]
            if color.get(e.dst, WHITE) == WHITE:
                cyc = dfs(e.dst, path + [e])
                if cyc is not None:
                    return cyc
        color[node] = BLACK
        return None

    for node in sorted(adj):
        if color.get(node, WHITE) == WHITE:
            cyc = dfs(node, [])
            if cyc is not None:
                desc = " -> ".join([cyc[0].src] + [e.dst for e in cyc])
                findings.append(Finding(
                    "lock-order", cyc[-1].witness_file, cyc[-1].witness_line,
                    f"lock-order cycle: {desc} "
                    f"(via {cyc[-1].via})"))

    order = {name: i for i, name in enumerate(config.lock_order)}
    for e in edges:
        if e.src not in order:
            findings.append(Finding(
                "lock-order", e.witness_file, e.witness_line,
                f"mutex '{e.src}' participates in the lock graph but is "
                f"not in the canonical lock order (lock_order.json)"))
            continue
        if e.dst not in order:
            findings.append(Finding(
                "lock-order", e.witness_file, e.witness_line,
                f"mutex '{e.dst}' participates in the lock graph but is "
                f"not in the canonical lock order (lock_order.json)"))
            continue
        if order[e.src] >= order[e.dst]:
            findings.append(Finding(
                "lock-order", e.witness_file, e.witness_line,
                f"edge {e.src} -> {e.dst} (via {e.via}) goes backwards in "
                f"the canonical lock order"))
    return findings


# ---------------------------------------------------------------------------
# Blocking-under-mutex.
# ---------------------------------------------------------------------------

_BLOCKING_IO = {"fopen", "fclose", "fprintf", "fputs", "fwrite", "fread",
                "fflush", "fscanf", "fgets", "remove", "rename",
                "ofstream", "ifstream", "fstream", "getline"}
_BLOCKING_SLEEP = {"sleep_for", "sleep_until", "usleep", "nanosleep",
                   "sleep"}
_BLOCKING_MISC = {"join", "ParallelFor"}
# Whole-buffer trace dumps: quiesce/iterate every thread ring.
_BLOCKING_TRACE = {"Snapshot", "ExportChromeTrace", "WriteChromeTraceFile",
                   "DumpTrace"}


def _blocking_kind(site) -> str | None:
    short = re.split(r"::|\.|->", site.callee)[-1]
    if site.callee == "core::CondVar::Wait":
        return "condvar-wait"
    if short in _BLOCKING_IO:
        return "file I/O"
    if short in _BLOCKING_SLEEP:
        return "sleep"
    if short in _BLOCKING_MISC:
        return short
    if short in _BLOCKING_TRACE:
        return "trace dump"
    return None


def check_blocking(model: Model, config: Config) -> list[Finding]:
    findings: list[Finding] = []
    matched_suppressions: set[int] = set()
    for fn in model.functions.values():
        for site in fn.calls:
            if not site.held:
                continue
            kind = _blocking_kind(site)
            if kind is None:
                continue
            if kind == "condvar-wait":
                # Waiting on the mutex you hold is the sanctioned pattern
                # (the wait atomically releases it). Holding any *other*
                # mutex across the wait is the deadlock-shaped finding.
                others = [h for h in site.held if h != site.first_arg]
                if not others:
                    continue
                msg = (f"CondVar wait on '{site.first_arg}' while also "
                       f"holding {', '.join(others)} in {fn.qualified} — "
                       f"the held mutex is not released across the wait")
            else:
                msg = (f"{kind} ('{site.raw}') under held mutex "
                       f"{', '.join(site.held)} in {fn.qualified}")
            sup = _match_suppression(config, "blocking-under-mutex",
                                     fn.qualified, site.raw)
            if sup is not None:
                matched_suppressions.add(id(sup))
                continue
            findings.append(Finding("blocking-under-mutex", site.file,
                                    site.line, msg))
    findings.extend(_check_suppressions(config, "blocking-under-mutex",
                                        matched_suppressions))
    return findings


def _match_suppression(config: Config, rule: str, function: str,
                       callee: str) -> dict | None:
    for sup in config.suppressions:
        if sup.get("rule") != rule:
            continue
        if sup.get("function") == function and sup.get("callee") == callee:
            return sup
    return None


def _check_suppressions(config: Config, rule: str,
                        matched: set[int]) -> list[Finding]:
    """A suppression must (a) have matched a real site this run and (b)
    cite a design_ref that literally occurs in DESIGN.md. Anything else is
    an *unexplained* suppression and fails the build."""
    findings = []
    for sup in config.suppressions:
        if sup.get("rule") != rule:
            continue
        where = f"{sup.get('function')} / {sup.get('callee')}"
        if id(sup) not in matched:
            findings.append(Finding(
                "suppression", "tools/analyze/suppressions.json", 1,
                f"stale suppression for {rule} at {where}: no such site "
                f"fires anymore — delete it"))
            continue
        ref = sup.get("design_ref", "")
        if not ref or ref not in config.design_text:
            findings.append(Finding(
                "suppression", "tools/analyze/suppressions.json", 1,
                f"suppression for {rule} at {where} must cite a liveness "
                f"argument present in DESIGN.md (design_ref: {ref!r} "
                f"not found)"))
    return findings


# ---------------------------------------------------------------------------
# TMERGE_GUARDED_BY coverage.
# ---------------------------------------------------------------------------


def check_guarded_by(model: Model, config: Config) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, str, str]] = set()
    for fn in model.functions.values():
        for w in fn.writes:
            if w.in_ctor:
                continue
            cls = model.classes.get(w.cls)
            if cls is None:
                continue
            field = cls.fields.get(w.field)
            if field is None or field.is_mutex or field.is_condvar or \
                    field.is_atomic or field.is_const:
                continue
            class_mutexes = {f"{w.cls}::{m.name}" for m in cls.mutexes}
            held_class_mutexes = class_mutexes & set(w.held)
            if not held_class_mutexes:
                continue
            if field.guarded_by is None:
                key = (w.cls, w.field, "unannotated")
                if key in reported:
                    continue
                reported.add(key)
                findings.append(Finding(
                    "guarded-by", cls.file, field.line,
                    f"{w.cls}::{w.field} is mutated under "
                    f"{', '.join(sorted(held_class_mutexes))} "
                    f"({w.file}:{w.line}) but carries no TMERGE_GUARDED_BY "
                    f"annotation"))
            elif field.guarded_by not in w.held:
                key = (w.cls, w.field, "wrong-mutex")
                if key in reported:
                    continue
                reported.add(key)
                findings.append(Finding(
                    "guarded-by", cls.file, field.line,
                    f"{w.cls}::{w.field} is annotated "
                    f"TMERGE_GUARDED_BY({field.guarded_by}) but mutated at "
                    f"{w.file}:{w.line} holding "
                    f"{', '.join(sorted(held_class_mutexes))} instead"))
    return findings


# ---------------------------------------------------------------------------
# Include hygiene.
# ---------------------------------------------------------------------------

_MUTEX_HEADER = "tmerge/core/mutex.h"
_ANNOTATIONS_HEADER = "tmerge/core/thread_annotations.h"


def check_includes(model: Model, config: Config) -> list[Finding]:
    findings = []
    for path, facts in sorted(model.files.items()):
        if path in cpp_model.PRIMITIVE_FILES:
            continue
        if facts.mutex_use_lines and _MUTEX_HEADER not in facts.includes:
            findings.append(Finding(
                "include-hygiene", path, facts.mutex_use_lines[0],
                f"uses Mutex/MutexLock/CondVar but does not directly "
                f"include \"{_MUTEX_HEADER}\" (transitive includes are not "
                f"a contract)"))
        if facts.annotation_use_lines and \
                _ANNOTATIONS_HEADER not in facts.includes and \
                _MUTEX_HEADER not in facts.includes:
            # mutex.h re-exports the annotation macros by design (it cannot
            # be used without them), so either direct include satisfies the
            # rule; leaning on any other transitive path does not.
            findings.append(Finding(
                "include-hygiene", path, facts.annotation_use_lines[0],
                f"uses TMERGE_* thread-safety annotation macros but does "
                f"not directly include \"{_ANNOTATIONS_HEADER}\""))
    return findings


# ---------------------------------------------------------------------------
# Cross-artifact name registry.
# ---------------------------------------------------------------------------

_KIND_TO_BUCKET = {
    "counter": "metrics",
    "gauge": "metrics",
    "histogram": "metrics",
    "labeled_base": "metrics",
    "span": "metrics",      # spans also register in traces (checked below)
    "trace": "traces",
    "failpoint": "failpoints",
}

_DOC_TOKEN_RE = re.compile(r"\b[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+\b")
# Dotted tokens that are file names, not instrument names.
_FILE_EXT_RE = re.compile(
    r"\.(?:h|hh|hpp|cc|cpp|c|py|sh|json|jsonl|md|yml|yaml|txt|csv|dot|log)$")


def check_registry(model: Model, config: Config,
                   root: pathlib.Path,
                   extra_texts: dict[str, str]) -> list[Finding]:
    findings: list[Finding] = []
    reg = config.registry
    buckets = {b: set(reg.get(b, [])) for b in
               ("metrics", "traces", "failpoints", "fixtures")}
    all_listed = set().union(*buckets.values())

    # Direction 1: every name used in src/ is registry-listed in its bucket.
    used_src: set[str] = set()
    reported: set[tuple[str, str]] = set()
    for use in model.name_uses:
        if not use.name or "%" in use.name or "{" in use.name:
            continue  # dynamic / formatted names are out of scope
        in_src = use.file.startswith("src/")
        bucket = _KIND_TO_BUCKET[use.kind]
        if in_src:
            used_src.add(use.name)
        want = buckets[bucket]
        if use.kind == "span":
            want = buckets["metrics"] | buckets["traces"]
        if not in_src:
            # bench/tests: only police names in registry families.
            if _family(use.name) not in _families(all_listed):
                continue
            want = all_listed
        if use.name not in want and use.name not in buckets["fixtures"]:
            key = (use.name, use.file)
            if key in reported:
                continue
            reported.add(key)
            findings.append(Finding(
                "name-registry", use.file, use.line,
                f"{use.kind} name '{use.name}' is not listed in "
                f"tools/analyze/registry.json ({bucket})"))

    # Direction 2: every registry-listed name (except fixtures) is actually
    # used somewhere in src/ — removal drift fails here.
    for bucket_name in ("metrics", "traces", "failpoints"):
        for name in sorted(buckets[bucket_name]):
            if name not in used_src:
                findings.append(Finding(
                    "name-registry", "tools/analyze/registry.json", 1,
                    f"registry lists {bucket_name} name '{name}' but no "
                    f"src/ site uses it — stale entry"))

    # Direction 3: dotted tokens in CI config and docs that live in a
    # registry family must be listed (catches goldens/docs drift).
    families = _families(all_listed)
    for label, text in extra_texts.items():
        for lineno, line in enumerate(text.splitlines(), 1):
            for m in _DOC_TOKEN_RE.finditer(line):
                token = m.group(0)
                if _family(token) not in families:
                    continue
                if _FILE_EXT_RE.search(token):
                    continue
                if token in all_listed:
                    continue
                if any(token.startswith(n + ".") or n.startswith(token + ".")
                       for n in all_listed):
                    # A prefix of a listed name (docs often cite families).
                    continue
                key = (token, label)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(Finding(
                    "name-registry", label, lineno,
                    f"name '{token}' looks like a registry-family metric/"
                    f"trace/failpoint but is not listed in registry.json"))
    return findings


def _family(name: str) -> str:
    return name.split(".", 1)[0]


def _families(names: set[str]) -> set[str]:
    return {_family(n) for n in names}


# ---------------------------------------------------------------------------
# Registry generation & lock-graph export.
# ---------------------------------------------------------------------------


def generate_registry(model: Model, fixtures: list[str]) -> dict:
    buckets: dict[str, set[str]] = {
        "metrics": set(), "traces": set(), "failpoints": set()}
    for use in model.name_uses:
        if not use.file.startswith("src/"):
            continue
        if not use.name or "%" in use.name or "{" in use.name:
            continue
        bucket = _KIND_TO_BUCKET[use.kind]
        buckets[bucket].add(use.name)
        if use.kind == "span":
            buckets["traces"].add(use.name)
    return {
        "metrics": sorted(buckets["metrics"]),
        "traces": sorted(buckets["traces"]),
        "failpoints": sorted(buckets["failpoints"]),
        "fixtures": sorted(fixtures),
    }


def lock_graph_json(model: Model, config: Config) -> dict:
    edges = lock_edges(model)
    nodes = sorted({e.src for e in edges} | {e.dst for e in edges} |
                   set(config.lock_order))
    order = {name: i for i, name in enumerate(config.lock_order)}
    return {
        "canonical_order": config.lock_order,
        "nodes": [{"mutex": n, "rank": order.get(n)} for n in nodes],
        "edges": [{
            "from": e.src, "to": e.dst,
            "witness": f"{e.witness_file}:{e.witness_line}",
            "via": e.via,
        } for e in sorted(edges, key=lambda e: (e.src, e.dst, e.via))],
    }


def lock_graph_dot(graph: dict) -> str:
    lines = ["digraph tmerge_locks {", "  rankdir=LR;",
             "  node [shape=box, fontname=\"monospace\"];"]
    for node in graph["nodes"]:
        rank = node["rank"]
        label = node["mutex"] if rank is None else \
            f"{node['mutex']}\\n(rank {rank})"
        lines.append(f"  \"{node['mutex']}\" [label=\"{label}\"];")
    seen = set()
    for e in graph["edges"]:
        key = (e["from"], e["to"])
        if key in seen:
            continue
        seen.add(key)
        lines.append(
            f"  \"{e['from']}\" -> \"{e['to']}\" "
            f"[label=\"{e['witness']}\"];")
    lines.append("}")
    return "\n".join(lines) + "\n"


ALL_RULES = ("lock-order", "blocking-under-mutex", "guarded-by",
             "include-hygiene", "name-registry", "suppression")


def run_all(model: Model, config: Config, root: pathlib.Path,
            extra_texts: dict[str, str]) -> list[Finding]:
    finalize_resolution(model)
    findings: list[Finding] = []
    findings += check_lock_order(model, config)
    findings += check_blocking(model, config)
    findings += check_guarded_by(model, config)
    findings += check_includes(model, config)
    findings += check_registry(model, config, root, extra_texts)
    findings.sort(key=lambda f: (f.rule, f.file, f.line))
    return findings
