#ifndef TMERGE_DETECT_DETECTION_SIMULATOR_H_
#define TMERGE_DETECT_DETECTION_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "tmerge/core/geometry.h"
#include "tmerge/sim/world.h"

namespace tmerge::detect {

/// One detected object instance in one frame — the analogue of a detector
/// output (and of the paper's BBox content b^m). Besides the observable
/// geometry/confidence it carries *hidden* ground-truth fields (gt_id,
/// visibility, noise_seed) that only the evaluation oracle and the synthetic
/// ReID model may read; tracking and merging algorithms must not use them.
struct Detection {
  /// Unique id across a video; keys the ReID feature cache.
  std::uint64_t detection_id = 0;
  std::int32_t frame = 0;
  core::BoundingBox box;
  double confidence = 1.0;

  // --- Hidden ground truth (oracle + synthetic ReID model only). ---
  /// GT object this detection came from; sim::kNoObject for false positives.
  sim::GtObjectId gt_id = sim::kNoObject;
  /// Visibility of the GT object when detected (degrades ReID features).
  double visibility = 1.0;
  /// Whether glare covered the object (degrades ReID features further).
  bool glared = false;
  /// Deterministic seed for this observation's ReID feature noise.
  std::uint64_t noise_seed = 0;
};

/// All detections of one frame.
struct DetectionFrame {
  std::int32_t frame = 0;
  std::vector<Detection> detections;
};

/// Detector output for a whole video.
struct DetectionSequence {
  std::int32_t num_frames = 0;
  double frame_width = 0.0;
  double frame_height = 0.0;
  double fps = 30.0;
  std::vector<DetectionFrame> frames;

  std::int64_t TotalDetections() const;
};

/// Noise/miss model of the simulated detector.
struct DetectorConfig {
  /// BBox center jitter as a fraction of box size.
  double position_noise = 0.03;
  /// BBox size jitter as a (log-)fraction of box size.
  double size_noise = 0.03;
  /// Detection probability for a fully visible object.
  double base_detect_prob = 0.98;
  /// Below this visibility the object counts as occluded: detection
  /// probability drops to `occluded_detect_prob`. This is the mechanism
  /// that fragments tracks (the paper's Fig. 1 scenario).
  double visibility_threshold = 0.35;
  double occluded_detect_prob = 0.12;
  /// Probability that glare suppresses an otherwise-visible detection.
  double glare_miss_prob = 0.92;
  /// Expected false positives per frame.
  double false_positive_rate = 0.08;
  /// Confidence noise stddev.
  double confidence_noise = 0.05;
};

/// Converts ground truth into noisy detector output: jittered boxes, misses
/// under occlusion/glare, and false positives. Deterministic given
/// (video, config, seed).
DetectionSequence SimulateDetections(const sim::SyntheticVideo& video,
                                     const DetectorConfig& config,
                                     std::uint64_t seed);

}  // namespace tmerge::detect

#endif  // TMERGE_DETECT_DETECTION_SIMULATOR_H_
