#include "tmerge/detect/detection_simulator.h"

#include <algorithm>
#include <cmath>

#include "tmerge/core/rng.h"
#include "tmerge/core/status.h"

namespace tmerge::detect {

std::int64_t DetectionSequence::TotalDetections() const {
  std::int64_t total = 0;
  for (const auto& frame : frames) {
    total += static_cast<std::int64_t>(frame.detections.size());
  }
  return total;
}

DetectionSequence SimulateDetections(const sim::SyntheticVideo& video,
                                     const DetectorConfig& config,
                                     std::uint64_t seed) {
  core::Rng rng(seed ^ 0xDE7EC7ULL);
  DetectionSequence sequence;
  sequence.num_frames = video.num_frames;
  sequence.frame_width = video.frame_width;
  sequence.frame_height = video.frame_height;
  sequence.fps = video.fps;
  sequence.frames.resize(video.num_frames);
  for (std::int32_t f = 0; f < video.num_frames; ++f) {
    sequence.frames[f].frame = f;
  }

  std::uint64_t next_detection_id = 1;

  for (const auto& track : video.tracks) {
    for (const auto& gt_box : track.boxes) {
      double detect_prob;
      if (gt_box.visibility < config.visibility_threshold) {
        // Heavily occluded: mostly missed, slightly more likely near the
        // threshold than when fully hidden.
        detect_prob = config.occluded_detect_prob *
                      (gt_box.visibility / config.visibility_threshold);
      } else {
        detect_prob = config.base_detect_prob;
      }
      if (gt_box.glared) {
        detect_prob *= (1.0 - config.glare_miss_prob);
      }
      if (!rng.Bernoulli(detect_prob)) continue;

      Detection detection;
      detection.detection_id = next_detection_id++;
      detection.frame = gt_box.frame;
      detection.gt_id = track.id;
      detection.visibility = gt_box.visibility;
      detection.glared = gt_box.glared;
      detection.noise_seed = rng.engine()();

      const core::BoundingBox& box = gt_box.box;
      double jitter_x = rng.Normal(0.0, config.position_noise * box.width);
      double jitter_y = rng.Normal(0.0, config.position_noise * box.height);
      double scale_w = std::exp(rng.Normal(0.0, config.size_noise));
      double scale_h = std::exp(rng.Normal(0.0, config.size_noise));
      core::BoundingBox noisy{box.x + jitter_x, box.y + jitter_y,
                              box.width * scale_w, box.height * scale_h};
      detection.box =
          core::ClampToFrame(noisy, video.frame_width, video.frame_height);
      if (!detection.box.IsValid()) continue;

      detection.confidence = std::clamp(
          gt_box.visibility * config.base_detect_prob +
              rng.Normal(0.0, config.confidence_noise),
          0.05, 1.0);
      sequence.frames[gt_box.frame].detections.push_back(std::move(detection));
    }
  }

  // False positives: short-lived spurious boxes at random locations.
  for (std::int32_t f = 0; f < video.num_frames; ++f) {
    int false_positives = rng.Poisson(config.false_positive_rate);
    for (int i = 0; i < false_positives; ++i) {
      Detection detection;
      detection.detection_id = next_detection_id++;
      detection.frame = f;
      detection.gt_id = sim::kNoObject;
      detection.visibility = 1.0;
      detection.noise_seed = rng.engine()();
      double w = rng.Uniform(25.0, 110.0);
      double h = w * rng.Uniform(1.5, 3.0);
      detection.box = core::ClampToFrame(
          {rng.Uniform(0.0, video.frame_width - w),
           rng.Uniform(0.0, video.frame_height - h), w, h},
          video.frame_width, video.frame_height);
      if (!detection.box.IsValid()) continue;
      detection.confidence = std::clamp(rng.Uniform(0.1, 0.6), 0.05, 1.0);
      sequence.frames[f].detections.push_back(std::move(detection));
    }
  }
  return sequence;
}

}  // namespace tmerge::detect
