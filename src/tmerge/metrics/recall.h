#ifndef TMERGE_METRICS_RECALL_H_
#define TMERGE_METRICS_RECALL_H_

#include <utility>
#include <vector>

#include "tmerge/metrics/gt_matcher.h"

namespace tmerge::metrics {

/// REC (paper Eq. 3): fraction of true polyonymous pairs contained in the
/// candidate set. Returns 1.0 when there are no true pairs (nothing to
/// miss), matching the paper's per-window averaging convention.
double Recall(const std::vector<TrackPairKey>& candidates,
              const std::vector<TrackPairKey>& truth);

/// One point of a REC-vs-FPS trade-off curve.
struct RecFpsPoint {
  double rec = 0.0;
  double fps = 0.0;
};

/// Interpolates the FPS a method achieves at `target_rec` from its curve
/// (the lookup used for Table II). Points may be unsorted; the function
/// sorts by REC. Returns the largest FPS among curve segments reaching the
/// target, linearly interpolating between bracketing points; returns 0 when
/// the curve never reaches the target.
double FpsAtRecall(std::vector<RecFpsPoint> curve, double target_rec);

/// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Pearson correlation coefficient of two equal-length samples; 0 when
/// either sample is degenerate (fewer than two points or zero variance).
/// Used to reproduce the paper's BetaInit design analysis (SIV-C and
/// footnote 4): track-pair scores correlate with spatial distance
/// (r >= 0.3) but not with temporal distance (r < 0.1).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace tmerge::metrics

#endif  // TMERGE_METRICS_RECALL_H_
