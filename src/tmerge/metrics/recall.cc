#include "tmerge/metrics/recall.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace tmerge::metrics {

double Recall(const std::vector<TrackPairKey>& candidates,
              const std::vector<TrackPairKey>& truth) {
  if (truth.empty()) return 1.0;
  std::set<TrackPairKey> candidate_set(candidates.begin(), candidates.end());
  std::size_t hit = 0;
  for (const auto& pair : truth) {
    if (candidate_set.contains(pair)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double FpsAtRecall(std::vector<RecFpsPoint> curve, double target_rec) {
  if (curve.empty()) return 0.0;
  std::sort(curve.begin(), curve.end(),
            [](const RecFpsPoint& a, const RecFpsPoint& b) {
              return a.rec < b.rec;
            });
  double best = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].rec >= target_rec) {
      double fps = curve[i].fps;
      if (i > 0 && curve[i - 1].rec < target_rec &&
          curve[i].rec > curve[i - 1].rec) {
        double w = (target_rec - curve[i - 1].rec) /
                   (curve[i].rec - curve[i - 1].rec);
        fps = curve[i - 1].fps + w * (curve[i].fps - curve[i - 1].fps);
      }
      best = std::max(best, fps);
    }
  }
  return best;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mean_x = Mean(x);
  double mean_y = Mean(y);
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mean_x;
    double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace tmerge::metrics
