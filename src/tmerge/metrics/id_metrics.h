#ifndef TMERGE_METRICS_ID_METRICS_H_
#define TMERGE_METRICS_ID_METRICS_H_

#include <cstdint>

#include "tmerge/sim/world.h"
#include "tmerge/track/track.h"

namespace tmerge::metrics {

/// Identity-based tracking metrics (Ristani et al., ECCV 2016): the metrics
/// the paper's Fig. 12 reports. Computed from a *global* minimum-cost
/// bipartite matching between GT trajectories and predicted tracks, so
/// merging fragmented tracks directly raises IDTP.
struct IdMetricsResult {
  std::int64_t idtp = 0;  ///< Identity true positives.
  std::int64_t idfp = 0;  ///< Identity false positives.
  std::int64_t idfn = 0;  ///< Identity false negatives.

  double Idp() const {
    return idtp + idfp > 0 ? static_cast<double>(idtp) / (idtp + idfp) : 0.0;
  }
  double Idr() const {
    return idtp + idfn > 0 ? static_cast<double>(idtp) / (idtp + idfn) : 0.0;
  }
  double Idf1() const {
    std::int64_t denom = 2 * idtp + idfp + idfn;
    return denom > 0 ? 2.0 * static_cast<double>(idtp) / denom : 0.0;
  }
};

/// Computes ID metrics; a predicted box covers a GT box when their IoU
/// reaches `iou_threshold` in the same frame.
IdMetricsResult ComputeIdMetrics(const sim::SyntheticVideo& video,
                                 const track::TrackingResult& result,
                                 double iou_threshold = 0.5);

}  // namespace tmerge::metrics

#endif  // TMERGE_METRICS_ID_METRICS_H_
