#ifndef TMERGE_METRICS_CLEAR_MOT_H_
#define TMERGE_METRICS_CLEAR_MOT_H_

#include <cstdint>

#include "tmerge/sim/world.h"
#include "tmerge/track/track.h"

namespace tmerge::metrics {

/// CLEAR MOT metrics (Bernardin & Stiefelhagen, 2008) over one video.
struct ClearMotResult {
  std::int64_t gt_boxes = 0;          ///< Total ground-truth boxes.
  std::int64_t matches = 0;           ///< True positive box matches.
  std::int64_t misses = 0;            ///< False negatives.
  std::int64_t false_positives = 0;   ///< Predicted boxes matching nothing.
  std::int64_t id_switches = 0;       ///< GT object changed matched TID.
  std::int64_t fragmentations = 0;    ///< GT tracked-status interruptions.
  double motp_iou = 0.0;              ///< Mean IoU over matches.

  /// MOTA = 1 - (misses + false positives + id switches) / gt_boxes.
  double Mota() const;
};

/// Computes CLEAR MOT metrics with the standard sequential matching rule:
/// correspondences persist across frames while IoU stays above
/// `iou_threshold`; new correspondences are formed by Hungarian matching.
ClearMotResult ComputeClearMot(const sim::SyntheticVideo& video,
                               const track::TrackingResult& result,
                               double iou_threshold = 0.5);

}  // namespace tmerge::metrics

#endif  // TMERGE_METRICS_CLEAR_MOT_H_
