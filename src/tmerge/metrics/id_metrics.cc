#include "tmerge/metrics/id_metrics.h"

#include <unordered_map>
#include <vector>

#include "tmerge/core/geometry.h"
#include "tmerge/track/hungarian.h"

namespace tmerge::metrics {

IdMetricsResult ComputeIdMetrics(const sim::SyntheticVideo& video,
                                 const track::TrackingResult& result,
                                 double iou_threshold) {
  const std::size_t num_gt = video.tracks.size();
  const std::size_t num_pred = result.tracks.size();

  // overlap[g][t] = number of frames where GT g and prediction t coexist
  // with IoU >= threshold. GT boxes are on consecutive frames, so index by
  // offset from first_frame.
  std::vector<std::vector<std::int64_t>> overlap(
      num_gt, std::vector<std::int64_t>(num_pred, 0));
  for (std::size_t g = 0; g < num_gt; ++g) {
    const auto& gt_track = video.tracks[g];
    std::int32_t first = gt_track.first_frame();
    std::int32_t last = gt_track.last_frame();
    for (std::size_t t = 0; t < num_pred; ++t) {
      for (const auto& tracked : result.tracks[t].boxes) {
        if (tracked.frame < first || tracked.frame > last) continue;
        const auto& gt_box = gt_track.boxes[tracked.frame - first];
        if (core::Iou(gt_box.box, tracked.box) >= iou_threshold) {
          ++overlap[g][t];
        }
      }
    }
  }

  std::vector<std::int64_t> gt_len(num_gt), pred_len(num_pred);
  std::int64_t total_gt = 0, total_pred = 0;
  for (std::size_t g = 0; g < num_gt; ++g) {
    gt_len[g] = video.tracks[g].length();
    total_gt += gt_len[g];
  }
  for (std::size_t t = 0; t < num_pred; ++t) {
    pred_len[t] = result.tracks[t].size();
    total_pred += pred_len[t];
  }

  // Square cost matrix with dummy rows/columns so every GT trajectory and
  // every predicted track can remain unmatched at the cost of all its
  // detections (the construction of Ristani et al., Sec. 8.1).
  const std::size_t n = num_gt + num_pred;
  constexpr double kInfCost = 1e12;
  IdMetricsResult out;
  if (n == 0) return out;

  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (std::size_t g = 0; g < num_gt; ++g) {
    for (std::size_t t = 0; t < num_pred; ++t) {
      cost[g][t] =
          static_cast<double>(gt_len[g] + pred_len[t] - 2 * overlap[g][t]);
    }
    for (std::size_t d = 0; d < num_gt; ++d) {
      cost[g][num_pred + d] = (d == g) ? static_cast<double>(gt_len[g])
                                       : kInfCost;
    }
  }
  for (std::size_t d = 0; d < num_pred; ++d) {
    for (std::size_t t = 0; t < num_pred; ++t) {
      cost[num_gt + d][t] = (d == t) ? static_cast<double>(pred_len[t])
                                     : kInfCost;
    }
    // Dummy-to-dummy assignments are free (bottom-right block stays 0).
  }

  std::vector<int> assignment = track::SolveAssignment(cost);
  std::int64_t idtp = 0;
  for (std::size_t g = 0; g < num_gt; ++g) {
    int col = assignment[g];
    if (col >= 0 && static_cast<std::size_t>(col) < num_pred) {
      idtp += overlap[g][col];
    }
  }
  out.idtp = idtp;
  out.idfp = total_pred - idtp;
  out.idfn = total_gt - idtp;
  return out;
}

}  // namespace tmerge::metrics
