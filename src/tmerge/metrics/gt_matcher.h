#ifndef TMERGE_METRICS_GT_MATCHER_H_
#define TMERGE_METRICS_GT_MATCHER_H_

#include <utility>
#include <vector>

#include "tmerge/sim/world.h"
#include "tmerge/track/track.h"

namespace tmerge::metrics {

/// An unordered track-pair key: (smaller TID, larger TID).
using TrackPairKey = std::pair<track::TrackId, track::TrackId>;

/// Canonicalizes a pair of TIDs.
TrackPairKey MakePairKey(track::TrackId a, track::TrackId b);

/// Result of matching tracker output to ground truth (the role of [30] in
/// the paper: locating polyonymous tracks by comparing GT tracks to tracker
/// tracks).
struct TrackGtAssignment {
  /// Per tracker-track (indexed as in TrackingResult::tracks): the GT
  /// object it corresponds to, or sim::kNoObject when unmatched (a false
  /// track, or one below the majority threshold).
  std::vector<sim::GtObjectId> track_to_gt;
  /// Per tracker-track: fraction of its boxes geometrically matched to its
  /// assigned GT object.
  std::vector<double> match_fraction;
};

/// Parameters of GT matching.
struct GtMatchConfig {
  /// A tracked box corresponds to a GT box only if their IoU reaches this.
  double iou_threshold = 0.5;
  /// A track is assigned to a GT object only if at least this fraction of
  /// its boxes match that object.
  double majority_fraction = 0.5;
};

/// Matches each tracker track to a GT object using per-frame Hungarian
/// matching on IoU (geometric — does not read hidden gt_id fields),
/// followed by per-track majority voting.
TrackGtAssignment MatchTracksToGt(const sim::SyntheticVideo& video,
                                  const track::TrackingResult& result,
                                  const GtMatchConfig& config = GtMatchConfig());

/// Derives the ground-truth polyonymous pair set P* (paper Eq. 2): every
/// unordered pair of distinct tracker tracks assigned to the same GT
/// object. Sorted ascending.
std::vector<TrackPairKey> PolyonymousPairs(
    const track::TrackingResult& result, const TrackGtAssignment& assignment);

}  // namespace tmerge::metrics

#endif  // TMERGE_METRICS_GT_MATCHER_H_
