#include "tmerge/metrics/gt_matcher.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "tmerge/core/status.h"
#include "tmerge/track/hungarian.h"

namespace tmerge::metrics {

TrackPairKey MakePairKey(track::TrackId a, track::TrackId b) {
  return a < b ? TrackPairKey{a, b} : TrackPairKey{b, a};
}

TrackGtAssignment MatchTracksToGt(const sim::SyntheticVideo& video,
                                  const track::TrackingResult& result,
                                  const GtMatchConfig& config) {
  // Index GT boxes and tracked boxes by frame.
  struct GtRef {
    std::size_t gt_index;
    const core::BoundingBox* box;
  };
  struct PredRef {
    std::size_t track_index;
    const core::BoundingBox* box;
  };
  std::vector<std::vector<GtRef>> gt_by_frame(video.num_frames);
  for (std::size_t g = 0; g < video.tracks.size(); ++g) {
    for (const auto& gt_box : video.tracks[g].boxes) {
      gt_by_frame[gt_box.frame].push_back({g, &gt_box.box});
    }
  }
  std::vector<std::vector<PredRef>> pred_by_frame(video.num_frames);
  for (std::size_t t = 0; t < result.tracks.size(); ++t) {
    for (const auto& tracked : result.tracks[t].boxes) {
      if (tracked.frame >= 0 && tracked.frame < video.num_frames) {
        pred_by_frame[tracked.frame].push_back({t, &tracked.box});
      }
    }
  }

  // Per-frame Hungarian matching; accumulate per-(track, gt) match counts.
  constexpr double kInfCost = 1e9;
  std::vector<std::unordered_map<std::size_t, std::int32_t>> votes(
      result.tracks.size());
  for (std::int32_t frame = 0; frame < video.num_frames; ++frame) {
    const auto& gts = gt_by_frame[frame];
    const auto& preds = pred_by_frame[frame];
    if (gts.empty() || preds.empty()) continue;
    std::vector<std::vector<double>> cost(
        preds.size(), std::vector<double>(gts.size(), kInfCost));
    for (std::size_t p = 0; p < preds.size(); ++p) {
      for (std::size_t g = 0; g < gts.size(); ++g) {
        double iou = core::Iou(*preds[p].box, *gts[g].box);
        if (iou >= config.iou_threshold) cost[p][g] = 1.0 - iou;
      }
    }
    std::vector<int> assignment = track::SolveAssignment(cost);
    for (std::size_t p = 0; p < preds.size(); ++p) {
      int g = assignment[p];
      if (g >= 0 && cost[p][g] < kInfCost) {
        votes[preds[p].track_index][gts[g].gt_index] += 1;
      }
    }
  }

  TrackGtAssignment out;
  out.track_to_gt.assign(result.tracks.size(), sim::kNoObject);
  out.match_fraction.assign(result.tracks.size(), 0.0);
  for (std::size_t t = 0; t < result.tracks.size(); ++t) {
    std::size_t best_gt = 0;
    std::int32_t best_votes = 0;
    for (const auto& [gt_index, count] : votes[t]) {
      if (count > best_votes) {
        best_votes = count;
        best_gt = gt_index;
      }
    }
    std::int32_t track_size = result.tracks[t].size();
    if (track_size == 0) continue;
    double fraction = static_cast<double>(best_votes) / track_size;
    if (best_votes > 0 && fraction >= config.majority_fraction) {
      out.track_to_gt[t] = video.tracks[best_gt].id;
      out.match_fraction[t] = fraction;
    }
  }
  return out;
}

std::vector<TrackPairKey> PolyonymousPairs(
    const track::TrackingResult& result, const TrackGtAssignment& assignment) {
  TMERGE_CHECK(assignment.track_to_gt.size() == result.tracks.size());
  std::map<sim::GtObjectId, std::vector<track::TrackId>> by_gt;
  for (std::size_t t = 0; t < result.tracks.size(); ++t) {
    sim::GtObjectId gt = assignment.track_to_gt[t];
    if (gt != sim::kNoObject) by_gt[gt].push_back(result.tracks[t].id);
  }
  std::vector<TrackPairKey> pairs;
  for (auto& [gt, tids] : by_gt) {
    std::sort(tids.begin(), tids.end());
    for (std::size_t i = 0; i < tids.size(); ++i) {
      for (std::size_t j = i + 1; j < tids.size(); ++j) {
        pairs.push_back(MakePairKey(tids[i], tids[j]));
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace tmerge::metrics
