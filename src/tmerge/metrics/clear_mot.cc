#include "tmerge/metrics/clear_mot.h"

#include <unordered_map>
#include <vector>

#include "tmerge/core/geometry.h"
#include "tmerge/track/hungarian.h"

namespace tmerge::metrics {

double ClearMotResult::Mota() const {
  if (gt_boxes == 0) return 0.0;
  return 1.0 - static_cast<double>(misses + false_positives + id_switches) /
                   static_cast<double>(gt_boxes);
}

ClearMotResult ComputeClearMot(const sim::SyntheticVideo& video,
                               const track::TrackingResult& result,
                               double iou_threshold) {
  struct GtRef {
    sim::GtObjectId gt_id;
    const core::BoundingBox* box;
  };
  struct PredRef {
    track::TrackId tid;
    const core::BoundingBox* box;
  };
  std::vector<std::vector<GtRef>> gt_by_frame(video.num_frames);
  for (const auto& gt_track : video.tracks) {
    for (const auto& gt_box : gt_track.boxes) {
      gt_by_frame[gt_box.frame].push_back({gt_track.id, &gt_box.box});
    }
  }
  std::vector<std::vector<PredRef>> pred_by_frame(video.num_frames);
  for (const auto& t : result.tracks) {
    for (const auto& tracked : t.boxes) {
      if (tracked.frame >= 0 && tracked.frame < video.num_frames) {
        pred_by_frame[tracked.frame].push_back({t.id, &tracked.box});
      }
    }
  }

  ClearMotResult out;
  double iou_sum = 0.0;
  constexpr double kInfCost = 1e9;

  // Persisted correspondence gt -> tid from the previous frame, plus the
  // last TID a GT object was *ever* matched to (for ID switch counting) and
  // whether the object was matched in its previous visible frame (for
  // fragmentation counting).
  std::unordered_map<sim::GtObjectId, track::TrackId> current;
  std::unordered_map<sim::GtObjectId, track::TrackId> last_matched_tid;
  std::unordered_map<sim::GtObjectId, bool> was_tracked;

  for (std::int32_t frame = 0; frame < video.num_frames; ++frame) {
    const auto& gts = gt_by_frame[frame];
    const auto& preds = pred_by_frame[frame];
    out.gt_boxes += static_cast<std::int64_t>(gts.size());

    std::vector<char> gt_matched(gts.size(), 0);
    std::vector<char> pred_used(preds.size(), 0);

    // Step 1: keep persisting correspondences that still overlap.
    for (std::size_t g = 0; g < gts.size(); ++g) {
      auto it = current.find(gts[g].gt_id);
      if (it == current.end()) continue;
      for (std::size_t p = 0; p < preds.size(); ++p) {
        if (pred_used[p] || preds[p].tid != it->second) continue;
        double iou = core::Iou(*gts[g].box, *preds[p].box);
        if (iou >= iou_threshold) {
          gt_matched[g] = 1;
          pred_used[p] = 1;
          iou_sum += iou;
          ++out.matches;
        }
        break;
      }
    }

    // Step 2: Hungarian matching over the remainder.
    std::vector<std::size_t> free_gts, free_preds;
    for (std::size_t g = 0; g < gts.size(); ++g) {
      if (!gt_matched[g]) free_gts.push_back(g);
    }
    for (std::size_t p = 0; p < preds.size(); ++p) {
      if (!pred_used[p]) free_preds.push_back(p);
    }
    if (!free_gts.empty() && !free_preds.empty()) {
      std::vector<std::vector<double>> cost(
          free_gts.size(), std::vector<double>(free_preds.size(), kInfCost));
      for (std::size_t i = 0; i < free_gts.size(); ++i) {
        for (std::size_t j = 0; j < free_preds.size(); ++j) {
          double iou = core::Iou(*gts[free_gts[i]].box,
                                 *preds[free_preds[j]].box);
          if (iou >= iou_threshold) cost[i][j] = 1.0 - iou;
        }
      }
      std::vector<int> assignment = track::SolveAssignment(cost);
      for (std::size_t i = 0; i < free_gts.size(); ++i) {
        int j = assignment[i];
        if (j < 0 || cost[i][j] >= kInfCost) continue;
        std::size_t g = free_gts[i];
        std::size_t p = free_preds[j];
        gt_matched[g] = 1;
        pred_used[p] = 1;
        iou_sum += 1.0 - cost[i][j];
        ++out.matches;
        sim::GtObjectId gt_id = gts[g].gt_id;
        track::TrackId tid = preds[p].tid;
        auto last = last_matched_tid.find(gt_id);
        if (last != last_matched_tid.end() && last->second != tid) {
          ++out.id_switches;
        }
        current[gt_id] = tid;
      }
    }

    // Bookkeeping: misses, FPs, fragmentation, and correspondence decay.
    for (std::size_t g = 0; g < gts.size(); ++g) {
      sim::GtObjectId gt_id = gts[g].gt_id;
      bool tracked_now = gt_matched[g];
      auto it = was_tracked.find(gt_id);
      if (it != was_tracked.end() && it->second && !tracked_now) {
        ++out.fragmentations;
      }
      was_tracked[gt_id] = tracked_now;
      if (!tracked_now) {
        ++out.misses;
        current.erase(gt_id);
      } else {
        last_matched_tid[gt_id] = current[gt_id];
      }
    }
    for (std::size_t p = 0; p < preds.size(); ++p) {
      if (!pred_used[p]) ++out.false_positives;
    }
  }

  out.motp_iou = out.matches > 0 ? iou_sum / out.matches : 0.0;
  return out;
}

}  // namespace tmerge::metrics
