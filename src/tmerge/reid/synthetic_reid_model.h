#ifndef TMERGE_REID_SYNTHETIC_REID_MODEL_H_
#define TMERGE_REID_SYNTHETIC_REID_MODEL_H_

#include <cstdint>
#include <unordered_map>

#include "tmerge/reid/reid_model.h"
#include "tmerge/sim/world.h"

namespace tmerge::reid {

/// Noise model of the synthetic ReID embedder.
struct ReidModelConfig {
  /// Baseline per-dimension observation noise stddev.
  double observation_noise = 0.20;
  /// Extra noise proportional to (1 - visibility): occluded crops embed
  /// poorly, exactly why fully-occluded frames were dropped upstream.
  double occlusion_noise_scale = 0.7;
  /// Extra noise added when the crop was captured under glare.
  double glare_noise = 0.6;
  /// Fraction of crops that embed poorly regardless of occlusion (motion
  /// blur, odd pose, partial truncation). Deterministic per crop. This is
  /// what makes a *single* BBox-pair distance a weak estimate of the track
  /// pair score — the reason sampling methods need multiple draws per pair,
  /// as with real ReID models.
  double hard_crop_prob = 0.0;
  /// Extra per-dimension noise stddev for hard crops.
  double hard_crop_noise = 0.50;
  /// Multiplier on the distance normalization scale. Values above 1
  /// compress normalized distances toward 0, which matches real ReID
  /// deployments (the normalizer must cover the worst-case distance, so
  /// typical distances are small) and keeps the Bernoulli trials of
  /// Algorithm 2 in the low-variance regime.
  double normalization_headroom = 1.0;
};

/// Stand-in for the paper's OSNet ReID model. `Embed` maps a crop to the GT
/// object's latent appearance vector plus deterministic observation noise,
/// reproducing the only property the merging algorithms rely on: feature
/// distances between same-object crops are stochastically smaller than
/// between different objects, with overlap controlled by the noise level
/// and the appearance-space cluster structure.
///
/// Embedding is deterministic per crop (seeded by the crop's noise_seed and
/// the model seed), so repeated extraction of the same BBox yields the same
/// feature — making the paper's feature-reuse optimization meaningful.
///
/// This class models only *what* the network computes; *how long* it takes
/// is charged separately via InferenceMeter (cost_model.h).
class SyntheticReidModel : public ReidModel {
 public:
  /// Builds the model's appearance registry from the video's ground truth.
  SyntheticReidModel(const sim::SyntheticVideo& video,
                     const ReidModelConfig& config, std::uint64_t seed);

  /// Embeds one crop. Deterministic; does not charge inference cost.
  FeatureVector Embed(const CropRef& crop) const override;

  /// Scale used to normalize feature distances into [0, 1] (the paper's
  /// d-tilde): an upper quantile of the between-object distance
  /// distribution, derived from the appearance space geometry.
  double normalization_scale() const override { return normalization_scale_; }

  std::size_t feature_dim() const override { return feature_dim_; }

 private:
  ReidModelConfig config_;
  std::uint64_t seed_;
  std::size_t feature_dim_;
  double normalization_scale_;
  std::unordered_map<sim::GtObjectId, sim::AppearanceVector> appearances_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_SYNTHETIC_REID_MODEL_H_
