#include "tmerge/reid/feature_cache.h"

namespace tmerge::reid {

const FeatureVector& FeatureCache::GetOrEmbed(const CropRef& crop,
                                              const ReidModel& model,
                                              InferenceMeter& meter) {
  auto it = cache_.find(crop.detection_id);
  if (it != cache_.end()) {
    meter.RecordCacheHit();
    return it->second;
  }
  meter.ChargeSingle();
  auto [inserted, _] = cache_.emplace(crop.detection_id, model.Embed(crop));
  return inserted->second;
}

std::vector<const FeatureVector*> FeatureCache::GetOrEmbedBatch(
    const std::vector<CropRef>& crops, const ReidModel& model,
    InferenceMeter& meter) {
  std::int64_t misses = 0;
  for (const auto& crop : crops) {
    if (cache_.contains(crop.detection_id)) {
      meter.RecordCacheHit();
      continue;
    }
    cache_.emplace(crop.detection_id, model.Embed(crop));
    ++misses;
  }
  meter.ChargeBatch(misses);

  std::vector<const FeatureVector*> out;
  out.reserve(crops.size());
  for (const auto& crop : crops) {
    out.push_back(&cache_.at(crop.detection_id));
  }
  return out;
}

}  // namespace tmerge::reid
