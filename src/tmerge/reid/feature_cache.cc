#include "tmerge/reid/feature_cache.h"

#include "tmerge/fault/failpoint.h"

namespace tmerge::reid {

const FeatureVector& FeatureCache::GetOrEmbed(const CropRef& crop,
                                              const ReidModel& model,
                                              InferenceMeter& meter) {
  auto it = cache_.find(crop.detection_id);
  if (it != cache_.end()) {
    meter.RecordCacheHit();
    return it->second;
  }
  meter.ChargeSingle();
  auto [inserted, _] = cache_.emplace(crop.detection_id, model.Embed(crop));
  return inserted->second;
}

core::Result<const FeatureVector*> FeatureCache::TryGetOrEmbed(
    const CropRef& crop, const ReidModel& model, InferenceMeter& meter,
    std::uint64_t salt) {
  const std::uint64_t id = crop.detection_id;
  if (TMERGE_FAILPOINT("reid.cache.evict", id ^ salt)) {
    cache_.erase(id);
  }
  auto it = cache_.find(id);
  const bool forced_miss =
      it != cache_.end() && TMERGE_FAILPOINT("reid.cache.miss", id ^ salt);
  if (it != cache_.end() && !forced_miss) {
    meter.RecordCacheHit();
    return core::Result<const FeatureVector*>(&it->second);
  }
  // A latency spike charges its simulated seconds on top of the normal
  // inference charge, whether or not the embed then succeeds.
  const double spike = TMERGE_FAILPOINT_LATENCY("reid.latency", id ^ salt);
  if (spike > 0.0) meter.ChargePenalty(spike);
  core::Result<FeatureVector> embedded = model.TryEmbed(crop, salt);
  if (!embedded.ok()) {
    meter.ChargeFailedSingle();
    return embedded.status();
  }
  meter.ChargeSingle();
  if (forced_miss) {
    // Refresh in place: the entry survived eviction but the lookup was
    // forced to miss, so the re-embed result overwrites it.
    it->second = std::move(embedded).value();
    return core::Result<const FeatureVector*>(&it->second);
  }
  auto [inserted, _] = cache_.emplace(id, std::move(embedded).value());
  return core::Result<const FeatureVector*>(&inserted->second);
}

std::vector<const FeatureVector*> FeatureCache::GetOrEmbedBatch(
    const std::vector<CropRef>& crops, const ReidModel& model,
    InferenceMeter& meter) {
  std::int64_t misses = 0;
  for (const auto& crop : crops) {
    if (cache_.contains(crop.detection_id)) {
      meter.RecordCacheHit();
      continue;
    }
    cache_.emplace(crop.detection_id, model.Embed(crop));
    ++misses;
  }
  meter.ChargeBatch(misses);

  std::vector<const FeatureVector*> out;
  out.reserve(crops.size());
  for (const auto& crop : crops) {
    out.push_back(&cache_.at(crop.detection_id));
  }
  return out;
}

std::vector<const FeatureVector*> FeatureCache::TryGetOrEmbedBatch(
    const std::vector<CropRef>& crops, const ReidModel& model,
    InferenceMeter& meter, std::uint64_t salt) {
  // Pointers are filled during the pass (not via a final lookup) so a
  // forced-miss whose re-embed failed reports failure even when a stale
  // entry survives in the map. Stability across emplace makes this safe.
  std::vector<const FeatureVector*> out(crops.size(), nullptr);
  std::int64_t misses = 0;
  for (std::size_t i = 0; i < crops.size(); ++i) {
    const CropRef& crop = crops[i];
    const std::uint64_t id = crop.detection_id;
    if (TMERGE_FAILPOINT("reid.cache.evict", id ^ salt)) {
      cache_.erase(id);
    }
    auto it = cache_.find(id);
    const bool forced_miss =
        it != cache_.end() && TMERGE_FAILPOINT("reid.cache.miss", id ^ salt);
    if (it != cache_.end() && !forced_miss) {
      meter.RecordCacheHit();
      out[i] = &it->second;
      continue;
    }
    const double spike = TMERGE_FAILPOINT_LATENCY("reid.latency", id ^ salt);
    if (spike > 0.0) meter.ChargePenalty(spike);
    core::Result<FeatureVector> embedded = model.TryEmbed(crop, salt);
    if (!embedded.ok()) {
      meter.ChargeFailedBatchItem(1);
      continue;
    }
    if (forced_miss) {
      it->second = std::move(embedded).value();
      out[i] = &it->second;
    } else {
      auto [inserted, _] = cache_.emplace(id, std::move(embedded).value());
      out[i] = &inserted->second;
    }
    ++misses;
  }
  meter.ChargeBatch(misses);
  return out;
}

}  // namespace tmerge::reid
