#include "tmerge/reid/feature_cache.h"

#include <utility>

#include "tmerge/fault/failpoint.h"

namespace tmerge::reid {

void DetectionIndex::Insert(std::uint64_t key, FeatureRef ref) {
  // Grow at 3/8 occupancy, counting tombstones: probe chains lengthen
  // with used slots, not live ones. Plain linear probing (no SIMD group
  // scan) degrades fast past ~50% load — every extra probe is a
  // data-dependent branch the predictor gets wrong — so the table trades
  // slack space (16-byte slots, still far below the map-node layout it
  // replaced) for ~1.2-probe average chains.
  if (slots_.empty() || (used_ + 1) * 8 > slots_.size() * 3) Grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = MixKey(key) & mask;
  while (slots_[pos].value != kEmpty && slots_[pos].value != kTombstone) {
    pos = (pos + 1) & mask;
  }
  if (slots_[pos].value == kEmpty) ++used_;
  slots_[pos].key = key;
  slots_[pos].value = ref.index;
  ++size_;
}

bool DetectionIndex::Erase(std::uint64_t key) {
  if (slots_.empty()) return false;
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = MixKey(key) & mask;
  while (slots_[pos].value != kEmpty) {
    if (slots_[pos].value != kTombstone && slots_[pos].key == key) {
      slots_[pos].value = kTombstone;
      --size_;
      return true;
    }
    pos = (pos + 1) & mask;
  }
  return false;
}

void DetectionIndex::Clear() {
  slots_.clear();
  size_ = 0;
  used_ = 0;
}

void DetectionIndex::Grow() {
  // Live entries only are carried over, so growth also sweeps tombstones.
  std::vector<Slot> old = std::move(slots_);
  const std::size_t capacity = old.empty() ? 64 : old.size() * 2;
  slots_.assign(capacity, Slot{});
  used_ = size_;
  const std::size_t mask = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.value == kEmpty || slot.value == kTombstone) continue;
    std::size_t pos = MixKey(slot.key) & mask;
    while (slots_[pos].value != kEmpty) pos = (pos + 1) & mask;
    slots_[pos] = slot;
  }
}

FeatureRef FeatureCache::Insert(std::uint64_t detection_id,
                                const FeatureVector& feature) {
  FeatureRef ref = store_.Append(feature);
  index_.Insert(detection_id, ref);
  return ref;
}

FeatureView FeatureCache::Put(std::uint64_t detection_id,
                              const FeatureVector& feature) {
  FeatureRef ref = index_.Find(detection_id);
  if (ref.valid()) return store_.View(ref);
  return store_.View(Insert(detection_id, feature));
}

FeatureView FeatureCache::GetOrEmbed(const CropRef& crop,
                                     const ReidModel& model,
                                     InferenceMeter& meter) {
  FeatureRef ref = index_.Find(crop.detection_id);
  if (ref.valid()) {
    meter.RecordCacheHit();
    return store_.View(ref);
  }
  meter.ChargeSingle();
  return store_.View(Insert(crop.detection_id, model.Embed(crop)));
}

core::Result<FeatureView> FeatureCache::TryGetOrEmbed(const CropRef& crop,
                                                      const ReidModel& model,
                                                      InferenceMeter& meter,
                                                      std::uint64_t salt) {
  const std::uint64_t id = crop.detection_id;
  if (TMERGE_FAILPOINT("reid.cache.evict", id ^ salt)) {
    index_.Erase(id);
  }
  FeatureRef ref = index_.Find(id);
  const bool forced_miss =
      ref.valid() && TMERGE_FAILPOINT("reid.cache.miss", id ^ salt);
  if (ref.valid() && !forced_miss) {
    meter.RecordCacheHit();
    return core::Result<FeatureView>(store_.View(ref));
  }
  // A latency spike charges its simulated seconds on top of the normal
  // inference charge, whether or not the embed then succeeds.
  const double spike = TMERGE_FAILPOINT_LATENCY("reid.latency", id ^ salt);
  if (spike > 0.0) meter.ChargePenalty(spike);
  core::Result<FeatureVector> embedded = model.TryEmbed(crop, salt);
  if (!embedded.ok()) {
    meter.ChargeFailedSingle();
    return embedded.status();
  }
  meter.ChargeSingle();
  if (forced_miss) {
    // Refresh in place: the entry survived eviction but the lookup was
    // forced to miss, so the re-embed result overwrites its arena slot
    // and every outstanding handle sees the fresh floats.
    store_.Overwrite(ref, std::move(embedded).value());
    return core::Result<FeatureView>(store_.View(ref));
  }
  return core::Result<FeatureView>(
      store_.View(Insert(id, std::move(embedded).value())));
}

std::vector<FeatureView> FeatureCache::GetOrEmbedBatch(
    const std::vector<CropRef>& crops, const ReidModel& model,
    InferenceMeter& meter) {
  std::int64_t misses = 0;
  for (const auto& crop : crops) {
    if (index_.Find(crop.detection_id).valid()) {
      meter.RecordCacheHit();
      continue;
    }
    Insert(crop.detection_id, model.Embed(crop));
    ++misses;
  }
  meter.ChargeBatch(misses);

  std::vector<FeatureView> out;
  out.reserve(crops.size());
  for (const auto& crop : crops) {
    out.push_back(store_.View(index_.Find(crop.detection_id)));
  }
  return out;
}

std::vector<FeatureView> FeatureCache::TryGetOrEmbedBatch(
    const std::vector<CropRef>& crops, const ReidModel& model,
    InferenceMeter& meter, std::uint64_t salt) {
  // Views are filled during the pass (not via a final lookup) so a
  // forced-miss whose re-embed failed reports failure even when a stale
  // entry survives in the index. Handle stability makes this safe.
  std::vector<FeatureView> out(crops.size());
  std::int64_t misses = 0;
  for (std::size_t i = 0; i < crops.size(); ++i) {
    const CropRef& crop = crops[i];
    const std::uint64_t id = crop.detection_id;
    if (TMERGE_FAILPOINT("reid.cache.evict", id ^ salt)) {
      index_.Erase(id);
    }
    FeatureRef ref = index_.Find(id);
    const bool forced_miss =
        ref.valid() && TMERGE_FAILPOINT("reid.cache.miss", id ^ salt);
    if (ref.valid() && !forced_miss) {
      meter.RecordCacheHit();
      out[i] = store_.View(ref);
      continue;
    }
    const double spike = TMERGE_FAILPOINT_LATENCY("reid.latency", id ^ salt);
    if (spike > 0.0) meter.ChargePenalty(spike);
    core::Result<FeatureVector> embedded = model.TryEmbed(crop, salt);
    if (!embedded.ok()) {
      meter.ChargeFailedBatchItem(1);
      continue;
    }
    if (forced_miss) {
      store_.Overwrite(ref, std::move(embedded).value());
      out[i] = store_.View(ref);
    } else {
      out[i] = store_.View(Insert(id, std::move(embedded).value()));
    }
    ++misses;
  }
  meter.ChargeBatch(misses);
  return out;
}

CoarseClusterIndex& FeatureCache::EnsureClusterIndex(
    const ClusterIndexOptions& options) {
  if (cluster_index_ == nullptr) {
    cluster_index_ = std::make_unique<CoarseClusterIndex>(options);
  }
  cluster_index_->Ensure(store_);
  return *cluster_index_;
}

}  // namespace tmerge::reid
