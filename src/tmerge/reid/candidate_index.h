#ifndef TMERGE_REID_CANDIDATE_INDEX_H_
#define TMERGE_REID_CANDIDATE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tmerge/reid/feature.h"
#include "tmerge/reid/feature_store.h"

namespace tmerge::reid {

/// Knobs for the coarse cluster router (DESIGN.md §15.3). Defaults are
/// sized for per-video stores of thousands to millions of rows: small k
/// keeps routing O(clusters · dim) per query, the sample cap bounds the
/// Lloyd rebuild, and the rebuild interval amortizes rebuild cost to O(1)
/// per append.
struct ClusterIndexOptions {
  /// Target centroid count; capped by the number of stored rows.
  std::int32_t clusters = 64;
  /// Lloyd refinement passes per rebuild (fixed count: deterministic).
  std::int32_t lloyd_iterations = 6;
  /// Max rows fed to Lloyd per rebuild (deterministic stride sample).
  std::int32_t sample_cap = 32768;
  /// Appends since the last build that trigger a full rebuild on the next
  /// Ensure; new rows in between are assigned incrementally.
  std::int32_t rebuild_interval = 4096;
};

/// K-means-style centroid router over a FeatureStore: maps every stored
/// row to its nearest centroid so selector sweeps can probe the few
/// nearest clusters instead of O(pairs) (DESIGN.md §15.3).
///
/// Everything here is deterministic given the store contents — centroid
/// seeding is an even stride over a stride-sampled row set, Lloyd runs a
/// fixed number of passes in fixed row order with fp64 accumulation, and
/// ties in nearest-centroid scans break toward the lower id. Distances go
/// through the dispatching kernels, which are bit-identical at every
/// level, so routing decisions cannot depend on the host's SIMD tier.
///
/// Concurrency: thread-confined, like the FeatureCache that owns one
/// (one index per video store; no mutex on purpose).
class CoarseClusterIndex {
 public:
  explicit CoarseClusterIndex(const ClusterIndexOptions& options = {});

  /// Brings the index up to date with `store`: first call (or any call
  /// after rebuild_interval appends accumulated) rebuilds centroids from
  /// scratch, otherwise rows appended since the last call are assigned to
  /// their nearest existing centroid. Amortized O(clusters · dim) per new
  /// row. No-op on an empty store.
  void Ensure(const FeatureStore& store);

  bool built() const { return num_clusters_ > 0; }
  std::int32_t num_clusters() const { return num_clusters_; }
  std::size_t assigned_rows() const { return assigned_.size(); }
  std::int64_t rebuilds() const { return rebuilds_; }

  /// Cluster id of a stored row; the row must be covered by the last
  /// Ensure (debug-checked).
  std::int32_t AssignmentOf(FeatureRef ref) const;

  /// Writes the `probes` nearest cluster ids to `query` into `out`,
  /// ascending by (centroid distance, id). probes >= num_clusters()
  /// returns every cluster — the exhaustive-fallback mode, which admits
  /// every pair and is the recall==1.0 differential mode tests pin.
  void NearestClusters(FeatureView query, std::int32_t probes,
                       std::vector<std::int32_t>* out) const;

  /// Centroid storage (dim() doubles), for diagnostics and tests.
  const double* Centroid(std::int32_t cluster) const;
  std::size_t dim() const { return dim_; }

  void Clear();

 private:
  void Rebuild(const FeatureStore& store);
  std::int32_t NearestCentroid(const double* row) const;

  ClusterIndexOptions options_;
  std::size_t dim_ = 0;
  std::int32_t num_clusters_ = 0;
  std::vector<double> centroids_;       ///< num_clusters_ * dim_.
  std::vector<std::int32_t> assigned_;  ///< Per store row, append order.
  std::size_t rows_at_build_ = 0;       ///< Store size at the last rebuild.
  std::int64_t rebuilds_ = 0;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_CANDIDATE_INDEX_H_
