#include "tmerge/reid/embed_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "tmerge/core/mutex.h"
#include "tmerge/core/status.h"
#include "tmerge/fault/failpoint.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/obs/span.h"
#include "tmerge/obs/trace.h"

namespace tmerge::reid {
namespace {

/// Salt xor applied to the single-path retry of a failed batch dispatch, so
/// the retry attempts draw "reid.embed" verdicts independently of the
/// (never executed) batched attempt — the scheduler's analogue of
/// ReidGuard's fresh-salt retries.
constexpr std::uint64_t kBatchRetrySalt = 0x5EC0ULL;

#ifndef TMERGE_OBS_DISABLED
void RecordGroupObs(const EmbedSchedulerStats& group) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& requests = registry.GetCounter("reid.sched.requests");
  static obs::Counter& batches = registry.GetCounter("reid.sched.batches");
  static obs::Counter& batched_crops =
      registry.GetCounter("reid.sched.batched_crops");
  static obs::Counter& single_crops =
      registry.GetCounter("reid.sched.single_crops");
  static obs::Counter& failed_crops =
      registry.GetCounter("reid.sched.failed_crops");
  static obs::Counter& deferred = registry.GetCounter("reid.sched.deferred");
  static obs::Counter& batch_failures =
      registry.GetCounter("reid.sched.batch_failures");
  static obs::Counter& inline_dispatches =
      registry.GetCounter("reid.sched.inline");
  requests.Add(group.requested);
  batches.Add(group.batches);
  batched_crops.Add(group.batched_crops);
  single_crops.Add(group.single_crops);
  failed_crops.Add(group.failed_crops);
  deferred.Add(group.deferred_batches);
  batch_failures.Add(group.batch_failures);
  inline_dispatches.Add(group.inline_dispatches);
}
#endif  // TMERGE_OBS_DISABLED

}  // namespace

/// One planned dispatch unit: a contiguous slice of the group's deduped
/// crop list plus the plan-time fault verdicts. Result slots are private to
/// the batch between dispatch and completion; `done` transfers them to the
/// committing thread under the scheduler mutex.
struct EmbedScheduler::Batch {
  std::size_t first = 0;
  std::size_t count = 0;
  /// Batched inference call (vs the single path for sub-break-even tails).
  bool batched = false;
  /// "reid.embed.batch_fail" verdict: the batched dispatch fails, crops
  /// retry individually under kBatchRetrySalt.
  bool failed = false;
  /// "reid.sched.defer" verdict: dispatched after every non-deferred batch.
  bool deferred = false;
  /// Computed on a pool worker (ever false without a pool, or when the
  /// caller is itself a worker of that pool).
  bool async = false;
  /// Compute finished; results are safe to read. Written and read under
  /// EmbedScheduler::mutex_ when async.
  bool done = false;
  std::vector<core::Result<FeatureVector>> results;
};

EmbedScheduler::EmbedScheduler(const EmbedSchedulerConfig& config,
                               core::ThreadPool* pool)
    : config_(config), pool_(pool) {
  TMERGE_CHECK(config.max_batch_size > 0);
  TMERGE_CHECK(config.max_inflight_batches > 0);
  TMERGE_CHECK(config.min_batch_size >= 0);
}

std::int32_t EmbedScheduler::BreakEvenBatchSize(const CostModel& model) {
  const double margin =
      model.single_inference_seconds - model.batch_item_seconds;
  if (margin <= 0.0) {
    // A batched crop is not cheaper than a single one: batching never pays,
    // so the break-even size is unreachable and everything goes single.
    return std::numeric_limits<std::int32_t>::max();
  }
  const double breakeven = std::ceil(model.batch_fixed_seconds / margin);
  if (breakeven >= static_cast<double>(
                       std::numeric_limits<std::int32_t>::max())) {
    return std::numeric_limits<std::int32_t>::max();
  }
  return std::max<std::int32_t>(1, static_cast<std::int32_t>(breakeven));
}

EmbedSchedulerStats EmbedScheduler::EmbedAll(const std::vector<CropRef>& crops,
                                             FeatureCache& cache,
                                             const ReidModel& model,
                                             InferenceMeter& meter,
                                             std::uint64_t salt) {
  EmbedSchedulerStats group;
  ++group.groups;
  group.requested = static_cast<std::int64_t>(crops.size());

  // Dedup pass: first occurrence wins, already-cached crops are skipped
  // entirely (the later consumer takes its cache hit itself — Put charges
  // nothing and the scheduler never double-counts hits into the meter).
  std::vector<CropRef> unique;
  unique.reserve(crops.size());
  {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(crops.size());
    for (const CropRef& crop : crops) {
      if (cache.Contains(crop.detection_id)) {
        ++group.cache_hits;
        continue;
      }
      if (!seen.insert(crop.detection_id).second) {
        ++group.dedup_hits;
        continue;
      }
      unique.push_back(crop);
    }
  }

  // Plan: fixed-size chunks, sub-break-even tails on the single path,
  // fault verdicts drawn per batch from group-local content so the
  // schedule is deterministic regardless of cross-camera interleave.
  const std::int32_t min_batch =
      config_.min_batch_size > 0 ? config_.min_batch_size
                                 : BreakEvenBatchSize(meter.model());
  std::vector<Batch> plan;
  plan.reserve(unique.size() / config_.max_batch_size + 1);
  for (std::size_t first = 0; first < unique.size();
       first += static_cast<std::size_t>(config_.max_batch_size)) {
    Batch batch;
    batch.first = first;
    batch.count = std::min(static_cast<std::size_t>(config_.max_batch_size),
                           unique.size() - first);
    batch.batched = batch.count >= static_cast<std::size_t>(min_batch);
    const std::uint64_t key =
        unique[first].detection_id ^
        (static_cast<std::uint64_t>(plan.size()) << 40) ^ salt;
    batch.deferred = TMERGE_FAILPOINT("reid.sched.defer", key);
    batch.failed =
        batch.batched && TMERGE_FAILPOINT("reid.embed.batch_fail", key);
    if (batch.deferred) {
      ++group.deferred_batches;
      TMERGE_TRACE_INSTANT("reid.sched.defer", obs::kTraceNoSimTime,
                           obs::TraceArg{"batch",
                                         static_cast<std::int64_t>(
                                             plan.size())});
    }
    if (batch.failed) ++group.batch_failures;
    if (batch.batched) {
      ++group.batches;
    }
    plan.push_back(std::move(batch));
  }

  auto compute = [&unique, &model, salt](Batch& batch) {
    TMERGE_TRACE_SCOPE("reid.sched.batch", obs::kTraceNoSimTime,
                       obs::TraceArg{"crops",
                                     static_cast<std::int64_t>(batch.count)});
    const std::uint64_t attempt_salt =
        batch.failed ? (salt ^ kBatchRetrySalt) : salt;
    batch.results.reserve(batch.count);
    for (std::size_t i = 0; i < batch.count; ++i) {
      batch.results.push_back(
          model.TryEmbed(unique[batch.first + i], attempt_salt));
    }
  };

  // Dispatch: deferred batches go last (a stable partition, so the defer
  // failpoint reorders dispatch only — commit order is plan order either
  // way). Async only when a pool exists AND the caller is not one of its
  // workers: blocking on the in-flight bound from a worker could starve
  // the pool, so reentrant callers compute inline.
  std::vector<Batch*> dispatch_order;
  dispatch_order.reserve(plan.size());
  for (Batch& batch : plan) {
    if (!batch.deferred) dispatch_order.push_back(&batch);
  }
  for (Batch& batch : plan) {
    if (batch.deferred) dispatch_order.push_back(&batch);
  }

  const bool caller_is_worker = pool_ != nullptr && pool_->InWorkerThread();
  const bool use_pool = pool_ != nullptr && !caller_is_worker;
  for (Batch* batch : dispatch_order) {
    if (use_pool) {
      {
        core::MutexLock lock(mutex_);
        while (inflight_ >=
               static_cast<std::int64_t>(config_.max_inflight_batches)) {
          batch_cv_.Wait(mutex_);
        }
        ++inflight_;
        group.peak_inflight = std::max(group.peak_inflight, inflight_);
      }
      core::Status submitted = pool_->Submit([this, batch, &compute]() {
        compute(*batch);
        // Notify while still holding the mutex: the committer that this
        // wakes may destroy the scheduler as soon as it can re-acquire the
        // lock, so the condvar must not be touched after the unlock.
        core::MutexLock lock(mutex_);
        batch->done = true;
        --inflight_;
        batch_cv_.NotifyAll();
      });
      if (submitted.ok()) {
        batch->async = true;
        continue;
      }
      // Submit rejected (the "core.pool.submit" degradation path): give the
      // slot back and fall through to inline compute.
      {
        core::MutexLock lock(mutex_);
        --inflight_;
        batch_cv_.NotifyAll();
      }
      ++group.inline_dispatches;
    } else if (caller_is_worker) {
      ++group.inline_dispatches;
    }
    compute(*batch);
    batch->done = true;
  }

  // Commit: ALWAYS on the calling thread, in plan order — identical cache
  // insert and meter charge sequences whether compute ran inline or on
  // workers, which is what makes sync and async runs bit-identical.
  const CostModel& cost = meter.model();
  for (Batch& batch : plan) {
    if (batch.async) {
      core::MutexLock lock(mutex_);
      while (!batch.done) batch_cv_.Wait(mutex_);
    }
    std::int64_t successes = 0;
    for (std::size_t i = 0; i < batch.count; ++i) {
      const CropRef& crop = unique[batch.first + i];
      // Latency spikes charge at commit, mirroring the cache's fallible
      // paths (same "reid.latency" key, so schedules line up).
      const double spike = TMERGE_FAILPOINT_LATENCY(
          "reid.latency", crop.detection_id ^ salt);
      if (spike > 0.0) meter.ChargePenalty(spike);
      core::Result<FeatureVector>& result = batch.results[i];
      if (batch.batched && !batch.failed) {
        if (result.ok()) {
          cache.Put(crop.detection_id, std::move(result).value());
          ++successes;
        } else {
          meter.ChargeFailedBatchItem(1);
          ++group.failed_crops;
        }
      } else {
        // Single path: sub-break-even tails, and the per-crop retries of a
        // failed batch dispatch.
        if (result.ok()) {
          meter.ChargeSingle();
          cache.Put(crop.detection_id, std::move(result).value());
          ++group.single_crops;
        } else {
          meter.ChargeFailedSingle();
          ++group.failed_crops;
        }
      }
    }
    if (batch.batched && !batch.failed) {
      meter.ChargeBatch(successes);
      group.batched_crops += successes;
    } else if (batch.failed) {
      // The failed dispatch still spent its launch cost before erroring.
      meter.ChargePenalty(cost.batch_fixed_seconds);
    }
  }

  // Fold into lifetime totals. `outstanding` snapshots the global in-flight
  // count: this group's batches are all committed, so it is zero unless
  // concurrent groups are mid-run (and zero after Flush, always).
  {
    core::MutexLock lock(mutex_);
    totals_.groups += group.groups;
    totals_.requested += group.requested;
    totals_.cache_hits += group.cache_hits;
    totals_.dedup_hits += group.dedup_hits;
    totals_.batches += group.batches;
    totals_.batched_crops += group.batched_crops;
    totals_.single_crops += group.single_crops;
    totals_.failed_crops += group.failed_crops;
    totals_.deferred_batches += group.deferred_batches;
    totals_.batch_failures += group.batch_failures;
    totals_.inline_dispatches += group.inline_dispatches;
    totals_.peak_inflight =
        std::max(totals_.peak_inflight, group.peak_inflight);
    totals_.outstanding = inflight_;
  }
  TMERGE_OBS(RecordGroupObs(group));
  return group;
}

void EmbedScheduler::Flush() {
  core::MutexLock lock(mutex_);
  while (inflight_ != 0) batch_cv_.Wait(mutex_);
  totals_.outstanding = 0;
}

EmbedSchedulerStats EmbedScheduler::stats() const {
  core::MutexLock lock(mutex_);
  return totals_;
}

}  // namespace tmerge::reid
