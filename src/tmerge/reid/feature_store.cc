#include "tmerge/reid/feature_store.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tmerge/core/status.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::reid {
namespace {

/// Rounds a double error bound UP to float so downstream fp32 bound
/// arithmetic can never under-estimate it.
float ErrorUpperBound(double err) {
  float f = static_cast<float>(err);
  if (static_cast<double>(f) < err) {
    f = std::nextafter(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace

FeatureRef FeatureStore::Append(const double* data, std::size_t dim) {
  if (size_ == 0) {
    TMERGE_CHECK(dim > 0);
    dim_ = dim;
  } else {
    // The single dimension-validation point (see header): every feature
    // entering the arena is checked here, once, so the distance kernels
    // can run without per-call checks.
    TMERGE_CHECK(dim == dim_);
  }
  TMERGE_CHECK(size_ < FeatureRef::kInvalidIndex);
  const std::size_t slab = size_ / kSlabFeatures;
  const std::size_t offset = (size_ % kSlabFeatures) * dim_;
  if (slab == slabs_.size()) {
    slabs_.push_back(std::make_unique<double[]>(kSlabFeatures * dim_));
  }
  std::copy(data, data + dim_, slabs_[slab].get() + offset);
  FeatureRef ref{static_cast<std::uint32_t>(size_)};
  ++size_;
  return ref;
}

void FeatureStore::Overwrite(FeatureRef ref, const double* data,
                             std::size_t dim) {
  TMERGE_CHECK(dim == dim_);
  std::copy(data, data + dim_, MutableSlot(ref));
  // Keep any built mirror coherent: the refreshed row is requantized in
  // place (this is the fault-only forced-miss path — rare by contract).
  if (ref.index < int8_rows_) QuantizeInt8Row(ref.index);
  if (ref.index < fp16_rows_) QuantizeFp16Row(ref.index);
}

void FeatureStore::Clear() {
  slabs_.clear();
  size_ = 0;
  dim_ = 0;
  int8_rows_ = 0;
  int8_slabs_.clear();
  int8_scales_.clear();
  int8_errors_.clear();
  fp16_rows_ = 0;
  fp16_slabs_.clear();
  fp16_errors_.clear();
}

void FeatureStore::EnsureInt8Mirror() {
  if (int8_rows_ == size_) return;
  int8_scales_.resize(size_);
  int8_errors_.resize(size_);
  while (int8_slabs_.size() < slabs_.size()) {
    int8_slabs_.push_back(
        std::make_unique<std::int8_t[]>(kSlabFeatures * dim_));
  }
  for (std::size_t row = int8_rows_; row < size_; ++row) {
    QuantizeInt8Row(row);
  }
  int8_rows_ = size_;
}

void FeatureStore::EnsureFp16Mirror() {
  if (fp16_rows_ == size_) return;
  fp16_errors_.resize(size_);
  while (fp16_slabs_.size() < slabs_.size()) {
    fp16_slabs_.push_back(
        std::make_unique<std::uint16_t[]>(kSlabFeatures * dim_));
  }
  for (std::size_t row = fp16_rows_; row < size_; ++row) {
    QuantizeFp16Row(row);
  }
  fp16_rows_ = size_;
}

void FeatureStore::QuantizeInt8Row(std::size_t row) {
  const double* src = slabs_[row / kSlabFeatures].get() +
                      (row % kSlabFeatures) * dim_;
  std::int8_t* dst = int8_slabs_[row / kSlabFeatures].get() +
                     (row % kSlabFeatures) * dim_;
  double max_abs = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    max_abs = std::max(max_abs, std::fabs(src[i]));
  }
  // Symmetric per-row scale: value ~= scale * q with q in [-127, 127].
  // The scale is carried as the float the kernel will actually multiply
  // by, so the recorded error measures the real reconstruction.
  const float scale =
      max_abs > 0.0 ? static_cast<float>(max_abs / 127.0) : 0.0f;
  double max_err = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    int q = 0;
    if (scale > 0.0f) {
      q = static_cast<int>(
          std::lround(src[i] / static_cast<double>(scale)));
      q = std::clamp(q, -127, 127);
    }
    dst[i] = static_cast<std::int8_t>(q);
    const double rebuilt = static_cast<double>(scale) * q;
    max_err = std::max(max_err, std::fabs(src[i] - rebuilt));
  }
  int8_scales_[row] = scale;
  int8_errors_[row] = ErrorUpperBound(max_err);
}

void FeatureStore::QuantizeFp16Row(std::size_t row) {
  const double* src = slabs_[row / kSlabFeatures].get() +
                      (row % kSlabFeatures) * dim_;
  std::uint16_t* dst = fp16_slabs_[row / kSlabFeatures].get() +
                       (row % kSlabFeatures) * dim_;
  double max_err = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::uint16_t half =
        kernels::FloatToHalf(static_cast<float>(src[i]));
    dst[i] = half;
    const double rebuilt =
        static_cast<double>(kernels::HalfToFloat(half));
    max_err = std::max(max_err, std::fabs(src[i] - rebuilt));
  }
  fp16_errors_[row] = ErrorUpperBound(max_err);
}

const double* FeatureStore::Slot(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < size_);
  return slabs_[ref.index / kSlabFeatures].get() +
         (ref.index % kSlabFeatures) * dim_;
}

double* FeatureStore::MutableSlot(FeatureRef ref) {
  TMERGE_CHECK(ref.index < size_);
  return slabs_[ref.index / kSlabFeatures].get() +
         (ref.index % kSlabFeatures) * dim_;
}

const std::int8_t* FeatureStore::Int8Row(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < int8_rows_);
  return int8_slabs_[ref.index / kSlabFeatures].get() +
         (ref.index % kSlabFeatures) * dim_;
}

const std::uint16_t* FeatureStore::Fp16Row(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < fp16_rows_);
  return fp16_slabs_[ref.index / kSlabFeatures].get() +
         (ref.index % kSlabFeatures) * dim_;
}

float FeatureStore::Int8Scale(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < int8_rows_);
  return int8_scales_[ref.index];
}

float FeatureStore::Int8Error(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < int8_rows_);
  return int8_errors_[ref.index];
}

float FeatureStore::Fp16Error(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < fp16_rows_);
  return fp16_errors_[ref.index];
}

}  // namespace tmerge::reid
