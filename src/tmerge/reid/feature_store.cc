#include "tmerge/reid/feature_store.h"

#include <algorithm>

#include "tmerge/core/status.h"

namespace tmerge::reid {

FeatureRef FeatureStore::Append(const double* data, std::size_t dim) {
  if (size_ == 0) {
    TMERGE_CHECK(dim > 0);
    dim_ = dim;
  } else {
    // The single dimension-validation point (see header): every feature
    // entering the arena is checked here, once, so the distance kernels
    // can run without per-call checks.
    TMERGE_CHECK(dim == dim_);
  }
  TMERGE_CHECK(size_ < FeatureRef::kInvalidIndex);
  const std::size_t slab = size_ / kSlabFeatures;
  const std::size_t offset = (size_ % kSlabFeatures) * dim_;
  if (slab == slabs_.size()) {
    slabs_.push_back(std::make_unique<double[]>(kSlabFeatures * dim_));
  }
  std::copy(data, data + dim_, slabs_[slab].get() + offset);
  FeatureRef ref{static_cast<std::uint32_t>(size_)};
  ++size_;
  return ref;
}

void FeatureStore::Overwrite(FeatureRef ref, const double* data,
                             std::size_t dim) {
  TMERGE_CHECK(dim == dim_);
  std::copy(data, data + dim_, MutableSlot(ref));
}

void FeatureStore::Clear() {
  slabs_.clear();
  size_ = 0;
  dim_ = 0;
}

const double* FeatureStore::Slot(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < size_);
  return slabs_[ref.index / kSlabFeatures].get() +
         (ref.index % kSlabFeatures) * dim_;
}

double* FeatureStore::MutableSlot(FeatureRef ref) {
  TMERGE_CHECK(ref.index < size_);
  return slabs_[ref.index / kSlabFeatures].get() +
         (ref.index % kSlabFeatures) * dim_;
}

}  // namespace tmerge::reid
