#ifndef TMERGE_REID_DISTANCE_KERNELS_H_
#define TMERGE_REID_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tmerge/reid/feature.h"

namespace tmerge::reid::kernels {

/// Distance kernels underneath every selector inner loop. Two properties
/// matter more than raw FLOPs here (DESIGN.md §10 "Memory layout &
/// kernels", §15 "Million-track candidate index"):
///
///   1. *Bit-compatibility.* Every dispatched kernel accumulates each
///      output element in exactly the same order as the scalar reference
///      (one running sum per output, elements in index order), so every
///      dispatch level returns identical bits and every selector produces
///      identical SelectionResults under any of them. The wide variants
///      only exploit parallelism *across* independent outputs: on SSE2 two
///      rows share a 2-lane vector op, on AVX2 four rows share a 4-lane
///      one, on AVX-512 eight rows an 8-lane one — IEEE arithmetic is
///      per-lane, so lane k is row k's scalar chain bit for bit. No
///      reduction is ever reassociated, and the SIMD paths are compiled
///      without FMA so mul+add cannot contract differently from the
///      scalar reference.
///   2. *No per-call validation.* Dimension agreement is a debug-only
///      TMERGE_DCHECK; features coming out of a FeatureStore were
///      dimension-checked once at registration.
///
/// `SquaredDistance` is the primitive; `Distance` adds the sqrt. Callers
/// that only compare one distance against another (threshold gates,
/// arg-min scans, max-reductions) can stay on the squared fast path —
/// sqrt is monotone, so single-comparison ranking is preserved — and pay
/// one sqrt at the end if the metric value itself is needed. Scores that
/// *average* distances (BL/PS/LCB track-pair means, TMerge's Bernoulli
/// parameter) must take the sqrt per element: the mean of squares ranks
/// differently from the mean of roots.

/// Instruction-set tier a kernel call dispatches to. Levels are ordered:
/// a level is usable only when the CPU supports it (checked once via
/// CPUID at startup) and the compiler could build it (function
/// multiversioning via target attributes; GCC/clang on x86-64).
enum class KernelLevel : int {
  kScalar = 0,  ///< Straight-line reference loops.
  kSse2 = 1,    ///< 2-lane double blocks (baseline x86-64).
  kAvx2 = 2,    ///< 4-lane double / 8-lane float blocks.
  kAvx512 = 3,  ///< 8-lane double blocks (avx512f).
};

/// Highest level this host supports (CPUID + compiler), memoized.
KernelLevel DetectedKernelLevel();

/// True when `level` can run on this host.
bool KernelLevelSupported(KernelLevel level);

/// Every level usable on this host, ascending (always includes kScalar).
std::vector<KernelLevel> SupportedKernelLevels();

/// The level the dispatching entry points currently route to. The
/// default is the detected best level — or the TMERGE_KERNEL_LEVEL
/// environment override, applied once at first query with the same
/// strict parsing as the other TMERGE_* knobs (exact level name; junk
/// warns on stderr and is ignored) — or kScalar when the library was
/// built with -DTMERGE_SCALAR_KERNELS=ON.
KernelLevel CurrentKernelLevel();

/// Routes subsequent kernel calls to `level`. Returns false (and leaves
/// the level unchanged) when the host does not support it. Reads are
/// relaxed atomic loads, one predictable branch per kernel call.
bool SetKernelLevel(KernelLevel level);

/// Display/parse name: "scalar", "sse2", "avx2", "avx512".
const char* KernelLevelName(KernelLevel level);

/// Strict parser for TMERGE_KERNEL_LEVEL-style values: accepts exactly
/// the four level names, nothing else. Returns false on junk.
bool ParseKernelLevel(const char* text, KernelLevel* out);

/// True when the dispatching entry points route to the scalar reference
/// (CurrentKernelLevel() == kScalar). Kept for the PR 5-era toggle API:
/// SetUseScalarKernels(true) pins kScalar, SetUseScalarKernels(false)
/// restores the session default (detected best or the env override).
bool UseScalarKernels();
void SetUseScalarKernels(bool scalar);

/// Reference implementation: straight-line loop, one accumulator, index
/// order. Always available regardless of the dispatch level; differential
/// tests pin every other level against it.
double ScalarSquaredDistance(const double* a, const double* b,
                             std::size_t dim);

/// Squared Euclidean distance over contiguous storage (dispatching entry
/// point). Bit-identical to ScalarSquaredDistance by construction.
double SquaredDistance(const double* a, const double* b, std::size_t dim);

/// Euclidean distance: sqrt of SquaredDistance.
double Distance(const double* a, const double* b, std::size_t dim);

/// View overloads; debug-check that the dimensions agree.
double SquaredDistance(FeatureView a, FeatureView b);
double Distance(FeatureView a, FeatureView b);

/// Batched one-vs-many squared distances: out[i] = |query - many[i]|^2 for
/// i in [0, count). `many` is an array of `count` pointers, each to `dim`
/// contiguous doubles (gathered FeatureStore rows); `out` has room for
/// `count` results. Each element is computed exactly like
/// SquaredDistance(query, many[i], dim) — same bits at every dispatch
/// level — but the batched form amortizes call overhead and keeps the
/// query row hot in L1 across the sweep. This is the BL/PS full-sweep and
/// "-B" scoring kernel, and the exact re-rank kernel of the candidate
/// index (DESIGN.md §15).
void OneVsManySquared(const double* query, const double* const* many,
                      std::size_t count, std::size_t dim, double* out);

/// Batched normalize epilogue for OneVsManySquared rows:
///   out[i] = clamp(sqrt(squared[i]) / scale, 0.0, 1.0)
/// for i in [0, count); in-place (out == squared) is allowed. Each element
/// matches ReidModel::NormalizedFromSquared bit for bit: sqrt and divide
/// are IEEE correctly-rounded in the scalar loop and in every vector path
/// (sqrtpd/divpd round identically to sqrtsd/divsd at any width), and the
/// clamp is min/max against the same constants. `scale` must be positive
/// and `squared[i]` non-negative (sums of squares), so no NaNs reach the
/// min/max. Selectors use this to finish a row without paying one scalar
/// sqrt+div round trip per element.
void NormalizedFromSquaredMany(const double* squared, std::size_t count,
                               double scale, double* out);

// --- Quantized screening kernels (DESIGN.md §15.2) ----------------------
//
// The compact-slab screen runs over int8- or fp16-mirrored rows
// (reid::FeatureStore quantized mirrors). These kernels are NOT
// bit-compatible with the fp64 kernels above — they feed the approximate
// screening phase only, and the exact fp64 re-rank restores the final
// ranking bit for bit. They ARE bit-identical across dispatch levels:
// the int8 kernel reduces to exact int32 dot products (integer addition
// is associative, so any SIMD summation order yields the same integers)
// finished by one fixed double-precision epilogue, and the fp16 kernel
// widens halves exactly (F16C converts identically to the software
// HalfToFloat) and accumulates fp32 per-lane in index order — so a
// screen shortlist never depends on the host's SIMD tier.

/// out[i] = |query_scale*query - many_scales[i]*many[i]|^2 over the
/// dequantized rows, reconstructed from exact int32 dot products
///   qs^2*sum(q^2) + bs^2*sum(b^2) - 2*qs*bs*sum(q*b)
/// evaluated once in double and clamped at zero. Symmetric int8
/// quantization: real value = scale * q. The int32 dots bound dim at
/// ~130k elements — far beyond any real feature dimension.
void Int8OneVsManySquared(const std::int8_t* query, float query_scale,
                          const std::int8_t* const* many,
                          const float* many_scales, std::size_t count,
                          std::size_t dim, float* out);

/// out[i] = sum_j (half_to_float(query[j]) - half_to_float(many[i][j]))^2,
/// accumulated in fp32 in index order. Halves are IEEE binary16 stored in
/// uint16_t; widening to fp32 is exact.
void Fp16OneVsManySquared(const std::uint16_t* query,
                          const std::uint16_t* const* many,
                          std::size_t count, std::size_t dim, float* out);

/// IEEE binary16 <-> binary32 conversions (round-to-nearest-even on
/// narrowing; widening is exact). Software implementations, used by the
/// mirror build and the scalar quantized kernels; the SIMD quantized
/// paths produce identical bits (F16C converts identically).
std::uint16_t FloatToHalf(float value);
float HalfToFloat(std::uint16_t half);

}  // namespace tmerge::reid::kernels

#endif  // TMERGE_REID_DISTANCE_KERNELS_H_
