#ifndef TMERGE_REID_DISTANCE_KERNELS_H_
#define TMERGE_REID_DISTANCE_KERNELS_H_

#include <cstddef>

#include "tmerge/reid/feature.h"

namespace tmerge::reid::kernels {

/// Distance kernels underneath every selector inner loop. Two properties
/// matter more than raw FLOPs here (DESIGN.md §10 "Memory layout &
/// kernels"):
///
///   1. *Bit-compatibility.* The unrolled kernel accumulates in exactly
///      the same order as the scalar reference (one running sum, elements
///      in index order), so scalar and unrolled paths return identical
///      bits and every selector produces identical SelectionResults under
///      either. The unrolling buys instruction-level parallelism on the
///      subtract/multiply stream and lets the compiler form FMAs; it does
///      NOT reassociate the reduction (that would trade reproducibility
///      for a few cycles, and reproducibility is a tier-1 contract).
///   2. *No per-call validation.* Dimension agreement is a debug-only
///      TMERGE_DCHECK; features coming out of a FeatureStore were
///      dimension-checked once at registration.
///
/// `SquaredDistance` is the primitive; `Distance` adds the sqrt. Callers
/// that only compare one distance against another (threshold gates,
/// arg-min scans, max-reductions) can stay on the squared fast path —
/// sqrt is monotone, so single-comparison ranking is preserved — and pay
/// one sqrt at the end if the metric value itself is needed. Scores that
/// *average* distances (BL/PS/LCB track-pair means, TMerge's Bernoulli
/// parameter) must take the sqrt per element: the mean of squares ranks
/// differently from the mean of roots.

/// True when the dispatching entry points below route to the scalar
/// reference implementation instead of the unrolled kernel. Defaults to
/// false (or true when built with -DTMERGE_SCALAR_KERNELS=ON, the
/// differential-test build). Runtime-togglable so one binary can compare
/// both paths; reads are relaxed atomic loads, costing one predictable
/// branch per kernel call.
bool UseScalarKernels();
void SetUseScalarKernels(bool scalar);

/// Reference implementation: straight-line loop, one accumulator, index
/// order. Always available regardless of the toggle; differential tests
/// pin the unrolled kernel against it.
double ScalarSquaredDistance(const double* a, const double* b,
                             std::size_t dim);

/// Squared Euclidean distance over contiguous storage (dispatching entry
/// point). Bit-identical to ScalarSquaredDistance by construction.
double SquaredDistance(const double* a, const double* b, std::size_t dim);

/// Euclidean distance: sqrt of SquaredDistance.
double Distance(const double* a, const double* b, std::size_t dim);

/// View overloads; debug-check that the dimensions agree.
double SquaredDistance(FeatureView a, FeatureView b);
double Distance(FeatureView a, FeatureView b);

/// Batched one-vs-many squared distances: out[i] = |query - many[i]|^2 for
/// i in [0, count). `many` is an array of `count` pointers, each to `dim`
/// contiguous doubles (gathered FeatureStore rows); `out` has room for
/// `count` results. Each element is computed exactly like
/// SquaredDistance(query, many[i], dim) — same bits — but the batched form
/// amortizes call overhead and keeps the query row hot in L1 across the
/// sweep. This is the BL/PS full-sweep and "-B" scoring kernel.
void OneVsManySquared(const double* query, const double* const* many,
                      std::size_t count, std::size_t dim, double* out);

/// Batched normalize epilogue for OneVsManySquared rows:
///   out[i] = clamp(sqrt(squared[i]) / scale, 0.0, 1.0)
/// for i in [0, count); in-place (out == squared) is allowed. Each element
/// matches ReidModel::NormalizedFromSquared bit for bit: sqrt and divide
/// are IEEE correctly-rounded in both the scalar loop and the 2-wide SSE2
/// path (sqrtpd/divpd round identically to sqrtsd/divsd), and the clamp is
/// min/max against the same constants. `scale` must be positive and
/// `squared[i]` non-negative (sums of squares), so no NaNs reach the
/// min/max. Selectors use this to finish a row without paying one scalar
/// sqrt+div round trip per element.
void NormalizedFromSquaredMany(const double* squared, std::size_t count,
                               double scale, double* out);

}  // namespace tmerge::reid::kernels

#endif  // TMERGE_REID_DISTANCE_KERNELS_H_
