#ifndef TMERGE_REID_FEATURE_CACHE_H_
#define TMERGE_REID_FEATURE_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tmerge/core/status.h"
#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature.h"
#include "tmerge/reid/reid_model.h"

namespace tmerge::reid {

/// Memoizes ReID features per detection, implementing the paper's reuse
/// optimization (§IV-B: "if either of the BBoxes' feature vectors has been
/// extracted in previous iterations it can be reused"). Inference cost is
/// charged to the meter only on cache misses; hits are recorded but free.
///
/// Storage contract: returned references/pointers stay valid until Clear()
/// or destruction — inserts (including the interleaved inserts and
/// rehashes of one GetOrEmbedBatch call) never invalidate them. This holds
/// because std::unordered_map guarantees reference stability across
/// rehash; swapping the backing store for an open-addressing map would
/// break it (feature_cache_test.cc has the regression test).
///
/// Concurrency contract — thread-confined, not thread-safe: the pipeline
/// creates one cache per video and confines it to the worker evaluating
/// that video (see EvaluateDataset), so the class carries no mutex and no
/// TMERGE_GUARDED_BY annotations on purpose. Confinement cannot be
/// expressed to the thread-safety analysis (there is no lock to name), so
/// it is enforced one level up: EvaluateDataset's per-index ownership is
/// annotated and linted, the tsan CI job exercises the 2/8-thread paths,
/// and DESIGN.md "Static analysis & enforced invariants" records the rule
/// that sharing a FeatureCache across videos requires adding a lock AND
/// the annotations with it.
class FeatureCache {
 public:
  /// Returns the cached feature for `crop`, embedding (and charging one
  /// single inference) on a miss.
  const FeatureVector& GetOrEmbed(const CropRef& crop,
                                  const ReidModel& model,
                                  InferenceMeter& meter);

  /// Batched variant: embeds all uncached crops in one batched inference
  /// call (the TMerge-B / BL-B / PS-B GPU path), then returns features for
  /// every requested crop, in order.
  std::vector<const FeatureVector*> GetOrEmbedBatch(
      const std::vector<CropRef>& crops, const ReidModel& model,
      InferenceMeter& meter);

  /// Fallible variant of GetOrEmbed for fault-tolerant callers (see
  /// reid::ReidGuard, which adds retry/backoff/breaker policy on top).
  /// Three failpoints apply (catalog in fault/failpoint.h):
  ///   - "reid.cache.evict": the cached entry is dropped before lookup,
  ///     forcing a fresh (charged) embed;
  ///   - "reid.cache.miss": the lookup is forced to miss without eviction
  ///     (a re-embed is charged and refreshes the entry);
  ///   - "reid.embed" (via ReidModel::TryEmbed, keyed with `salt` so retry
  ///     attempts draw independently): the embed itself errors. The failed
  ///     attempt charges full single-inference time to the meter
  ///     (failed_embeds in UsageStats) and caches nothing.
  /// An injected "reid.latency" spike additionally charges its simulated
  /// seconds as a penalty. With no failpoints armed this is GetOrEmbed,
  /// charge for charge.
  core::Result<const FeatureVector*> TryGetOrEmbed(const CropRef& crop,
                                                   const ReidModel& model,
                                                   InferenceMeter& meter,
                                                   std::uint64_t salt = 0);

  /// Fallible variant of GetOrEmbedBatch: one single-shot attempt per crop
  /// (no retries — ReidGuard layers those by re-calling with the failed
  /// subset and a new salt). Failed crops yield nullptr entries and charge
  /// the per-item batch cost via ChargeFailedBatchItem; the batch charge
  /// covers successful misses only. The same failpoints as TryGetOrEmbed
  /// apply, with the same keys, so single and batched runs see the same
  /// fault schedule. With no failpoints armed this is GetOrEmbedBatch,
  /// charge for charge.
  std::vector<const FeatureVector*> TryGetOrEmbedBatch(
      const std::vector<CropRef>& crops, const ReidModel& model,
      InferenceMeter& meter, std::uint64_t salt = 0);

  /// True if the crop is already cached (no cost either way).
  bool Contains(std::uint64_t detection_id) const {
    return cache_.contains(detection_id);
  }

  std::size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  std::unordered_map<std::uint64_t, FeatureVector> cache_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_FEATURE_CACHE_H_
