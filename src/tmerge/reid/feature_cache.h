#ifndef TMERGE_REID_FEATURE_CACHE_H_
#define TMERGE_REID_FEATURE_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tmerge/core/status.h"
#include "tmerge/reid/candidate_index.h"
#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature.h"
#include "tmerge/reid/feature_store.h"
#include "tmerge/reid/reid_model.h"

namespace tmerge::reid {

/// Open-addressed hash index detection_id -> FeatureRef: flat array of
/// (key, value) slots, linear probing, power-of-two capacity. One cache
/// line per successful lookup in the common case, versus the bucket-node
/// pointer chase of std::unordered_map — this is the lookup half of the
/// selector hot path (the distance half lives in reid/distance_kernels.h).
///
/// Values are 32-bit FeatureRef indexes; two reserved values mark empty
/// and tombstoned slots, so a slot is 12 bytes of payload with no
/// out-of-line metadata. Erase (the "reid.cache.evict" fault path — real
/// workloads never evict mid-video) tombstones the slot; tombstones are
/// dropped at the next growth rehash. Rehashing moves slots but — unlike
/// the unordered_map it replaces — never touches feature storage, which
/// lives in the FeatureStore arena; that is what turns the storage
/// contract from reference stability into handle stability.
class DetectionIndex {
 public:
  /// Returns the handle for `key`, or an invalid ref when absent.
  /// Defined inline: this is the per-crop lookup on the selector hot
  /// path, and the call into another translation unit measurably costs
  /// (cache-lookup microbenchmark in bench_micro).
  FeatureRef Find(std::uint64_t key) const {
    if (slots_.empty()) return FeatureRef{};
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = MixKey(key) & mask;
    // An empty slot terminates the probe chain; tombstones do not (the
    // key may live past a tombstoned slot it once probed over).
    while (slots_[pos].value != kEmpty) {
      if (slots_[pos].value != kTombstone && slots_[pos].key == key) {
        return FeatureRef{slots_[pos].value};
      }
      pos = (pos + 1) & mask;
    }
    return FeatureRef{};
  }

  /// Inserts key -> ref. `key` must not be present (callers insert only
  /// after a failed Find).
  void Insert(std::uint64_t key, FeatureRef ref);

  /// Removes `key` if present; returns whether it was.
  bool Erase(std::uint64_t key);

  std::size_t size() const { return size_; }
  void Clear();

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kTombstone = 0xFFFFFFFEu;

  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = kEmpty;
  };

  /// Fibonacci (multiplicative) mixer. Detection ids are near-sequential
  /// per video; without a mixer, linear probing over a power-of-two table
  /// would turn runs of consecutive ids into one long probe chain. The
  /// odd multiplier spreads consecutive ids across the table and the fold
  /// seeds the masked low bits from the high half. Deliberately NOT the
  /// full splitmix64 finalizer: its two extra multiplies sit on the
  /// critical path of every probe (the slot address depends on the whole
  /// mix chain) and cost more than they buy on this key distribution.
  static std::uint64_t MixKey(std::uint64_t key) {
    key *= 0x9e3779b97f4a7c15ull;
    return key ^ (key >> 32);
  }

  void Grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;  ///< Live entries.
  std::size_t used_ = 0;  ///< Live entries plus tombstones.
};

/// Memoizes ReID features per detection, implementing the paper's reuse
/// optimization (§IV-B: "if either of the BBoxes' feature vectors has been
/// extracted in previous iterations it can be reused"). Inference cost is
/// charged to the meter only on cache misses; hits are recorded but free.
///
/// Storage contract — handle stability: feature floats live in a
/// FeatureStore slab arena owned by the cache; lookups hand out FeatureRef
/// handles and FeatureView views of that arena. Handles, and the data
/// pointers views resolve to, stay valid until Clear() or destruction —
/// inserts (including the interleaved inserts and index rehashes of one
/// GetOrEmbedBatch call) never invalidate them, because growth appends
/// slabs without moving existing ones and index rehashes move only the
/// 12-byte index slots. This replaces the pre-slab contract ("references
/// into the unordered_map survive rehash"); feature_cache_test.cc carries
/// the regression test for the new contract.
///
/// Concurrency contract — thread-confined, not thread-safe: the pipeline
/// creates one cache per video and confines it to the worker evaluating
/// that video (see EvaluateDataset), so the class carries no mutex and no
/// TMERGE_GUARDED_BY annotations on purpose. Confinement cannot be
/// expressed to the thread-safety analysis (there is no lock to name), so
/// it is enforced one level up: EvaluateDataset's per-index ownership is
/// annotated and linted, the tsan CI job exercises the 2/8-thread paths,
/// and DESIGN.md "Static analysis & enforced invariants" records the rule
/// that sharing a FeatureCache across videos requires adding a lock AND
/// the annotations with it.
class FeatureCache {
 public:
  /// Returns a view of the cached feature for `crop`, embedding (and
  /// charging one single inference) on a miss.
  FeatureView GetOrEmbed(const CropRef& crop, const ReidModel& model,
                         InferenceMeter& meter);

  /// Batched variant: embeds all uncached crops in one batched inference
  /// call (the TMerge-B / BL-B / PS-B GPU path), then returns views for
  /// every requested crop, in order.
  std::vector<FeatureView> GetOrEmbedBatch(const std::vector<CropRef>& crops,
                                           const ReidModel& model,
                                           InferenceMeter& meter);

  /// Fallible variant of GetOrEmbed for fault-tolerant callers (see
  /// reid::ReidGuard, which adds retry/backoff/breaker policy on top).
  /// Three failpoints apply (catalog in fault/failpoint.h):
  ///   - "reid.cache.evict": the cached entry is dropped from the index
  ///     before lookup (its arena slot is orphaned — the arena is
  ///     append-only), forcing a fresh (charged) embed into a new slot;
  ///   - "reid.cache.miss": the lookup is forced to miss without eviction
  ///     (a re-embed is charged and refreshes the slot in place, so
  ///     existing handles see the fresh floats);
  ///   - "reid.embed" (via ReidModel::TryEmbed, keyed with `salt` so retry
  ///     attempts draw independently): the embed itself errors. The failed
  ///     attempt charges full single-inference time to the meter
  ///     (failed_embeds in UsageStats) and caches nothing.
  /// An injected "reid.latency" spike additionally charges its simulated
  /// seconds as a penalty. With no failpoints armed this is GetOrEmbed,
  /// charge for charge.
  core::Result<FeatureView> TryGetOrEmbed(const CropRef& crop,
                                          const ReidModel& model,
                                          InferenceMeter& meter,
                                          std::uint64_t salt = 0);

  /// Fallible variant of GetOrEmbedBatch: one single-shot attempt per crop
  /// (no retries — ReidGuard layers those by re-calling with the failed
  /// subset and a new salt). Failed crops yield invalid views and charge
  /// the per-item batch cost via ChargeFailedBatchItem; the batch charge
  /// covers successful misses only. The same failpoints as TryGetOrEmbed
  /// apply, with the same keys, so single and batched runs see the same
  /// fault schedule. With no failpoints armed this is GetOrEmbedBatch,
  /// charge for charge.
  std::vector<FeatureView> TryGetOrEmbedBatch(
      const std::vector<CropRef>& crops, const ReidModel& model,
      InferenceMeter& meter, std::uint64_t salt = 0);

  /// Inserts a feature computed OUTSIDE the cache (the EmbedScheduler's
  /// compute/commit split: workers embed into private slots, the owning
  /// thread commits here). Charges nothing — the scheduler meters the
  /// inference itself. When the detection is already cached the existing
  /// entry wins (handle stability: a committed handle must never be
  /// re-pointed) and the duplicate is dropped; schedulers dedup against
  /// the cache before computing, so a hit here means the crop raced an
  /// earlier commit of the same group, which the scheduler forbids.
  FeatureView Put(std::uint64_t detection_id, const FeatureVector& feature);

  /// True if the crop is already cached (no cost either way).
  bool Contains(std::uint64_t detection_id) const {
    return index_.Find(detection_id).valid();
  }

  /// Handle lookup with no embed fallback (no cost either way); invalid
  /// when absent.
  FeatureRef Find(std::uint64_t detection_id) const {
    return index_.Find(detection_id);
  }

  /// Resolves a handle returned by Find.
  FeatureView View(FeatureRef ref) const { return store_.View(ref); }

  /// The backing arena (kernel gather paths, diagnostics).
  const FeatureStore& store() const { return store_; }

  /// Mutable arena access for the quantized-mirror build (EnsureInt8Mirror
  /// / EnsureFp16Mirror): mirrors are derived read-caches, so extending
  /// them never perturbs the fp64 rows handles point at.
  FeatureStore& mutable_store() { return store_; }

  /// Lazily creates (first call fixes the options) and refreshes the
  /// coarse cluster router over this cache's arena (DESIGN.md §15.3).
  /// Thread-confined with the cache; Clear() drops it.
  CoarseClusterIndex& EnsureClusterIndex(const ClusterIndexOptions& options);

  /// The router, if EnsureClusterIndex ever ran; nullptr otherwise.
  const CoarseClusterIndex* cluster_index() const {
    return cluster_index_.get();
  }

  /// Cached (indexed) features; orphaned arena slots are not counted.
  std::size_t size() const { return index_.size(); }

  void Clear() {
    index_.Clear();
    store_.Clear();
    cluster_index_.reset();
  }

 private:
  /// Appends a freshly embedded feature and indexes it.
  FeatureRef Insert(std::uint64_t detection_id, const FeatureVector& feature);

  FeatureStore store_;
  DetectionIndex index_;
  std::unique_ptr<CoarseClusterIndex> cluster_index_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_FEATURE_CACHE_H_
