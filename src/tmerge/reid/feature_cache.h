#ifndef TMERGE_REID_FEATURE_CACHE_H_
#define TMERGE_REID_FEATURE_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature.h"
#include "tmerge/reid/reid_model.h"

namespace tmerge::reid {

/// Memoizes ReID features per detection, implementing the paper's reuse
/// optimization (§IV-B: "if either of the BBoxes' feature vectors has been
/// extracted in previous iterations it can be reused"). Inference cost is
/// charged to the meter only on cache misses; hits are recorded but free.
///
/// Storage contract: returned references/pointers stay valid until Clear()
/// or destruction — inserts (including the interleaved inserts and
/// rehashes of one GetOrEmbedBatch call) never invalidate them. This holds
/// because std::unordered_map guarantees reference stability across
/// rehash; swapping the backing store for an open-addressing map would
/// break it (feature_cache_test.cc has the regression test).
///
/// Concurrency contract — thread-confined, not thread-safe: the pipeline
/// creates one cache per video and confines it to the worker evaluating
/// that video (see EvaluateDataset), so the class carries no mutex and no
/// TMERGE_GUARDED_BY annotations on purpose. Confinement cannot be
/// expressed to the thread-safety analysis (there is no lock to name), so
/// it is enforced one level up: EvaluateDataset's per-index ownership is
/// annotated and linted, the tsan CI job exercises the 2/8-thread paths,
/// and DESIGN.md "Static analysis & enforced invariants" records the rule
/// that sharing a FeatureCache across videos requires adding a lock AND
/// the annotations with it.
class FeatureCache {
 public:
  /// Returns the cached feature for `crop`, embedding (and charging one
  /// single inference) on a miss.
  const FeatureVector& GetOrEmbed(const CropRef& crop,
                                  const ReidModel& model,
                                  InferenceMeter& meter);

  /// Batched variant: embeds all uncached crops in one batched inference
  /// call (the TMerge-B / BL-B / PS-B GPU path), then returns features for
  /// every requested crop, in order.
  std::vector<const FeatureVector*> GetOrEmbedBatch(
      const std::vector<CropRef>& crops, const ReidModel& model,
      InferenceMeter& meter);

  /// True if the crop is already cached (no cost either way).
  bool Contains(std::uint64_t detection_id) const {
    return cache_.contains(detection_id);
  }

  std::size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  std::unordered_map<std::uint64_t, FeatureVector> cache_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_FEATURE_CACHE_H_
