#include "tmerge/reid/reid_model.h"

#include "tmerge/core/status.h"
#include "tmerge/fault/failpoint.h"

namespace tmerge::reid {

namespace {

/// Mixes a retry salt into a detection id so attempt k of the same crop
/// keys an independent failpoint draw (salt 0 = the first attempt).
std::uint64_t AttemptKey(std::uint64_t detection_id, std::uint64_t salt) {
  return detection_id ^ (salt * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

core::Result<FeatureVector> ReidModel::TryEmbed(const CropRef& crop,
                                                std::uint64_t salt) const {
  if (TMERGE_FAILPOINT("reid.embed", AttemptKey(crop.detection_id, salt))) {
    return core::Status::Unavailable(
        "injected reid.embed failure for detection " +
        std::to_string(crop.detection_id));
  }
  return Embed(crop);
}

PrecomputedReidModel::PrecomputedReidModel(
    std::unordered_map<std::uint64_t, FeatureVector> features,
    double normalization_scale)
    : features_(std::move(features)),
      normalization_scale_(normalization_scale) {
  TMERGE_CHECK(!features_.empty());
  TMERGE_CHECK(normalization_scale_ > 0.0);
  feature_dim_ = features_.begin()->second.size();
  TMERGE_CHECK(feature_dim_ > 0);
  for (const auto& [id, feature] : features_) {
    TMERGE_CHECK(feature.size() == feature_dim_);
  }
}

FeatureVector PrecomputedReidModel::Embed(const CropRef& crop) const {
  auto it = features_.find(crop.detection_id);
  TMERGE_CHECK(it != features_.end());
  return it->second;
}

}  // namespace tmerge::reid
