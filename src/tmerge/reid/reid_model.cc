#include "tmerge/reid/reid_model.h"

#include "tmerge/core/status.h"

namespace tmerge::reid {

PrecomputedReidModel::PrecomputedReidModel(
    std::unordered_map<std::uint64_t, FeatureVector> features,
    double normalization_scale)
    : features_(std::move(features)),
      normalization_scale_(normalization_scale) {
  TMERGE_CHECK(!features_.empty());
  TMERGE_CHECK(normalization_scale_ > 0.0);
  feature_dim_ = features_.begin()->second.size();
  TMERGE_CHECK(feature_dim_ > 0);
  for (const auto& [id, feature] : features_) {
    TMERGE_CHECK(feature.size() == feature_dim_);
  }
}

FeatureVector PrecomputedReidModel::Embed(const CropRef& crop) const {
  auto it = features_.find(crop.detection_id);
  TMERGE_CHECK(it != features_.end());
  return it->second;
}

}  // namespace tmerge::reid
