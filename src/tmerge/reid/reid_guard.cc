#include "tmerge/reid/reid_guard.h"

#include <cstddef>

#include "tmerge/obs/metrics.h"

namespace tmerge::reid {

namespace {

void CountRetries(std::int64_t count) {
  if (count > 0 && obs::Enabled()) {
    static obs::Counter& retries =
        obs::DefaultRegistry().GetCounter("reid.retries");
    retries.Add(count);
  }
}

void CountBreakerOpen() {
  if (obs::Enabled()) {
    static obs::Counter& opened =
        obs::DefaultRegistry().GetCounter("reid.breaker_open");
    opened.Add();
  }
}

}  // namespace

void ReidGuard::RecordOutcome(bool success) {
  if (success) {
    consecutive_failures_ = 0;
    return;
  }
  ++failed_pulls_;
  ++consecutive_failures_;
  if (!breaker_open_ && policy_.breaker_failure_threshold > 0 &&
      consecutive_failures_ >= policy_.breaker_failure_threshold) {
    breaker_open_ = true;
    CountBreakerOpen();
  }
}

FeatureView ReidGuard::TryGet(const CropRef& crop) {
  if (breaker_open_) {
    ++failed_pulls_;
    return FeatureView();
  }
  for (int attempt = 0;; ++attempt) {
    core::Result<FeatureView> result = cache_.TryGetOrEmbed(
        crop, model_, meter_, static_cast<std::uint64_t>(attempt));
    if (result.ok()) {
      RecordOutcome(true);
      return result.value();
    }
    if (attempt >= policy_.max_retries) break;
    meter_.ChargePenalty(policy_.backoff_base_seconds *
                         static_cast<double>(std::int64_t{1} << attempt));
    ++retries_;
    CountRetries(1);
  }
  RecordOutcome(false);
  return FeatureView();
}

std::vector<FeatureView> ReidGuard::TryGetBatch(
    const std::vector<CropRef>& crops) {
  if (breaker_open_) {
    failed_pulls_ += static_cast<std::int64_t>(crops.size());
    return std::vector<FeatureView>(crops.size());
  }
  std::vector<FeatureView> out =
      cache_.TryGetOrEmbedBatch(crops, model_, meter_, 0);
  for (int attempt = 1; attempt <= policy_.max_retries; ++attempt) {
    std::vector<std::size_t> failed;
    std::vector<CropRef> retry;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (!out[i].valid()) {
        failed.push_back(i);
        retry.push_back(crops[i]);
      }
    }
    if (failed.empty()) break;
    // One backoff per retry round: the whole retry batch waits together.
    meter_.ChargePenalty(policy_.backoff_base_seconds *
                         static_cast<double>(std::int64_t{1}
                                             << (attempt - 1)));
    retries_ += static_cast<std::int64_t>(retry.size());
    CountRetries(static_cast<std::int64_t>(retry.size()));
    std::vector<FeatureView> retried = cache_.TryGetOrEmbedBatch(
        retry, model_, meter_, static_cast<std::uint64_t>(attempt));
    for (std::size_t j = 0; j < failed.size(); ++j) {
      out[failed[j]] = retried[j];
    }
  }
  // Outcomes are recorded in crop order so breaker behaviour is identical
  // to issuing the pulls one by one.
  for (FeatureView feature : out) {
    RecordOutcome(feature.valid());
  }
  return out;
}

}  // namespace tmerge::reid
