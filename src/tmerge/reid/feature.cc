#include "tmerge/reid/feature.h"

#include "tmerge/core/status.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::reid {

double FeatureDistance(const FeatureVector& a, const FeatureVector& b) {
  TMERGE_DCHECK(a.size() == b.size());
  return kernels::Distance(a.data(), b.data(), a.size());
}

}  // namespace tmerge::reid
