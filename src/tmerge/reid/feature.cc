#include "tmerge/reid/feature.h"

#include <cmath>

#include "tmerge/core/status.h"

namespace tmerge::reid {

double FeatureDistance(const FeatureVector& a, const FeatureVector& b) {
  TMERGE_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace tmerge::reid
