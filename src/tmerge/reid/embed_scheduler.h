#ifndef TMERGE_REID_EMBED_SCHEDULER_H_
#define TMERGE_REID_EMBED_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "tmerge/core/mutex.h"
#include "tmerge/core/thread_annotations.h"
#include "tmerge/core/thread_pool.h"
#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/reid_model.h"

namespace tmerge::reid {

/// Knobs of the batched embed scheduler.
struct EmbedSchedulerConfig {
  /// Hard cap on crops per batched inference call.
  std::int32_t max_batch_size = 64;
  /// Bound on batches dispatched but not yet completed when running
  /// asynchronously on a thread pool. Dispatch blocks (on the scheduler's
  /// own condvar, never in a pool worker) once the bound is reached, so
  /// queued work — and the private result slots backing it — stays bounded
  /// no matter how many crops one group requests.
  std::int32_t max_inflight_batches = 4;
  /// Batches smaller than this run on the single-inference path instead
  /// (a batch launch only pays off past the cost model's break-even
  /// point). Zero — the default — derives the break-even size from the
  /// CostModel: ceil(batch_fixed / (single - batch_item)), clamped to at
  /// least 1; when a batched crop is not cheaper than a single one the
  /// break-even size is unreachable and every crop goes single.
  std::int32_t min_batch_size = 0;
};

/// Counters of one EmbedAll group and, accumulated, of the scheduler's
/// lifetime. The conservation identity
///   requested == cache_hits + dedup_hits + embedded + failed_crops
/// (embedded = batched_crops + single_crops) holds for every group and for
/// the lifetime totals — the "no lost or duplicated requests" invariant
/// the scheduler fault suite pins.
struct EmbedSchedulerStats {
  std::int64_t groups = 0;
  std::int64_t requested = 0;
  /// Requests skipped because the feature was already cached.
  std::int64_t cache_hits = 0;
  /// Requests skipped as duplicates of an earlier crop in the same group.
  std::int64_t dedup_hits = 0;
  std::int64_t batches = 0;
  std::int64_t batched_crops = 0;
  std::int64_t single_crops = 0;
  std::int64_t failed_crops = 0;
  /// Batches whose dispatch the "reid.sched.defer" failpoint pushed to the
  /// back of the dispatch queue (commit order is unaffected).
  std::int64_t deferred_batches = 0;
  /// Whole-batch dispatch failures injected by "reid.embed.batch_fail";
  /// the batch's crops are retried on the single path.
  std::int64_t batch_failures = 0;
  /// Compute tasks run inline because ThreadPool::Submit rejected them
  /// (the "core.pool.submit" failpoint's degradation path) or because the
  /// caller was itself a pool worker.
  std::int64_t inline_dispatches = 0;
  /// High-water mark of concurrently in-flight batches.
  std::int64_t peak_inflight = 0;
  /// Batches dispatched but not yet committed. Always zero at the end of
  /// every EmbedAll and after Flush() — the clean end-of-stream invariant.
  std::int64_t outstanding = 0;
};

/// Coalesces embed requests into CostModel-optimal batched inference
/// calls, optionally computing them asynchronously on a core::ThreadPool.
///
/// One EmbedAll call is a *group*: an ordered list of crops bound for one
/// (FeatureCache, ReidModel, InferenceMeter) triple — one video or camera,
/// matching the cache's thread-confinement contract. The group is deduped
/// (first occurrence wins, cache hits skipped), planned into batches of at
/// most max_batch_size (a tail below the break-even size takes the
/// single-inference path), dispatched, and committed:
///
///   - Compute phase: ReidModel::TryEmbed per crop into a private slot per
///     batch. With a pool, batches are submitted as tasks under the
///     in-flight bound; without one — or when called from a worker of that
///     same pool, where blocking on the bound could starve the pool — the
///     batch computes inline on the calling thread.
///   - Commit phase: ALWAYS on the calling thread, in plan order — cache
///     inserts (FeatureCache::Put) and meter charges happen in the same
///     deterministic sequence whether the compute ran inline or on
///     workers, which is what makes sync and async runs bit-identical in
///     results, charges and stats (pinned by embed_scheduler_test.cc).
///
/// Fault surface (fault/failpoint.h): "reid.embed" fires per crop inside
/// TryEmbed exactly as on the unscheduled paths; "reid.embed.batch_fail"
/// fails a whole batch dispatch — the launch cost is charged as a penalty
/// and the crops retry individually on the single path under a fresh
/// salt; "reid.sched.defer" defers a batch's dispatch behind the rest of
/// the group. All three are keyed by group-local content (first detection
/// id, batch index, salt), so the schedule is deterministic regardless of
/// how groups interleave across cameras. "reid.latency" spikes are charged
/// per embedded crop at commit, mirroring the cache's fallible paths.
///
/// Thread-safety: the scheduler object is shared across concurrent groups
/// (streaming merge jobs of different cameras); one mutex guards the
/// counters and the in-flight bound. The cache and meter of a group are
/// only ever touched by that group's calling thread.
class EmbedScheduler {
 public:
  explicit EmbedScheduler(const EmbedSchedulerConfig& config,
                          core::ThreadPool* pool = nullptr);

  EmbedScheduler(const EmbedScheduler&) = delete;
  EmbedScheduler& operator=(const EmbedScheduler&) = delete;

  /// Embeds every uncached crop of `crops` into `cache`, charging `meter`.
  /// Returns the group's own stats (also folded into the lifetime stats).
  /// `salt` decorrelates fault verdicts across repeated runs, exactly like
  /// the FeatureCache::TryGetOrEmbed salt.
  EmbedSchedulerStats EmbedAll(const std::vector<CropRef>& crops,
                               FeatureCache& cache, const ReidModel& model,
                               InferenceMeter& meter, std::uint64_t salt = 0)
      TMERGE_EXCLUDES(mutex_);

  /// Blocks until no batch is in flight. EmbedAll is synchronous, so this
  /// returns immediately unless concurrent groups are mid-run; the
  /// end-of-stream force-flush calls it to assert a clean drain.
  void Flush() TMERGE_EXCLUDES(mutex_);

  /// Lifetime totals across all groups.
  EmbedSchedulerStats stats() const TMERGE_EXCLUDES(mutex_);

  const EmbedSchedulerConfig& config() const { return config_; }

  /// The break-even batch size for `model`: batches below it are cheaper
  /// as singles. Exposed for tests and the planning docs in DESIGN.md §14.
  static std::int32_t BreakEvenBatchSize(const CostModel& model);

 private:
  struct Batch;

  const EmbedSchedulerConfig config_;
  core::ThreadPool* const pool_;

  mutable core::Mutex mutex_;
  core::CondVar batch_cv_;
  EmbedSchedulerStats totals_ TMERGE_GUARDED_BY(mutex_);
  std::int64_t inflight_ TMERGE_GUARDED_BY(mutex_) = 0;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_EMBED_SCHEDULER_H_
