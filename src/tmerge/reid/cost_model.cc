#include "tmerge/reid/cost_model.h"

#include "tmerge/core/status.h"

namespace tmerge::reid {

UsageStats& UsageStats::operator+=(const UsageStats& other) {
  single_inferences += other.single_inferences;
  batched_crops += other.batched_crops;
  batch_calls += other.batch_calls;
  distance_evals += other.distance_evals;
  cache_hits += other.cache_hits;
  failed_embeds += other.failed_embeds;
  gate_accepted += other.gate_accepted;
  gate_rejected += other.gate_rejected;
  gate_ambiguous += other.gate_ambiguous;
  return *this;
}

void InferenceMeter::ChargeSingle(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  stats_.single_inferences += count;
  clock_.Advance(model_.single_inference_seconds * count);
}

void InferenceMeter::ChargeBatch(std::int64_t batch_size) {
  TMERGE_CHECK(batch_size >= 0);
  if (batch_size == 0) return;
  stats_.batch_calls += 1;
  stats_.batched_crops += batch_size;
  clock_.Advance(model_.batch_fixed_seconds +
                 model_.batch_item_seconds * batch_size);
}

void InferenceMeter::ChargeDistance(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  stats_.distance_evals += count;
  clock_.Advance(model_.distance_seconds * count);
}

void InferenceMeter::ChargeDistanceBatched(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  stats_.distance_evals += count;
  clock_.Advance(model_.batched_distance_seconds * count);
}

void InferenceMeter::ChargeOverhead(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  clock_.Advance(model_.per_sample_overhead_seconds * count);
}

void InferenceMeter::RecordCacheHit(std::int64_t count) {
  stats_.cache_hits += count;
}

void InferenceMeter::ChargeFailedSingle(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  stats_.failed_embeds += count;
  clock_.Advance(model_.single_inference_seconds * count);
}

void InferenceMeter::ChargeFailedBatchItem(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  stats_.failed_embeds += count;
  clock_.Advance(model_.batch_item_seconds * count);
}

void InferenceMeter::ChargePenalty(double seconds) {
  clock_.Advance(seconds);
}

void InferenceMeter::ChargeGateChecks(std::int64_t count) {
  TMERGE_CHECK(count >= 0);
  clock_.Advance(model_.gate_check_seconds * count);
}

void InferenceMeter::RecordGateVerdicts(std::int64_t accepted,
                                        std::int64_t rejected,
                                        std::int64_t ambiguous) {
  TMERGE_CHECK(accepted >= 0 && rejected >= 0 && ambiguous >= 0);
  stats_.gate_accepted += accepted;
  stats_.gate_rejected += rejected;
  stats_.gate_ambiguous += ambiguous;
}

}  // namespace tmerge::reid
