#ifndef TMERGE_REID_FEATURE_STORE_H_
#define TMERGE_REID_FEATURE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tmerge/reid/feature.h"

namespace tmerge::reid {

/// Stable handle to one feature inside a FeatureStore: a dense 32-bit
/// ordinal (the append order). Handles stay valid until the store is
/// cleared or destroyed — the "handle stability" contract FeatureCache
/// documents, replacing the old unordered_map reference-stability one.
struct FeatureRef {
  static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

  std::uint32_t index = kInvalidIndex;

  bool valid() const { return index != kInvalidIndex; }

  friend bool operator==(FeatureRef a, FeatureRef b) {
    return a.index == b.index;
  }
  friend bool operator!=(FeatureRef a, FeatureRef b) { return !(a == b); }
};

/// Append-only arena owning every feature's floats for one video in
/// contiguous fixed-capacity slabs. Replaces the per-feature heap
/// allocations (one std::vector<double> per cached feature, scattered
/// across the heap by the allocator) that made the selector inner loops
/// pointer-chase: consecutive features now share cache lines, the distance
/// kernels (reid/distance_kernels.h) read straight-line memory, and a
/// whole window's worth of features fits a few slabs.
///
/// Layout: slab s holds features [s * kSlabFeatures, (s+1) * kSlabFeatures)
/// at dim_ doubles apiece. Slabs are never reallocated or moved once
/// created — growth appends a new slab — so both FeatureRef handles AND
/// the FeatureView data pointers they resolve to are stable until Clear().
/// The arena never reclaims individual slots; an "evicted" feature (a
/// fault-injection-only path, see FeatureCache) merely loses its index
/// entry and its slot is re-embedded into a fresh slot.
///
/// The feature dimension is registered by the first Append and validated
/// (TMERGE_CHECK) on every later one — this is the single validation point
/// that lets the distance kernels drop their per-call dimension check to
/// debug-only.
///
/// Concurrency: thread-confined like the FeatureCache built on top of it
/// (one store per video, owned by the worker evaluating that video).
class FeatureStore {
 public:
  /// Features per slab. At the synthetic model's dim 16 this is 128 KiB of
  /// payload per slab — big enough to amortize allocation, small enough
  /// that short videos don't overcommit.
  static constexpr std::size_t kSlabFeatures = 1024;

  FeatureStore() = default;

  /// Copies `dim` doubles into the arena and returns the new handle. The
  /// first call registers the store's dimension; later calls must match it.
  FeatureRef Append(const double* data, std::size_t dim);
  FeatureRef Append(const FeatureVector& feature) {
    return Append(feature.data(), feature.size());
  }

  /// Overwrites the slot of an existing handle in place (the forced-miss
  /// refresh path). The handle, and any view of it, stays valid and sees
  /// the new floats.
  void Overwrite(FeatureRef ref, const double* data, std::size_t dim);
  void Overwrite(FeatureRef ref, const FeatureVector& feature) {
    Overwrite(ref, feature.data(), feature.size());
  }

  /// Resolves a handle to its storage. O(1): one shift/mask plus one
  /// indexed load.
  FeatureView View(FeatureRef ref) const {
    return FeatureView(Slot(ref), dim_);
  }

  /// Raw slot pointer (the distance kernels' gather path).
  const double* Data(FeatureRef ref) const { return Slot(ref); }

  /// Registered feature dimension; 0 until the first Append.
  std::size_t dim() const { return dim_; }

  /// Number of features appended (orphaned slots included).
  std::size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Releases every slab and forgets the registered dimension. Invalidates
  /// all handles and views — the one operation allowed to.
  void Clear();

  // --- Quantized mirror slabs (DESIGN.md §15.2) -------------------------
  //
  // Compact read-only mirrors of the fp64 rows for the two-phase screen:
  // int8 symmetric-quantized (1 byte/element, per-row scale) and IEEE
  // binary16 (2 bytes/element). Mirrors are built lazily — EnsureMirror
  // extends a mirror to cover every row appended so far, converting only
  // rows added since the last call — and need no invalidation because the
  // arena is append-only (Overwrite, the fault-injection-only refresh
  // path, requantizes the touched row in place). Mirror slabs shadow the
  // fp64 slabs one-for-one and are never moved once created, so mirror
  // row pointers share the handle-stability contract.
  //
  // Each mirrored row records the max elementwise |original -
  // reconstructed| in double, rounded UP to float — the per-row `h` term
  // the screen's over-fetch bound consumes (§15.2: the normalized-score
  // error of a row pair is at most (h_a + h_b) * sqrt(dim) / scale).

  /// Extends the int8 mirror to cover rows [0, size()).
  void EnsureInt8Mirror();

  /// Extends the fp16 mirror to cover rows [0, size()).
  void EnsureFp16Mirror();

  /// Rows currently covered by each mirror (monotone except Clear).
  std::size_t int8_rows() const { return int8_rows_; }
  std::size_t fp16_rows() const { return fp16_rows_; }

  /// Mirror row accessors. Valid only for refs below the corresponding
  /// *_rows() watermark (debug-checked).
  const std::int8_t* Int8Row(FeatureRef ref) const;
  const std::uint16_t* Fp16Row(FeatureRef ref) const;

  /// Symmetric quantization scale of a mirrored row: original value ~=
  /// scale * quantized. Zero for an all-zero row (whose mirror is exact).
  float Int8Scale(FeatureRef ref) const;

  /// Upper bound on max elementwise |original - reconstructed| of a
  /// mirrored row.
  float Int8Error(FeatureRef ref) const;
  float Fp16Error(FeatureRef ref) const;

 private:
  const double* Slot(FeatureRef ref) const;
  double* MutableSlot(FeatureRef ref);

  void QuantizeInt8Row(std::size_t row);
  void QuantizeFp16Row(std::size_t row);

  std::size_t dim_ = 0;
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<double[]>> slabs_;

  std::size_t int8_rows_ = 0;
  std::vector<std::unique_ptr<std::int8_t[]>> int8_slabs_;
  std::vector<float> int8_scales_;  ///< Per row, indexed by ref.
  std::vector<float> int8_errors_;

  std::size_t fp16_rows_ = 0;
  std::vector<std::unique_ptr<std::uint16_t[]>> fp16_slabs_;
  std::vector<float> fp16_errors_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_FEATURE_STORE_H_
