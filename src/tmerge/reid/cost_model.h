#ifndef TMERGE_REID_COST_MODEL_H_
#define TMERGE_REID_COST_MODEL_H_

#include <cstdint>

#include "tmerge/core/sim_clock.h"

namespace tmerge::reid {

/// Deterministic time costs of the simulated inference hardware. The paper's
/// FPS numbers are dominated by ReID model invocations on a GPU; here each
/// operation charges a fixed duration to a SimClock so benches reproduce the
/// paper's *relative* performance (who wins, by what factor) independent of
/// the host machine. Defaults are loosely calibrated to the paper's setup
/// (§I: the brute-force approach takes >3 minutes on an ~825-frame MOT-17
/// feed with ~8.7M BBox-pair distances and ~12k feature extractions).
struct CostModel {
  /// One ReID forward pass for a single crop (no batching).
  double single_inference_seconds = 5e-3;
  /// Fixed overhead of launching one batched inference (kernel launch,
  /// transfer setup).
  double batch_fixed_seconds = 1e-3;
  /// Marginal per-crop cost inside a batch (GPU amortization).
  double batch_item_seconds = 2.5e-4;
  /// One feature-vector distance evaluation on the host path.
  double distance_seconds = 1e-5;
  /// Per-distance cost when evaluated inside a GPU batch (the "-B"
  /// algorithm variants); far cheaper thanks to amortization.
  double batched_distance_seconds = 2e-7;
  /// Bookkeeping overhead charged per algorithm iteration per live pair
  /// (Thompson draws, bound updates). Tiny but nonzero so iteration-heavy
  /// methods do not come out free.
  double per_sample_overhead_seconds = 4e-8;
  /// One pair-gate evidence evaluation (IoU extrapolation + velocity
  /// bounds, tmerge::gate) — host arithmetic over a handful of boxes, so
  /// orders of magnitude below an inference but nonzero so gating is never
  /// modeled as free.
  double gate_check_seconds = 1e-7;
};

/// Operation counters accumulated by a selector run.
struct UsageStats {
  std::int64_t single_inferences = 0;
  std::int64_t batched_crops = 0;
  std::int64_t batch_calls = 0;
  std::int64_t distance_evals = 0;
  std::int64_t cache_hits = 0;
  /// Embed attempts that errored (injected or real). Each one was charged
  /// inference time but produced no feature — the "failed pulls charged to
  /// the cost model" of the degraded mode (DESIGN.md "Fault model").
  std::int64_t failed_embeds = 0;
  /// Pair-gate verdicts (tmerge::gate). Zero on every ungated run; when a
  /// GatedSelector classified the window, the three always sum to the
  /// window's pair count (pinned by tests/gate/gate_property_test.cc).
  std::int64_t gate_accepted = 0;
  std::int64_t gate_rejected = 0;
  std::int64_t gate_ambiguous = 0;

  /// Total crops embedded (single + batched), excluding cache hits and
  /// failed attempts.
  std::int64_t TotalInferences() const {
    return single_inferences + batched_crops;
  }

  UsageStats& operator+=(const UsageStats& other);
};

/// Charges operations against a CostModel and accumulates both simulated
/// time and counters. One meter per selector run.
class InferenceMeter {
 public:
  explicit InferenceMeter(const CostModel& model) : model_(model) {}

  /// Charges `count` unbatched ReID forward passes.
  void ChargeSingle(std::int64_t count = 1);

  /// Charges one batched inference over `batch_size` crops. A zero-sized
  /// batch charges nothing.
  void ChargeBatch(std::int64_t batch_size);

  /// Charges `count` distance evaluations on the host path.
  void ChargeDistance(std::int64_t count = 1);

  /// Charges `count` distance evaluations on the batched (GPU) path.
  void ChargeDistanceBatched(std::int64_t count);

  /// Charges algorithm bookkeeping for `count` per-pair operations.
  void ChargeOverhead(std::int64_t count);

  /// Records `count` feature-cache hits (free, but reported).
  void RecordCacheHit(std::int64_t count = 1);

  /// Charges one *failed* unbatched forward pass: full inference time is
  /// spent (the model ran and errored/timed out) but no feature exists, so
  /// only failed_embeds — never single_inferences — advances.
  void ChargeFailedSingle(std::int64_t count = 1);

  /// Charges `count` failed crops inside a batched inference (the per-item
  /// marginal cost; the batch's fixed cost is charged by ChargeBatch for
  /// the surviving crops).
  void ChargeFailedBatchItem(std::int64_t count);

  /// Charges raw simulated seconds with no counter: retry backoff and
  /// injected latency spikes. Deterministic sim-clock time, never a sleep.
  void ChargePenalty(double seconds);

  /// Charges `count` pair-gate evidence evaluations (tmerge::gate).
  void ChargeGateChecks(std::int64_t count);

  /// Records gate verdict counts (free; the evidence cost is charged by
  /// ChargeGateChecks).
  void RecordGateVerdicts(std::int64_t accepted, std::int64_t rejected,
                          std::int64_t ambiguous);

  double elapsed_seconds() const { return clock_.elapsed_seconds(); }
  const UsageStats& stats() const { return stats_; }
  const CostModel& model() const { return model_; }

 private:
  CostModel model_;
  core::SimClock clock_;
  UsageStats stats_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_COST_MODEL_H_
