#include "tmerge/reid/distance_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "tmerge/core/status.h"

namespace tmerge::reid::kernels {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define TMERGE_RESTRICT __restrict__
#else
#define TMERGE_RESTRICT
#endif

#ifdef TMERGE_SCALAR_KERNELS
constexpr bool kDefaultScalar = true;
#else
constexpr bool kDefaultScalar = false;
#endif

std::atomic<bool> g_use_scalar{kDefaultScalar};

/// The unrolled kernel. Four differences per round trip keep the
/// subtract/multiply units busy; the single accumulator keeps the
/// reduction order identical to the scalar reference (bit-compatibility
/// contract in the header). FP contraction (a*b+c -> fma) applies to the
/// same statements in both implementations, so it cannot split them.
inline double UnrolledSquared(const double* TMERGE_RESTRICT a,
                              const double* TMERGE_RESTRICT b,
                              std::size_t dim) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    sum += d0 * d0;
    sum += d1 * d1;
    sum += d2 * d2;
    sum += d3 * d3;
  }
  for (; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Four-row one-vs-many block. Each row keeps its own accumulator and
/// accumulates in exactly the scalar order, so every output is
/// bit-identical to ScalarSquaredDistance(query, row, dim). The win is
/// across rows, where no reduction order is at stake: four independent
/// chains hide the accumulator latency, and on SSE2 two rows ride one
/// 2-lane vector op (IEEE arithmetic is per-lane, so lane k is the
/// scalar chain of row k, bit for bit) — halving the sub/mul/add count
/// that makes the single-pair kernel throughput-bound.
#if defined(__SSE2__)
inline void FourRowsSquared(const double* TMERGE_RESTRICT q,
                            const double* TMERGE_RESTRICT b0,
                            const double* TMERGE_RESTRICT b1,
                            const double* TMERGE_RESTRICT b2,
                            const double* TMERGE_RESTRICT b3,
                            std::size_t dim, double* TMERGE_RESTRICT out) {
  __m128d s01 = _mm_setzero_pd();
  __m128d s23 = _mm_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m128d q_i = _mm_set1_pd(q[i]);
    // _mm_set_pd packs (hi, lo): lane 0 carries the even row.
    const __m128d b01 = _mm_set_pd(b1[i], b0[i]);
    const __m128d b23 = _mm_set_pd(b3[i], b2[i]);
    const __m128d d01 = _mm_sub_pd(q_i, b01);
    const __m128d d23 = _mm_sub_pd(q_i, b23);
    s01 = _mm_add_pd(s01, _mm_mul_pd(d01, d01));
    s23 = _mm_add_pd(s23, _mm_mul_pd(d23, d23));
  }
  _mm_storeu_pd(out, s01);
  _mm_storeu_pd(out + 2, s23);
}

/// Eight-row block: same per-lane contract as FourRowsSquared with the
/// query broadcast and loop control amortized over twice the rows.
inline void EightRowsSquared(const double* TMERGE_RESTRICT q,
                             const double* const* rows, std::size_t dim,
                             double* TMERGE_RESTRICT out) {
  const double* TMERGE_RESTRICT b0 = rows[0];
  const double* TMERGE_RESTRICT b1 = rows[1];
  const double* TMERGE_RESTRICT b2 = rows[2];
  const double* TMERGE_RESTRICT b3 = rows[3];
  const double* TMERGE_RESTRICT b4 = rows[4];
  const double* TMERGE_RESTRICT b5 = rows[5];
  const double* TMERGE_RESTRICT b6 = rows[6];
  const double* TMERGE_RESTRICT b7 = rows[7];
  __m128d s01 = _mm_setzero_pd();
  __m128d s23 = _mm_setzero_pd();
  __m128d s45 = _mm_setzero_pd();
  __m128d s67 = _mm_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m128d q_i = _mm_set1_pd(q[i]);
    const __m128d d01 = _mm_sub_pd(q_i, _mm_set_pd(b1[i], b0[i]));
    const __m128d d23 = _mm_sub_pd(q_i, _mm_set_pd(b3[i], b2[i]));
    const __m128d d45 = _mm_sub_pd(q_i, _mm_set_pd(b5[i], b4[i]));
    const __m128d d67 = _mm_sub_pd(q_i, _mm_set_pd(b7[i], b6[i]));
    s01 = _mm_add_pd(s01, _mm_mul_pd(d01, d01));
    s23 = _mm_add_pd(s23, _mm_mul_pd(d23, d23));
    s45 = _mm_add_pd(s45, _mm_mul_pd(d45, d45));
    s67 = _mm_add_pd(s67, _mm_mul_pd(d67, d67));
  }
  _mm_storeu_pd(out, s01);
  _mm_storeu_pd(out + 2, s23);
  _mm_storeu_pd(out + 4, s45);
  _mm_storeu_pd(out + 6, s67);
}
#else
inline void FourRowsSquared(const double* TMERGE_RESTRICT q,
                            const double* TMERGE_RESTRICT b0,
                            const double* TMERGE_RESTRICT b1,
                            const double* TMERGE_RESTRICT b2,
                            const double* TMERGE_RESTRICT b3,
                            std::size_t dim, double* TMERGE_RESTRICT out) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double q_i = q[i];
    const double d0 = q_i - b0[i];
    const double d1 = q_i - b1[i];
    const double d2 = q_i - b2[i];
    const double d3 = q_i - b3[i];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}
#endif

}  // namespace

bool UseScalarKernels() {
  return g_use_scalar.load(std::memory_order_relaxed);
}

void SetUseScalarKernels(bool scalar) {
  g_use_scalar.store(scalar, std::memory_order_relaxed);
}

double ScalarSquaredDistance(const double* a, const double* b,
                             std::size_t dim) {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double SquaredDistance(const double* a, const double* b, std::size_t dim) {
  if (UseScalarKernels()) return ScalarSquaredDistance(a, b, dim);
  return UnrolledSquared(a, b, dim);
}

double Distance(const double* a, const double* b, std::size_t dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

double SquaredDistance(FeatureView a, FeatureView b) {
  TMERGE_DCHECK(a.dim == b.dim);
  return SquaredDistance(a.data, b.data, a.dim);
}

double Distance(FeatureView a, FeatureView b) {
  TMERGE_DCHECK(a.dim == b.dim);
  return Distance(a.data, b.data, a.dim);
}

void OneVsManySquared(const double* query, const double* const* many,
                      std::size_t count, std::size_t dim, double* out) {
  if (UseScalarKernels()) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = ScalarSquaredDistance(query, many[i], dim);
    }
    return;
  }
  std::size_t i = 0;
#if defined(__SSE2__)
  for (; i + 8 <= count; i += 8) {
    EightRowsSquared(query, many + i, dim, out + i);
  }
#endif
  for (; i + 4 <= count; i += 4) {
    FourRowsSquared(query, many[i], many[i + 1], many[i + 2], many[i + 3],
                    dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = UnrolledSquared(query, many[i], dim);
  }
}

void NormalizedFromSquaredMany(const double* squared, std::size_t count,
                               double scale, double* out) {
  std::size_t i = 0;
#if defined(__SSE2__)
  if (!UseScalarKernels()) {
    // sqrtpd and divpd are IEEE correctly-rounded, exactly like their
    // scalar forms, so the vector lanes reproduce the scalar epilogue bit
    // for bit while retiring two sqrt+div chains per instruction pair.
    const __m128d scale2 = _mm_set1_pd(scale);
    const __m128d zero2 = _mm_setzero_pd();
    const __m128d one2 = _mm_set1_pd(1.0);
    for (; i + 2 <= count; i += 2) {
      const __m128d d =
          _mm_div_pd(_mm_sqrt_pd(_mm_loadu_pd(squared + i)), scale2);
      _mm_storeu_pd(out + i, _mm_min_pd(_mm_max_pd(d, zero2), one2));
    }
  }
#endif
  for (; i < count; ++i) {
    const double d = std::sqrt(squared[i]) / scale;
    out[i] = std::clamp(d, 0.0, 1.0);
  }
}

}  // namespace tmerge::reid::kernels
