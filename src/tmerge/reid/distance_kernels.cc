#include "tmerge/reid/distance_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

// Function multiversioning: the AVX2/AVX-512 kernels below are compiled
// with per-function target attributes so the translation unit itself
// stays buildable at the baseline arch. GCC and clang both support this
// on x86-64; elsewhere the dispatch tops out at whatever the global
// flags provide. NOTE the target strings deliberately exclude "fma":
// contraction of mul+add into fused ops would change the rounding of the
// accumulation chain and break the bit-identity contract against the
// scalar/SSE2 paths (this file is additionally built with
// -ffp-contract=off, see src/CMakeLists.txt).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TMERGE_KERNEL_MULTIVERSION 1
#include <immintrin.h>
#else
#define TMERGE_KERNEL_MULTIVERSION 0
#endif

#include "tmerge/core/status.h"

namespace tmerge::reid::kernels {
namespace {

#if defined(__GNUC__) || defined(__clang__)
#define TMERGE_RESTRICT __restrict__
#else
#define TMERGE_RESTRICT
#endif

#ifdef TMERGE_SCALAR_KERNELS
constexpr bool kDefaultScalar = true;
#else
constexpr bool kDefaultScalar = false;
#endif

/// The unrolled kernel. Four differences per round trip keep the
/// subtract/multiply units busy; the single accumulator keeps the
/// reduction order identical to the scalar reference (bit-compatibility
/// contract in the header).
inline double UnrolledSquared(const double* TMERGE_RESTRICT a,
                              const double* TMERGE_RESTRICT b,
                              std::size_t dim) {
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    sum += d0 * d0;
    sum += d1 * d1;
    sum += d2 * d2;
    sum += d3 * d3;
  }
  for (; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Four-row one-vs-many block. Each row keeps its own accumulator and
/// accumulates in exactly the scalar order, so every output is
/// bit-identical to ScalarSquaredDistance(query, row, dim). The win is
/// across rows, where no reduction order is at stake: four independent
/// chains hide the accumulator latency, and on SSE2 two rows ride one
/// 2-lane vector op (IEEE arithmetic is per-lane, so lane k is the
/// scalar chain of row k, bit for bit) — halving the sub/mul/add count
/// that makes the single-pair kernel throughput-bound.
#if defined(__SSE2__)
inline void FourRowsSquared(const double* TMERGE_RESTRICT q,
                            const double* TMERGE_RESTRICT b0,
                            const double* TMERGE_RESTRICT b1,
                            const double* TMERGE_RESTRICT b2,
                            const double* TMERGE_RESTRICT b3,
                            std::size_t dim, double* TMERGE_RESTRICT out) {
  __m128d s01 = _mm_setzero_pd();
  __m128d s23 = _mm_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m128d q_i = _mm_set1_pd(q[i]);
    // _mm_set_pd packs (hi, lo): lane 0 carries the even row.
    const __m128d b01 = _mm_set_pd(b1[i], b0[i]);
    const __m128d b23 = _mm_set_pd(b3[i], b2[i]);
    const __m128d d01 = _mm_sub_pd(q_i, b01);
    const __m128d d23 = _mm_sub_pd(q_i, b23);
    s01 = _mm_add_pd(s01, _mm_mul_pd(d01, d01));
    s23 = _mm_add_pd(s23, _mm_mul_pd(d23, d23));
  }
  _mm_storeu_pd(out, s01);
  _mm_storeu_pd(out + 2, s23);
}

/// Eight-row block: same per-lane contract as FourRowsSquared with the
/// query broadcast and loop control amortized over twice the rows.
inline void EightRowsSquared(const double* TMERGE_RESTRICT q,
                             const double* const* rows, std::size_t dim,
                             double* TMERGE_RESTRICT out) {
  const double* TMERGE_RESTRICT b0 = rows[0];
  const double* TMERGE_RESTRICT b1 = rows[1];
  const double* TMERGE_RESTRICT b2 = rows[2];
  const double* TMERGE_RESTRICT b3 = rows[3];
  const double* TMERGE_RESTRICT b4 = rows[4];
  const double* TMERGE_RESTRICT b5 = rows[5];
  const double* TMERGE_RESTRICT b6 = rows[6];
  const double* TMERGE_RESTRICT b7 = rows[7];
  __m128d s01 = _mm_setzero_pd();
  __m128d s23 = _mm_setzero_pd();
  __m128d s45 = _mm_setzero_pd();
  __m128d s67 = _mm_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m128d q_i = _mm_set1_pd(q[i]);
    const __m128d d01 = _mm_sub_pd(q_i, _mm_set_pd(b1[i], b0[i]));
    const __m128d d23 = _mm_sub_pd(q_i, _mm_set_pd(b3[i], b2[i]));
    const __m128d d45 = _mm_sub_pd(q_i, _mm_set_pd(b5[i], b4[i]));
    const __m128d d67 = _mm_sub_pd(q_i, _mm_set_pd(b7[i], b6[i]));
    s01 = _mm_add_pd(s01, _mm_mul_pd(d01, d01));
    s23 = _mm_add_pd(s23, _mm_mul_pd(d23, d23));
    s45 = _mm_add_pd(s45, _mm_mul_pd(d45, d45));
    s67 = _mm_add_pd(s67, _mm_mul_pd(d67, d67));
  }
  _mm_storeu_pd(out, s01);
  _mm_storeu_pd(out + 2, s23);
  _mm_storeu_pd(out + 4, s45);
  _mm_storeu_pd(out + 6, s67);
}
#else
inline void FourRowsSquared(const double* TMERGE_RESTRICT q,
                            const double* TMERGE_RESTRICT b0,
                            const double* TMERGE_RESTRICT b1,
                            const double* TMERGE_RESTRICT b2,
                            const double* TMERGE_RESTRICT b3,
                            std::size_t dim, double* TMERGE_RESTRICT out) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double q_i = q[i];
    const double d0 = q_i - b0[i];
    const double d1 = q_i - b1[i];
    const double d2 = q_i - b2[i];
    const double d3 = q_i - b3[i];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}
#endif

void Sse2OneVsMany(const double* query, const double* const* many,
                   std::size_t count, std::size_t dim, double* out) {
  std::size_t i = 0;
#if defined(__SSE2__)
  for (; i + 8 <= count; i += 8) {
    EightRowsSquared(query, many + i, dim, out + i);
  }
#endif
  for (; i + 4 <= count; i += 4) {
    FourRowsSquared(query, many[i], many[i + 1], many[i + 2], many[i + 3],
                    dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = UnrolledSquared(query, many[i], dim);
  }
}

#if TMERGE_KERNEL_MULTIVERSION

/// AVX2 four-row block: one 4-lane vector carries the four row
/// accumulators; lane k is row k's scalar chain bit for bit (per-lane
/// IEEE, single accumulator per row, index order, no FMA).
__attribute__((target("avx2"))) void FourRowsSquaredAvx2(
    const double* TMERGE_RESTRICT q, const double* const* rows,
    std::size_t dim, double* TMERGE_RESTRICT out) {
  const double* TMERGE_RESTRICT b0 = rows[0];
  const double* TMERGE_RESTRICT b1 = rows[1];
  const double* TMERGE_RESTRICT b2 = rows[2];
  const double* TMERGE_RESTRICT b3 = rows[3];
  __m256d s = _mm256_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m256d q_i = _mm256_set1_pd(q[i]);
    // _mm256_set_pd packs (e3, e2, e1, e0): lane 0 carries row 0.
    const __m256d b = _mm256_set_pd(b3[i], b2[i], b1[i], b0[i]);
    const __m256d d = _mm256_sub_pd(q_i, b);
    s = _mm256_add_pd(s, _mm256_mul_pd(d, d));
  }
  _mm256_storeu_pd(out, s);
}

/// AVX2 eight-row block: two 4-lane accumulator vectors per iteration.
__attribute__((target("avx2"))) void EightRowsSquaredAvx2(
    const double* TMERGE_RESTRICT q, const double* const* rows,
    std::size_t dim, double* TMERGE_RESTRICT out) {
  const double* TMERGE_RESTRICT b0 = rows[0];
  const double* TMERGE_RESTRICT b1 = rows[1];
  const double* TMERGE_RESTRICT b2 = rows[2];
  const double* TMERGE_RESTRICT b3 = rows[3];
  const double* TMERGE_RESTRICT b4 = rows[4];
  const double* TMERGE_RESTRICT b5 = rows[5];
  const double* TMERGE_RESTRICT b6 = rows[6];
  const double* TMERGE_RESTRICT b7 = rows[7];
  __m256d s0123 = _mm256_setzero_pd();
  __m256d s4567 = _mm256_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m256d q_i = _mm256_set1_pd(q[i]);
    const __m256d lo = _mm256_set_pd(b3[i], b2[i], b1[i], b0[i]);
    const __m256d hi = _mm256_set_pd(b7[i], b6[i], b5[i], b4[i]);
    const __m256d dlo = _mm256_sub_pd(q_i, lo);
    const __m256d dhi = _mm256_sub_pd(q_i, hi);
    s0123 = _mm256_add_pd(s0123, _mm256_mul_pd(dlo, dlo));
    s4567 = _mm256_add_pd(s4567, _mm256_mul_pd(dhi, dhi));
  }
  _mm256_storeu_pd(out, s0123);
  _mm256_storeu_pd(out + 4, s4567);
}

__attribute__((target("avx2"))) void Avx2OneVsMany(
    const double* query, const double* const* many, std::size_t count,
    std::size_t dim, double* out) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    EightRowsSquaredAvx2(query, many + i, dim, out + i);
  }
  for (; i + 4 <= count; i += 4) {
    FourRowsSquaredAvx2(query, many + i, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = UnrolledSquared(query, many[i], dim);
  }
}

/// AVX-512 eight-row block: one 8-lane vector carries all eight row
/// accumulators. avx512f only — no vl/bw needed, and no fma ever.
__attribute__((target("avx512f"))) void EightRowsSquaredAvx512(
    const double* TMERGE_RESTRICT q, const double* const* rows,
    std::size_t dim, double* TMERGE_RESTRICT out) {
  const double* TMERGE_RESTRICT b0 = rows[0];
  const double* TMERGE_RESTRICT b1 = rows[1];
  const double* TMERGE_RESTRICT b2 = rows[2];
  const double* TMERGE_RESTRICT b3 = rows[3];
  const double* TMERGE_RESTRICT b4 = rows[4];
  const double* TMERGE_RESTRICT b5 = rows[5];
  const double* TMERGE_RESTRICT b6 = rows[6];
  const double* TMERGE_RESTRICT b7 = rows[7];
  __m512d s = _mm512_setzero_pd();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m512d q_i = _mm512_set1_pd(q[i]);
    // _mm512_set_pd packs (e7, ..., e0): lane 0 carries row 0.
    const __m512d b = _mm512_set_pd(b7[i], b6[i], b5[i], b4[i], b3[i],
                                    b2[i], b1[i], b0[i]);
    const __m512d d = _mm512_sub_pd(q_i, b);
    s = _mm512_add_pd(s, _mm512_mul_pd(d, d));
  }
  _mm512_storeu_pd(out, s);
}

__attribute__((target("avx512f"))) void Avx512OneVsMany(
    const double* query, const double* const* many, std::size_t count,
    std::size_t dim, double* out) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    EightRowsSquaredAvx512(query, many + i, dim, out + i);
  }
  for (; i + 4 <= count; i += 4) {
    FourRowsSquaredAvx2(query, many + i, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = UnrolledSquared(query, many[i], dim);
  }
}

/// AVX2/AVX-512 normalize epilogues. vsqrtpd and vdivpd are IEEE
/// correctly-rounded at every width, so each lane reproduces the scalar
/// sqrt/div/clamp chain bit for bit.
__attribute__((target("avx2"))) void NormalizeManyAvx2(
    const double* squared, std::size_t count, double scale, double* out) {
  const __m256d scale4 = _mm256_set1_pd(scale);
  const __m256d zero4 = _mm256_setzero_pd();
  const __m256d one4 = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d d =
        _mm256_div_pd(_mm256_sqrt_pd(_mm256_loadu_pd(squared + i)), scale4);
    _mm256_storeu_pd(out + i, _mm256_min_pd(_mm256_max_pd(d, zero4), one4));
  }
  for (; i < count; ++i) {
    const double d = std::sqrt(squared[i]) / scale;
    out[i] = std::clamp(d, 0.0, 1.0);
  }
}

__attribute__((target("avx512f"))) void NormalizeManyAvx512(
    const double* squared, std::size_t count, double scale, double* out) {
  const __m512d scale8 = _mm512_set1_pd(scale);
  const __m512d zero8 = _mm512_setzero_pd();
  const __m512d one8 = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512d d =
        _mm512_div_pd(_mm512_sqrt_pd(_mm512_loadu_pd(squared + i)), scale8);
    _mm512_storeu_pd(out + i, _mm512_min_pd(_mm512_max_pd(d, zero8), one8));
  }
  for (; i < count; ++i) {
    const double d = std::sqrt(squared[i]) / scale;
    out[i] = std::clamp(d, 0.0, 1.0);
  }
}

/// AVX2 int8 screen dots: exact int32 sums Σ row[j]² and Σ q[j]·row[j]
/// over one row, 16 bytes per step via cvtepi8_epi16 + madd_epi16 on
/// contiguous loads. Integer addition is associative, so any summation
/// order — eight vector lanes here, index order in the scalar reference —
/// produces the same int32s, and with them bit-identical screen
/// distances at every dispatch level. madd pairs two int16 products
/// (each ≤ 127²), so an int32 lane grows by at most 2·127² per step:
/// overflow needs dim beyond ~130k, far past any feature dimension the
/// store accepts (the scalar single-accumulator bound, dim ≤ 2³¹/127²,
/// is the binding one).
__attribute__((target("avx2"))) void Int8RowDotsAvx2(
    const std::int8_t* TMERGE_RESTRICT q,
    const std::int8_t* TMERGE_RESTRICT row, std::size_t dim,
    std::int32_t* bb_out, std::int32_t* qb_out) {
  __m256i acc_bb = _mm256_setzero_si256();
  __m256i acc_qb = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256i q16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
    const __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i)));
    acc_qb = _mm256_add_epi32(acc_qb, _mm256_madd_epi16(q16, b16));
    acc_bb = _mm256_add_epi32(acc_bb, _mm256_madd_epi16(b16, b16));
  }
  // In-register horizontal sums: at small dims the per-row reduction is
  // most of the work, so it must not round-trip through memory.
  const __m128i bb4 = _mm_add_epi32(_mm256_castsi256_si128(acc_bb),
                                    _mm256_extracti128_si256(acc_bb, 1));
  const __m128i qb4 = _mm_add_epi32(_mm256_castsi256_si128(acc_qb),
                                    _mm256_extracti128_si256(acc_qb, 1));
  const __m128i bb2 =
      _mm_add_epi32(bb4, _mm_shuffle_epi32(bb4, _MM_SHUFFLE(1, 0, 3, 2)));
  const __m128i qb2 =
      _mm_add_epi32(qb4, _mm_shuffle_epi32(qb4, _MM_SHUFFLE(1, 0, 3, 2)));
  std::int32_t bb = _mm_cvtsi128_si32(
      _mm_add_epi32(bb2, _mm_shuffle_epi32(bb2, _MM_SHUFFLE(2, 3, 0, 1))));
  std::int32_t qb = _mm_cvtsi128_si32(
      _mm_add_epi32(qb2, _mm_shuffle_epi32(qb2, _MM_SHUFFLE(2, 3, 0, 1))));
  for (; i < dim; ++i) {
    const std::int32_t bv = row[i];
    bb += bv * bv;
    qb += static_cast<std::int32_t>(q[i]) * bv;
  }
  *bb_out = bb;
  *qb_out = qb;
}

/// AVX2+F16C fp16 screen block. vcvtph2ps widens exactly — identical to
/// the software HalfToFloat — so this too matches the scalar quantized
/// kernel bit for bit.
__attribute__((target("avx2,f16c"))) void Fp16EightRowsAvx2(
    const std::uint16_t* TMERGE_RESTRICT q, const std::uint16_t* const* rows,
    std::size_t dim, float* TMERGE_RESTRICT out) {
  const std::uint16_t* TMERGE_RESTRICT b0 = rows[0];
  const std::uint16_t* TMERGE_RESTRICT b1 = rows[1];
  const std::uint16_t* TMERGE_RESTRICT b2 = rows[2];
  const std::uint16_t* TMERGE_RESTRICT b3 = rows[3];
  const std::uint16_t* TMERGE_RESTRICT b4 = rows[4];
  const std::uint16_t* TMERGE_RESTRICT b5 = rows[5];
  const std::uint16_t* TMERGE_RESTRICT b6 = rows[6];
  const std::uint16_t* TMERGE_RESTRICT b7 = rows[7];
  __m256 s = _mm256_setzero_ps();
  for (std::size_t i = 0; i < dim; ++i) {
    const __m256 q_i = _mm256_cvtph_ps(_mm_set1_epi16(
        static_cast<short>(q[i])));
    // _mm_set_epi16 packs (e7, ..., e0): lane 0 carries row 0.
    const __m256 bv = _mm256_cvtph_ps(_mm_set_epi16(
        static_cast<short>(b7[i]), static_cast<short>(b6[i]),
        static_cast<short>(b5[i]), static_cast<short>(b4[i]),
        static_cast<short>(b3[i]), static_cast<short>(b2[i]),
        static_cast<short>(b1[i]), static_cast<short>(b0[i])));
    const __m256 d = _mm256_sub_ps(q_i, bv);
    s = _mm256_add_ps(s, _mm256_mul_ps(d, d));
  }
  _mm256_storeu_ps(out, s);
}

bool CpuHasF16c() {
  static const bool has = __builtin_cpu_supports("f16c");
  return has;
}

#endif  // TMERGE_KERNEL_MULTIVERSION

/// Scalar int8 screen dots: exact int32 sums Σ row[j]² and Σ q[j]·row[j]
/// in index order. The reference every SIMD variant must match — and
/// does trivially, because integer sums are order-independent.
void Int8RowDots(const std::int8_t* TMERGE_RESTRICT q,
                 const std::int8_t* TMERGE_RESTRICT row, std::size_t dim,
                 std::int32_t* bb_out, std::int32_t* qb_out) {
  std::int32_t bb = 0;
  std::int32_t qb = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    const std::int32_t bv = row[i];
    bb += bv * bv;
    qb += static_cast<std::int32_t>(q[i]) * bv;
  }
  *bb_out = bb;
  *qb_out = qb;
}

/// Reconstructs the squared screen distance from exact integer dots:
///   |qs·q - bs·b|² = qs²·Σq² + bs²·Σb² - 2·qs·bs·Σq·b.
/// Every input converts to double exactly (int32 values, float scales),
/// so the only error is one double rounding per operation — orders of
/// magnitude below the screen bound's arithmetic slack. Cancellation can
/// leave a tiny negative; clamp at zero before the caller's sqrt.
float Int8SquaredFromDots(std::int32_t qq, std::int32_t bb, std::int32_t qb,
                          float qscale, float bscale) {
  const double qs = static_cast<double>(qscale);
  const double bs = static_cast<double>(bscale);
  const double d2 = qs * qs * static_cast<double>(qq) +
                    bs * bs * static_cast<double>(bb) -
                    2.0 * qs * bs * static_cast<double>(qb);
  return d2 > 0.0 ? static_cast<float>(d2) : 0.0f;
}

float Fp16ScalarRow(const std::uint16_t* TMERGE_RESTRICT q,
                    const std::uint16_t* TMERGE_RESTRICT row,
                    std::size_t dim) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = HalfToFloat(q[i]) - HalfToFloat(row[i]);
    sum += d * d;
  }
  return sum;
}

KernelLevel ComputeDefaultLevel() {
  KernelLevel level = kDefaultScalar ? KernelLevel::kScalar
                                     : DetectedKernelLevel();
  const char* env = std::getenv("TMERGE_KERNEL_LEVEL");
  if (env == nullptr || *env == '\0') return level;
  KernelLevel parsed;
  // Strict like the other TMERGE_* knobs (TMERGE_OBS policy): a typo must
  // never silently decide which kernel tier a run measures.
  if (!ParseKernelLevel(env, &parsed)) {
    std::fprintf(stderr,
                 "tmerge: ignoring invalid TMERGE_KERNEL_LEVEL=\"%s\" "
                 "(want scalar, sse2, avx2 or avx512); using %s\n",
                 env, KernelLevelName(level));
    return level;
  }
  if (!KernelLevelSupported(parsed)) {
    std::fprintf(stderr,
                 "tmerge: TMERGE_KERNEL_LEVEL=\"%s\" not supported on this "
                 "host (best is %s); using %s\n",
                 env, KernelLevelName(DetectedKernelLevel()),
                 KernelLevelName(level));
    return level;
  }
  return parsed;
}

/// Session default: compile-time default, overridden once by the
/// environment. Memoized via magic static (thread-safe); distinct from
/// the *current* level so SetUseScalarKernels(false) can restore it.
KernelLevel DefaultLevel() {
  static const KernelLevel level = ComputeDefaultLevel();
  return level;
}

/// Current dispatch level. -1 = not yet initialized from DefaultLevel()
/// (lazy so the env override applies before first use, without ordering
/// against static initialization).
std::atomic<int> g_level{-1};

}  // namespace

KernelLevel DetectedKernelLevel() {
#if TMERGE_KERNEL_MULTIVERSION
  static const KernelLevel detected = [] {
    if (__builtin_cpu_supports("avx512f")) return KernelLevel::kAvx512;
    if (__builtin_cpu_supports("avx2")) return KernelLevel::kAvx2;
    return KernelLevel::kSse2;  // x86-64 baseline.
  }();
  return detected;
#elif defined(__SSE2__)
  return KernelLevel::kSse2;
#else
  return KernelLevel::kScalar;
#endif
}

bool KernelLevelSupported(KernelLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DetectedKernelLevel());
}

std::vector<KernelLevel> SupportedKernelLevels() {
  std::vector<KernelLevel> levels;
  for (int l = 0; l <= static_cast<int>(DetectedKernelLevel()); ++l) {
    levels.push_back(static_cast<KernelLevel>(l));
  }
  return levels;
}

KernelLevel CurrentKernelLevel() {
  int value = g_level.load(std::memory_order_relaxed);
  if (value >= 0) return static_cast<KernelLevel>(value);
  const KernelLevel def = DefaultLevel();
  int expected = -1;
  g_level.compare_exchange_strong(expected, static_cast<int>(def),
                                  std::memory_order_relaxed);
  return static_cast<KernelLevel>(g_level.load(std::memory_order_relaxed));
}

bool SetKernelLevel(KernelLevel level) {
  if (!KernelLevelSupported(level)) return false;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSse2:
      return "sse2";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseKernelLevel(const char* text, KernelLevel* out) {
  if (text == nullptr || out == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    *out = KernelLevel::kScalar;
  } else if (std::strcmp(text, "sse2") == 0) {
    *out = KernelLevel::kSse2;
  } else if (std::strcmp(text, "avx2") == 0) {
    *out = KernelLevel::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    *out = KernelLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool UseScalarKernels() {
  return CurrentKernelLevel() == KernelLevel::kScalar;
}

void SetUseScalarKernels(bool scalar) {
  SetKernelLevel(scalar ? KernelLevel::kScalar : DefaultLevel());
}

double ScalarSquaredDistance(const double* a, const double* b,
                             std::size_t dim) {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double SquaredDistance(const double* a, const double* b, std::size_t dim) {
  if (UseScalarKernels()) return ScalarSquaredDistance(a, b, dim);
  return UnrolledSquared(a, b, dim);
}

double Distance(const double* a, const double* b, std::size_t dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

double SquaredDistance(FeatureView a, FeatureView b) {
  TMERGE_DCHECK(a.dim == b.dim);
  return SquaredDistance(a.data, b.data, a.dim);
}

double Distance(FeatureView a, FeatureView b) {
  TMERGE_DCHECK(a.dim == b.dim);
  return Distance(a.data, b.data, a.dim);
}

void OneVsManySquared(const double* query, const double* const* many,
                      std::size_t count, std::size_t dim, double* out) {
  switch (CurrentKernelLevel()) {
    case KernelLevel::kScalar:
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = ScalarSquaredDistance(query, many[i], dim);
      }
      return;
#if TMERGE_KERNEL_MULTIVERSION
    case KernelLevel::kAvx512:
      Avx512OneVsMany(query, many, count, dim, out);
      return;
    case KernelLevel::kAvx2:
      Avx2OneVsMany(query, many, count, dim, out);
      return;
#endif
    default:
      Sse2OneVsMany(query, many, count, dim, out);
      return;
  }
}

void NormalizedFromSquaredMany(const double* squared, std::size_t count,
                               double scale, double* out) {
  const KernelLevel level = CurrentKernelLevel();
#if TMERGE_KERNEL_MULTIVERSION
  if (level == KernelLevel::kAvx512) {
    NormalizeManyAvx512(squared, count, scale, out);
    return;
  }
  if (level == KernelLevel::kAvx2) {
    NormalizeManyAvx2(squared, count, scale, out);
    return;
  }
#endif
  std::size_t i = 0;
#if defined(__SSE2__)
  if (level != KernelLevel::kScalar) {
    // sqrtpd and divpd are IEEE correctly-rounded, exactly like their
    // scalar forms, so the vector lanes reproduce the scalar epilogue bit
    // for bit while retiring two sqrt+div chains per instruction pair.
    const __m128d scale2 = _mm_set1_pd(scale);
    const __m128d zero2 = _mm_setzero_pd();
    const __m128d one2 = _mm_set1_pd(1.0);
    for (; i + 2 <= count; i += 2) {
      const __m128d d =
          _mm_div_pd(_mm_sqrt_pd(_mm_loadu_pd(squared + i)), scale2);
      _mm_storeu_pd(out + i, _mm_min_pd(_mm_max_pd(d, zero2), one2));
    }
  }
#endif
  for (; i < count; ++i) {
    const double d = std::sqrt(squared[i]) / scale;
    out[i] = std::clamp(d, 0.0, 1.0);
  }
}

void Int8OneVsManySquared(const std::int8_t* query, float query_scale,
                          const std::int8_t* const* many,
                          const float* many_scales, std::size_t count,
                          std::size_t dim, float* out) {
  // Σ query[j]² is shared by every output row: compute it once per sweep.
  std::int32_t qq = 0;
  for (std::size_t j = 0; j < dim; ++j) {
    const std::int32_t qv = query[j];
    qq += qv * qv;
  }
  std::size_t i = 0;
#if TMERGE_KERNEL_MULTIVERSION
  if (static_cast<int>(CurrentKernelLevel()) >=
      static_cast<int>(KernelLevel::kAvx2)) {
    for (; i < count; ++i) {
      std::int32_t bb;
      std::int32_t qb;
      Int8RowDotsAvx2(query, many[i], dim, &bb, &qb);
      out[i] = Int8SquaredFromDots(qq, bb, qb, query_scale, many_scales[i]);
    }
  }
#endif
  for (; i < count; ++i) {
    std::int32_t bb;
    std::int32_t qb;
    Int8RowDots(query, many[i], dim, &bb, &qb);
    out[i] = Int8SquaredFromDots(qq, bb, qb, query_scale, many_scales[i]);
  }
}

void Fp16OneVsManySquared(const std::uint16_t* query,
                          const std::uint16_t* const* many,
                          std::size_t count, std::size_t dim, float* out) {
  std::size_t i = 0;
#if TMERGE_KERNEL_MULTIVERSION
  if (static_cast<int>(CurrentKernelLevel()) >=
          static_cast<int>(KernelLevel::kAvx2) &&
      CpuHasF16c()) {
    for (; i + 8 <= count; i += 8) {
      Fp16EightRowsAvx2(query, many + i, dim, out + i);
    }
  }
#endif
  for (; i < count; ++i) {
    out[i] = Fp16ScalarRow(query, many[i], dim);
  }
}

std::uint16_t FloatToHalf(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = bits & 0x80000000u;
  bits ^= sign;
  std::uint16_t half;
  if (bits >= 0x47800000u) {  // >= 2^16: inf/nan, or overflow to inf.
    half = (bits > 0x7F800000u) ? 0x7E00u : 0x7C00u;
  } else if (bits < 0x38800000u) {  // < 2^-14: subnormal half or zero.
    // Adding 2^(-14+13) = 0.5 as a float aligns the 10 result mantissa
    // bits at the bottom of the float mantissa with round-to-nearest-even
    // applied by the FP add itself; subtracting the bias bits leaves the
    // half pattern.
    const std::uint32_t denorm_magic = ((127u - 15u + 23u - 10u + 1u) << 23);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    float magic;
    std::memcpy(&magic, &denorm_magic, sizeof(magic));
    f += magic;
    std::memcpy(&bits, &f, sizeof(bits));
    half = static_cast<std::uint16_t>(bits - denorm_magic);
  } else {
    // Normal: rebias the exponent and round the mantissa to 10 bits,
    // round-to-nearest-even (0xFFF bias plus the odd bit).
    const std::uint32_t mant_odd = (bits >> 13) & 1u;
    bits += (static_cast<std::uint32_t>(15 - 127) << 23) + 0xFFFu;
    bits += mant_odd;
    half = static_cast<std::uint16_t>(bits >> 13);
  }
  return static_cast<std::uint16_t>(half | (sign >> 16));
}

float HalfToFloat(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +/- 0.
    } else {
      // Subnormal half: value = mant * 2^-24. Normalize so bit 10 leads;
      // after `shift` shifts the value is 1.f * 2^(-14 - shift), so the
      // float exponent field is 127 - 14 - shift (the -15 the normal
      // branch uses would halve every subnormal — exactly the kind of
      // drift the cross-level differential against F16C hardware pins).
      int shift = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++shift;
      }
      bits = sign | (static_cast<std::uint32_t>(127 - 14 - shift) << 23) |
             ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    // Inf/NaN. Signaling NaNs are quieted (set the quiet bit), matching
    // what vcvtph2ps does, so software and F16C conversions agree on
    // every one of the 65536 half patterns — not just the ones
    // FloatToHalf can emit.
    if (mant != 0) mant |= 0x200u;
    bits = sign | 0x7F800000u | (mant << 13);
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace tmerge::reid::kernels
