#include "tmerge/reid/synthetic_reid_model.h"

#include <algorithm>
#include <cmath>

#include "tmerge/core/rng.h"
#include "tmerge/core/status.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::reid {

SyntheticReidModel::SyntheticReidModel(const sim::SyntheticVideo& video,
                                       const ReidModelConfig& config,
                                       std::uint64_t seed)
    : config_(config), seed_(seed), feature_dim_(16) {
  for (const auto& track : video.tracks) {
    TMERGE_CHECK(!track.appearance.empty());
    appearances_.emplace(track.id, track.appearance);
    feature_dim_ = track.appearance.size();
  }

  // Normalization scale: the largest between-object latent distance plus a
  // noise margin, so that normalized distances rarely clip at 1 but the
  // full [0, 1] range is used. Falls back to a noise-only scale for videos
  // with fewer than two objects.
  // Squared-distance fast path: a max-reduction commutes with the (monotone,
  // correctly-rounded) sqrt, so taking the max of squared distances and one
  // final sqrt is bit-identical to maxing sim::EuclideanDistance per pair —
  // and skips O(n^2) sqrts. This is the ranking-safe use of
  // kernels::SquaredDistance; mean-of-distance scores are not (DESIGN.md
  // "Memory layout & kernels").
  double max_latent_sq = 0.0;
  std::vector<const sim::AppearanceVector*> latents;
  latents.reserve(appearances_.size());
  for (const auto& [id, vec] : appearances_) latents.push_back(&vec);
  for (std::size_t i = 0; i < latents.size(); ++i) {
    for (std::size_t j = i + 1; j < latents.size(); ++j) {
      max_latent_sq = std::max(
          max_latent_sq,
          kernels::SquaredDistance(latents[i]->data(), latents[j]->data(),
                                   latents[i]->size()));
    }
  }
  double max_latent = std::sqrt(max_latent_sq);
  double expected_noise =
      config_.observation_noise +
      config_.hard_crop_prob * config_.hard_crop_noise;
  double noise_margin = 3.0 * expected_noise * std::sqrt(2.0 * feature_dim_);
  normalization_scale_ =
      std::max(1e-6, (max_latent + noise_margin) *
                         config_.normalization_headroom);
}

FeatureVector SyntheticReidModel::Embed(const CropRef& crop) const {
  core::Rng rng(crop.noise_seed ^ (seed_ * 0x9E3779B97F4A7C15ULL));
  double noise_stddev =
      config_.observation_noise +
      config_.occlusion_noise_scale * (1.0 - std::clamp(crop.visibility, 0.0, 1.0)) +
      (crop.glared ? config_.glare_noise : 0.0);
  // Hard crops (blur, pose, truncation) embed poorly; deterministic per
  // crop so the corruption is a property of the BBox, not of the draw.
  if (rng.Bernoulli(config_.hard_crop_prob)) {
    noise_stddev += config_.hard_crop_noise;
  }

  FeatureVector feature(feature_dim_);
  auto it = crop.gt_id == sim::kNoObject ? appearances_.end()
                                         : appearances_.find(crop.gt_id);
  if (it != appearances_.end()) {
    const sim::AppearanceVector& latent = it->second;
    for (std::size_t i = 0; i < feature_dim_; ++i) {
      feature[i] = latent[i] + rng.Normal(0.0, noise_stddev);
    }
  } else {
    // False positive (or unknown object): an arbitrary background embedding,
    // stable for this crop because the Rng is seeded by the crop.
    for (std::size_t i = 0; i < feature_dim_; ++i) {
      feature[i] = rng.Normal(0.0, 1.2) + rng.Normal(0.0, noise_stddev);
    }
  }
  return feature;
}

}  // namespace tmerge::reid
