#ifndef TMERGE_REID_FEATURE_H_
#define TMERGE_REID_FEATURE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tmerge/sim/world.h"

namespace tmerge::reid {

/// A ReID feature vector f(b) extracted from a BBox crop (paper §III).
using FeatureVector = std::vector<double>;

/// Non-owning view of one feature's contiguous storage. The selector hot
/// path passes these by value (two words) instead of heap-allocated
/// FeatureVector references; an invalid (default) view doubles as the
/// "failed pull" sentinel that `const FeatureVector*` == nullptr used to
/// be. Views into a FeatureStore stay valid until the store is cleared or
/// destroyed (the handle-stability contract documented on FeatureCache).
struct FeatureView {
  const double* data = nullptr;
  std::size_t dim = 0;

  constexpr FeatureView() = default;
  constexpr FeatureView(const double* d, std::size_t n) : data(d), dim(n) {}
  /// Views a FeatureVector's storage. Explicit: a view of a temporary
  /// vector dangles, so conversions must be visible at the call site.
  explicit FeatureView(const FeatureVector& v)
      : data(v.data()), dim(v.size()) {}

  bool valid() const { return data != nullptr; }
  double operator[](std::size_t i) const { return data[i]; }

  /// Copies the viewed floats into an owning vector (test/IO convenience;
  /// not for hot paths).
  FeatureVector ToVector() const { return FeatureVector(data, data + dim); }
};

/// Euclidean distance d(b1, b2) between two feature vectors of equal size.
/// Dimension agreement is a debug-only check here (TMERGE_DCHECK): features
/// flowing through a FeatureStore had their dimension validated once at
/// registration, so optimized builds skip the per-call branch.
double FeatureDistance(const FeatureVector& a, const FeatureVector& b);

/// Reference to one BBox crop to embed. Carries exactly the hidden fields
/// the synthetic ReID model needs to produce a deterministic feature; both
/// detect::Detection and track::TrackedBox convert to this trivially.
struct CropRef {
  /// Keys the feature cache; unique per detection within a video.
  std::uint64_t detection_id = 0;
  /// GT object in the crop, or sim::kNoObject for a false positive.
  sim::GtObjectId gt_id = sim::kNoObject;
  /// Visibility at capture time; occlusion corrupts the embedding.
  double visibility = 1.0;
  /// Glare corrupts the embedding further.
  bool glared = false;
  /// Deterministic per-observation noise seed.
  std::uint64_t noise_seed = 0;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_FEATURE_H_
