#ifndef TMERGE_REID_FEATURE_H_
#define TMERGE_REID_FEATURE_H_

#include <cstdint>
#include <vector>

#include "tmerge/sim/world.h"

namespace tmerge::reid {

/// A ReID feature vector f(b) extracted from a BBox crop (paper §III).
using FeatureVector = std::vector<double>;

/// Euclidean distance d(b1, b2) between two feature vectors of equal size.
double FeatureDistance(const FeatureVector& a, const FeatureVector& b);

/// Reference to one BBox crop to embed. Carries exactly the hidden fields
/// the synthetic ReID model needs to produce a deterministic feature; both
/// detect::Detection and track::TrackedBox convert to this trivially.
struct CropRef {
  /// Keys the feature cache; unique per detection within a video.
  std::uint64_t detection_id = 0;
  /// GT object in the crop, or sim::kNoObject for a false positive.
  sim::GtObjectId gt_id = sim::kNoObject;
  /// Visibility at capture time; occlusion corrupts the embedding.
  double visibility = 1.0;
  /// Glare corrupts the embedding further.
  bool glared = false;
  /// Deterministic per-observation noise seed.
  std::uint64_t noise_seed = 0;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_FEATURE_H_
