#ifndef TMERGE_REID_REID_GUARD_H_
#define TMERGE_REID_REID_GUARD_H_

#include <cstdint>
#include <vector>

#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/reid_model.h"

namespace tmerge::reid {

/// Retry / circuit-breaker policy for fault-tolerant ReID access
/// (DESIGN.md "Fault model & degraded mode"). All time is simulated
/// (charged to the InferenceMeter's SimClock); nothing here ever sleeps.
struct ReidFaultPolicy {
  /// Extra attempts after the first failed embed (so max_retries = 2 means
  /// up to 3 attempts per pull). Zero disables retrying.
  int max_retries = 2;

  /// Simulated backoff charged before retry k (1-based) as
  /// backoff_base_seconds * 2^(k-1). Deterministic exponential backoff on
  /// the sim clock; batched retries charge one backoff per retry round
  /// (the whole batch waits together), single pulls one per retry.
  double backoff_base_seconds = 5e-4;

  /// Consecutive retry-exhausted pulls that open the per-window circuit
  /// breaker. Once open it stays open for the rest of the window: further
  /// pulls fail immediately without attempting inference, and the window
  /// is reported degraded. Zero or negative never opens the breaker.
  int breaker_failure_threshold = 8;
};

/// Per-window fault-tolerance wrapper over FeatureCache: bounded retry
/// with deterministic sim-clock backoff plus a circuit breaker. Selectors
/// pull features through a guard instead of the cache directly; an invalid
/// view return is a *failed pull* — the selector charges it to the budget
/// but must not update posteriors from it (the degraded mode's safety
/// rule).
///
/// With no failpoints armed (or under -DTMERGE_FAULT_DISABLED) every pull
/// succeeds on the first attempt and the meter sees exactly the charges
/// GetOrEmbed / GetOrEmbedBatch would have produced, bit for bit.
///
/// Thread-confined like the FeatureCache it wraps: one guard per window,
/// owned by the worker evaluating that window.
class ReidGuard {
 public:
  ReidGuard(const ReidFaultPolicy& policy, FeatureCache& cache,
            const ReidModel& model, InferenceMeter& meter)
      : policy_(policy), cache_(cache), model_(model), meter_(meter) {}

  /// Pulls one feature, retrying per policy. Returns an invalid view when
  /// every attempt failed or the breaker is open (an open breaker charges
  /// nothing — the call never reaches the model).
  FeatureView TryGet(const CropRef& crop);

  /// Batched pull: one result per crop, invalid views for failed pulls.
  /// Retry rounds re-batch only the failed crops under a fresh salt.
  std::vector<FeatureView> TryGetBatch(const std::vector<CropRef>& crops);

  /// True once the breaker has opened; the window is degraded from that
  /// point on.
  bool breaker_open() const { return breaker_open_; }

  /// Pulls that exhausted retries (or hit an open breaker) and returned
  /// an invalid view.
  std::int64_t failed_pulls() const { return failed_pulls_; }

  /// Retry attempts made (not counting first attempts).
  std::int64_t retries() const { return retries_; }

 private:
  /// Tracks consecutive retry-exhausted failures and opens the breaker at
  /// the policy threshold.
  void RecordOutcome(bool success);

  ReidFaultPolicy policy_;
  FeatureCache& cache_;
  const ReidModel& model_;
  InferenceMeter& meter_;
  bool breaker_open_ = false;
  int consecutive_failures_ = 0;
  std::int64_t failed_pulls_ = 0;
  std::int64_t retries_ = 0;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_REID_GUARD_H_
