#include "tmerge/reid/candidate_index.h"

#include <algorithm>
#include <limits>

#include "tmerge/core/status.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/obs/span.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::reid {
namespace {

#ifndef TMERGE_OBS_DISABLED
void RecordRebuildObs(std::size_t rows) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& rebuilds =
      registry.GetCounter("reid.index.rebuilds");
  static obs::Counter& assigned =
      registry.GetCounter("reid.index.assigned_rows");
  rebuilds.Add(1);
  assigned.Add(static_cast<std::int64_t>(rows));
}
#endif  // TMERGE_OBS_DISABLED

}  // namespace

CoarseClusterIndex::CoarseClusterIndex(const ClusterIndexOptions& options)
    : options_(options) {
  TMERGE_CHECK(options_.clusters > 0);
  TMERGE_CHECK(options_.lloyd_iterations > 0);
  TMERGE_CHECK(options_.sample_cap > 0);
  TMERGE_CHECK(options_.rebuild_interval > 0);
}

void CoarseClusterIndex::Ensure(const FeatureStore& store) {
  if (store.empty()) return;
  const std::size_t rows = store.size();
  const bool stale =
      !built() ||
      rows - rows_at_build_ >=
          static_cast<std::size_t>(options_.rebuild_interval);
  if (stale) {
    Rebuild(store);
    return;
  }
  // Incremental path: new rows join their nearest existing centroid;
  // centroids themselves stay fixed until the next rebuild (§15.3 — a
  // router only needs coarse assignments, and frozen centroids keep every
  // earlier routing decision reproducible).
  for (std::size_t row = assigned_.size(); row < rows; ++row) {
    assigned_.push_back(NearestCentroid(
        store.Data(FeatureRef{static_cast<std::uint32_t>(row)})));
  }
}

void CoarseClusterIndex::Rebuild(const FeatureStore& store) {
  TMERGE_SPAN("reid.index.rebuild.seconds");
  const std::size_t rows = store.size();
  dim_ = store.dim();
  num_clusters_ = static_cast<std::int32_t>(
      std::min<std::size_t>(options_.clusters, rows));

  // Deterministic stride sample: row j*stride for j in [0, sample_count).
  const std::size_t cap = static_cast<std::size_t>(options_.sample_cap);
  const std::size_t stride = std::max<std::size_t>(1, rows / cap);
  std::vector<std::uint32_t> sample;
  for (std::size_t row = 0; row < rows && sample.size() < cap;
       row += stride) {
    sample.push_back(static_cast<std::uint32_t>(row));
  }

  // Seed centroids on an even stride over the sample, then refine with a
  // fixed number of Lloyd passes (fixed iteration count + fixed row order
  // + fp64 accumulation = deterministic, and kernel-level independent
  // because the distances compared are bit-identical at every level).
  const std::size_t k = static_cast<std::size_t>(num_clusters_);
  centroids_.assign(k * dim_, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint32_t row = sample[c * sample.size() / k];
    const double* src = store.Data(FeatureRef{row});
    std::copy(src, src + dim_, centroids_.data() + c * dim_);
  }

  std::vector<std::int32_t> sample_assign(sample.size(), 0);
  std::vector<double> sums(k * dim_);
  std::vector<std::int64_t> counts(k);
  for (std::int32_t iter = 0; iter < options_.lloyd_iterations; ++iter) {
    for (std::size_t j = 0; j < sample.size(); ++j) {
      sample_assign[j] = NearestCentroid(store.Data(FeatureRef{sample[j]}));
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t j = 0; j < sample.size(); ++j) {
      const double* src = store.Data(FeatureRef{sample[j]});
      double* dst = sums.data() + static_cast<std::size_t>(sample_assign[j]) * dim_;
      for (std::size_t i = 0; i < dim_; ++i) dst[i] += src[i];
      ++counts[static_cast<std::size_t>(sample_assign[j])];
    }
    for (std::size_t c = 0; c < k; ++c) {
      // An empty cluster keeps its previous centroid (still deterministic;
      // it can re-acquire rows in a later pass).
      if (counts[c] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* dst = centroids_.data() + c * dim_;
      const double* src = sums.data() + c * dim_;
      for (std::size_t i = 0; i < dim_; ++i) dst[i] = src[i] * inv;
    }
  }

  assigned_.clear();
  assigned_.reserve(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    assigned_.push_back(NearestCentroid(
        store.Data(FeatureRef{static_cast<std::uint32_t>(row)})));
  }
  rows_at_build_ = rows;
  ++rebuilds_;
  TMERGE_OBS(RecordRebuildObs(rows));
}

std::int32_t CoarseClusterIndex::NearestCentroid(const double* row) const {
  std::int32_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::int32_t c = 0; c < num_clusters_; ++c) {
    const double dist = kernels::SquaredDistance(
        row, centroids_.data() + static_cast<std::size_t>(c) * dim_, dim_);
    if (dist < best_dist) {  // Strict: ties keep the lower id.
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

std::int32_t CoarseClusterIndex::AssignmentOf(FeatureRef ref) const {
  TMERGE_DCHECK(ref.index < assigned_.size());
  return assigned_[ref.index];
}

void CoarseClusterIndex::NearestClusters(
    FeatureView query, std::int32_t probes,
    std::vector<std::int32_t>* out) const {
  out->clear();
  if (num_clusters_ == 0) return;
  TMERGE_DCHECK(query.dim == dim_);
  std::vector<std::pair<double, std::int32_t>> ranked;
  ranked.reserve(static_cast<std::size_t>(num_clusters_));
  for (std::int32_t c = 0; c < num_clusters_; ++c) {
    ranked.emplace_back(
        kernels::SquaredDistance(
            query.data, centroids_.data() + static_cast<std::size_t>(c) * dim_,
            dim_),
        c);
  }
  const std::size_t take = std::min<std::size_t>(
      ranked.size(), probes > 0 ? static_cast<std::size_t>(probes) : 0);
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end());
  for (std::size_t i = 0; i < take; ++i) out->push_back(ranked[i].second);
}

const double* CoarseClusterIndex::Centroid(std::int32_t cluster) const {
  TMERGE_DCHECK(cluster >= 0 && cluster < num_clusters_);
  return centroids_.data() + static_cast<std::size_t>(cluster) * dim_;
}

void CoarseClusterIndex::Clear() {
  dim_ = 0;
  num_clusters_ = 0;
  centroids_.clear();
  assigned_.clear();
  rows_at_build_ = 0;
  rebuilds_ = 0;
}

}  // namespace tmerge::reid
