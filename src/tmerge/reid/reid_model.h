#ifndef TMERGE_REID_REID_MODEL_H_
#define TMERGE_REID_REID_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "tmerge/core/status.h"
#include "tmerge/reid/distance_kernels.h"
#include "tmerge/reid/feature.h"

namespace tmerge::reid {

/// Abstract ReID embedder consumed by the trackers and merging algorithms.
/// Two implementations ship with the library:
///   - SyntheticReidModel: the simulation stand-in for OSNet (see
///     synthetic_reid_model.h), used by everything synthetic;
///   - PrecomputedReidModel (below): features computed offline by a real
///     ReID network and loaded by detection id — the adoption path for
///     real tracker output ingested via tmerge::io.
///
/// Embedding cost is charged separately through InferenceMeter; Embed
/// itself must be deterministic per crop so the feature-reuse optimization
/// is sound.
///
/// Concurrency: the parallel dataset paths (merge::EvaluateDataset,
/// merge::PrepareDataset) call Embed / NormalizedDistance on one model
/// object from several threads, so implementations must be free of
/// mutable state — every method here is const and must stay logically
/// const (no caches, no shared RNG). Both shipped implementations comply:
/// SyntheticReidModel derives a fresh local RNG per crop and
/// PrecomputedReidModel is a read-only table lookup.
class ReidModel {
 public:
  virtual ~ReidModel() = default;

  /// Embeds one crop. Deterministic per crop. Infallible: a production
  /// serving stack cannot assume this, which is what TryEmbed models.
  virtual FeatureVector Embed(const CropRef& crop) const = 0;

  /// Fallible embedding path for fault-tolerant callers: identical to
  /// Embed except that the "reid.embed" failpoint (fault/failpoint.h) may
  /// inject a transient Unavailable error, keyed by the crop's detection
  /// id mixed with `salt` (retry attempts pass distinct salts so each
  /// attempt draws an independent verdict). With no failpoint armed — or
  /// under -DTMERGE_FAULT_DISABLED — this is exactly Embed, bit for bit.
  /// Applies to every implementation; thread-safe like Embed.
  core::Result<FeatureVector> TryEmbed(const CropRef& crop,
                                       std::uint64_t salt = 0) const;

  /// Scale that maps raw feature distances into the paper's normalized
  /// d-tilde in [0, 1].
  virtual double normalization_scale() const = 0;

  /// Feature dimensionality.
  virtual std::size_t feature_dim() const = 0;

  /// Normalized distance between two features, clamped to [0, 1].
  double NormalizedDistance(const FeatureVector& a,
                            const FeatureVector& b) const {
    double d = FeatureDistance(a, b) / normalization_scale();
    return std::clamp(d, 0.0, 1.0);
  }

  /// View overload over arena storage — the selector hot path. Same
  /// arithmetic statement for statement as the FeatureVector overload, so
  /// results are bit-identical for identical floats.
  double NormalizedDistance(FeatureView a, FeatureView b) const {
    double d = kernels::Distance(a, b) / normalization_scale();
    return std::clamp(d, 0.0, 1.0);
  }

  /// Finishes a normalized distance from a squared distance produced by a
  /// batched kernel (kernels::OneVsManySquared). std::sqrt is correctly
  /// rounded, so sqrt(SquaredDistance(a, b)) is bit-identical to
  /// kernels::Distance(a, b) and this composes with the batched kernels
  /// into exactly the pairwise NormalizedDistance — the selectors rely on
  /// that for their bit-compatibility guarantee. Note the sqrt is NOT
  /// skippable for the selectors' mean-of-distance scores; see DESIGN.md
  /// "Memory layout & kernels" for where squared distances are safe.
  double NormalizedFromSquared(double squared) const {
    double d = std::sqrt(squared) / normalization_scale();
    return std::clamp(d, 0.0, 1.0);
  }
};

/// ReID model backed by an offline feature table: detection id -> feature.
/// Use together with io::ReadFeatureTable to run the merging algorithms on
/// real tracker output whose crops were embedded by an actual network.
class PrecomputedReidModel : public ReidModel {
 public:
  /// `features` maps detection ids to their embeddings (all of equal
  /// dimension); `normalization_scale` is the d_max calibration constant
  /// of the source model. Both must be non-degenerate.
  PrecomputedReidModel(
      std::unordered_map<std::uint64_t, FeatureVector> features,
      double normalization_scale);

  /// Looks the crop up by detection id; aborts if absent (a missing
  /// feature is an ingestion bug, not a runtime condition).
  FeatureVector Embed(const CropRef& crop) const override;

  double normalization_scale() const override { return normalization_scale_; }
  std::size_t feature_dim() const override { return feature_dim_; }

  /// Number of stored features.
  std::size_t size() const { return features_.size(); }

  /// True if a feature is stored for `detection_id`.
  bool Contains(std::uint64_t detection_id) const {
    return features_.contains(detection_id);
  }

 private:
  std::unordered_map<std::uint64_t, FeatureVector> features_;
  double normalization_scale_;
  std::size_t feature_dim_;
};

}  // namespace tmerge::reid

#endif  // TMERGE_REID_REID_MODEL_H_
