#ifndef TMERGE_TRACK_REGRESSION_TRACKER_H_
#define TMERGE_TRACK_REGRESSION_TRACKER_H_

#include <string>

#include "tmerge/track/track.h"

namespace tmerge::track {

/// Parameters of the regression tracker (Tracktor-like).
struct RegressionTrackerConfig {
  /// Minimum IoU between a track's last box and a current-frame detection
  /// for the "regression" step to keep the track alive.
  double active_iou = 0.35;
  /// New tracks are spawned only from confident detections...
  double spawn_confidence = 0.5;
  /// ...that do not overlap an active track by more than this (NMS).
  double spawn_nms_iou = 0.25;
  /// Frames a track coasts without support before termination. Tracktor
  /// has no long-term re-identification in its base form, so this is short.
  std::int32_t max_age = 8;
  std::int32_t min_hits = 3;
  double min_confidence = 0.3;
};

/// Tracktor-style tracker (Bergmann et al., ICCV 2019): instead of a
/// learned motion model it "regresses" each track's previous box onto the
/// current frame — simulated here by greedily adopting the best-IoU
/// current detection, which mirrors the part-to-whole assumption that the
/// object moved little between frames. High spawn thresholds suppress
/// false tracks; overall it is the most accurate of the three trackers, as
/// in the paper's evaluation, yet it still fragments on real occlusion
/// gaps.
class RegressionTracker : public Tracker {
 public:
  explicit RegressionTracker(
      const RegressionTrackerConfig& config = RegressionTrackerConfig())
      : config_(config) {}

  TrackingResult Run(const detect::DetectionSequence& detections) override;

  std::string name() const override { return "Tracktor"; }

 private:
  RegressionTrackerConfig config_;
};

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_REGRESSION_TRACKER_H_
