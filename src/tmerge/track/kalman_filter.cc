#include "tmerge/track/kalman_filter.h"

#include <algorithm>
#include <cmath>

#include "tmerge/core/status.h"

namespace tmerge::track {

Mat Mat::Identity(std::size_t n) {
  Mat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Mat Mat::Transpose() const {
  Mat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

Mat Mat::operator*(const Mat& other) const {
  TMERGE_CHECK(cols_ == other.rows_);
  Mat out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double v = At(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += v * other.At(k, c);
      }
    }
  }
  return out;
}

Mat Mat::operator+(const Mat& other) const {
  TMERGE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Mat out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Mat Mat::operator-(const Mat& other) const {
  TMERGE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Mat out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Mat Mat::Inverse() const {
  TMERGE_CHECK(rows_ == cols_);
  std::size_t n = rows_;
  Mat a = *this;
  Mat inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.At(r, col)) > std::abs(a.At(pivot, col))) pivot = r;
    }
    TMERGE_CHECK(std::abs(a.At(pivot, col)) > 1e-12);
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.At(pivot, c), a.At(col, c));
        std::swap(inv.At(pivot, c), inv.At(col, c));
      }
    }
    double d = a.At(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a.At(col, c) /= d;
      inv.At(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = a.At(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
        inv.At(r, c) -= factor * inv.At(col, c);
      }
    }
  }
  return inv;
}

namespace {

// Converts a box to the SORT measurement [cx, cy, s, r].
Mat BoxToMeasurement(const core::BoundingBox& box) {
  Mat z(4, 1);
  z.At(0, 0) = box.x + box.width / 2.0;
  z.At(1, 0) = box.y + box.height / 2.0;
  z.At(2, 0) = std::max(1.0, box.Area());
  z.At(3, 0) = box.width / std::max(1.0, box.height);
  return z;
}

core::BoundingBox StateToBox(const Mat& x) {
  double s = std::max(1.0, x.At(2, 0));
  double r = std::max(0.05, x.At(3, 0));
  double width = std::sqrt(s * r);
  double height = s / std::max(1e-6, width);
  return {x.At(0, 0) - width / 2.0, x.At(1, 0) - height / 2.0, width, height};
}

}  // namespace

KalmanBoxFilter::KalmanBoxFilter(const core::BoundingBox& box)
    : x_(7, 1),
      p_(Mat::Identity(7)),
      f_(Mat::Identity(7)),
      h_(4, 7),
      q_(Mat::Identity(7)),
      r_(Mat::Identity(4)) {
  Mat z = BoxToMeasurement(box);
  for (std::size_t i = 0; i < 4; ++i) x_.At(i, 0) = z.At(i, 0);

  // Constant-velocity transition: position += velocity each frame.
  f_.At(0, 4) = 1.0;
  f_.At(1, 5) = 1.0;
  f_.At(2, 6) = 1.0;

  for (std::size_t i = 0; i < 4; ++i) h_.At(i, i) = 1.0;

  // Covariance initialization mirrors the reference SORT implementation:
  // high uncertainty on the unobserved velocities.
  for (std::size_t i = 4; i < 7; ++i) p_.At(i, i) = 1000.0;
  p_.At(2, 2) = 10.0;

  q_.At(6, 6) = 0.01;
  for (std::size_t i = 4; i < 6; ++i) q_.At(i, i) = 0.01;

  r_.At(2, 2) = 10.0;
  r_.At(3, 3) = 0.01;
}

core::BoundingBox KalmanBoxFilter::Predict() {
  // Keep the area non-negative after the velocity step.
  if (x_.At(2, 0) + x_.At(6, 0) <= 0.0) x_.At(6, 0) = 0.0;
  x_ = f_ * x_;
  p_ = f_ * p_ * f_.Transpose() + q_;
  return StateToBox(x_);
}

void KalmanBoxFilter::Update(const core::BoundingBox& box) {
  Mat z = BoxToMeasurement(box);
  Mat y = z - h_ * x_;
  Mat s = h_ * p_ * h_.Transpose() + r_;
  Mat k = p_ * h_.Transpose() * s.Inverse();
  x_ = x_ + k * y;
  p_ = (Mat::Identity(7) - k * h_) * p_;
}

core::BoundingBox KalmanBoxFilter::StateBox() const { return StateToBox(x_); }

}  // namespace tmerge::track
