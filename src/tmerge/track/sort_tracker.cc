#include "tmerge/track/sort_tracker.h"

#include <memory>
#include <vector>

#include "tmerge/track/hungarian.h"
#include "tmerge/track/kalman_filter.h"

namespace tmerge::track {
namespace {

struct ActiveTrack {
  TrackId id;
  KalmanBoxFilter filter;
  std::vector<TrackedBox> boxes;
  std::int32_t time_since_update = 0;
  core::BoundingBox predicted;
};

}  // namespace

TrackingResult SortTracker::Run(const detect::DetectionSequence& detections) {
  TrackingResult result;
  result.tracker_name = name();
  result.num_frames = detections.num_frames;
  result.frame_width = detections.frame_width;
  result.frame_height = detections.frame_height;
  result.fps = detections.fps;

  std::vector<ActiveTrack> active;
  TrackId next_id = 1;

  auto finalize = [&](ActiveTrack& track) {
    if (static_cast<std::int32_t>(track.boxes.size()) >= config_.min_hits) {
      Track out;
      out.id = track.id;
      out.boxes = std::move(track.boxes);
      result.tracks.push_back(std::move(out));
    }
  };

  for (const auto& frame : detections.frames) {
    // Predict all active tracks forward one frame.
    for (auto& track : active) {
      track.predicted = track.filter.Predict();
    }

    std::vector<const detect::Detection*> dets;
    for (const auto& detection : frame.detections) {
      if (detection.confidence >= config_.min_confidence) {
        dets.push_back(&detection);
      }
    }

    std::vector<int> det_of_track(active.size(), -1);
    std::vector<char> det_used(dets.size(), 0);
    if (!active.empty() && !dets.empty()) {
      std::vector<std::vector<double>> cost(
          active.size(), std::vector<double>(dets.size(), 0.0));
      for (std::size_t t = 0; t < active.size(); ++t) {
        for (std::size_t d = 0; d < dets.size(); ++d) {
          cost[t][d] = 1.0 - core::Iou(active[t].predicted, dets[d]->box);
        }
      }
      std::vector<int> assignment = SolveAssignment(cost);
      for (std::size_t t = 0; t < active.size(); ++t) {
        int d = assignment[t];
        if (d >= 0 && cost[t][d] <= 1.0 - config_.iou_threshold) {
          det_of_track[t] = d;
          det_used[d] = 1;
        }
      }
    }

    for (std::size_t t = 0; t < active.size(); ++t) {
      if (det_of_track[t] >= 0) {
        const detect::Detection& det = *dets[det_of_track[t]];
        active[t].filter.Update(det.box);
        active[t].boxes.push_back(TrackedBox::FromDetection(det));
        active[t].time_since_update = 0;
      } else {
        ++active[t].time_since_update;
      }
    }

    // Terminate stale tracks.
    std::vector<ActiveTrack> survivors;
    survivors.reserve(active.size());
    for (auto& track : active) {
      if (track.time_since_update > config_.max_age) {
        finalize(track);
      } else {
        survivors.push_back(std::move(track));
      }
    }
    active = std::move(survivors);

    // Births from unmatched detections.
    for (std::size_t d = 0; d < dets.size(); ++d) {
      if (det_used[d]) continue;
      ActiveTrack track{next_id++, KalmanBoxFilter(dets[d]->box), {}, 0, {}};
      track.boxes.push_back(TrackedBox::FromDetection(*dets[d]));
      active.push_back(std::move(track));
    }
  }

  for (auto& track : active) finalize(track);
  return result;
}

}  // namespace tmerge::track
