#include "tmerge/track/sort_tracker.h"

#include <limits>
#include <memory>
#include <vector>

#include "tmerge/track/hungarian.h"

namespace tmerge::track {

StreamingSortTracker::StreamingSortTracker(const SortConfig& config,
                                           std::int32_t num_frames,
                                           double frame_width,
                                           double frame_height, double fps)
    : config_(config) {
  result_.tracker_name = "SORT";
  result_.num_frames = num_frames;
  result_.frame_width = frame_width;
  result_.frame_height = frame_height;
  result_.fps = fps;
}

void StreamingSortTracker::Finalize(ActiveTrack& track) {
  if (static_cast<std::int32_t>(track.boxes.size()) >= config_.min_hits) {
    Track out;
    out.id = track.id;
    out.boxes = std::move(track.boxes);
    result_.tracks.push_back(std::move(out));
  }
}

void StreamingSortTracker::Observe(const detect::DetectionFrame& frame) {
  // Predict all active tracks forward one frame.
  for (auto& track : active_) {
    track.predicted = track.filter.Predict();
  }

  std::vector<const detect::Detection*> dets;
  for (const auto& detection : frame.detections) {
    if (detection.confidence >= config_.min_confidence) {
      dets.push_back(&detection);
    }
  }

  std::vector<int> det_of_track(active_.size(), -1);
  std::vector<char> det_used(dets.size(), 0);
  if (!active_.empty() && !dets.empty()) {
    std::vector<std::vector<double>> cost(
        active_.size(), std::vector<double>(dets.size(), 0.0));
    for (std::size_t t = 0; t < active_.size(); ++t) {
      for (std::size_t d = 0; d < dets.size(); ++d) {
        cost[t][d] = 1.0 - core::Iou(active_[t].predicted, dets[d]->box);
      }
    }
    std::vector<int> assignment = SolveAssignment(cost);
    for (std::size_t t = 0; t < active_.size(); ++t) {
      int d = assignment[t];
      if (d >= 0 && cost[t][d] <= 1.0 - config_.iou_threshold) {
        det_of_track[t] = d;
        det_used[d] = 1;
      }
    }
  }

  for (std::size_t t = 0; t < active_.size(); ++t) {
    if (det_of_track[t] >= 0) {
      const detect::Detection& det = *dets[det_of_track[t]];
      active_[t].filter.Update(det.box);
      active_[t].boxes.push_back(TrackedBox::FromDetection(det));
      active_[t].time_since_update = 0;
    } else {
      ++active_[t].time_since_update;
    }
  }

  // Terminate stale tracks.
  std::vector<ActiveTrack> survivors;
  survivors.reserve(active_.size());
  for (auto& track : active_) {
    if (track.time_since_update > config_.max_age) {
      Finalize(track);
    } else {
      survivors.push_back(std::move(track));
    }
  }
  active_ = std::move(survivors);

  // Births from unmatched detections.
  for (std::size_t d = 0; d < dets.size(); ++d) {
    if (det_used[d]) continue;
    ActiveTrack track{next_id_++, KalmanBoxFilter(dets[d]->box), {}, 0, {}};
    track.boxes.push_back(TrackedBox::FromDetection(*dets[d]));
    active_.push_back(std::move(track));
  }

  ++frames_observed_;
}

void StreamingSortTracker::Finish() {
  if (finished_) return;
  for (auto& track : active_) Finalize(track);
  active_.clear();
  finished_ = true;
}

std::int32_t StreamingSortTracker::min_active_first_frame() const {
  std::int32_t min_first = std::numeric_limits<std::int32_t>::max();
  for (const auto& track : active_) {
    if (!track.boxes.empty() && track.boxes.front().frame < min_first) {
      min_first = track.boxes.front().frame;
    }
  }
  return min_first;
}

TrackingResult SortTracker::Run(const detect::DetectionSequence& detections) {
  StreamingSortTracker stream(config_, detections.num_frames,
                              detections.frame_width, detections.frame_height,
                              detections.fps);
  for (const auto& frame : detections.frames) stream.Observe(frame);
  stream.Finish();
  return stream.result();
}

}  // namespace tmerge::track
