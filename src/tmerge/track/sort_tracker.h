#ifndef TMERGE_TRACK_SORT_TRACKER_H_
#define TMERGE_TRACK_SORT_TRACKER_H_

#include <string>

#include "tmerge/track/track.h"

namespace tmerge::track {

/// Parameters of the SORT tracker (Bewley et al., ICIP 2016).
struct SortConfig {
  /// Minimum IoU between a Kalman prediction and a detection to accept the
  /// Hungarian match.
  double iou_threshold = 0.3;
  /// Frames a track survives without a matched detection before it is
  /// terminated. Occlusion gaps longer than this fragment the track —
  /// the source of polyonymous tracks.
  std::int32_t max_age = 9;
  /// Minimum associated boxes for a track to be emitted (suppresses
  /// false-positive-born tracks).
  std::int32_t min_hits = 5;
  /// Detections below this confidence are ignored.
  double min_confidence = 0.35;
};

/// SORT: Kalman-filter motion prediction + IoU cost + Hungarian assignment.
/// Purely motion-based, so any detection gap longer than `max_age` splits
/// the track; of the three trackers in this repo it fragments the most,
/// mirroring its role in the paper's Fig. 11.
class SortTracker : public Tracker {
 public:
  explicit SortTracker(const SortConfig& config = SortConfig())
      : config_(config) {}

  TrackingResult Run(const detect::DetectionSequence& detections) override;

  std::string name() const override { return "SORT"; }

  const SortConfig& config() const { return config_; }

 private:
  SortConfig config_;
};

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_SORT_TRACKER_H_
