#ifndef TMERGE_TRACK_SORT_TRACKER_H_
#define TMERGE_TRACK_SORT_TRACKER_H_

#include <string>
#include <vector>

#include "tmerge/track/kalman_filter.h"
#include "tmerge/track/track.h"

namespace tmerge::track {

/// Parameters of the SORT tracker (Bewley et al., ICIP 2016).
struct SortConfig {
  /// Minimum IoU between a Kalman prediction and a detection to accept the
  /// Hungarian match.
  double iou_threshold = 0.3;
  /// Frames a track survives without a matched detection before it is
  /// terminated. Occlusion gaps longer than this fragment the track —
  /// the source of polyonymous tracks.
  std::int32_t max_age = 9;
  /// Minimum associated boxes for a track to be emitted (suppresses
  /// false-positive-born tracks).
  std::int32_t min_hits = 5;
  /// Detections below this confidence are ignored.
  double min_confidence = 0.35;
};

/// Incremental SORT: the frame loop of SortTracker::Run exposed as an
/// explicit state machine for the streaming ingestion service
/// (tmerge::stream). Feed frames in order with Observe; call Finish once
/// the stream ends. `result()` grows as tracks retire, in retirement
/// order — SortTracker::Run is implemented as Observe-all + Finish over
/// this class, so the streamed track list is bit-identical to the batch
/// tracker's by construction (pinned by SortTrackerTest.StreamingMatchesBatch).
///
/// Concurrency: thread-confined. One camera's stream owns one instance;
/// the stream service serializes Observe/Finish per camera.
class StreamingSortTracker {
 public:
  /// `num_frames`/geometry/fps describe the declared stream extent (the
  /// fields a DetectionSequence header carries); they are copied into the
  /// result so downstream windowing sees the same video metadata as the
  /// batch path.
  StreamingSortTracker(const SortConfig& config, std::int32_t num_frames,
                       double frame_width, double frame_height, double fps);

  /// Consumes the next frame's detections. Frames must arrive in order;
  /// gaps are the caller's responsibility (pass an empty DetectionFrame
  /// for a frame with no detections).
  void Observe(const detect::DetectionFrame& frame);

  /// Ends the stream: every still-active track is finalized. Idempotent.
  void Finish();

  /// Tracks finalized so far, in retirement order (identical to the order
  /// SortTracker::Run emits). Stable across Observe calls only in the
  /// sense of content: the vector may reallocate as it grows.
  const TrackingResult& result() const { return result_; }

  /// Number of tracks currently being followed (not yet retired).
  std::size_t active_tracks() const { return active_.size(); }

  /// Smallest first_frame over still-active tracks, or INT32_MAX when no
  /// track is active. Everything born strictly before this bound has been
  /// finalized — the watermark the incremental windower closes on.
  std::int32_t min_active_first_frame() const;

  /// Frames observed so far (last observed frame + 1); 0 before the first
  /// Observe.
  std::int32_t frames_observed() const { return frames_observed_; }

  bool finished() const { return finished_; }

 private:
  struct ActiveTrack {
    TrackId id;
    KalmanBoxFilter filter;
    std::vector<TrackedBox> boxes;
    std::int32_t time_since_update = 0;
    core::BoundingBox predicted;
  };

  void Finalize(ActiveTrack& track);

  SortConfig config_;
  TrackingResult result_;
  std::vector<ActiveTrack> active_;
  TrackId next_id_ = 1;
  std::int32_t frames_observed_ = 0;
  bool finished_ = false;
};

/// SORT: Kalman-filter motion prediction + IoU cost + Hungarian assignment.
/// Purely motion-based, so any detection gap longer than `max_age` splits
/// the track; of the three trackers in this repo it fragments the most,
/// mirroring its role in the paper's Fig. 11.
class SortTracker : public Tracker {
 public:
  explicit SortTracker(const SortConfig& config = SortConfig())
      : config_(config) {}

  TrackingResult Run(const detect::DetectionSequence& detections) override;

  std::string name() const override { return "SORT"; }

  const SortConfig& config() const { return config_; }

 private:
  SortConfig config_;
};

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_SORT_TRACKER_H_
