#include "tmerge/track/hungarian.h"

#include <limits>

#include "tmerge/core/status.h"

namespace tmerge::track {

std::vector<int> SolveAssignment(const std::vector<std::vector<double>>& cost) {
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) return {};
  const int cols = static_cast<int>(cost[0].size());
  for (const auto& row : cost) {
    TMERGE_CHECK(static_cast<int>(row.size()) == cols);
  }
  if (cols == 0) return std::vector<int>(rows, -1);

  // The shortest-augmenting-path formulation needs rows <= cols; transpose
  // if necessary and invert the result at the end.
  bool transposed = rows > cols;
  const int n = transposed ? cols : rows;  // assignments to make
  const int m = transposed ? rows : cols;  // choices
  auto at = [&](int r, int c) -> double {
    return transposed ? cost[c][r] : cost[r][c];
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-indexed potentials/matching, standard formulation.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> match(m + 1, 0);  // match[c] = row assigned to column c
  std::vector<int> way(m + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, false);
    do {
      used[j0] = true;
      int i0 = match[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      TMERGE_CHECK(j1 != -1);
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      int j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> result(rows, -1);
  for (int j = 1; j <= m; ++j) {
    if (match[j] == 0) continue;
    int r = match[j] - 1;
    int c = j - 1;
    if (transposed) {
      result[c] = r;
    } else {
      result[r] = c;
    }
  }
  return result;
}

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment) {
  TMERGE_CHECK(assignment.size() == cost.size());
  double total = 0.0;
  for (std::size_t r = 0; r < cost.size(); ++r) {
    if (assignment[r] >= 0) total += cost[r][assignment[r]];
  }
  return total;
}

}  // namespace tmerge::track
