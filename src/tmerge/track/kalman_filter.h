#ifndef TMERGE_TRACK_KALMAN_FILTER_H_
#define TMERGE_TRACK_KALMAN_FILTER_H_

#include <cstddef>
#include <vector>

#include "tmerge/core/geometry.h"

namespace tmerge::track {

/// Minimal dense matrix used by the Kalman filter (row-major doubles).
/// Supports exactly the operations filtering needs; not a general linear
/// algebra library.
class Mat {
 public:
  Mat() : rows_(0), cols_(0) {}
  Mat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Mat Identity(std::size_t n);

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Mat Transpose() const;
  Mat operator*(const Mat& other) const;
  Mat operator+(const Mat& other) const;
  Mat operator-(const Mat& other) const;

  /// Inverse via Gauss-Jordan elimination with partial pivoting. The matrix
  /// must be square and well-conditioned (covariances here always are).
  Mat Inverse() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// SORT-parameterized constant-velocity Kalman filter over bounding boxes.
///
/// State x = [cx, cy, s, r, vcx, vcy, vs] where (cx, cy) is the box center,
/// s its area, r its aspect ratio (width/height, assumed constant), and v*
/// are per-frame velocities. Measurement z = [cx, cy, s, r]. This is the
/// exact formulation of Bewley et al.'s SORT tracker, which the paper uses
/// as one of its evaluated trackers.
class KalmanBoxFilter {
 public:
  /// Initializes the filter from the first observed box.
  explicit KalmanBoxFilter(const core::BoundingBox& box);

  /// Advances the state one frame and returns the predicted box.
  core::BoundingBox Predict();

  /// Folds in an observed box.
  void Update(const core::BoundingBox& box);

  /// Current state estimate as a box.
  core::BoundingBox StateBox() const;

 private:
  Mat x_;  // 7x1 state.
  Mat p_;  // 7x7 covariance.
  Mat f_;  // 7x7 transition.
  Mat h_;  // 4x7 measurement.
  Mat q_;  // 7x7 process noise.
  Mat r_;  // 4x4 measurement noise.
};

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_KALMAN_FILTER_H_
