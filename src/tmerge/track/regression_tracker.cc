#include "tmerge/track/regression_tracker.h"

#include <algorithm>
#include <vector>

namespace tmerge::track {
namespace {

struct ActiveTrack {
  TrackId id;
  std::vector<TrackedBox> boxes;
  core::BoundingBox last_box;
  std::int32_t time_since_update = 0;
};

}  // namespace

TrackingResult RegressionTracker::Run(
    const detect::DetectionSequence& detections) {
  TrackingResult result;
  result.tracker_name = name();
  result.num_frames = detections.num_frames;
  result.frame_width = detections.frame_width;
  result.frame_height = detections.frame_height;
  result.fps = detections.fps;

  std::vector<ActiveTrack> active;
  TrackId next_id = 1;

  auto finalize = [&](ActiveTrack& track) {
    if (static_cast<std::int32_t>(track.boxes.size()) >= config_.min_hits) {
      Track out;
      out.id = track.id;
      out.boxes = std::move(track.boxes);
      result.tracks.push_back(std::move(out));
    }
  };

  for (const auto& frame : detections.frames) {
    std::vector<const detect::Detection*> dets;
    for (const auto& detection : frame.detections) {
      if (detection.confidence >= config_.min_confidence) {
        dets.push_back(&detection);
      }
    }
    std::vector<char> det_used(dets.size(), 0);

    // Regression step: each active track greedily claims the best-IoU
    // detection near its previous box. Tracks that have coasted less are
    // served first (their position estimate is fresher).
    std::vector<std::size_t> order(active.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return active[a].time_since_update < active[b].time_since_update;
    });

    for (std::size_t idx : order) {
      ActiveTrack& track = active[idx];
      double best_iou = 0.0;
      int best_det = -1;
      for (std::size_t d = 0; d < dets.size(); ++d) {
        if (det_used[d]) continue;
        double iou = core::Iou(track.last_box, dets[d]->box);
        if (iou > best_iou) {
          best_iou = iou;
          best_det = static_cast<int>(d);
        }
      }
      if (best_det >= 0 && best_iou >= config_.active_iou) {
        det_used[best_det] = 1;
        track.boxes.push_back(TrackedBox::FromDetection(*dets[best_det]));
        track.last_box = dets[best_det]->box;
        track.time_since_update = 0;
      } else {
        ++track.time_since_update;
      }
    }

    std::vector<ActiveTrack> survivors;
    survivors.reserve(active.size());
    for (auto& track : active) {
      if (track.time_since_update > config_.max_age) {
        finalize(track);
      } else {
        survivors.push_back(std::move(track));
      }
    }
    active = std::move(survivors);

    // Spawn step: confident detections that do not overlap an active track.
    for (std::size_t d = 0; d < dets.size(); ++d) {
      if (det_used[d] || dets[d]->confidence < config_.spawn_confidence) {
        continue;
      }
      bool overlaps_active = false;
      for (const auto& track : active) {
        if (core::Iou(track.last_box, dets[d]->box) > config_.spawn_nms_iou) {
          overlaps_active = true;
          break;
        }
      }
      if (overlaps_active) continue;
      ActiveTrack track{next_id++, {}, dets[d]->box, 0};
      track.boxes.push_back(TrackedBox::FromDetection(*dets[d]));
      active.push_back(std::move(track));
    }
  }

  for (auto& track : active) finalize(track);
  return result;
}

}  // namespace tmerge::track
