#ifndef TMERGE_TRACK_TRACK_H_
#define TMERGE_TRACK_TRACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tmerge/core/geometry.h"
#include "tmerge/detect/detection_simulator.h"

namespace tmerge::track {

/// Tracking identifier assigned by a tracker (the paper's TID). Unique
/// within one TrackingResult.
using TrackId = std::int32_t;

/// One tracked, associated detection within a track. Retains the hidden
/// ground-truth fields of the underlying Detection so the evaluation oracle
/// and the synthetic ReID model can operate on track boxes; merging
/// algorithms must only read frame/box/confidence (+ detection_id for
/// feature caching).
struct TrackedBox {
  std::uint64_t detection_id = 0;
  std::int32_t frame = 0;
  core::BoundingBox box;
  double confidence = 1.0;

  // --- Hidden ground truth, forwarded from Detection. ---
  sim::GtObjectId gt_id = sim::kNoObject;
  double visibility = 1.0;
  bool glared = false;
  std::uint64_t noise_seed = 0;

  /// Builds a TrackedBox from a detector output.
  static TrackedBox FromDetection(const detect::Detection& detection);
};

/// A tracker-produced track: the sequence of boxes sharing one TID (the
/// paper's t_{c,k} with BBoxes B_t). Frames are strictly increasing but may
/// have gaps where the tracker coasted through missed detections.
struct Track {
  TrackId id = 0;
  std::vector<TrackedBox> boxes;

  std::int32_t first_frame() const {
    return boxes.empty() ? 0 : boxes.front().frame;
  }
  std::int32_t last_frame() const {
    return boxes.empty() ? -1 : boxes.back().frame;
  }
  /// Number of associated boxes |t| (not the frame span).
  std::int32_t size() const { return static_cast<std::int32_t>(boxes.size()); }
  /// True for a track with no boxes (paired with size(), expected by
  /// container-hygiene lints and admissibility checks).
  bool empty() const { return boxes.empty(); }
  /// Frame span, inclusive.
  std::int32_t span() const {
    return boxes.empty() ? 0 : last_frame() - first_frame() + 1;
  }
};

/// The full output of a tracker on one video.
struct TrackingResult {
  std::string tracker_name;
  std::int32_t num_frames = 0;
  double frame_width = 0.0;
  double frame_height = 0.0;
  double fps = 30.0;
  std::vector<Track> tracks;

  std::int64_t TotalBoxes() const;

  /// Returns the index into `tracks` for `id`, or -1 if absent.
  std::int64_t IndexOfTrack(TrackId id) const;
};

/// Abstract frame-by-frame multi-object tracker.
class Tracker {
 public:
  virtual ~Tracker() = default;

  /// Runs the tracker over an entire detection sequence.
  virtual TrackingResult Run(const detect::DetectionSequence& detections) = 0;

  /// Human-readable tracker name (used in bench output).
  virtual std::string name() const = 0;
};

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_TRACK_H_
