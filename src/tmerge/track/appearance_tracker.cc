#include "tmerge/track/appearance_tracker.h"

#include <limits>
#include <vector>

#include "tmerge/core/status.h"
#include "tmerge/track/hungarian.h"
#include "tmerge/track/kalman_filter.h"

namespace tmerge::track {
namespace {

struct ActiveTrack {
  TrackId id;
  KalmanBoxFilter filter;
  std::vector<TrackedBox> boxes;
  reid::FeatureVector appearance;
  std::int32_t time_since_update = 0;
  core::BoundingBox predicted;
};

void BlendAppearance(reid::FeatureVector& mean,
                     const reid::FeatureVector& fresh, double momentum) {
  if (mean.empty()) {
    mean = fresh;
    return;
  }
  for (std::size_t i = 0; i < mean.size(); ++i) {
    mean[i] = momentum * mean[i] + (1.0 - momentum) * fresh[i];
  }
}

}  // namespace

AppearanceTracker::AppearanceTracker(const reid::ReidModel* model,
                                     const AppearanceTrackerConfig& config)
    : model_(model), config_(config) {
  TMERGE_CHECK(model_ != nullptr);
}

TrackingResult AppearanceTracker::Run(
    const detect::DetectionSequence& detections) {
  TrackingResult result;
  result.tracker_name = name();
  result.num_frames = detections.num_frames;
  result.frame_width = detections.frame_width;
  result.frame_height = detections.frame_height;
  result.fps = detections.fps;

  constexpr double kInfCost = 1e9;
  std::vector<ActiveTrack> active;
  TrackId next_id = 1;

  auto finalize = [&](ActiveTrack& track) {
    if (static_cast<std::int32_t>(track.boxes.size()) >= config_.min_hits) {
      Track out;
      out.id = track.id;
      out.boxes = std::move(track.boxes);
      result.tracks.push_back(std::move(out));
    }
  };

  for (const auto& frame : detections.frames) {
    for (auto& track : active) {
      track.predicted = track.filter.Predict();
    }

    std::vector<const detect::Detection*> dets;
    for (const auto& detection : frame.detections) {
      if (detection.confidence >= config_.min_confidence) {
        dets.push_back(&detection);
      }
    }
    // Embed once per detection (DeepSORT embeds every detection it tracks).
    std::vector<reid::FeatureVector> det_features;
    det_features.reserve(dets.size());
    for (const auto* det : dets) {
      det_features.push_back(model_->Embed(reid::CropRef{
          det->detection_id, det->gt_id, det->visibility, det->glared,
          det->noise_seed}));
    }

    std::vector<int> det_of_track(active.size(), -1);
    std::vector<char> det_used(dets.size(), 0);
    if (!active.empty() && !dets.empty()) {
      std::vector<std::vector<double>> cost(
          active.size(), std::vector<double>(dets.size(), kInfCost));
      for (std::size_t t = 0; t < active.size(); ++t) {
        const ActiveTrack& track = active[t];
        double gate = config_.gate_distance *
                      (1.0 + config_.gate_growth * track.time_since_update);
        for (std::size_t d = 0; d < dets.size(); ++d) {
          double center_dist = core::Distance(track.predicted.Center(),
                                              dets[d]->box.Center());
          if (center_dist > gate) continue;
          double appearance_cost =
              model_->NormalizedDistance(track.appearance, det_features[d]);
          double iou_cost = 1.0 - core::Iou(track.predicted, dets[d]->box);
          cost[t][d] = config_.appearance_weight * appearance_cost +
                       (1.0 - config_.appearance_weight) * iou_cost;
        }
      }
      std::vector<int> assignment = SolveAssignment(cost);
      for (std::size_t t = 0; t < active.size(); ++t) {
        int d = assignment[t];
        if (d >= 0 && cost[t][d] <= config_.max_match_cost) {
          det_of_track[t] = d;
          det_used[d] = 1;
        }
      }
    }

    for (std::size_t t = 0; t < active.size(); ++t) {
      if (det_of_track[t] >= 0) {
        int d = det_of_track[t];
        active[t].filter.Update(dets[d]->box);
        active[t].boxes.push_back(TrackedBox::FromDetection(*dets[d]));
        BlendAppearance(active[t].appearance, det_features[d],
                        config_.appearance_momentum);
        active[t].time_since_update = 0;
      } else {
        ++active[t].time_since_update;
      }
    }

    std::vector<ActiveTrack> survivors;
    survivors.reserve(active.size());
    for (auto& track : active) {
      if (track.time_since_update > config_.max_age) {
        finalize(track);
      } else {
        survivors.push_back(std::move(track));
      }
    }
    active = std::move(survivors);

    for (std::size_t d = 0; d < dets.size(); ++d) {
      if (det_used[d]) continue;
      ActiveTrack track{next_id++, KalmanBoxFilter(dets[d]->box), {},
                        det_features[d], 0, {}};
      track.boxes.push_back(TrackedBox::FromDetection(*dets[d]));
      active.push_back(std::move(track));
    }
  }

  for (auto& track : active) finalize(track);
  return result;
}

}  // namespace tmerge::track
