#ifndef TMERGE_TRACK_HUNGARIAN_H_
#define TMERGE_TRACK_HUNGARIAN_H_

#include <vector>

namespace tmerge::track {

/// Solves the rectangular linear assignment problem, minimizing total cost.
///
/// `cost[r][c]` is the cost of assigning row r to column c; all rows must
/// have equal length. Returns a vector of length cost.size() where entry r
/// is the assigned column, or -1 when rows outnumber columns and row r is
/// left unassigned. Every column is used at most once. Implementation:
/// Jonker-Volgenant style shortest augmenting path (the O(n^3) Kuhn-Munkres
/// family), exact.
std::vector<int> SolveAssignment(const std::vector<std::vector<double>>& cost);

/// Total cost of an assignment returned by SolveAssignment (unassigned rows
/// contribute nothing).
double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment);

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_HUNGARIAN_H_
