#include "tmerge/track/track.h"

namespace tmerge::track {

TrackedBox TrackedBox::FromDetection(const detect::Detection& detection) {
  TrackedBox box;
  box.detection_id = detection.detection_id;
  box.frame = detection.frame;
  box.box = detection.box;
  box.confidence = detection.confidence;
  box.gt_id = detection.gt_id;
  box.visibility = detection.visibility;
  box.glared = detection.glared;
  box.noise_seed = detection.noise_seed;
  return box;
}

std::int64_t TrackingResult::TotalBoxes() const {
  std::int64_t total = 0;
  for (const auto& track : tracks) total += track.size();
  return total;
}

std::int64_t TrackingResult::IndexOfTrack(TrackId id) const {
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i].id == id) return static_cast<std::int64_t>(i);
  }
  return -1;
}

}  // namespace tmerge::track
