#ifndef TMERGE_TRACK_APPEARANCE_TRACKER_H_
#define TMERGE_TRACK_APPEARANCE_TRACKER_H_

#include <string>

#include "tmerge/reid/reid_model.h"
#include "tmerge/track/track.h"

namespace tmerge::track {

/// Parameters of the appearance-aided tracker (DeepSORT-like).
struct AppearanceTrackerConfig {
  /// Weight of the appearance term in the association cost; the remainder
  /// weights (1 - IoU).
  double appearance_weight = 0.6;
  /// Matches whose combined cost exceeds this are rejected.
  double max_match_cost = 0.72;
  /// Spatial gate: a detection farther than this from the track's last
  /// center (scaled up while coasting) cannot match.
  double gate_distance = 120.0;
  /// Per-coasted-frame widening of the gate.
  double gate_growth = 0.35;
  /// Exponential moving average factor for the track's appearance.
  double appearance_momentum = 0.85;
  std::int32_t max_age = 18;
  std::int32_t min_hits = 3;
  double min_confidence = 0.35;
};

/// DeepSORT-style tracker: Hungarian assignment over a cost that blends
/// normalized ReID feature distance with IoU, gated spatially. The
/// appearance term lets it bridge occlusion gaps up to `max_age` frames, so
/// it fragments less than SORT but still produces polyonymous tracks on
/// longer occlusions — matching its placement in the paper's Fig. 11.
///
/// The tracker uses the synthetic ReID model for per-detection embeddings
/// (as the real DeepSORT uses its appearance descriptor); this cost is part
/// of tracking, not of the merging algorithms the paper meters.
class AppearanceTracker : public Tracker {
 public:
  AppearanceTracker(const reid::ReidModel* model,
                    const AppearanceTrackerConfig& config =
                        AppearanceTrackerConfig());

  TrackingResult Run(const detect::DetectionSequence& detections) override;

  std::string name() const override { return "DeepSORT"; }

 private:
  const reid::ReidModel* model_;
  AppearanceTrackerConfig config_;
};

}  // namespace tmerge::track

#endif  // TMERGE_TRACK_APPEARANCE_TRACKER_H_
