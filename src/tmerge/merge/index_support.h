#ifndef TMERGE_MERGE_INDEX_SUPPORT_H_
#define TMERGE_MERGE_INDEX_SUPPORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "tmerge/merge/pair_store.h"
#include "tmerge/merge/selector.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/feature_store.h"

namespace tmerge::merge::internal {

/// Quantized mirror rows of one track's crops, gathered once per pair
/// sweep after the mirrors were built (DESIGN.md §15.2). Only the vectors
/// for the requested precision are populated; `errors` always carries the
/// per-row reconstruction bound h the over-fetch rule consumes.
struct ScreenTrack {
  std::vector<const std::int8_t*> int8_rows;
  std::vector<float> int8_scales;
  std::vector<const std::uint16_t*> fp16_rows;
  std::vector<float> errors;

  std::size_t size() const { return errors.size(); }
  double MeanError() const;
};

/// Extends the mirror for `precision` over every stored row.
void EnsureMirror(reid::FeatureStore& store, ScreenPrecision precision);

/// Gathers mirror rows for `refs` (all must be mirrored already).
void GatherScreenTrack(const reid::FeatureStore& store,
                       const std::vector<reid::FeatureRef>& refs,
                       ScreenPrecision precision, ScreenTrack* out);

/// Approximate mean normalized distance over the full A x B crop product
/// using the fp32 quantized kernels; the fa-outer / fb-inner order
/// mirrors the exact sweep. Bit-identical across dispatch levels.
/// `scratch` is resized as needed. Returns 1.0 when either side is empty
/// (the exact sweep's empty-pair convention).
double ScreenMeanAllPairs(const ScreenTrack& a, const ScreenTrack& b,
                          std::size_t dim, double norm_scale,
                          ScreenPrecision precision,
                          std::vector<float>* scratch);

/// Approximate normalized distance of one (crop_a, crop_b) cell — the PS
/// sampled-cell path.
double ScreenOnePair(const ScreenTrack& a, std::size_t ia,
                     const ScreenTrack& b, std::size_t ib, std::size_t dim,
                     double norm_scale, ScreenPrecision precision);

/// Proven bound on |approximate - exact| for a mean of normalized
/// distances whose cells draw rows with mean reconstruction error
/// `mean_error_a` / `mean_error_b` (§15.2):
///   (mean_a h + mean_b h) * sqrt(dim) / norm_scale
/// plus a conservative fp32 arithmetic slack, all times `margin`.
double ScreenBound(double mean_error_a, double mean_error_b,
                   std::size_t dim, double norm_scale, double margin);

/// Over-fetch shortlist: true for every pair whose exact score could
/// still be inside the ascending top-k. With u = the k-th smallest value
/// of approx+bound, pair p survives iff approx[p] - bound[p] <= u; §15.2
/// proves the true top-k always survives and that every dropped pair's
/// approximate score ranks strictly after the exact top-k under the
/// (score, index) total order TopKByScore uses. k == 0 drops everything;
/// k >= n keeps everything.
std::vector<char> ShortlistMask(const std::vector<double>& approx,
                                const std::vector<double>& bound,
                                std::size_t k);

/// Publishes one window's screen counters (no-op when obs is disabled).
void RecordScreenObs(std::int64_t screened_pairs, std::int64_t reranked_pairs,
                     std::int64_t int8_rows, std::int64_t fp16_rows);

/// Cluster-router verdict over a window's pairs (§15.3).
struct RouterOutcome {
  /// False when the router is off or could not engage (no stored rows);
  /// `admitted` is empty and every pair must be treated as admitted.
  bool active = false;
  std::vector<char> admitted;
  std::int64_t routed_out = 0;

  bool Admitted(std::size_t pair) const {
    return !active || admitted[pair] != 0;
  }
};

/// Routes a window's pairs through the cache's coarse cluster index. Each
/// distinct track is represented by its first crop; `embed_rep` must make
/// that crop's feature resident in the cache (charging whatever the
/// caller's embed path charges) and return whether it succeeded — failed
/// representatives admit their pairs (missing evidence must never drop a
/// pair). A pair is admitted when either representative's cluster is
/// among the other's probed nearest clusters; router_exhaustive probes
/// every cluster, admitting everything.
RouterOutcome RoutePairs(
    const PairContext& context, reid::FeatureCache& cache,
    const IndexOptions& index,
    const std::function<bool(const reid::CropRef&)>& embed_rep);

}  // namespace tmerge::merge::internal

#endif  // TMERGE_MERGE_INDEX_SUPPORT_H_
