#ifndef TMERGE_MERGE_TMERGE_H_
#define TMERGE_MERGE_TMERGE_H_

#include <cstdint>
#include <string>

#include "tmerge/merge/selector.h"

namespace tmerge::merge {

/// TMerge hyper-parameters (paper §IV, defaults per §V-B).
struct TMergeOptions {
  /// Maximum sampling iterations tau_max. In batched mode the budget
  /// counts BBox-pair evaluations, so runs are comparable across batch
  /// sizes.
  std::int64_t tau_max = 10000;
  /// Enables BetaInit (Algorithm 3): spatially close track pairs start
  /// with a lower-mean Beta prior.
  bool use_beta_init = true;
  /// BetaInit spatial-distance threshold thr_S in pixels.
  double thr_s = 200.0;
  /// Enables ULB pruning (Algorithm 4).
  bool use_ulb = true;
  /// Bounds are recomputed every this many iterations — an engineering
  /// batching of Algorithm 4's per-iteration pseudocode that changes only
  /// bookkeeping cost, not results (pruning fires marginally later).
  std::int32_t ulb_period = 16;
};

/// The paper's contribution (Algorithm 2): Thompson sampling over track
/// pairs. Each pair carries a Beta(S, F) posterior on its normalized score;
/// every iteration draws a theta per live pair, evaluates one fresh BBox
/// pair of the arg-min pair with the ReID model, runs a Bernoulli(d~)
/// trial, and updates the posterior. BetaInit (Algorithm 3) warm-starts the
/// priors from spatial proximity; ULB (Algorithm 4) prunes pairs whose
/// membership in the top-K is already decided by Hoeffding bounds.
/// batch_size > 1 in SelectorOptions yields TMerge-B: the B smallest
/// Thompson draws are evaluated per round with one batched inference.
class TMergeSelector : public CandidateSelector {
 public:
  explicit TMergeSelector(const TMergeOptions& tmerge_options = TMergeOptions())
      : options_(tmerge_options) {}

  SelectionResult Select(const PairContext& context,
                         const reid::ReidModel& model,
                         reid::FeatureCache& cache,
                         const SelectorOptions& options) override;

  std::string name() const override { return "TMerge"; }

  const TMergeOptions& tmerge_options() const { return options_; }

 private:
  TMergeOptions options_;
};

namespace internal {

/// State of ULB pruning exposed for tests: counts of pairs pruned as
/// certainly-in / certainly-out of the top-K.
struct UlbCounts {
  std::int64_t pruned_in = 0;
  std::int64_t pruned_out = 0;
};

}  // namespace internal

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_TMERGE_H_
