#include "tmerge/merge/pipeline.h"

#include <set>
#include <utility>

#include "tmerge/core/sim_clock.h"
#include "tmerge/core/status.h"
#include "tmerge/core/thread_pool.h"
#include "tmerge/metrics/recall.h"
#include "tmerge/obs/span.h"
#include "tmerge/reid/feature_cache.h"

namespace tmerge::merge {

#ifndef TMERGE_OBS_DISABLED
namespace {

/// Folds one window's selection outcome into the default registry,
/// mirroring UsageStats field by field so the exported counters always
/// agree with the EvalResult aggregation.
void RecordWindowObs(const SelectionResult& result,
                     std::size_t window_pairs) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& windows = registry.GetCounter("evaluate.windows");
  static obs::Counter& pairs = registry.GetCounter("evaluate.pairs_scanned");
  static obs::Counter& candidates =
      registry.GetCounter("evaluate.candidates_emitted");
  static obs::Counter& box_pairs =
      registry.GetCounter("evaluate.box_pairs_evaluated");
  static obs::Counter& cache_hits = registry.GetCounter("reid.cache.hits");
  static obs::Counter& cache_misses =
      registry.GetCounter("reid.cache.misses");
  static obs::Counter& single =
      registry.GetCounter("reid.inferences.single");
  static obs::Counter& batched_crops =
      registry.GetCounter("reid.inferences.batched_crops");
  static obs::Counter& batch_calls = registry.GetCounter("reid.batch_calls");
  static obs::Counter& distances =
      registry.GetCounter("reid.distance_evals");
  static obs::Counter& gate_accepted =
      registry.GetCounter("gate.accepted");
  static obs::Counter& gate_rejected =
      registry.GetCounter("gate.rejected");
  static obs::Counter& gate_ambiguous =
      registry.GetCounter("gate.ambiguous");
  static obs::Counter& failed_pulls =
      registry.GetCounter("pipeline.failed_pulls");
  static obs::Counter& degraded =
      registry.GetCounter("pipeline.degraded_windows");
  windows.Add();
  pairs.Add(static_cast<std::int64_t>(window_pairs));
  candidates.Add(static_cast<std::int64_t>(result.candidates.size()));
  box_pairs.Add(result.box_pairs_evaluated);
  cache_hits.Add(result.usage.cache_hits);
  // Every cache miss is exactly one embedded crop (single or batched).
  cache_misses.Add(result.usage.TotalInferences());
  single.Add(result.usage.single_inferences);
  batched_crops.Add(result.usage.batched_crops);
  batch_calls.Add(result.usage.batch_calls);
  distances.Add(result.usage.distance_evals);
  gate_accepted.Add(result.usage.gate_accepted);
  gate_rejected.Add(result.usage.gate_rejected);
  gate_ambiguous.Add(result.usage.gate_ambiguous);
  failed_pulls.Add(result.failed_pulls);
  if (result.degraded) degraded.Add();
}

}  // namespace
#endif  // TMERGE_OBS_DISABLED

std::int64_t PreparedVideo::TotalPairs() const {
  std::int64_t total = 0;
  for (const auto& window : windows) {
    total += static_cast<std::int64_t>(window.pairs.size());
  }
  return total;
}

PreparedVideo PrepareVideo(const sim::SyntheticVideo& video,
                           track::Tracker& tracker,
                           const PipelineConfig& config) {
  TMERGE_SPAN("prepare.video.seconds");
  PreparedVideo prepared;
  prepared.video = &video;
  detect::DetectionSequence detections;
  {
    TMERGE_SPAN("prepare.detect.seconds");
    detections =
        detect::SimulateDetections(video, config.detector, config.seed);
  }
  {
    TMERGE_SPAN("prepare.track.seconds");
    prepared.tracking = tracker.Run(detections);
  }
  prepared.model = std::make_shared<reid::SyntheticReidModel>(
      video, config.reid, config.seed);
  {
    TMERGE_SPAN("prepare.window.seconds");
    prepared.windows = BuildWindows(prepared.tracking, config.window);
  }
  {
    TMERGE_SPAN("prepare.gt_match.seconds");
    prepared.assignment =
        metrics::MatchTracksToGt(video, prepared.tracking, config.gt_match);
    prepared.truth =
        metrics::PolyonymousPairs(prepared.tracking, prepared.assignment);
  }
  return prepared;
}

std::vector<PreparedVideo> PrepareDataset(const sim::Dataset& dataset,
                                          track::Tracker& tracker,
                                          const PipelineConfig& config) {
  TMERGE_SPAN("prepare.dataset.seconds");
  std::vector<PreparedVideo> prepared;
  int num_threads = core::ResolveNumThreads(config.num_threads);
  if (num_threads == 1 || dataset.videos.size() <= 1) {
    // Serial reference path.
    prepared.reserve(dataset.videos.size());
    for (std::size_t i = 0; i < dataset.videos.size(); ++i) {
      PipelineConfig per_video = config;
      per_video.seed = config.seed + 31 * (i + 1);
      prepared.push_back(PrepareVideo(dataset.videos[i], tracker, per_video));
    }
    return prepared;
  }

  // Each iteration writes only prepared[i]; the seed derivation matches the
  // serial loop exactly, so the result is bit-identical to it.
  prepared.resize(dataset.videos.size());
  core::ThreadPool pool(num_threads);
  pool.ParallelFor(0, static_cast<std::int64_t>(dataset.videos.size()),
                   [&](std::int64_t i) {
                     PipelineConfig per_video = config;
                     per_video.seed = config.seed + 31 * (i + 1);
                     prepared[i] =
                         PrepareVideo(dataset.videos[i], tracker, per_video);
                   });
  return prepared;
}

EvalResult EvaluateSelector(const PreparedVideo& prepared,
                            CandidateSelector& selector,
                            const SelectorOptions& options) {
  TMERGE_CHECK(prepared.video != nullptr);
  TMERGE_SPAN("evaluate.video.seconds");
  core::WallTimer elapsed_timer;
  EvalResult eval;
  eval.frames = prepared.video->num_frames;
  eval.truth_pairs = static_cast<std::int64_t>(prepared.truth.size());

  std::set<metrics::TrackPairKey> truth_set(prepared.truth.begin(),
                                            prepared.truth.end());
  std::set<metrics::TrackPairKey> selected;

  reid::FeatureCache cache;
  SelectorOptions window_options = options;
  for (const auto& window : prepared.windows) {
    if (window.pairs.empty()) continue;
    PairContext context(prepared.tracking, window.pairs);
    // Per-window seed derivation keeps windows decorrelated but runs
    // reproducible.
    window_options.seed = options.seed + 1009 * (window.window_index + 1);
    SelectionResult result;
    {
      TMERGE_SPAN("evaluate.window.seconds");
      result = selector.Select(context, *prepared.model, cache,
                               window_options);
    }
    TMERGE_OBS(RecordWindowObs(result, window.pairs.size()));
    eval.simulated_seconds += result.simulated_seconds;
    eval.summed_wall_seconds += result.wall_seconds;
    eval.usage += result.usage;
    eval.box_pairs_evaluated += result.box_pairs_evaluated;
    eval.failed_pulls += result.failed_pulls;
    eval.reid_retries += result.reid_retries;
    if (result.degraded) ++eval.degraded_windows;
    eval.pairs += static_cast<std::int64_t>(window.pairs.size());
    ++eval.windows;
    for (const auto& pair : result.candidates) selected.insert(pair);
  }

  for (const auto& pair : selected) {
    if (truth_set.contains(pair)) ++eval.hits;
  }
  eval.candidates.assign(selected.begin(), selected.end());
  eval.rec = eval.truth_pairs > 0
                 ? static_cast<double>(eval.hits) / eval.truth_pairs
                 : 1.0;
  eval.fps = eval.simulated_seconds > 0.0
                 ? static_cast<double>(eval.frames) / eval.simulated_seconds
                 : 0.0;
  eval.elapsed_seconds = elapsed_timer.Seconds();
  return eval;
}

EvalResult EvaluateDataset(const std::vector<PreparedVideo>& videos,
                           CandidateSelector& selector,
                           const SelectorOptions& options, int num_threads) {
  TMERGE_SPAN("evaluate.dataset.seconds");
  core::WallTimer elapsed_timer;
  // Per-video evaluations are independent: each owns its FeatureCache and
  // meter (created inside EvaluateSelector) and reads only its own
  // PreparedVideo. The selector is shared across threads, which is safe
  // because Select reads but never mutates selector state (see pipeline.h).
  std::vector<EvalResult> evals(videos.size());
  num_threads = core::ResolveNumThreads(num_threads);
  if (num_threads == 1 || videos.size() <= 1) {
    for (std::size_t i = 0; i < videos.size(); ++i) {
      evals[i] = EvaluateSelector(videos[i], selector, options);
    }
  } else {
    core::ThreadPool pool(num_threads);
    pool.ParallelFor(0, static_cast<std::int64_t>(videos.size()),
                     [&](std::int64_t i) {
                       evals[i] = EvaluateSelector(videos[i], selector,
                                                   options);
                     });
  }

  // Ordered reduction in video order: the same floating-point accumulation
  // sequence as a serial loop, hence deterministic for any thread count.
  EvalResult total;
  for (EvalResult& eval : evals) {
    total.simulated_seconds += eval.simulated_seconds;
    total.summed_wall_seconds += eval.summed_wall_seconds;
    total.usage += eval.usage;
    total.box_pairs_evaluated += eval.box_pairs_evaluated;
    total.failed_pulls += eval.failed_pulls;
    total.reid_retries += eval.reid_retries;
    total.degraded_windows += eval.degraded_windows;
    total.frames += eval.frames;
    total.windows += eval.windows;
    total.pairs += eval.pairs;
    total.truth_pairs += eval.truth_pairs;
    total.hits += eval.hits;
    total.candidates.insert(
        total.candidates.end(),
        std::make_move_iterator(eval.candidates.begin()),
        std::make_move_iterator(eval.candidates.end()));
  }
  total.rec = total.truth_pairs > 0
                  ? static_cast<double>(total.hits) / total.truth_pairs
                  : 1.0;
  total.fps = total.simulated_seconds > 0.0
                  ? static_cast<double>(total.frames) / total.simulated_seconds
                  : 0.0;
  // True elapsed time of this call, not the per-video sum: with
  // num_threads > 1 the two diverge by design (see EvalResult).
  total.elapsed_seconds = elapsed_timer.Seconds();
  return total;
}

EvalResult EvaluateSelectorOnVideos(const std::vector<PreparedVideo>& videos,
                                    CandidateSelector& selector,
                                    const SelectorOptions& options) {
  return EvaluateDataset(videos, selector, options, /*num_threads=*/1);
}

EvalResult EvaluateSelectorAveraged(const std::vector<PreparedVideo>& videos,
                                    CandidateSelector& selector,
                                    const SelectorOptions& options,
                                    int trials, int num_threads) {
  TMERGE_CHECK(trials > 0);
  EvalResult mean;
  for (int trial = 0; trial < trials; ++trial) {
    SelectorOptions trial_options = options;
    trial_options.seed = options.seed + 7919 * trial;
    EvalResult eval =
        EvaluateDataset(videos, selector, trial_options, num_threads);
    if (trial == 0) {
      mean = eval;
      continue;
    }
    mean.rec += eval.rec;
    mean.fps += eval.fps;
    mean.simulated_seconds += eval.simulated_seconds;
    mean.summed_wall_seconds += eval.summed_wall_seconds;
    mean.elapsed_seconds += eval.elapsed_seconds;
    mean.hits += eval.hits;
    mean.box_pairs_evaluated += eval.box_pairs_evaluated;
    mean.failed_pulls += eval.failed_pulls;
    mean.reid_retries += eval.reid_retries;
    mean.degraded_windows += eval.degraded_windows;
    mean.usage += eval.usage;
  }
  mean.rec /= trials;
  mean.fps /= trials;
  mean.simulated_seconds /= trials;
  mean.summed_wall_seconds /= trials;
  mean.elapsed_seconds /= trials;
  mean.hits /= trials;
  mean.box_pairs_evaluated /= trials;
  mean.failed_pulls /= trials;
  mean.reid_retries /= trials;
  mean.degraded_windows /= trials;
  mean.usage.single_inferences /= trials;
  mean.usage.batched_crops /= trials;
  mean.usage.batch_calls /= trials;
  mean.usage.distance_evals /= trials;
  mean.usage.cache_hits /= trials;
  mean.usage.failed_embeds /= trials;
  mean.usage.gate_accepted /= trials;
  mean.usage.gate_rejected /= trials;
  mean.usage.gate_ambiguous /= trials;
  return mean;
}

track::TrackingResult SelectAndMerge(const PreparedVideo& prepared,
                                     CandidateSelector& selector,
                                     const SelectorOptions& options,
                                     bool oracle_verified) {
  EvalResult eval = EvaluateSelector(prepared, selector, options);
  std::vector<metrics::TrackPairKey> accepted =
      oracle_verified ? OracleFilter(eval.candidates, prepared.truth)
                      : eval.candidates;
  return ApplyMerges(prepared.tracking, accepted);
}

}  // namespace tmerge::merge
