#include "tmerge/merge/index_support.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "tmerge/core/status.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/obs/span.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::merge::internal {
namespace {

/// Absolute slack covering every fp32 rounding effect inside the
/// quantized kernels (accumulation, scale products, the final
/// sqrt/divide) for normalized scores in [0, 1]. Orders of magnitude
/// above the worst case at any realistic dim (relative fp32 accumulation
/// error is ~dim * 2^-24), orders of magnitude below typical int8
/// quantization bounds — pinned by the over-fetch property test.
constexpr double kScreenArithSlack = 1e-4;

double NormalizeApprox(float squared, double norm_scale) {
  const double d =
      std::sqrt(static_cast<double>(squared)) / norm_scale;
  return std::clamp(d, 0.0, 1.0);
}

#ifndef TMERGE_OBS_DISABLED
void RecordRouterObs(std::int64_t admitted, std::int64_t routed_out) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& admitted_counter =
      registry.GetCounter("reid.index.router_admitted");
  static obs::Counter& routed_counter =
      registry.GetCounter("reid.index.router_routed_out");
  admitted_counter.Add(admitted);
  routed_counter.Add(routed_out);
}
#endif  // TMERGE_OBS_DISABLED

}  // namespace

double ScreenTrack::MeanError() const {
  if (errors.empty()) return 0.0;
  double sum = 0.0;
  for (float e : errors) sum += static_cast<double>(e);
  return sum / static_cast<double>(errors.size());
}

void EnsureMirror(reid::FeatureStore& store, ScreenPrecision precision) {
  if (precision == ScreenPrecision::kInt8) {
    store.EnsureInt8Mirror();
  } else {
    store.EnsureFp16Mirror();
  }
}

void GatherScreenTrack(const reid::FeatureStore& store,
                       const std::vector<reid::FeatureRef>& refs,
                       ScreenPrecision precision, ScreenTrack* out) {
  out->int8_rows.clear();
  out->int8_scales.clear();
  out->fp16_rows.clear();
  out->errors.clear();
  out->errors.reserve(refs.size());
  if (precision == ScreenPrecision::kInt8) {
    out->int8_rows.reserve(refs.size());
    out->int8_scales.reserve(refs.size());
    for (reid::FeatureRef ref : refs) {
      out->int8_rows.push_back(store.Int8Row(ref));
      out->int8_scales.push_back(store.Int8Scale(ref));
      out->errors.push_back(store.Int8Error(ref));
    }
  } else {
    out->fp16_rows.reserve(refs.size());
    for (reid::FeatureRef ref : refs) {
      out->fp16_rows.push_back(store.Fp16Row(ref));
      out->errors.push_back(store.Fp16Error(ref));
    }
  }
}

double ScreenMeanAllPairs(const ScreenTrack& a, const ScreenTrack& b,
                          std::size_t dim, double norm_scale,
                          ScreenPrecision precision,
                          std::vector<float>* scratch) {
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  if (na == 0 || nb == 0) return 1.0;
  scratch->resize(nb);
  double sum = 0.0;
  for (std::size_t i = 0; i < na; ++i) {
    if (precision == ScreenPrecision::kInt8) {
      reid::kernels::Int8OneVsManySquared(
          a.int8_rows[i], a.int8_scales[i], b.int8_rows.data(),
          b.int8_scales.data(), nb, dim, scratch->data());
    } else {
      reid::kernels::Fp16OneVsManySquared(a.fp16_rows[i], b.fp16_rows.data(),
                                          nb, dim, scratch->data());
    }
    for (std::size_t j = 0; j < nb; ++j) {
      sum += NormalizeApprox((*scratch)[j], norm_scale);
    }
  }
  return sum / static_cast<double>(na * nb);
}

double ScreenOnePair(const ScreenTrack& a, std::size_t ia,
                     const ScreenTrack& b, std::size_t ib, std::size_t dim,
                     double norm_scale, ScreenPrecision precision) {
  float squared = 0.0f;
  if (precision == ScreenPrecision::kInt8) {
    const std::int8_t* row_b = b.int8_rows[ib];
    const float scale_b = b.int8_scales[ib];
    reid::kernels::Int8OneVsManySquared(a.int8_rows[ia], a.int8_scales[ia],
                                        &row_b, &scale_b, 1, dim, &squared);
  } else {
    const std::uint16_t* row_b = b.fp16_rows[ib];
    reid::kernels::Fp16OneVsManySquared(a.fp16_rows[ia], &row_b, 1, dim,
                                        &squared);
  }
  return NormalizeApprox(squared, norm_scale);
}

double ScreenBound(double mean_error_a, double mean_error_b,
                   std::size_t dim, double norm_scale, double margin) {
  TMERGE_DCHECK(norm_scale > 0.0);
  const double quant = (mean_error_a + mean_error_b) *
                       std::sqrt(static_cast<double>(dim)) / norm_scale;
  return (quant + kScreenArithSlack) * std::max(1.0, margin);
}

std::vector<char> ShortlistMask(const std::vector<double>& approx,
                                const std::vector<double>& bound,
                                std::size_t k) {
  const std::size_t n = approx.size();
  TMERGE_CHECK(bound.size() == n);
  if (k == 0) return std::vector<char>(n, 0);
  if (k >= n) return std::vector<char>(n, 1);
  // u = the k-th smallest approx+bound, via a k-element max-heap: one
  // pass, O(k) scratch. k is tiny next to n (top-k fractions of pair
  // counts, or a fixed k over a million-row sweep), where an O(n)
  // nth_element copy would cost as much as the quantized sweep itself.
  std::vector<double> heap;
  heap.reserve(k);
  for (std::size_t p = 0; p < n; ++p) {
    const double upper = approx[p] + bound[p];
    if (heap.size() < k) {
      heap.push_back(upper);
      std::push_heap(heap.begin(), heap.end());
    } else if (upper < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = upper;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  const double u = heap.front();
  std::vector<char> mask(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    if (approx[p] - bound[p] <= u) mask[p] = 1;
  }
  return mask;
}

void RecordScreenObs(std::int64_t screened_pairs, std::int64_t reranked_pairs,
                     std::int64_t int8_rows, std::int64_t fp16_rows) {
#ifndef TMERGE_OBS_DISABLED
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& screened =
      registry.GetCounter("reid.index.screen_pairs");
  static obs::Counter& reranked =
      registry.GetCounter("reid.index.rerank_pairs");
  static obs::Counter& rows8 = registry.GetCounter("reid.kernel.int8_rows");
  static obs::Counter& rows16 = registry.GetCounter("reid.kernel.fp16_rows");
  screened.Add(screened_pairs);
  reranked.Add(reranked_pairs);
  rows8.Add(int8_rows);
  rows16.Add(fp16_rows);
#else
  (void)screened_pairs;
  (void)reranked_pairs;
  (void)int8_rows;
  (void)fp16_rows;
#endif
}

RouterOutcome RoutePairs(
    const PairContext& context, reid::FeatureCache& cache,
    const IndexOptions& index,
    const std::function<bool(const reid::CropRef&)>& embed_rep) {
  RouterOutcome out;
  const std::size_t num_pairs = context.num_pairs();
  if (!index.router || num_pairs == 0) return out;
  TMERGE_SPAN("reid.index.route.seconds");

  struct TrackInfo {
    std::uint64_t rep_id = 0;
    bool embedded = false;
    std::int32_t cluster = -1;
    std::vector<std::int32_t> probed;
  };
  std::vector<TrackInfo> infos;
  std::unordered_map<std::uint64_t, std::size_t> by_rep;
  auto info_of = [&](const std::vector<reid::CropRef>& crops)
      -> std::ptrdiff_t {
    if (crops.empty()) return -1;
    const std::uint64_t rep = crops.front().detection_id;
    auto [it, inserted] = by_rep.try_emplace(rep, infos.size());
    if (inserted) {
      infos.emplace_back();
      infos.back().rep_id = rep;
      infos.back().embedded = embed_rep(crops.front());
    }
    return static_cast<std::ptrdiff_t>(it->second);
  };

  std::vector<std::ptrdiff_t> track_a(num_pairs), track_b(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    track_a[p] = info_of(context.CropsA(p));
    track_b[p] = info_of(context.CropsB(p));
  }

  reid::CoarseClusterIndex& router = cache.EnsureClusterIndex(index.cluster);
  if (!router.built()) return out;  // Nothing stored: stay inactive.

  const std::int32_t probes =
      index.router_exhaustive
          ? router.num_clusters()
          : std::min(index.router_probes, router.num_clusters());
  for (TrackInfo& info : infos) {
    if (!info.embedded) continue;
    const reid::FeatureRef ref = cache.Find(info.rep_id);
    if (!ref.valid() || ref.index >= router.assigned_rows()) {
      info.embedded = false;  // Evicted under fault injection: admit.
      continue;
    }
    info.cluster = router.AssignmentOf(ref);
    router.NearestClusters(cache.View(ref), probes, &info.probed);
  }

  out.active = true;
  out.admitted.assign(num_pairs, 1);
  auto probed_contains = [](const std::vector<std::int32_t>& probed,
                            std::int32_t cluster) {
    return std::find(probed.begin(), probed.end(), cluster) != probed.end();
  };
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (track_a[p] < 0 || track_b[p] < 0) continue;
    const TrackInfo& a = infos[static_cast<std::size_t>(track_a[p])];
    const TrackInfo& b = infos[static_cast<std::size_t>(track_b[p])];
    if (!a.embedded || !b.embedded) continue;
    if (probed_contains(a.probed, b.cluster) ||
        probed_contains(b.probed, a.cluster)) {
      continue;
    }
    out.admitted[p] = 0;
    ++out.routed_out;
  }
  TMERGE_OBS(RecordRouterObs(
      static_cast<std::int64_t>(num_pairs) - out.routed_out,
      out.routed_out));
  return out;
}

}  // namespace tmerge::merge::internal
