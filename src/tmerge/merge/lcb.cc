#include "tmerge/merge/lcb.h"

#include <cmath>
#include <limits>
#include <vector>

#include "tmerge/core/sim_clock.h"
#include "tmerge/core/status.h"
#include "tmerge/merge/index_support.h"

namespace tmerge::merge {

LcbSelector::LcbSelector(std::int64_t tau_max) : tau_max_(tau_max) {
  TMERGE_CHECK(tau_max > 0);
}

SelectionResult LcbSelector::Select(const PairContext& context,
                                    const reid::ReidModel& model,
                                    reid::FeatureCache& cache,
                                    const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  // Per-window fault tolerance, charge-identical to the bare cache until a
  // failpoint fires (see reid/reid_guard.h).
  reid::ReidGuard guard(options.fault_policy, cache, model, meter);
  core::Rng rng(options.seed ^ 0x1CBULL);
  const bool batched = options.batch_size > 1;
  const std::size_t num_pairs = context.num_pairs();
  const std::int64_t tau_max =
      internal::ScaledBudget(tau_max_, options.budget_scale);

  SelectionResult result;
  if (num_pairs == 0) {
    result.wall_seconds = timer.Seconds();
    return result;
  }

  std::vector<BoxPairSampler> samplers;
  samplers.reserve(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    samplers.emplace_back(context.TrackA(p).size(), context.TrackB(p).size());
  }
  std::vector<double> sum(num_pairs, 0.0);
  std::vector<std::int64_t> pulls(num_pairs, 0);

  // Cluster router (§15.3): routed-out pairs never enter the bandit — no
  // initial pull, never eligible in the argmin — and keep score 1.0.
  // Representatives go through the guard so injected embed faults admit
  // the pair instead of crashing.
  const internal::RouterOutcome routing = internal::RoutePairs(
      context, cache, options.index, [&](const reid::CropRef& crop) {
        return guard.TryGet(crop).valid();
      });
  result.routed_out_pairs = routing.routed_out;

  auto evaluate_pair = [&](std::size_t p) {
    auto [row, col] = samplers[p].Sample(rng);
    reid::CropRef crop_a = context.CropsA(p)[row];
    reid::CropRef crop_b = context.CropsB(p)[col];
    if (batched) {
      guard.TryGetBatch({crop_a, crop_b});
    }
    reid::FeatureView fa = guard.TryGet(crop_a);
    reid::FeatureView fb =
        fa.valid() ? guard.TryGet(crop_b) : reid::FeatureView();
    if (!fa.valid() || !fb.valid()) {
      // Failed pull: tau and the sampler cell are spent, cost is charged,
      // but the running mean sees nothing (errors are not evidence).
      ++result.failed_pulls;
      return;
    }
    double distance = model.NormalizedDistance(fa, fb);
    if (batched) {
      meter.ChargeDistanceBatched(1);
    } else {
      meter.ChargeDistance(1);
    }
    sum[p] += distance;
    ++pulls[p];
    ++result.box_pairs_evaluated;
    result.sum_sampled_distance += distance;
  };

  // One initial pull per pair so every bound is defined.
  std::int64_t tau = 0;
  for (std::size_t p = 0; p < num_pairs && tau < tau_max; ++p) {
    if (!routing.Admitted(p)) continue;
    if (samplers[p].Exhausted()) continue;
    evaluate_pair(p);
    ++tau;
  }

  for (; tau < tau_max; ++tau) {
    double best_bound = std::numeric_limits<double>::infinity();
    std::size_t best_pair = num_pairs;
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (!routing.Admitted(p)) continue;
      if (samplers[p].Exhausted()) continue;
      // A pair whose initial pull failed (injected fault) still has zero
      // pulls; its bound is vacuously -inf — maximally optimistic, so it
      // is sampled first — rather than a crash.
      double bound = -std::numeric_limits<double>::infinity();
      if (pulls[p] > 0) {
        double mean = sum[p] / static_cast<double>(pulls[p]);
        double radius =
            std::sqrt(2.0 * std::log(static_cast<double>(tau + 1)) /
                      static_cast<double>(pulls[p]));
        bound = mean - radius;
      }
      if (bound < best_bound) {
        best_bound = bound;
        best_pair = p;
      }
    }
    meter.ChargeOverhead(static_cast<std::int64_t>(num_pairs));
    if (best_pair == num_pairs) break;  // Everything exhausted.
    evaluate_pair(best_pair);
  }

  std::vector<double> scores(num_pairs, 1.0);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (pulls[p] > 0) scores[p] = sum[p] / static_cast<double>(pulls[p]);
  }
  result.candidates = internal::TopKByScore(
      context, scores, TopKCount(options.k_fraction, num_pairs));
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.reid_retries = guard.retries();
  result.degraded = guard.breaker_open();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::merge
