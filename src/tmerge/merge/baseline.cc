#include "tmerge/merge/baseline.h"

#include <vector>

#include "tmerge/core/sim_clock.h"

namespace tmerge::merge {

SelectionResult BaselineSelector::Select(const PairContext& context,
                                         const reid::ReidModel& model,
                                         reid::FeatureCache& cache,
                                         const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  const bool batched = options.batch_size > 1;

  SelectionResult result;
  last_scores_.assign(context.num_pairs(), 0.0);

  // Embed every involved crop. Batched mode groups `batch_size` track
  // pairs per GPU call (the paper's B = track pairs jointly evaluated).
  auto embed_track = [&](const std::vector<track::TrackedBox>& boxes,
                         std::vector<const reid::FeatureVector*>& out) {
    out.clear();
    out.reserve(boxes.size());
    for (const auto& box : boxes) {
      out.push_back(&cache.GetOrEmbed(MakeCropRef(box), model, meter));
    }
  };
  auto embed_tracks_batched = [&](std::size_t first_pair,
                                  std::size_t last_pair) {
    std::vector<reid::CropRef> crops;
    for (std::size_t p = first_pair; p < last_pair; ++p) {
      for (const auto& box : context.BoxesA(p)) crops.push_back(MakeCropRef(box));
      for (const auto& box : context.BoxesB(p)) crops.push_back(MakeCropRef(box));
    }
    cache.GetOrEmbedBatch(crops, model, meter);
  };

  std::size_t chunk = batched ? static_cast<std::size_t>(options.batch_size)
                              : context.num_pairs();
  if (chunk == 0) chunk = 1;
  for (std::size_t begin = 0; begin < context.num_pairs(); begin += chunk) {
    std::size_t end = std::min(begin + chunk, context.num_pairs());
    if (batched) embed_tracks_batched(begin, end);

    for (std::size_t p = begin; p < end; ++p) {
      std::vector<const reid::FeatureVector*> features_a, features_b;
      embed_track(context.BoxesA(p), features_a);
      embed_track(context.BoxesB(p), features_b);

      double sum = 0.0;
      std::int64_t count = 0;
      for (const auto* fa : features_a) {
        for (const auto* fb : features_b) {
          sum += model.NormalizedDistance(*fa, *fb);
          ++count;
        }
      }
      if (batched) {
        meter.ChargeDistanceBatched(count);
      } else {
        meter.ChargeDistance(count);
      }
      result.box_pairs_evaluated += count;
      last_scores_[p] = count > 0 ? sum / static_cast<double>(count) : 1.0;
    }
  }

  result.candidates = internal::TopKByScore(
      context, last_scores_,
      TopKCount(options.k_fraction, context.num_pairs()));
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::merge
