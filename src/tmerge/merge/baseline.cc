#include "tmerge/merge/baseline.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "tmerge/core/mutex.h"
#include "tmerge/core/sim_clock.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::merge {

SelectionResult BaselineSelector::Select(const PairContext& context,
                                         const reid::ReidModel& model,
                                         reid::FeatureCache& cache,
                                         const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  const bool batched = options.batch_size > 1;

  SelectionResult result;
  // Computed on this call's stack — EvaluateDataset shares one selector
  // across worker threads, so members must stay read-only during Select.
  std::vector<double> scores(context.num_pairs(), 0.0);

  // Embed every involved crop, gathering raw arena pointers for the
  // one-vs-many kernel. Batched mode groups `batch_size` track pairs per
  // GPU call (the paper's B = track pairs jointly evaluated).
  auto embed_track = [&](const std::vector<reid::CropRef>& crops,
                         std::vector<const double*>& out) {
    out.clear();
    out.reserve(crops.size());
    for (const auto& crop : crops) {
      out.push_back(cache.GetOrEmbed(crop, model, meter).data);
    }
  };
  auto embed_tracks_batched = [&](std::size_t first_pair,
                                  std::size_t last_pair) {
    std::vector<reid::CropRef> crops;
    for (std::size_t p = first_pair; p < last_pair; ++p) {
      const auto& crops_a = context.CropsA(p);
      const auto& crops_b = context.CropsB(p);
      crops.insert(crops.end(), crops_a.begin(), crops_a.end());
      crops.insert(crops.end(), crops_b.begin(), crops_b.end());
    }
    cache.GetOrEmbedBatch(crops, model, meter);
  };

  // Scratch reused across pairs: feature pointers per track and one row of
  // squared distances per fa.
  std::vector<const double*> features_a, features_b;
  std::vector<double> row;
  const std::size_t dim = model.feature_dim();

  std::size_t chunk = batched ? static_cast<std::size_t>(options.batch_size)
                              : context.num_pairs();
  if (chunk == 0) chunk = 1;
  for (std::size_t begin = 0; begin < context.num_pairs(); begin += chunk) {
    std::size_t end = std::min(begin + chunk, context.num_pairs());
    if (batched) embed_tracks_batched(begin, end);

    for (std::size_t p = begin; p < end; ++p) {
      embed_track(context.CropsA(p), features_a);
      embed_track(context.CropsB(p), features_b);
      row.resize(features_b.size());

      // One kernel sweep per fa, the batched normalize epilogue in place,
      // then a scalar sum in the same fa-outer / fb-inner order as
      // pairwise NormalizedDistance — bit-identical by construction
      // (reid/distance_kernels.h).
      double sum = 0.0;
      std::int64_t count = 0;
      const double scale = model.normalization_scale();
      for (const double* fa : features_a) {
        reid::kernels::OneVsManySquared(fa, features_b.data(),
                                        features_b.size(), dim, row.data());
        reid::kernels::NormalizedFromSquaredMany(row.data(),
                                                 features_b.size(), scale,
                                                 row.data());
        for (std::size_t j = 0; j < features_b.size(); ++j) {
          sum += row[j];
        }
        count += static_cast<std::int64_t>(features_b.size());
      }
      if (batched) {
        meter.ChargeDistanceBatched(count);
      } else {
        meter.ChargeDistance(count);
      }
      result.box_pairs_evaluated += count;
      scores[p] = count > 0 ? sum / static_cast<double>(count) : 1.0;
    }
  }

  result.candidates = internal::TopKByScore(
      context, scores, TopKCount(options.k_fraction, context.num_pairs()));
  {
    core::MutexLock lock(mutex_);
    last_scores_ = std::move(scores);
  }
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::merge
