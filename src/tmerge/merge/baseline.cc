#include "tmerge/merge/baseline.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "tmerge/core/mutex.h"
#include "tmerge/core/sim_clock.h"
#include "tmerge/merge/index_support.h"
#include "tmerge/reid/distance_kernels.h"

namespace tmerge::merge {

SelectionResult BaselineSelector::Select(const PairContext& context,
                                         const reid::ReidModel& model,
                                         reid::FeatureCache& cache,
                                         const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  const bool batched = options.batch_size > 1;
  const std::size_t num_pairs = context.num_pairs();

  SelectionResult result;
  // Computed on this call's stack — EvaluateDataset shares one selector
  // across worker threads, so members must stay read-only during Select.
  std::vector<double> scores(num_pairs, 0.0);

  // Cluster router (§15.3): routed-out pairs keep score 1.0 and are never
  // embedded or evaluated. BL stays on the infallible embed path, so a
  // representative embed always succeeds.
  const internal::RouterOutcome routing = internal::RoutePairs(
      context, cache, options.index, [&](const reid::CropRef& crop) {
        cache.GetOrEmbed(crop, model, meter);
        return true;
      });
  result.routed_out_pairs = routing.routed_out;
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (!routing.Admitted(p)) scores[p] = 1.0;
  }

  // Embed every involved crop of the admitted pairs, gathering raw arena
  // pointers for the one-vs-many kernel. Batched mode groups `batch_size`
  // track pairs per GPU call (the paper's B = track pairs jointly
  // evaluated).
  auto embed_track = [&](const std::vector<reid::CropRef>& crops,
                         std::vector<const double*>& out) {
    out.clear();
    out.reserve(crops.size());
    for (const auto& crop : crops) {
      out.push_back(cache.GetOrEmbed(crop, model, meter).data);
    }
  };
  auto embed_tracks_batched = [&](std::size_t first_pair,
                                  std::size_t last_pair) {
    std::vector<reid::CropRef> crops;
    for (std::size_t p = first_pair; p < last_pair; ++p) {
      if (!routing.Admitted(p)) continue;
      const auto& crops_a = context.CropsA(p);
      const auto& crops_b = context.CropsB(p);
      crops.insert(crops.end(), crops_a.begin(), crops_a.end());
      crops.insert(crops.end(), crops_b.begin(), crops_b.end());
    }
    cache.GetOrEmbedBatch(crops, model, meter);
  };

  // Scratch reused across pairs: feature pointers per track and one row of
  // squared distances per fa.
  std::vector<const double*> features_a, features_b;
  std::vector<double> row;
  const std::size_t dim = model.feature_dim();
  const double scale = model.normalization_scale();

  // One kernel sweep per fa, the batched normalize epilogue in place, then
  // a scalar sum in the same fa-outer / fb-inner order as pairwise
  // NormalizedDistance — bit-identical by construction
  // (reid/distance_kernels.h). Shared verbatim by the unscreened sweep and
  // the screened re-rank so both produce the same doubles.
  auto exact_sum = [&]() {
    row.resize(features_b.size());
    double sum = 0.0;
    for (const double* fa : features_a) {
      reid::kernels::OneVsManySquared(fa, features_b.data(),
                                      features_b.size(), dim, row.data());
      reid::kernels::NormalizedFromSquaredMany(row.data(), features_b.size(),
                                               scale, row.data());
      for (std::size_t j = 0; j < features_b.size(); ++j) {
        sum += row[j];
      }
    }
    return sum;
  };
  auto charge_pair = [&](std::int64_t count) {
    if (batched) {
      meter.ChargeDistanceBatched(count);
    } else {
      meter.ChargeDistance(count);
    }
    result.box_pairs_evaluated += count;
  };

  std::size_t chunk = batched ? static_cast<std::size_t>(options.batch_size)
                              : num_pairs;
  if (chunk == 0) chunk = 1;

  if (options.index.screen) {
    // Two-phase sweep (§15.2). Phase 1: embed in the unscreened order,
    // keeping arena handles for the mirror gather and the exact re-rank.
    // Each pair's distance charge is assessed right here, where the
    // unscreened sweep would have charged it: the meter's clock is a
    // running double sum, so only the identical charge *order* keeps
    // simulated_seconds bit-identical (the screened-vs-exact differential
    // suite pins this).
    std::vector<std::vector<reid::FeatureRef>> refs_a(num_pairs);
    std::vector<std::vector<reid::FeatureRef>> refs_b(num_pairs);
    auto embed_track_refs = [&](const std::vector<reid::CropRef>& crops,
                                std::vector<reid::FeatureRef>& out) {
      out.clear();
      out.reserve(crops.size());
      for (const auto& crop : crops) {
        cache.GetOrEmbed(crop, model, meter);
        out.push_back(cache.Find(crop.detection_id));
      }
    };
    for (std::size_t begin = 0; begin < num_pairs; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, num_pairs);
      if (batched) embed_tracks_batched(begin, end);
      for (std::size_t p = begin; p < end; ++p) {
        if (!routing.Admitted(p)) continue;
        embed_track_refs(context.CropsA(p), refs_a[p]);
        embed_track_refs(context.CropsB(p), refs_b[p]);
        charge_pair(
            static_cast<std::int64_t>(refs_a[p].size() * refs_b[p].size()));
      }
    }

    // Phase 2: quantized screen over the compact mirror slabs (all
    // charges were assessed in phase 1).
    const ScreenPrecision precision = options.index.screen_precision;
    internal::EnsureMirror(cache.mutable_store(), precision);
    std::vector<double> approx(num_pairs, 1.0);
    std::vector<double> bound(num_pairs, 0.0);
    internal::ScreenTrack track_a, track_b;
    std::vector<float> scratch;
    std::int64_t mirror_rows = 0;
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (!routing.Admitted(p)) continue;
      internal::GatherScreenTrack(cache.store(), refs_a[p], precision,
                                  &track_a);
      internal::GatherScreenTrack(cache.store(), refs_b[p], precision,
                                  &track_b);
      const auto count =
          static_cast<std::int64_t>(track_a.size() * track_b.size());
      ++result.screened_pairs;
      mirror_rows += static_cast<std::int64_t>(track_a.size() +
                                               track_b.size());
      // An empty side scores 1.0 exactly in both sweeps: bound 0 is right.
      if (count == 0) continue;
      approx[p] = internal::ScreenMeanAllPairs(track_a, track_b, dim, scale,
                                               precision, &scratch);
      bound[p] = internal::ScreenBound(track_a.MeanError(),
                                       track_b.MeanError(), dim, scale,
                                       options.index.overfetch_margin);
      scores[p] = approx[p];
    }

    // Phase 3: exact fp64 re-rank of the provably sufficient shortlist.
    // Pairs outside it keep their approximate score, which §15.2 shows
    // ranks strictly after the exact top-K under TopKByScore's
    // (score, index) order — candidates are bit-identical. (last_scores_
    // keeps approximate values for unshortlisted pairs.)
    const std::vector<char> mask = internal::ShortlistMask(
        approx, bound, TopKCount(options.k_fraction, num_pairs));
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (mask[p] == 0 || !routing.Admitted(p)) continue;
      if (refs_a[p].empty() || refs_b[p].empty()) continue;
      features_a.clear();
      for (reid::FeatureRef ref : refs_a[p]) {
        features_a.push_back(cache.View(ref).data);
      }
      features_b.clear();
      for (reid::FeatureRef ref : refs_b[p]) {
        features_b.push_back(cache.View(ref).data);
      }
      const double sum = exact_sum();
      scores[p] = sum / static_cast<double>(features_a.size() *
                                            features_b.size());
      ++result.reranked_pairs;
    }
    internal::RecordScreenObs(
        result.screened_pairs, result.reranked_pairs,
        precision == ScreenPrecision::kInt8 ? mirror_rows : 0,
        precision == ScreenPrecision::kFp16 ? mirror_rows : 0);
  } else {
    for (std::size_t begin = 0; begin < num_pairs; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, num_pairs);
      if (batched) embed_tracks_batched(begin, end);

      for (std::size_t p = begin; p < end; ++p) {
        if (!routing.Admitted(p)) continue;
        embed_track(context.CropsA(p), features_a);
        embed_track(context.CropsB(p), features_b);
        const double sum = exact_sum();
        const auto count = static_cast<std::int64_t>(features_a.size() *
                                                     features_b.size());
        charge_pair(count);
        scores[p] = count > 0 ? sum / static_cast<double>(count) : 1.0;
      }
    }
  }

  result.candidates = internal::TopKByScore(
      context, scores, TopKCount(options.k_fraction, num_pairs));
  {
    core::MutexLock lock(mutex_);
    last_scores_ = std::move(scores);
  }
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::merge
