#include "tmerge/merge/proportional.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tmerge/core/sim_clock.h"
#include "tmerge/core/status.h"

namespace tmerge::merge {

ProportionalSelector::ProportionalSelector(double eta) : eta_(eta) {
  TMERGE_CHECK(eta > 0.0 && eta <= 1.0);
}

SelectionResult ProportionalSelector::Select(
    const PairContext& context, const reid::ReidModel& model,
    reid::FeatureCache& cache, const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  core::Rng rng(options.seed ^ 0x9051ULL);
  const bool batched = options.batch_size > 1;

  SelectionResult result;
  std::vector<double> scores(context.num_pairs(), 1.0);

  // Pre-draw the sample of BBox pairs for each track pair.
  struct PairSample {
    std::vector<std::pair<std::int32_t, std::int32_t>> cells;
  };
  std::vector<PairSample> samples(context.num_pairs());
  for (std::size_t p = 0; p < context.num_pairs(); ++p) {
    std::int64_t total = context.BoxPairCount(p);
    if (total == 0) continue;
    auto want = static_cast<std::int64_t>(
        std::ceil(eta_ * static_cast<double>(total)));
    want = std::clamp<std::int64_t>(want, 1, total);
    BoxPairSampler sampler(context.TrackA(p).size(), context.TrackB(p).size());
    samples[p].cells.reserve(want);
    for (std::int64_t i = 0; i < want; ++i) {
      samples[p].cells.push_back(sampler.Sample(rng));
    }
  }

  // Evaluate, chunking `batch_size` track pairs per GPU batch in -B mode.
  std::size_t chunk = batched ? static_cast<std::size_t>(options.batch_size)
                              : context.num_pairs();
  if (chunk == 0) chunk = 1;
  for (std::size_t begin = 0; begin < context.num_pairs(); begin += chunk) {
    std::size_t end = std::min(begin + chunk, context.num_pairs());
    if (batched) {
      std::vector<reid::CropRef> crops;
      for (std::size_t p = begin; p < end; ++p) {
        const auto& crops_a = context.CropsA(p);
        const auto& crops_b = context.CropsB(p);
        for (const auto& [row, col] : samples[p].cells) {
          crops.push_back(crops_a[row]);
          crops.push_back(crops_b[col]);
        }
      }
      cache.GetOrEmbedBatch(crops, model, meter);
    }
    for (std::size_t p = begin; p < end; ++p) {
      const auto& crops_a = context.CropsA(p);
      const auto& crops_b = context.CropsB(p);
      double sum = 0.0;
      for (const auto& [row, col] : samples[p].cells) {
        reid::FeatureView fa = cache.GetOrEmbed(crops_a[row], model, meter);
        reid::FeatureView fb = cache.GetOrEmbed(crops_b[col], model, meter);
        sum += model.NormalizedDistance(fa, fb);
      }
      auto count = static_cast<std::int64_t>(samples[p].cells.size());
      if (batched) {
        meter.ChargeDistanceBatched(count);
      } else {
        meter.ChargeDistance(count);
      }
      result.box_pairs_evaluated += count;
      if (count > 0) scores[p] = sum / static_cast<double>(count);
    }
  }

  result.candidates = internal::TopKByScore(
      context, scores, TopKCount(options.k_fraction, context.num_pairs()));
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::merge
