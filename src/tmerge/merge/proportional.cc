#include "tmerge/merge/proportional.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tmerge/core/sim_clock.h"
#include "tmerge/core/status.h"
#include "tmerge/merge/index_support.h"

namespace tmerge::merge {

ProportionalSelector::ProportionalSelector(double eta) : eta_(eta) {
  TMERGE_CHECK(eta > 0.0 && eta <= 1.0);
}

SelectionResult ProportionalSelector::Select(
    const PairContext& context, const reid::ReidModel& model,
    reid::FeatureCache& cache, const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  core::Rng rng(options.seed ^ 0x9051ULL);
  const bool batched = options.batch_size > 1;
  const std::size_t num_pairs = context.num_pairs();

  SelectionResult result;
  std::vector<double> scores(num_pairs, 1.0);

  // Pre-draw the sample of BBox pairs for each track pair. Drawn for every
  // pair — routed-out ones included — so the rng stream, and with it every
  // admitted pair's sample, is independent of the router verdicts.
  struct PairSample {
    std::vector<std::pair<std::int32_t, std::int32_t>> cells;
  };
  std::vector<PairSample> samples(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    std::int64_t total = context.BoxPairCount(p);
    if (total == 0) continue;
    auto want = static_cast<std::int64_t>(
        std::ceil(eta_ * static_cast<double>(total)));
    want = std::clamp<std::int64_t>(want, 1, total);
    BoxPairSampler sampler(context.TrackA(p).size(), context.TrackB(p).size());
    samples[p].cells.reserve(want);
    for (std::int64_t i = 0; i < want; ++i) {
      samples[p].cells.push_back(sampler.Sample(rng));
    }
  }

  // Cluster router (§15.3): routed-out pairs keep score 1.0, charge
  // nothing, and never embed their sampled cells. PS stays on the
  // infallible embed path, so a representative embed always succeeds.
  const internal::RouterOutcome routing = internal::RoutePairs(
      context, cache, options.index, [&](const reid::CropRef& crop) {
        cache.GetOrEmbed(crop, model, meter);
        return true;
      });
  result.routed_out_pairs = routing.routed_out;

  auto charge_pair = [&](std::int64_t count) {
    if (batched) {
      meter.ChargeDistanceBatched(count);
    } else {
      meter.ChargeDistance(count);
    }
    result.box_pairs_evaluated += count;
  };
  auto batch_prefetch = [&](std::size_t first_pair, std::size_t last_pair) {
    std::vector<reid::CropRef> crops;
    for (std::size_t p = first_pair; p < last_pair; ++p) {
      if (!routing.Admitted(p)) continue;
      const auto& crops_a = context.CropsA(p);
      const auto& crops_b = context.CropsB(p);
      for (const auto& [row, col] : samples[p].cells) {
        crops.push_back(crops_a[row]);
        crops.push_back(crops_b[col]);
      }
    }
    cache.GetOrEmbedBatch(crops, model, meter);
  };

  // Evaluate, chunking `batch_size` track pairs per GPU batch in -B mode.
  std::size_t chunk = batched ? static_cast<std::size_t>(options.batch_size)
                              : num_pairs;
  if (chunk == 0) chunk = 1;

  if (options.index.screen) {
    // Two-phase sampled sweep (§15.2). Phase 1: embed the sampled cells in
    // the unscreened order, keeping one arena handle per cell side. Each
    // pair's distance charge is assessed right here, where the unscreened
    // loop would have charged it: the meter's clock is a running double
    // sum, so only the identical charge *order* keeps simulated_seconds
    // bit-identical (the screened-vs-exact differential suite pins this).
    std::vector<std::vector<reid::FeatureRef>> refs_a(num_pairs);
    std::vector<std::vector<reid::FeatureRef>> refs_b(num_pairs);
    for (std::size_t begin = 0; begin < num_pairs; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, num_pairs);
      if (batched) batch_prefetch(begin, end);
      for (std::size_t p = begin; p < end; ++p) {
        if (!routing.Admitted(p)) continue;
        const auto& crops_a = context.CropsA(p);
        const auto& crops_b = context.CropsB(p);
        refs_a[p].reserve(samples[p].cells.size());
        refs_b[p].reserve(samples[p].cells.size());
        for (const auto& [row, col] : samples[p].cells) {
          cache.GetOrEmbed(crops_a[row], model, meter);
          refs_a[p].push_back(cache.Find(crops_a[row].detection_id));
          cache.GetOrEmbed(crops_b[col], model, meter);
          refs_b[p].push_back(cache.Find(crops_b[col].detection_id));
        }
        charge_pair(static_cast<std::int64_t>(samples[p].cells.size()));
      }
    }

    // Phase 2: quantized screen, one cell at a time (cells are the sampled
    // diagonal, not a full product; all charges were assessed in phase 1).
    const ScreenPrecision precision = options.index.screen_precision;
    internal::EnsureMirror(cache.mutable_store(), precision);
    std::vector<double> approx(num_pairs, 1.0);
    std::vector<double> bound(num_pairs, 0.0);
    internal::ScreenTrack track_a, track_b;
    std::int64_t mirror_rows = 0;
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (!routing.Admitted(p)) continue;
      const auto count = static_cast<std::int64_t>(samples[p].cells.size());
      ++result.screened_pairs;
      if (count == 0) continue;
      internal::GatherScreenTrack(cache.store(), refs_a[p], precision,
                                  &track_a);
      internal::GatherScreenTrack(cache.store(), refs_b[p], precision,
                                  &track_b);
      mirror_rows += 2 * count;
      double sum = 0.0;
      for (std::size_t i = 0; i < samples[p].cells.size(); ++i) {
        sum += internal::ScreenOnePair(track_a, i, track_b, i,
                                       model.feature_dim(),
                                       model.normalization_scale(), precision);
      }
      approx[p] = sum / static_cast<double>(count);
      bound[p] = internal::ScreenBound(track_a.MeanError(),
                                       track_b.MeanError(),
                                       model.feature_dim(),
                                       model.normalization_scale(),
                                       options.index.overfetch_margin);
      scores[p] = approx[p];
    }

    // Phase 3: exact fp64 re-rank of the provably sufficient shortlist,
    // reproducing the unscreened per-cell NormalizedDistance sum verbatim.
    const std::vector<char> mask = internal::ShortlistMask(
        approx, bound, TopKCount(options.k_fraction, num_pairs));
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (mask[p] == 0 || !routing.Admitted(p)) continue;
      if (samples[p].cells.empty()) continue;
      double sum = 0.0;
      for (std::size_t i = 0; i < samples[p].cells.size(); ++i) {
        sum += model.NormalizedDistance(cache.View(refs_a[p][i]),
                                        cache.View(refs_b[p][i]));
      }
      scores[p] = sum / static_cast<double>(samples[p].cells.size());
      ++result.reranked_pairs;
    }
    internal::RecordScreenObs(
        result.screened_pairs, result.reranked_pairs,
        precision == ScreenPrecision::kInt8 ? mirror_rows : 0,
        precision == ScreenPrecision::kFp16 ? mirror_rows : 0);
  } else {
    for (std::size_t begin = 0; begin < num_pairs; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, num_pairs);
      if (batched) batch_prefetch(begin, end);
      for (std::size_t p = begin; p < end; ++p) {
        if (!routing.Admitted(p)) continue;
        const auto& crops_a = context.CropsA(p);
        const auto& crops_b = context.CropsB(p);
        double sum = 0.0;
        for (const auto& [row, col] : samples[p].cells) {
          reid::FeatureView fa = cache.GetOrEmbed(crops_a[row], model, meter);
          reid::FeatureView fb = cache.GetOrEmbed(crops_b[col], model, meter);
          sum += model.NormalizedDistance(fa, fb);
        }
        auto count = static_cast<std::int64_t>(samples[p].cells.size());
        charge_pair(count);
        if (count > 0) scores[p] = sum / static_cast<double>(count);
      }
    }
  }

  result.candidates = internal::TopKByScore(
      context, scores, TopKCount(options.k_fraction, num_pairs));
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::merge
