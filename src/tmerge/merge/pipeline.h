#ifndef TMERGE_MERGE_PIPELINE_H_
#define TMERGE_MERGE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tmerge/detect/detection_simulator.h"
#include "tmerge/merge/merger.h"
#include "tmerge/merge/selector.h"
#include "tmerge/merge/window.h"
#include "tmerge/metrics/gt_matcher.h"
#include "tmerge/reid/reid_model.h"
#include "tmerge/reid/synthetic_reid_model.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/track.h"

namespace tmerge::merge {

/// Configuration of the ingestion pipeline up to (but excluding) candidate
/// selection: detection, tracking input preparation, windowing, ReID model,
/// and the GT oracle.
struct PipelineConfig {
  detect::DetectorConfig detector;
  WindowConfig window;
  reid::ReidModelConfig reid;
  metrics::GtMatchConfig gt_match;
  std::uint64_t seed = 42;
  /// Worker threads for dataset-level preparation and evaluation:
  /// 0 = hardware_concurrency, 1 = the serial reference path (default).
  /// Videos are the unit of parallelism — per-video seeds and all
  /// per-video results are bit-identical for every value of this knob;
  /// see DESIGN.md "Threading model".
  int num_threads = 1;
};

/// Everything selectors and benches need about one video, computed once and
/// reused across selector sweeps: the tracking result, ReID model, windowed
/// pair sets, and the ground-truth polyonymous pairs. Holds a pointer to
/// the source video, which must outlive it.
struct PreparedVideo {
  const sim::SyntheticVideo* video = nullptr;
  track::TrackingResult tracking;
  std::shared_ptr<const reid::ReidModel> model;
  std::vector<WindowPairs> windows;
  metrics::TrackGtAssignment assignment;
  /// All true polyonymous pairs of the video (paper Eq. 2, over tracker
  /// output vs GT). The REC denominator.
  std::vector<metrics::TrackPairKey> truth;

  /// Total pairs across all windows.
  std::int64_t TotalPairs() const;
};

/// Runs detection + the given tracker + windowing + GT matching on a video.
PreparedVideo PrepareVideo(const sim::SyntheticVideo& video,
                           track::Tracker& tracker,
                           const PipelineConfig& config);

/// Prepares every video of a dataset (seed varied per video), using
/// `config.num_threads` workers when it is not 1. Per-video seeds are
/// derived by index before any work is scheduled, so the prepared videos
/// are bit-identical to the serial path for every thread count.
///
/// Concurrency contract: `tracker.Run` is invoked from multiple threads on
/// the same tracker object, so it must not mutate tracker state — every
/// tracker shipped in tmerge::track keeps all per-run state local to Run
/// (they hold only immutable config, plus a const ReidModel* for the
/// appearance tracker).
std::vector<PreparedVideo> PrepareDataset(const sim::Dataset& dataset,
                                          track::Tracker& tracker,
                                          const PipelineConfig& config);

/// Aggregated outcome of running one selector over prepared videos.
struct EvalResult {
  /// Micro-averaged recall: candidate hits / all true polyonymous pairs
  /// (so pairs unreachable under the windowing — e.g. when L < 2 L_max —
  /// count as misses, as in the paper's Fig. 9).
  double rec = 0.0;
  /// Frames processed per simulated second (the paper's FPS metric).
  /// Always computed from `simulated_seconds`; the wall-clock fields below
  /// are bookkeeping diagnostics and never feed FPS.
  double fps = 0.0;
  double simulated_seconds = 0.0;
  /// Selector wall-clock summed over windows and videos. With
  /// num_threads > 1 the per-video terms overlap in real time, so this is
  /// aggregate CPU-time-like work, NOT elapsed time (it can exceed
  /// `elapsed_seconds` by up to the thread count).
  double summed_wall_seconds = 0.0;
  /// True elapsed wall-clock of the call that produced this result: the
  /// whole parallel loop for EvaluateDataset, one video's evaluation for
  /// EvaluateSelector (also recorded as the "evaluate.dataset.seconds" /
  /// "evaluate.video.seconds" obs spans).
  double elapsed_seconds = 0.0;
  reid::UsageStats usage;
  std::int64_t frames = 0;
  std::int64_t windows = 0;
  std::int64_t pairs = 0;
  std::int64_t truth_pairs = 0;
  std::int64_t hits = 0;
  std::int64_t box_pairs_evaluated = 0;
  /// Fault-tolerance aggregates (zero with no failpoints armed): arm pulls
  /// lost to injected ReID faults, retry attempts, and windows whose
  /// circuit breaker opened (DESIGN.md "Fault model & degraded mode").
  std::int64_t failed_pulls = 0;
  std::int64_t reid_retries = 0;
  std::int64_t degraded_windows = 0;
  /// Union of selected candidates across windows (for merging).
  std::vector<metrics::TrackPairKey> candidates;
};

/// Runs `selector` over every window of one prepared video. A fresh feature
/// cache is used per video and shared across its windows (cross-window
/// reuse mirrors the paper's feature-reuse optimization).
EvalResult EvaluateSelector(const PreparedVideo& prepared,
                            CandidateSelector& selector,
                            const SelectorOptions& options);

/// Runs `selector` over several prepared videos with `num_threads` workers
/// (0 = hardware_concurrency, 1 = serial reference path) and aggregates.
///
/// Parallelism is per video: each video's evaluation owns a fresh
/// FeatureCache and InferenceMeter, reads only its own PreparedVideo
/// (tracking, windows, per-video ReidModel), and shares with other videos
/// nothing but the selector and options. That boundary demands:
///   - CandidateSelector::Select must not mutate selector members (every
///     shipped selector only reads its options struct);
///   - ReidModel::Embed must be safely callable concurrently (both shipped
///     models are pure const lookups + local RNG).
/// Aggregation is an ordered reduction over the per-video results in video
/// order — the identical floating-point accumulation as the serial loop —
/// so rec/hits/candidates/usage are bit-identical for every thread count.
EvalResult EvaluateDataset(const std::vector<PreparedVideo>& videos,
                           CandidateSelector& selector,
                           const SelectorOptions& options,
                           int num_threads = 1);

/// Serial alias of EvaluateDataset (the pre-threading name, kept for the
/// existing benches/tests that sweep selectors on one thread).
EvalResult EvaluateSelectorOnVideos(const std::vector<PreparedVideo>& videos,
                                    CandidateSelector& selector,
                                    const SelectorOptions& options);

/// Runs EvaluateDataset `trials` times with derived seeds and averages
/// REC/FPS/time/counter fields (the paper reports the average of 10
/// independent trials per experiment; benches here default to 3).
/// `candidates` come from the first trial.
EvalResult EvaluateSelectorAveraged(const std::vector<PreparedVideo>& videos,
                                    CandidateSelector& selector,
                                    const SelectorOptions& options,
                                    int trials, int num_threads = 1);

/// Convenience: selects candidates with `selector`, confirms them against
/// the oracle, and returns the merged tracking result for `prepared`.
track::TrackingResult SelectAndMerge(const PreparedVideo& prepared,
                                     CandidateSelector& selector,
                                     const SelectorOptions& options,
                                     bool oracle_verified = true);

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_PIPELINE_H_
