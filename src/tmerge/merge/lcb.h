#ifndef TMERGE_MERGE_LCB_H_
#define TMERGE_MERGE_LCB_H_

#include <cstdint>
#include <string>

#include "tmerge/merge/selector.h"

namespace tmerge::merge {

/// LCB comparator (paper §V-B): UCB1 adapted to minimization. Each
/// iteration computes the Lower Confidence Bound s'_ij - sqrt(2 ln tau /
/// n_ij) of every pair, samples one BBox pair from the arg-min pair,
/// and re-estimates. Deterministic arm choice makes iterations strictly
/// sequential, which is why its batched variant (batch_size > 1 batches
/// only the two crops of the chosen pair) gains little from the GPU —
/// the contrast the paper draws in §V-D.
class LcbSelector : public CandidateSelector {
 public:
  /// `tau_max`: total sampling iterations (including the one initial pull
  /// per pair that seeds the bounds).
  explicit LcbSelector(std::int64_t tau_max);

  SelectionResult Select(const PairContext& context,
                         const reid::ReidModel& model,
                         reid::FeatureCache& cache,
                         const SelectorOptions& options) override;

  std::string name() const override { return "LCB"; }

  std::int64_t tau_max() const { return tau_max_; }

 private:
  std::int64_t tau_max_;
};

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_LCB_H_
