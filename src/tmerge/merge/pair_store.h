#ifndef TMERGE_MERGE_PAIR_STORE_H_
#define TMERGE_MERGE_PAIR_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tmerge/merge/window.h"
#include "tmerge/reid/feature.h"
#include "tmerge/track/track.h"

namespace tmerge::merge {

/// Builds a reid::CropRef for a tracked box (forwarding the hidden fields
/// the synthetic embedder needs).
reid::CropRef MakeCropRef(const track::TrackedBox& box);

/// Immutable view of one window's pair set with the track data selectors
/// need: box sequences, BBox-pair counts, and BetaInit's spatial distances.
/// Shared by every selector so they all see identical inputs.
///
/// Concurrency contract: logically const after construction — every public
/// member is a read — so concurrent readers on different worker threads
/// are safe without locks, and the class intentionally carries no mutex or
/// TMERGE_GUARDED_BY annotations. The unsynchronized-reader guarantee
/// holds only while nothing mutates `result` underneath it (the pipeline
/// keeps each TrackingResult owned by one video's evaluation; see
/// DESIGN.md "Static analysis & enforced invariants").
class PairContext {
 public:
  /// Binds the window's pairs to the tracking result. `result` must
  /// outlive the context.
  PairContext(const track::TrackingResult& result,
              std::vector<metrics::TrackPairKey> pairs);

  std::size_t num_pairs() const { return pairs_.size(); }
  const std::vector<metrics::TrackPairKey>& pairs() const { return pairs_; }
  const metrics::TrackPairKey& pair(std::size_t index) const {
    return pairs_[index];
  }

  /// The two tracks of pair `index` (first = smaller TID).
  const track::Track& TrackA(std::size_t index) const;
  const track::Track& TrackB(std::size_t index) const;

  /// |B_ti x B_tj| — the number of BBox pairs of pair `index`.
  std::int64_t BoxPairCount(std::size_t index) const;

  /// The spatial distance DisS of pair `index` (paper §IV-C): Euclidean
  /// distance between the center of the temporally earlier track's last
  /// BBox and the later track's first BBox.
  double SpatialDistance(std::size_t index) const;

  /// Temporal gap in frames between the two tracks (>= 0 for admissible
  /// pairs; 0 when adjacent/overlapping).
  std::int32_t TemporalGap(std::size_t index) const;

  /// The BBoxes of the two tracks of pair `index`.
  const std::vector<track::TrackedBox>& BoxesA(std::size_t index) const {
    return TrackA(index).boxes;
  }
  const std::vector<track::TrackedBox>& BoxesB(std::size_t index) const {
    return TrackB(index).boxes;
  }

  /// The CropRefs of the two tracks of pair `index`, precomputed at
  /// construction (CropsA(i)[r] == MakeCropRef(BoxesA(i)[r])). Selectors
  /// sweep these instead of re-materializing a CropRef per probe in their
  /// inner loops; tracks shared by several pairs share one vector.
  const std::vector<reid::CropRef>& CropsA(std::size_t index) const;
  const std::vector<reid::CropRef>& CropsB(std::size_t index) const;

  /// Sum of BoxPairCount over all pairs (the brute-force workload size).
  std::int64_t TotalBoxPairs() const;

  const track::TrackingResult& result() const { return *result_; }

 private:
  const track::TrackingResult* result_;
  std::vector<metrics::TrackPairKey> pairs_;
  /// Pair index -> (index of track a, index of track b) in result->tracks.
  std::vector<std::pair<std::size_t, std::size_t>> track_indices_;
  /// Track index -> that track's boxes as CropRefs (parallel to
  /// result->tracks).
  std::vector<std::vector<reid::CropRef>> track_crops_;
};

/// Tracks which BBox pairs of one track pair have been sampled, supporting
/// TMerge's without-replacement sampling. BBox pairs are identified by
/// row * cols + col over the B_ti x B_tj grid.
///
/// Thread-confined like its owning selector state: Sample mutates and
/// draws from the caller's core::Rng, whose determinism depends on a
/// single consumer (one sampler + one rng per (window, trial) evaluation).
class BoxPairSampler {
 public:
  BoxPairSampler(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols) {}

  /// Draws an unsampled (row, col) uniformly, marking it sampled. Must not
  /// be called when Exhausted().
  std::pair<std::int32_t, std::int32_t> Sample(core::Rng& rng);

  bool Exhausted() const {
    return sampled_count_ >= rows_ * cols_;
  }

  std::int64_t sampled_count() const { return sampled_count_; }
  std::int64_t total() const { return rows_ * cols_; }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t sampled_count_ = 0;
  /// Sparse record of sampled cells, used while the grid is mostly empty
  /// (rejection sampling is cheap there).
  std::unordered_map<std::int64_t, bool> sampled_;
  /// Once more than half the grid is sampled, the unsampled cells are
  /// materialized here and drawn by swap-remove (O(1) per draw), keeping
  /// full-grid consumers like PS at eta = 1 linear.
  std::vector<std::int64_t> remaining_;
  bool dense_mode_ = false;
};

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_PAIR_STORE_H_
