#ifndef TMERGE_MERGE_BASELINE_H_
#define TMERGE_MERGE_BASELINE_H_

#include <string>

#include "tmerge/merge/selector.h"

namespace tmerge::merge {

/// Algorithm 1 of the paper (BL): extracts ReID features for *every* BBox
/// involved in P_c, computes *all* pairwise BBox distances per track pair,
/// scores each pair by the mean (Def. 3.1), and returns the K lowest. Exact
/// but quadratic in boxes — the approach whose cost Figs. 3-4 motivate
/// replacing. With options.batch_size > 1 this is BL-B: crops are embedded
/// in GPU batches and distances take the batched path.
class BaselineSelector : public CandidateSelector {
 public:
  SelectionResult Select(const PairContext& context,
                         const reid::ReidModel& model,
                         reid::FeatureCache& cache,
                         const SelectorOptions& options) override;

  std::string name() const override { return "BL"; }

  /// Exact track-pair scores from the last Select call (test hook; indexed
  /// like context.pairs()).
  const std::vector<double>& last_scores() const { return last_scores_; }

 private:
  std::vector<double> last_scores_;
};

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_BASELINE_H_
