#ifndef TMERGE_MERGE_BASELINE_H_
#define TMERGE_MERGE_BASELINE_H_

#include <string>
#include <vector>

#include "tmerge/core/mutex.h"
#include "tmerge/core/thread_annotations.h"
#include "tmerge/merge/selector.h"

namespace tmerge::merge {

/// Algorithm 1 of the paper (BL): extracts ReID features for *every* BBox
/// involved in P_c, computes *all* pairwise BBox distances per track pair,
/// scores each pair by the mean (Def. 3.1), and returns the K lowest. Exact
/// but quadratic in boxes — the approach whose cost Figs. 3-4 motivate
/// replacing. With options.batch_size > 1 this is BL-B: crops are embedded
/// in GPU batches and distances take the batched path.
class BaselineSelector : public CandidateSelector {
 public:
  SelectionResult Select(const PairContext& context,
                         const reid::ReidModel& model,
                         reid::FeatureCache& cache,
                         const SelectorOptions& options) override;

  std::string name() const override { return "BL"; }

  /// Exact track-pair scores from the last completed Select call (test
  /// hook; indexed like context.pairs()). Select computes scores on its own
  /// stack and publishes them here under a mutex at the end, so sharing one
  /// BaselineSelector across EvaluateDataset workers stays within the
  /// CandidateSelector concurrency contract; with concurrent Select calls
  /// "last" means whichever published last.
  std::vector<double> last_scores() const TMERGE_EXCLUDES(mutex_) {
    core::MutexLock lock(mutex_);
    return last_scores_;
  }

 private:
  mutable core::Mutex mutex_;
  std::vector<double> last_scores_ TMERGE_GUARDED_BY(mutex_);
};

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_BASELINE_H_
