#include "tmerge/merge/selector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmerge/core/status.h"

namespace tmerge::merge {

std::size_t TopKCount(double k_fraction, std::size_t num_pairs) {
  TMERGE_CHECK(k_fraction >= 0.0 && k_fraction <= 1.0);
  auto k = static_cast<std::size_t>(
      std::ceil(k_fraction * static_cast<double>(num_pairs)));
  return std::min(k, num_pairs);
}

namespace internal {

std::vector<metrics::TrackPairKey> TopKByScore(
    const PairContext& context, const std::vector<double>& scores,
    std::size_t k) {
  TMERGE_CHECK(scores.size() == context.num_pairs());
  k = std::min(k, scores.size());
  if (k == 0) return {};
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // (score, index) is a strict total order — no two elements ever compare
  // equivalent — so partitioning at k and sorting only the top-k prefix
  // yields exactly the first k elements a full sort would: O(n + k log k)
  // instead of O(n log n), and K defaults to 5% of the pairs.
  const auto less = [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  };
  if (k < order.size()) {
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     less);
    std::sort(order.begin(), order.begin() + k, less);
  } else {
    std::sort(order.begin(), order.end(), less);
  }
  std::vector<metrics::TrackPairKey> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(context.pair(order[i]));
  return out;
}

std::int64_t ScaledBudget(std::int64_t tau_max, double scale) {
  TMERGE_CHECK(scale > 0.0);
  if (scale == 1.0) return tau_max;  // Exact pass-through, no rounding.
  auto scaled = static_cast<std::int64_t>(
      std::llround(static_cast<double>(tau_max) * scale));
  return std::max<std::int64_t>(scaled, 1);
}

}  // namespace internal
}  // namespace tmerge::merge
