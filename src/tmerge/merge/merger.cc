#include "tmerge/merge/merger.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "tmerge/core/union_find.h"

namespace tmerge::merge {

std::vector<metrics::TrackPairKey> OracleFilter(
    const std::vector<metrics::TrackPairKey>& candidates,
    const std::vector<metrics::TrackPairKey>& truth) {
  std::set<metrics::TrackPairKey> truth_set(truth.begin(), truth.end());
  std::vector<metrics::TrackPairKey> accepted;
  for (const auto& pair : candidates) {
    if (truth_set.contains(pair)) accepted.push_back(pair);
  }
  return accepted;
}

track::TrackingResult ApplyMerges(
    const track::TrackingResult& result,
    const std::vector<metrics::TrackPairKey>& accepted_pairs) {
  std::unordered_map<track::TrackId, std::size_t> index_of;
  for (std::size_t i = 0; i < result.tracks.size(); ++i) {
    index_of.emplace(result.tracks[i].id, i);
  }

  core::UnionFind groups(result.tracks.size());
  for (const auto& [a, b] : accepted_pairs) {
    auto ita = index_of.find(a);
    auto itb = index_of.find(b);
    if (ita == index_of.end() || itb == index_of.end()) continue;
    groups.Union(ita->second, itb->second);
  }

  // Collect members per group root, then emit one merged track per group.
  std::map<std::size_t, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < result.tracks.size(); ++i) {
    members[groups.Find(i)].push_back(i);
  }

  track::TrackingResult merged;
  merged.tracker_name = result.tracker_name + "+merge";
  merged.num_frames = result.num_frames;
  merged.frame_width = result.frame_width;
  merged.frame_height = result.frame_height;
  merged.fps = result.fps;
  merged.tracks.reserve(members.size());

  for (const auto& [root, indices] : members) {
    track::Track out;
    out.id = result.tracks[indices.front()].id;
    std::size_t total = 0;
    for (std::size_t i : indices) {
      out.id = std::min(out.id, result.tracks[i].id);
      total += result.tracks[i].boxes.size();
    }
    out.boxes.reserve(total);
    for (std::size_t i : indices) {
      const auto& boxes = result.tracks[i].boxes;
      out.boxes.insert(out.boxes.end(), boxes.begin(), boxes.end());
    }
    std::sort(out.boxes.begin(), out.boxes.end(),
              [](const track::TrackedBox& a, const track::TrackedBox& b) {
                if (a.frame != b.frame) return a.frame < b.frame;
                return a.confidence > b.confidence;
              });
    // Drop duplicate boxes on the same frame (keep the most confident).
    auto last = std::unique(out.boxes.begin(), out.boxes.end(),
                            [](const track::TrackedBox& a,
                               const track::TrackedBox& b) {
                              return a.frame == b.frame;
                            });
    out.boxes.erase(last, out.boxes.end());
    merged.tracks.push_back(std::move(out));
  }
  std::sort(merged.tracks.begin(), merged.tracks.end(),
            [](const track::Track& a, const track::Track& b) {
              return a.id < b.id;
            });
  return merged;
}

}  // namespace tmerge::merge
