#ifndef TMERGE_MERGE_WINDOW_H_
#define TMERGE_MERGE_WINDOW_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "tmerge/metrics/gt_matcher.h"
#include "tmerge/track/track.h"

namespace tmerge::merge {

/// Windowing and pair-generation parameters (paper §II).
struct WindowConfig {
  /// Window length L in frames. The paper requires L >= 2 * L_max so no GT
  /// track spans more than two half-overlapping windows.
  std::int32_t length = 2000;
  /// Treat the whole video as a single window (the paper's MOT-17/KITTI
  /// evaluation mode). When set, `length` is ignored.
  bool single_window = false;
  /// Two tracks that coexist in more than this many frames cannot be
  /// fragments of one GT track (an object cannot be in two places at
  /// once), so such pairs are excluded from P_c. A small tolerance absorbs
  /// duplicate boxes at fragmentation boundaries.
  std::int32_t overlap_tolerance = 2;
  /// Optional cap on the frame gap between the two tracks of a pair
  /// (fragmentation happens "in a short period of time", §II). Unlimited
  /// by default, faithful to Eq. (1).
  std::int32_t max_gap = std::numeric_limits<std::int32_t>::max();
};

/// The pair set P_c of one window W_c.
struct WindowPairs {
  std::int32_t window_index = 0;
  std::int32_t start_frame = 0;  ///< First frame of W_c (inclusive).
  std::int32_t end_frame = 0;    ///< Last frame of W_c (inclusive).
  /// Indices (into TrackingResult::tracks) of T_c: tracks born in the
  /// first L/2 frames of this window.
  std::vector<std::size_t> new_tracks;
  /// P_c as canonical TID pairs (paper Eq. 1, minus physically impossible
  /// coexisting pairs — see WindowConfig::overlap_tolerance).
  std::vector<metrics::TrackPairKey> pairs;
};

/// Returns true if tracks `a` and `b` may form a pair under `config`
/// (temporal-coexistence and gap constraints).
bool PairAdmissible(const track::Track& a, const track::Track& b,
                    const WindowConfig& config);

/// Partitions a video's tracking result into half-overlapping windows and
/// builds each window's pair set per Eq. (1): pairs within T_c plus pairs
/// across T_c and T_{c-1}. Each unordered pair appears in at most one
/// window.
std::vector<WindowPairs> BuildWindows(const track::TrackingResult& result,
                                      const WindowConfig& config);

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_WINDOW_H_
