#ifndef TMERGE_MERGE_PROPORTIONAL_H_
#define TMERGE_MERGE_PROPORTIONAL_H_

#include <string>

#include "tmerge/merge/selector.h"

namespace tmerge::merge {

/// PS comparator (paper §V-B): stratified uniform sampling. Every track
/// pair (stratum) gets the same sampling fraction eta of its BBox pairs,
/// the pair score is estimated by the sample mean, and the K lowest
/// estimates win. Spends effort evenly instead of adaptively — the foil
/// that shows why bandit allocation matters. batch_size > 1 gives PS-B.
class ProportionalSelector : public CandidateSelector {
 public:
  /// `eta` in (0, 1]: fraction of each pair's BBox pairs to evaluate. At
  /// eta = 1 PS degenerates to BL (modulo sampling order).
  explicit ProportionalSelector(double eta);

  SelectionResult Select(const PairContext& context,
                         const reid::ReidModel& model,
                         reid::FeatureCache& cache,
                         const SelectorOptions& options) override;

  std::string name() const override { return "PS"; }

  double eta() const { return eta_; }

 private:
  double eta_;
};

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_PROPORTIONAL_H_
