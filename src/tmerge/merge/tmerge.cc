#include "tmerge/merge/tmerge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tmerge/core/beta.h"
#include "tmerge/core/sim_clock.h"
#include "tmerge/core/status.h"
#include "tmerge/merge/index_support.h"
#include "tmerge/obs/span.h"

namespace tmerge::merge {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class PairState : std::uint8_t {
  kLive = 0,       // Still being sampled.
  kPrunedIn,       // Certainly in the top-K; sampling stopped (ULB).
  kPrunedOut,      // Certainly outside the top-K; sampling stopped (ULB).
  kExhausted,      // Every BBox pair evaluated; exact score known.
};

struct PairBandit {
  core::BetaPosterior beta;
  double sum = 0.0;
  std::int64_t pulls = 0;
  PairState state = PairState::kLive;

  double SampleMean() const {
    return pulls > 0 ? sum / static_cast<double>(pulls) : 0.5;
  }
};

// Algorithm 4 (ULB): freezes pairs whose top-K membership is already
// decided by Hoeffding bounds. Bounds of never-sampled pairs are vacuous.
internal::UlbCounts RunUlb(std::vector<PairBandit>& bandits,
                           std::int64_t tau, std::size_t k_count) {
  internal::UlbCounts counts;
  const std::size_t n = bandits.size();
  std::vector<double> lowers, uppers;
  lowers.reserve(n);
  uppers.reserve(n);
  std::vector<double> lower_of(n), upper_of(n);
  double log_tau = std::log(std::max<double>(2.0, static_cast<double>(tau)));
  for (std::size_t p = 0; p < n; ++p) {
    double lower = -kInf, upper = kInf;
    if (bandits[p].pulls > 0) {
      double mean = bandits[p].SampleMean();
      double radius =
          std::sqrt(2.0 * log_tau / static_cast<double>(bandits[p].pulls));
      lower = mean - radius;
      upper = mean + radius;
    }
    if (bandits[p].state == PairState::kExhausted) {
      // Exact score: zero-width interval.
      lower = upper = bandits[p].SampleMean();
    }
    lower_of[p] = lower;
    upper_of[p] = upper;
    lowers.push_back(lower);
    uppers.push_back(upper);
  }
  std::sort(lowers.begin(), lowers.end());
  std::sort(uppers.begin(), uppers.end());

  for (std::size_t p = 0; p < n; ++p) {
    if (bandits[p].state != PairState::kLive) continue;
    if (bandits[p].pulls == 0) continue;
    // Pairs that could rank below p: lower bound strictly below p's upper.
    auto possibly_below = static_cast<std::size_t>(
        std::lower_bound(lowers.begin(), lowers.end(), upper_of[p]) -
        lowers.begin());
    if (lower_of[p] < upper_of[p]) --possibly_below;  // Exclude p itself.
    if (possibly_below + 1 <= k_count) {
      bandits[p].state = PairState::kPrunedIn;
      ++counts.pruned_in;
      continue;
    }
    // Pairs certainly below p: upper bound strictly below p's lower.
    auto certainly_below = static_cast<std::size_t>(
        std::lower_bound(uppers.begin(), uppers.end(), lower_of[p]) -
        uppers.begin());
    if (certainly_below >= k_count) {
      bandits[p].state = PairState::kPrunedOut;
      ++counts.pruned_out;
    }
  }
  return counts;
}

#ifndef TMERGE_OBS_DISABLED
/// Publishes one window's bandit internals: total arm pulls (= tau), ULB
/// pruning outcomes, the tau actually spent, and the window-mean posterior
/// shape parameters (alpha = S, beta = F) as a cheap summary of how far
/// the posteriors moved from the Beta(1,1) / BetaInit priors.
void RecordBanditObs(std::int64_t tau,
                     const std::vector<PairBandit>& bandits,
                     const internal::UlbCounts& total_pruned) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& arm_pulls = registry.GetCounter("tmerge.arm_pulls");
  static obs::Counter& pruned_in =
      registry.GetCounter("tmerge.ulb.pruned_in");
  static obs::Counter& pruned_out =
      registry.GetCounter("tmerge.ulb.pruned_out");
  static obs::Histogram& tau_spent = registry.GetHistogram(
      "tmerge.tau_spent_per_window", obs::CountBounds());
  static obs::Histogram& alpha_mean = registry.GetHistogram(
      "tmerge.posterior.alpha_mean", obs::CountBounds());
  static obs::Histogram& beta_mean = registry.GetHistogram(
      "tmerge.posterior.beta_mean", obs::CountBounds());
  arm_pulls.Add(tau);
  pruned_in.Add(total_pruned.pruned_in);
  pruned_out.Add(total_pruned.pruned_out);
  tau_spent.Record(static_cast<double>(tau));
  if (!bandits.empty()) {
    double alpha_sum = 0.0, beta_sum = 0.0;
    for (const PairBandit& bandit : bandits) {
      alpha_sum += bandit.beta.s();
      beta_sum += bandit.beta.f();
    }
    double n = static_cast<double>(bandits.size());
    alpha_mean.Record(alpha_sum / n);
    beta_mean.Record(beta_sum / n);
  }
}
#endif  // TMERGE_OBS_DISABLED

}  // namespace

SelectionResult TMergeSelector::Select(const PairContext& context,
                                       const reid::ReidModel& model,
                                       reid::FeatureCache& cache,
                                       const SelectorOptions& options) {
  core::WallTimer timer;
  reid::InferenceMeter meter(options.cost_model);
  // Per-window fault tolerance: every feature pull goes through the guard,
  // which is charge-identical to the bare cache until a failpoint fires.
  reid::ReidGuard guard(options.fault_policy, cache, model, meter);
  core::Rng rng(options.seed ^ 0x73A3ULL);
  const bool batched = options.batch_size > 1;
  const std::size_t num_pairs = context.num_pairs();
  const std::size_t k_count = TopKCount(options.k_fraction, num_pairs);
  const std::int64_t tau_max =
      internal::ScaledBudget(options_.tau_max, options.budget_scale);

  SelectionResult result;
  if (num_pairs == 0) {
    result.wall_seconds = timer.Seconds();
    return result;
  }

  // Cluster router (§15.3): routed-out pairs enter the bandit frozen as
  // kPrunedOut — RunUlb only transitions kLive pairs and the Thompson loop
  // only draws kLive ones, so they are never sampled — and are forced to
  // score 1.0 in the final ranking (a frozen Beta(1, 1) mean of 0.5 would
  // otherwise outrank genuinely sampled pairs). Representatives go through
  // the guard so injected embed faults admit the pair.
  const internal::RouterOutcome routing = internal::RoutePairs(
      context, cache, options.index, [&](const reid::CropRef& crop) {
        return guard.TryGet(crop).valid();
      });
  result.routed_out_pairs = routing.routed_out;

  // --- Initialization: BetaInit (Algorithm 3) or flat Beta(1, 1). ---
  std::vector<PairBandit> bandits(num_pairs);
  std::vector<BoxPairSampler> samplers;
  samplers.reserve(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    samplers.emplace_back(context.TrackA(p).size(), context.TrackB(p).size());
    if (!routing.Admitted(p)) {
      bandits[p].state = PairState::kPrunedOut;
      continue;
    }
    if (options_.use_beta_init &&
        context.SpatialDistance(p) < options_.thr_s) {
      // Spatially close fragments are promising: lower the prior mean so
      // they are sampled earlier (F += 1).
      bandits[p].beta.AddPseudoCounts(0.0, 1.0);
    }
  }

  // Evaluates one fresh BBox pair of `p`; returns the normalized distance.
  auto evaluate_one = [&](std::size_t p,
                          std::vector<reid::CropRef>* batch_crops)
      -> std::pair<reid::CropRef, reid::CropRef> {
    auto [row, col] = samplers[p].Sample(rng);
    reid::CropRef crop_a = context.CropsA(p)[row];
    reid::CropRef crop_b = context.CropsB(p)[col];
    if (batch_crops != nullptr) {
      batch_crops->push_back(crop_a);
      batch_crops->push_back(crop_b);
    }
    return {crop_a, crop_b};
  };

  auto finish_evaluation = [&](std::size_t p, const reid::CropRef& crop_a,
                               const reid::CropRef& crop_b) {
    reid::FeatureView fa = guard.TryGet(crop_a);
    reid::FeatureView fb =
        fa.valid() ? guard.TryGet(crop_b) : reid::FeatureView();
    if (!fa.valid() || !fb.valid()) {
      // Failed pull (degraded mode): the sampler cell and tau budget are
      // already spent and the failed inference was charged, but the
      // posterior is NOT updated and no Bernoulli draw is consumed — an
      // error must never look like evidence about the pair's distance.
      // The exhaustion check still runs: the cell is gone either way, and
      // skipping it would let the arg-min loop re-Sample() an exhausted
      // sampler.
      ++result.failed_pulls;
      if (samplers[p].Exhausted() && bandits[p].state == PairState::kLive) {
        bandits[p].state = PairState::kExhausted;
      }
      return;
    }
    double distance = model.NormalizedDistance(fa, fb);
    if (batched) {
      meter.ChargeDistanceBatched(1);
    } else {
      meter.ChargeDistance(1);
    }
    // Bernoulli trial with success probability d~ (Lines 9-13).
    bool r = rng.Bernoulli(distance);
    bandits[p].beta.Observe(r);
    bandits[p].sum += distance;
    ++bandits[p].pulls;
    ++result.box_pairs_evaluated;
    result.sum_sampled_distance += distance;
    if (samplers[p].Exhausted() && bandits[p].state == PairState::kLive) {
      bandits[p].state = PairState::kExhausted;
    }
  };

  // --- Main Thompson-sampling loop (Algorithm 2, Lines 3-14). ---
  std::int64_t tau = 0;
  std::int64_t next_ulb = options_.ulb_period;
  const std::size_t round_size =
      batched ? static_cast<std::size_t>(options.batch_size) : 1;

  std::vector<std::pair<double, std::size_t>> draws;
  while (tau < tau_max) {
    draws.clear();
    for (std::size_t p = 0; p < num_pairs; ++p) {
      if (bandits[p].state != PairState::kLive) continue;
      draws.emplace_back(bandits[p].beta.Sample(rng), p);
    }
    meter.ChargeOverhead(static_cast<std::int64_t>(draws.size()));
    if (draws.empty()) break;

    std::size_t take = std::min<std::size_t>(
        {round_size, draws.size(),
         static_cast<std::size_t>(tau_max - tau)});
    std::partial_sort(draws.begin(), draws.begin() + take, draws.end());

    if (batched) {
      std::vector<reid::CropRef> crops;
      std::vector<std::pair<reid::CropRef, reid::CropRef>> pending(take);
      std::vector<std::size_t> chosen(take);
      for (std::size_t i = 0; i < take; ++i) {
        chosen[i] = draws[i].second;
        pending[i] = evaluate_one(chosen[i], &crops);
      }
      // Prefetch the round's crops in one batched call; crops that fail
      // here are retried on the single path inside finish_evaluation
      // (charge-identical to GetOrEmbedBatch + GetOrEmbed when disarmed).
      guard.TryGetBatch(crops);
      for (std::size_t i = 0; i < take; ++i) {
        finish_evaluation(chosen[i], pending[i].first, pending[i].second);
      }
      tau += static_cast<std::int64_t>(take);
    } else {
      std::size_t p = draws.front().second;
      auto [crop_a, crop_b] = evaluate_one(p, nullptr);
      finish_evaluation(p, crop_a, crop_b);
      ++tau;
    }

    if (options_.use_ulb && tau >= next_ulb) {
      internal::UlbCounts counts = RunUlb(bandits, tau, k_count);
      result.ulb_pruned_in += counts.pruned_in;
      result.ulb_pruned_out += counts.pruned_out;
      meter.ChargeOverhead(static_cast<std::int64_t>(num_pairs));
      next_ulb = tau + options_.ulb_period;
    }
  }

  // --- Final ranking (Line 15): lowest posterior means win. Exhausted
  // pairs are ranked by their exact score.
  std::vector<double> scores(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (!routing.Admitted(p)) {
      scores[p] = 1.0;
      continue;
    }
    scores[p] = bandits[p].state == PairState::kExhausted
                    ? bandits[p].SampleMean()
                    : bandits[p].beta.Mean();
  }
  result.candidates = internal::TopKByScore(context, scores, k_count);
  result.simulated_seconds = meter.elapsed_seconds();
  result.usage = meter.stats();
  result.reid_retries = guard.retries();
  result.degraded = guard.breaker_open();
  result.wall_seconds = timer.Seconds();
  TMERGE_OBS(RecordBanditObs(
      tau, bandits,
      internal::UlbCounts{result.ulb_pruned_in, result.ulb_pruned_out}));
  return result;
}

}  // namespace tmerge::merge
