#ifndef TMERGE_MERGE_SELECTOR_H_
#define TMERGE_MERGE_SELECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tmerge/merge/pair_store.h"
#include "tmerge/reid/candidate_index.h"
#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/reid_guard.h"
#include "tmerge/reid/reid_model.h"

namespace tmerge::reid {
class EmbedScheduler;
}  // namespace tmerge::reid

namespace tmerge::merge {

/// Mirror precision of the quantized screen (DESIGN.md §15.2).
enum class ScreenPrecision : std::uint8_t { kInt8, kFp16 };

/// Fast candidate index controls (DESIGN.md §15). Defaults leave every
/// selector on the exact PR 5 path.
struct IndexOptions {
  /// Two-phase sweep for the full-sweep selectors (BL, PS): every pair is
  /// scored with a quantized compact-slab kernel, then a provably
  /// sufficient shortlist is re-ranked with the exact fp64 kernels. The
  /// returned SelectionResult is bit-identical to the unscreened run —
  /// candidates, charges and counters alike — because the true top-K is
  /// always inside the shortlist (§15.2 over-fetch bound) and charges are
  /// assessed exactly as in the unscreened sweep.
  bool screen = false;
  ScreenPrecision screen_precision = ScreenPrecision::kInt8;
  /// Multiplier >= 1.0 on the proven error bound when shortlisting.
  /// 1.0 is already sufficient; the default keeps daylight between the
  /// bound and any future kernel change.
  double overfetch_margin = 1.5;
  /// Coarse cluster router (all four selectors): pairs whose track
  /// representatives do not share a probed cluster are dropped from the
  /// sweep with score 1.0. Cuts work below O(pairs); recall becomes
  /// approximate unless router_exhaustive is set.
  bool router = false;
  /// Probe every cluster: admits every pair, making candidates identical
  /// to the router-off run — the recall==1.0 differential mode tests pin.
  bool router_exhaustive = false;
  /// Clusters probed per track representative when not exhaustive.
  std::int32_t router_probes = 8;
  reid::ClusterIndexOptions cluster;
};

/// Options shared by every candidate selector.
struct SelectorOptions {
  /// K in [0, 1]: the selector returns the top ceil(K * |P_c|) candidate
  /// pairs (paper §II). The paper's default across experiments is 5%.
  double k_fraction = 0.05;
  /// Batch size B of the GPU-accelerated "-B" variants; 1 selects the
  /// unbatched single-inference path.
  std::int32_t batch_size = 1;
  /// Simulated hardware costs (see reid/cost_model.h).
  reid::CostModel cost_model;
  /// Seed for the selector's own randomness (sampling, Bernoulli trials).
  std::uint64_t seed = 7;
  /// Retry / circuit-breaker policy for the fault-tolerant selectors
  /// (TMerge, LCB), which pull features through a per-window
  /// reid::ReidGuard. BL and PS stay on the infallible path on purpose:
  /// they embed every (eta-sampled) crop exactly once with no sampling
  /// loop to degrade, so a fault policy has nothing to decide for them —
  /// an embed failure there is a hard error, not a pull to skip. Inert
  /// unless fault/failpoint.h failpoints are armed.
  reid::ReidFaultPolicy fault_policy;
  /// Multiplier on the budget-bound selectors' sampling budget (TMerge and
  /// LCB scale tau_max by this, rounded, floored at one pull). Exactly 1.0
  /// — the default — leaves the construction-time budget untouched, bit
  /// for bit; tmerge::gate::GatedSelector sets it to the ambiguous
  /// fraction of a gated window so the bandit budget tracks the work the
  /// gate left behind.
  double budget_scale = 1.0;
  /// Optional shared embed scheduler (reid/embed_scheduler.h). Non-owning;
  /// must outlive every Select call. Null — the default — means no
  /// prefetching; today only tmerge::gate::GatedSelector reads it (for
  /// GateConfig::prefetch_ambiguous).
  reid::EmbedScheduler* embed_scheduler = nullptr;
  /// Fast candidate index (quantized screen + cluster router, §15).
  IndexOptions index;
};

/// Output of one selector run on one window.
struct SelectionResult {
  /// Estimated top-K polyonymous candidates, the paper's P-hat*_{c|K}.
  std::vector<metrics::TrackPairKey> candidates;
  /// Simulated model time consumed (drives the FPS metric).
  double simulated_seconds = 0.0;
  /// Wall-clock bookkeeping time of the algorithm itself.
  double wall_seconds = 0.0;
  /// Operation counters.
  reid::UsageStats usage;
  /// BBox-pair distance evaluations performed by the algorithm's sampling
  /// loop (tau for the bandit methods; all/eta-fraction for BL/PS).
  std::int64_t box_pairs_evaluated = 0;
  /// Sum of the normalized distances the sampling loop evaluated. Divided
  /// by box_pairs_evaluated and compared against the minimum exact score,
  /// this yields the average regret R(tau_max) of §IV-E (Eq. 11): sampling
  /// biased toward low-score pairs drives it down as tau grows.
  double sum_sampled_distance = 0.0;
  /// Pairs ULB (Algorithm 4) froze as certainly inside / outside the top-K
  /// (TMerge only; zero for other selectors or with ULB disabled).
  std::int64_t ulb_pruned_in = 0;
  std::int64_t ulb_pruned_out = 0;
  /// Arm pulls that failed after exhausting retries (injected ReID faults;
  /// always zero with no failpoints armed). Failed pulls consume budget
  /// and cost but never update posteriors — DESIGN.md "Fault model &
  /// degraded mode".
  std::int64_t failed_pulls = 0;
  /// Fast-index bookkeeping (§15): pairs scored by the quantized screen,
  /// pairs the exact re-rank touched, and pairs the cluster router dropped
  /// without evaluation. All zero on the exact PR 5 paths.
  std::int64_t screened_pairs = 0;
  std::int64_t reranked_pairs = 0;
  std::int64_t routed_out_pairs = 0;
  /// ReID retry attempts made beyond first attempts.
  std::int64_t reid_retries = 0;
  /// True when the window's ReID circuit breaker opened: the tail of the
  /// window ran in degraded (spatial-prior-only) mode.
  bool degraded = false;
};

/// Returns ceil(k_fraction * num_pairs), clamped to [0, num_pairs].
std::size_t TopKCount(double k_fraction, std::size_t num_pairs);

/// Interface of every polyonymous-candidate selection algorithm (BL, PS,
/// LCB, TMerge and their batched variants). Selectors are stateless across
/// calls; the feature cache carries reusable embeddings between windows of
/// the same video.
///
/// Concurrency: merge::EvaluateDataset shares one selector object across
/// worker threads (one video per thread), so Select must not mutate
/// selector members — all per-run state belongs on the stack, with the
/// caller-owned cache/meter carrying anything that outlives one window.
/// Every shipped selector only reads its construction-time options.
class CandidateSelector {
 public:
  virtual ~CandidateSelector() = default;

  /// Selects the top-K candidate pairs of one window.
  virtual SelectionResult Select(const PairContext& context,
                                 const reid::ReidModel& model,
                                 reid::FeatureCache& cache,
                                 const SelectorOptions& options) = 0;

  /// Display name, e.g. "TMerge" or "BL-B".
  virtual std::string name() const = 0;
};

namespace internal {

/// Ranks pairs ascending by score and returns the top-k pair keys, breaking
/// ties by pair index for determinism. Uses partial selection
/// (nth_element + prefix sort) when k < n; because the (score, index)
/// comparator is a strict total order, the output is element-for-element
/// identical to a full sort (pinned by SelectorTest.TopKMatchesFullSort).
std::vector<metrics::TrackPairKey> TopKByScore(
    const PairContext& context, const std::vector<double>& scores,
    std::size_t k);

/// Applies SelectorOptions::budget_scale to a construction-time sampling
/// budget: llround(tau_max * scale), floored at one pull. A scale of
/// exactly 1.0 is guaranteed to return tau_max unchanged (the pass-through
/// bit-identity contract of the gated pipeline).
std::int64_t ScaledBudget(std::int64_t tau_max, double scale);

}  // namespace internal

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_SELECTOR_H_
