#include "tmerge/merge/window.h"

#include <algorithm>
#include <set>

#include "tmerge/core/status.h"

namespace tmerge::merge {

bool PairAdmissible(const track::Track& a, const track::Track& b,
                    const WindowConfig& config) {
  if (a.id == b.id) return false;
  if (a.empty() || b.empty()) return false;
  // Temporal overlap in frames (inclusive span intersection).
  std::int32_t overlap =
      std::min(a.last_frame(), b.last_frame()) -
      std::max(a.first_frame(), b.first_frame()) + 1;
  if (overlap > config.overlap_tolerance) return false;
  // Gap between the earlier track's end and the later track's start.
  std::int32_t gap = std::max(a.first_frame() - b.last_frame(),
                              b.first_frame() - a.last_frame());
  if (gap > config.max_gap) return false;
  return true;
}

std::vector<WindowPairs> BuildWindows(const track::TrackingResult& result,
                                      const WindowConfig& config) {
  std::vector<WindowPairs> windows;
  if (result.tracks.empty()) return windows;

  const std::int32_t num_frames = result.num_frames;
  std::int32_t length = config.single_window ? num_frames : config.length;
  TMERGE_CHECK(length > 0);
  std::int32_t half = std::max<std::int32_t>(1, length / 2);

  // Bucket tracks by which half-window stride their first frame falls in;
  // bucket c holds T_{c} (tracks born in [c*half, (c+1)*half)).
  std::int32_t num_buckets = (num_frames + half - 1) / half;
  if (config.single_window) num_buckets = 1;
  std::vector<std::vector<std::size_t>> buckets(num_buckets);
  for (std::size_t i = 0; i < result.tracks.size(); ++i) {
    std::int32_t first = result.tracks[i].first_frame();
    std::int32_t bucket = config.single_window ? 0 : first / half;
    if (bucket >= num_buckets) bucket = num_buckets - 1;
    buckets[bucket].push_back(i);
  }

  auto add_pairs = [&](WindowPairs& window,
                       const std::vector<std::size_t>& tc,
                       const std::vector<std::size_t>& prev) {
    std::set<metrics::TrackPairKey> seen;
    // Pairs within T_c.
    for (std::size_t i = 0; i < tc.size(); ++i) {
      for (std::size_t j = i + 1; j < tc.size(); ++j) {
        const auto& a = result.tracks[tc[i]];
        const auto& b = result.tracks[tc[j]];
        if (PairAdmissible(a, b, config)) {
          seen.insert(metrics::MakePairKey(a.id, b.id));
        }
      }
    }
    // Pairs across T_c and T_{c-1}.
    for (std::size_t i : tc) {
      for (std::size_t j : prev) {
        const auto& a = result.tracks[i];
        const auto& b = result.tracks[j];
        if (PairAdmissible(a, b, config)) {
          seen.insert(metrics::MakePairKey(a.id, b.id));
        }
      }
    }
    window.pairs.assign(seen.begin(), seen.end());
  };

  static const std::vector<std::size_t> kEmpty;
  for (std::int32_t c = 0; c < num_buckets; ++c) {
    WindowPairs window;
    window.window_index = c;
    window.start_frame = config.single_window ? 0 : c * half;
    window.end_frame =
        std::min(num_frames - 1, window.start_frame + length - 1);
    window.new_tracks = buckets[c];
    add_pairs(window, buckets[c], c > 0 ? buckets[c - 1] : kEmpty);
    // Skip empty windows (no new tracks and no pairs) for compactness.
    if (!window.new_tracks.empty() || !window.pairs.empty()) {
      windows.push_back(std::move(window));
    }
  }
  return windows;
}

}  // namespace tmerge::merge
