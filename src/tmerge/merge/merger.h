#ifndef TMERGE_MERGE_MERGER_H_
#define TMERGE_MERGE_MERGER_H_

#include <vector>

#include "tmerge/metrics/gt_matcher.h"
#include "tmerge/track/track.h"

namespace tmerge::merge {

/// Keeps only the candidate pairs that the inspection step confirms as
/// truly polyonymous. In the paper the candidates are "optionally subject
/// to further human inspection"; the evaluation oracle (GT matching) plays
/// the inspector here. Pass the full GT polyonymous set as `truth`.
std::vector<metrics::TrackPairKey> OracleFilter(
    const std::vector<metrics::TrackPairKey>& candidates,
    const std::vector<metrics::TrackPairKey>& truth);

/// Applies accepted merges: tracks connected through accepted pairs
/// (transitively, via union-find) are fused into one track carrying the
/// smallest TID of the group, with boxes ordered by frame. When two boxes
/// share a frame (duplicate boxes at a fragmentation boundary), the higher-
/// confidence one is kept. Pairs naming unknown TIDs are ignored.
track::TrackingResult ApplyMerges(
    const track::TrackingResult& result,
    const std::vector<metrics::TrackPairKey>& accepted_pairs);

}  // namespace tmerge::merge

#endif  // TMERGE_MERGE_MERGER_H_
