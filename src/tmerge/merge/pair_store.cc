#include "tmerge/merge/pair_store.h"

#include <algorithm>

#include "tmerge/core/status.h"

namespace tmerge::merge {

reid::CropRef MakeCropRef(const track::TrackedBox& box) {
  return reid::CropRef{box.detection_id, box.gt_id, box.visibility,
                       box.glared, box.noise_seed};
}

PairContext::PairContext(const track::TrackingResult& result,
                         std::vector<metrics::TrackPairKey> pairs)
    : result_(&result), pairs_(std::move(pairs)) {
  std::unordered_map<track::TrackId, std::size_t> index_of;
  index_of.reserve(result.tracks.size());
  for (std::size_t i = 0; i < result.tracks.size(); ++i) {
    index_of.emplace(result.tracks[i].id, i);
  }
  track_indices_.reserve(pairs_.size());
  for (const auto& [a, b] : pairs_) {
    auto ita = index_of.find(a);
    auto itb = index_of.find(b);
    TMERGE_CHECK(ita != index_of.end() && itb != index_of.end());
    track_indices_.emplace_back(ita->second, itb->second);
  }
  // Materialize each paired track's CropRefs once; a track in k pairs is
  // converted once, not k times, and the selectors' inner loops index a
  // flat vector instead of rebuilding CropRefs per probe.
  track_crops_.resize(result.tracks.size());
  for (const auto& [ia, ib] : track_indices_) {
    for (std::size_t t : {ia, ib}) {
      if (!track_crops_[t].empty() || result.tracks[t].boxes.empty()) continue;
      track_crops_[t].reserve(result.tracks[t].boxes.size());
      for (const auto& box : result.tracks[t].boxes) {
        track_crops_[t].push_back(MakeCropRef(box));
      }
    }
  }
}

const std::vector<reid::CropRef>& PairContext::CropsA(std::size_t index) const {
  TMERGE_CHECK(index < track_indices_.size());
  return track_crops_[track_indices_[index].first];
}

const std::vector<reid::CropRef>& PairContext::CropsB(std::size_t index) const {
  TMERGE_CHECK(index < track_indices_.size());
  return track_crops_[track_indices_[index].second];
}

const track::Track& PairContext::TrackA(std::size_t index) const {
  TMERGE_CHECK(index < track_indices_.size());
  return result_->tracks[track_indices_[index].first];
}

const track::Track& PairContext::TrackB(std::size_t index) const {
  TMERGE_CHECK(index < track_indices_.size());
  return result_->tracks[track_indices_[index].second];
}

std::int64_t PairContext::BoxPairCount(std::size_t index) const {
  return static_cast<std::int64_t>(TrackA(index).size()) *
         static_cast<std::int64_t>(TrackB(index).size());
}

double PairContext::SpatialDistance(std::size_t index) const {
  const track::Track& a = TrackA(index);
  const track::Track& b = TrackB(index);
  // Order by time: earlier track's last box vs later track's first box.
  const track::Track& earlier = a.last_frame() <= b.last_frame() ? a : b;
  const track::Track& later = a.last_frame() <= b.last_frame() ? b : a;
  return core::Distance(earlier.boxes.back().box.Center(),
                        later.boxes.front().box.Center());
}

std::int32_t PairContext::TemporalGap(std::size_t index) const {
  const track::Track& a = TrackA(index);
  const track::Track& b = TrackB(index);
  std::int32_t gap = std::max(a.first_frame() - b.last_frame(),
                              b.first_frame() - a.last_frame());
  return std::max(gap, 0);
}

std::int64_t PairContext::TotalBoxPairs() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < num_pairs(); ++i) total += BoxPairCount(i);
  return total;
}

std::pair<std::int32_t, std::int32_t> BoxPairSampler::Sample(core::Rng& rng) {
  TMERGE_CHECK(!Exhausted());
  std::int64_t total = rows_ * cols_;
  // Rejection sampling while the grid is sparsely sampled; once more than
  // half is used, switch to drawing from the materialized remainder.
  if (!dense_mode_ && sampled_count_ * 2 < total) {
    for (;;) {
      std::int64_t cell = rng.UniformInt(0, total - 1);
      auto [it, inserted] = sampled_.emplace(cell, true);
      if (inserted) {
        ++sampled_count_;
        return {static_cast<std::int32_t>(cell / cols_),
                static_cast<std::int32_t>(cell % cols_)};
      }
    }
  }
  if (!dense_mode_) {
    dense_mode_ = true;
    remaining_.reserve(total - sampled_count_);
    for (std::int64_t cell = 0; cell < total; ++cell) {
      if (!sampled_.contains(cell)) remaining_.push_back(cell);
    }
    sampled_.clear();  // No longer needed.
  }
  TMERGE_CHECK(!remaining_.empty());
  std::size_t pick = rng.Index(remaining_.size());
  std::int64_t cell = remaining_[pick];
  remaining_[pick] = remaining_.back();
  remaining_.pop_back();
  ++sampled_count_;
  return {static_cast<std::int32_t>(cell / cols_),
          static_cast<std::int32_t>(cell % cols_)};
}

}  // namespace tmerge::merge
