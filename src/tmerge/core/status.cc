#include "tmerge/core/status.h"

namespace tmerge::core {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "TMERGE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace tmerge::core
