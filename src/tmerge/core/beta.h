#ifndef TMERGE_CORE_BETA_H_
#define TMERGE_CORE_BETA_H_

#include "tmerge/core/rng.h"

namespace tmerge::core {

/// A Beta(S, F) posterior over a Bernoulli success probability, used by the
/// TMerge Thompson-sampling loop (paper §IV-B). `S` counts observed
/// successes (Bernoulli output r = 1) and `F` failures (r = 0); the
/// distribution is the conjugate posterior after those observations starting
/// from the prior encoded in the initial (S, F).
///
/// In TMerge a *lower* mean means "BBox contents look more alike", because
/// the Bernoulli success probability is the normalized ReID distance.
class BetaPosterior {
 public:
  /// Constructs the uninformative prior Beta(1, 1).
  BetaPosterior() : s_(1.0), f_(1.0) {}
  /// Constructs Beta(s, f); both shape parameters must be positive.
  BetaPosterior(double s, double f);

  /// Records a Bernoulli observation: r = true increments S, else F.
  void Observe(bool r);

  /// Adds pseudo-counts directly (used by BetaInit, Algorithm 3).
  void AddPseudoCounts(double s, double f);

  /// Posterior mean S / (S + F).
  double Mean() const { return s_ / (s_ + f_); }

  /// Posterior variance SF / ((S+F)^2 (S+F+1)).
  double Variance() const;

  /// Draws a Thompson sample theta ~ Beta(S, F).
  double Sample(Rng& rng) const { return rng.Beta(s_, f_); }

  double s() const { return s_; }
  double f() const { return f_; }

  /// Total number of recorded observations beyond the Beta(1,1) prior mass.
  double observation_count() const { return s_ + f_ - 2.0; }

 private:
  double s_;
  double f_;
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_BETA_H_
