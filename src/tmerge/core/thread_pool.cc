#include "tmerge/core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <utility>

#include "tmerge/core/mutex.h"
#include "tmerge/core/thread_annotations.h"
#include "tmerge/fault/failpoint.h"
#include "tmerge/obs/span.h"

namespace tmerge::core {

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

#ifndef TMERGE_OBS_DISABLED
namespace {

/// Wraps a submitted task so its queue wait (enqueue -> dequeue) and busy
/// time (execution) land in the pool's histograms. Only called when
/// instrumentation is runtime-enabled, so the disabled hot path pays one
/// branch and no clock reads.
std::function<void()> InstrumentTask(std::function<void()> task) {
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  static obs::Counter& tasks = registry.GetCounter("core.pool.tasks");
  static obs::Histogram& queue_wait =
      registry.GetHistogram("core.pool.queue_wait.seconds");
  static obs::Histogram& busy =
      registry.GetHistogram("core.pool.busy.seconds");
  std::int64_t enqueued_ns = obs::TraceClockNanos();
  return [task = std::move(task), enqueued_ns] {
    std::int64_t started_ns = obs::TraceClockNanos();
    queue_wait.Record(obs::TraceClockSecondsBetween(enqueued_ns, started_ns));
    tasks.Add();
    task();
    busy.Record(
        obs::TraceClockSecondsBetween(started_ns, obs::TraceClockNanos()));
  };
}

}  // namespace
#endif  // TMERGE_OBS_DISABLED

/// Shared state of one ParallelFor call. Lives on the calling thread's
/// stack; workers only touch it through the tasks submitted for this call,
/// all of which complete (and are counted out) before ParallelFor returns.
struct ThreadPool::ForLoopState {
  std::atomic<std::int64_t> next;
  std::int64_t end;
  const std::function<void(std::int64_t)>* fn;

  Mutex mutex;
  CondVar done;
  int active_helpers TMERGE_GUARDED_BY(mutex) = 0;
  std::exception_ptr error TMERGE_GUARDED_BY(mutex);

  /// Claims and runs indices until the range (or the loop, on error) is
  /// exhausted. Returns on the first captured exception.
  void RunLoop() TMERGE_EXCLUDES(mutex) {
    for (;;) {
      std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        (*fn)(i);
      } catch (...) {
        MutexLock lock(mutex);
        if (!error) error = std::current_exception();
        // Park the counter at the end so other participants stop claiming.
        next.store(end, std::memory_order_relaxed);
        return;
      }
      MutexLock lock(mutex);
      if (error) return;
    }
  }
};

ThreadPool::ThreadPool(int num_threads) {
  int workers = ResolveNumThreads(num_threads);
  TMERGE_OBS(obs::DefaultRegistry()
                 .GetGauge("core.pool.workers")
                 .Set(static_cast<double>(workers)));
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

Status ThreadPool::Submit(std::function<void()> task) {
  std::uint64_t ticket =
      submit_tickets_.fetch_add(1, std::memory_order_relaxed);
  if (TMERGE_FAILPOINT("core.pool.submit", ticket)) {
    return Status::Unavailable("injected task rejection (submit ticket " +
                               std::to_string(ticket) + ")");
  }
  TMERGE_OBS(if (obs::Enabled()) task = InstrumentTask(std::move(task)));
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.NotifyOne();
  return Status::Ok();
}

bool ThreadPool::InWorkerThread() const {
  std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // An explicit wait loop (not the predicate overload): the analysis
      // can then see stopping_ / queue_ are only touched under mutex_.
      while (!stopping_ && queue_.empty()) wake_.Wait(mutex_);
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn) {
  if (end <= begin) return;
  std::int64_t count = end - begin;
  // Inline paths: trivial ranges, and reentrant calls from a worker (the
  // worker would otherwise block waiting on tasks queued behind itself).
  if (count == 1 || workers_.empty() || InWorkerThread()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  ForLoopState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.fn = &fn;

  // The calling thread participates too, so helpers beyond count-1 would
  // only wake to find the range drained.
  int helpers = static_cast<int>(
      std::min<std::int64_t>(num_workers(), count - 1));
  {
    MutexLock lock(state.mutex);
    state.active_helpers = helpers;
  }
  for (int h = 0; h < helpers; ++h) {
    Status submitted = Submit([&state] {
      state.RunLoop();
      MutexLock lock(state.mutex);
      if (--state.active_helpers == 0) state.done.NotifyAll();
    });
    if (!submitted.ok()) {
      // Rejected helper (injected executor saturation): the remaining
      // participants — at minimum the calling thread below — still claim
      // every index, so the loop completes with reduced parallelism.
      MutexLock lock(state.mutex);
      --state.active_helpers;
    }
  }

  state.RunLoop();
  MutexLock lock(state.mutex);
  while (state.active_helpers != 0) state.done.Wait(state.mutex);
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace tmerge::core
