#include "tmerge/core/sim_clock.h"

// SimClock and WallTimer are header-only; this translation unit exists so
// the target has a stable archive member for the module.
