#include "tmerge/core/rng.h"

#include <cmath>

#include "tmerge/core/status.h"

namespace tmerge::core {

Rng Rng::Fork() {
  // Draw a fresh seed; mixing with a large odd constant decorrelates child
  // streams that are forked in sequence.
  std::uint64_t seed = engine_() * 0x9E3779B97F4A7C15ULL + 0x3C6EF372FE94F82AULL;
  return Rng(seed);
}

double Rng::Uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  TMERGE_CHECK(lo <= hi);
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  TMERGE_CHECK(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

std::size_t Rng::Index(std::size_t n) {
  TMERGE_CHECK(n > 0);
  return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Gamma(double shape) {
  TMERGE_CHECK(shape > 0.0);
  // Marsaglia-Tsang squeeze method. Much faster than constructing a
  // std::gamma_distribution per draw, which matters because TMerge draws a
  // Beta sample (two Gammas) per live pair per iteration.
  if (shape < 1.0) {
    // Boost to shape + 1 and scale back: G(a) = G(a+1) * U^(1/a).
    double u = Uniform01();
    while (u <= 0.0) u = Uniform01();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal(0.0, 1.0);
    double t = 1.0 + c * x;
    if (t <= 0.0) continue;
    double v = t * t * t;
    double u = Uniform01();
    double x2 = x * x;
    // Squeeze acceptance (avoids the log most of the time).
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  TMERGE_CHECK(alpha > 0.0 && beta > 0.0);
  double x = Gamma(alpha);
  double y = Gamma(beta);
  double sum = x + y;
  if (sum <= 0.0) return 0.5;  // Degenerate underflow; split the difference.
  return x / sum;
}

int Rng::Poisson(double mean) {
  TMERGE_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  return std::poisson_distribution<int>(mean)(engine_);
}

}  // namespace tmerge::core
