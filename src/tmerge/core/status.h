#ifndef TMERGE_CORE_STATUS_H_
#define TMERGE_CORE_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace tmerge::core {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  /// A dependency transiently failed (e.g. a ReID inference error); the
  /// operation may succeed if retried. The code fault-tolerant callers
  /// branch on (see reid::ReidGuard).
  kUnavailable,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value, modeled after absl::Status. Library code never
/// throws; recoverable failures are reported through Status / Result<T>,
/// while programming errors abort via TMERGE_CHECK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accesses the contained value; must hold ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

}  // namespace tmerge::core

/// Aborts with a diagnostic if `expr` is false. Used for programming errors
/// (invariant violations), not for recoverable conditions.
#define TMERGE_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::tmerge::core::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (false)

/// Debug-only variant of TMERGE_CHECK for hot-loop invariants whose cost
/// would be measurable in optimized builds (e.g. the per-call dimension
/// check inside the distance kernels — dimensions are validated once at
/// FeatureStore registration instead). Active when NDEBUG is not defined;
/// compiled to a no-op (the condition still type-checks but is never
/// evaluated) otherwise. TMERGE_DCHECK_ENABLED lets tests know which mode
/// they run under.
#ifndef NDEBUG
#define TMERGE_DCHECK_ENABLED 1
#define TMERGE_DCHECK(expr) TMERGE_CHECK(expr)
#else
#define TMERGE_DCHECK_ENABLED 0
#define TMERGE_DCHECK(expr) ((void)(false && (expr)))
#endif

#endif  // TMERGE_CORE_STATUS_H_
