#include "tmerge/core/beta.h"

#include "tmerge/core/status.h"

namespace tmerge::core {

BetaPosterior::BetaPosterior(double s, double f) : s_(s), f_(f) {
  TMERGE_CHECK(s > 0.0 && f > 0.0);
}

void BetaPosterior::Observe(bool r) {
  if (r) {
    s_ += 1.0;
  } else {
    f_ += 1.0;
  }
}

void BetaPosterior::AddPseudoCounts(double s, double f) {
  TMERGE_CHECK(s >= 0.0 && f >= 0.0);
  s_ += s;
  f_ += f;
}

double BetaPosterior::Variance() const {
  double n = s_ + f_;
  return s_ * f_ / (n * n * (n + 1.0));
}

}  // namespace tmerge::core
