#include "tmerge/core/geometry.h"

#include <algorithm>

namespace tmerge::core {

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double IntersectionArea(const BoundingBox& a, const BoundingBox& b) {
  double left = std::max(a.x, b.x);
  double top = std::max(a.y, b.y);
  double right = std::min(a.Right(), b.Right());
  double bottom = std::min(a.Bottom(), b.Bottom());
  if (right <= left || bottom <= top) return 0.0;
  return (right - left) * (bottom - top);
}

double Iou(const BoundingBox& a, const BoundingBox& b) {
  if (!a.IsValid() || !b.IsValid()) return 0.0;
  double inter = IntersectionArea(a, b);
  double uni = a.Area() + b.Area() - inter;
  if (uni <= 0.0) return 0.0;
  return inter / uni;
}

double CoverageFraction(const BoundingBox& a, const BoundingBox& b) {
  if (!a.IsValid()) return 0.0;
  return IntersectionArea(a, b) / a.Area();
}

BoundingBox ClampToFrame(const BoundingBox& box, double frame_width,
                         double frame_height) {
  double left = std::clamp(box.x, 0.0, frame_width);
  double top = std::clamp(box.y, 0.0, frame_height);
  double right = std::clamp(box.Right(), 0.0, frame_width);
  double bottom = std::clamp(box.Bottom(), 0.0, frame_height);
  return {left, top, std::max(0.0, right - left), std::max(0.0, bottom - top)};
}

}  // namespace tmerge::core
