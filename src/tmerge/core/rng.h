#ifndef TMERGE_CORE_RNG_H_
#define TMERGE_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace tmerge::core {

/// Deterministic pseudo-random number generator used by every randomized
/// component in the library. All components take an explicit seed (directly
/// or via an Rng), which makes tests and benches reproducible bit-for-bit.
///
/// This is a thin convenience wrapper over std::mt19937_64 with the sampling
/// helpers the code base needs. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  /// Constructs a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator. Useful for giving each
  /// subcomponent its own stream so adding draws in one place does not
  /// perturb another.
  Rng Fork();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n);

  /// Normal (Gaussian) sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Gamma(shape, 1) sample; shape > 0.
  double Gamma(double shape);

  /// Beta(alpha, beta) sample via two Gamma draws; alpha, beta > 0.
  double Beta(double alpha, double beta);

  /// Poisson sample with the given mean >= 0.
  int Poisson(double mean);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = Index(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Underlying engine, for interoperating with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_RNG_H_
