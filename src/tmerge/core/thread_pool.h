#ifndef TMERGE_CORE_THREAD_POOL_H_
#define TMERGE_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "tmerge/core/mutex.h"
#include "tmerge/core/status.h"
#include "tmerge/core/thread_annotations.h"

namespace tmerge::core {

/// Resolves a `num_threads` knob to a concrete worker count:
///   0  -> std::thread::hardware_concurrency() (at least 1),
///   n  -> n (at least 1).
/// The convention every threaded entry point of the library follows
/// (PipelineConfig::num_threads, bench sweeps).
int ResolveNumThreads(int num_threads);

/// A fixed-size worker pool for data-parallel work over independent items
/// (videos, trials). Design constraints, in order:
///
///   1. Determinism is the caller's job and the pool must not get in the
///      way: ParallelFor promises only that `fn` runs exactly once per
///      index, on some thread, with no two invocations sharing an index.
///      Callers that write result[i] from iteration i and reduce in index
///      order afterwards get bit-identical output for any worker count.
///   2. Exceptions propagate: the first exception thrown by an iteration
///      is captured, remaining unstarted iterations are abandoned, and the
///      exception is rethrown on the calling thread once in-flight
///      iterations drain.
///   3. Reentrancy degrades to inline execution: ParallelFor called from
///      inside a worker of the same pool runs the loop serially on that
///      worker instead of deadlocking on its own queue.
///
/// Observability: when tmerge::obs is runtime-enabled, each submitted task
/// records its queue wait and execution time into the default registry
/// ("core.pool.queue_wait.seconds" / "core.pool.busy.seconds" histograms,
/// "core.pool.tasks" counter) and construction publishes the worker count
/// as the "core.pool.workers" gauge.
///
/// A pool constructed with one worker still spawns that worker thread;
/// callers that want the *reference serial path* (no threads at all)
/// should branch before constructing a pool, as the pipeline does for
/// `num_threads == 1`.
class ThreadPool {
 public:
  /// Spawns `ResolveNumThreads(num_threads)` workers.
  explicit ThreadPool(int num_threads = 0);

  /// Drains nothing: pending tasks are discarded, in-flight tasks finish.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not throw (an escaped exception
  /// terminates the process); use ParallelFor for throwing work.
  ///
  /// Returns Unavailable without enqueueing when the "core.pool.submit"
  /// failpoint rejects the task (modeling a saturated executor); always OK
  /// otherwise. The failpoint is keyed by a per-pool submission ticket, so
  /// the rejection schedule is deterministic whenever submissions are
  /// (ParallelFor submits all helpers from the calling thread).
  core::Status Submit(std::function<void()> task) TMERGE_EXCLUDES(mutex_);

  /// Runs `fn(i)` for every i in [begin, end), distributing indices over
  /// the workers plus the calling thread. Blocks until every index ran (or
  /// an exception cut the loop short). Empty and single-index ranges, and
  /// calls from inside one of this pool's workers, run inline. Helper
  /// tasks rejected by Submit degrade gracefully: the surviving
  /// participants (at minimum the calling thread) still run every index.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn)
      TMERGE_EXCLUDES(mutex_);

  /// True when called from inside one of this pool's worker threads.
  bool InWorkerThread() const;

 private:
  struct ForLoopState;

  void WorkerMain() TMERGE_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> queue_ TMERGE_GUARDED_BY(mutex_);
  /// Written only by the constructor, before any worker can observe the
  /// pool; read-only afterwards (num_workers, InWorkerThread), so it needs
  /// no lock.
  std::vector<std::thread> workers_;
  bool stopping_ TMERGE_GUARDED_BY(mutex_) = false;
  /// Monotonic ticket per Submit call; keys the "core.pool.submit"
  /// failpoint.
  std::atomic<std::uint64_t> submit_tickets_{0};
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_THREAD_POOL_H_
