#include "tmerge/core/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "tmerge/core/status.h"

namespace tmerge::core {

std::string FormatFixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TMERGE_CHECK(!headers_.empty());
}

TablePrinter& TablePrinter::AddRow() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::AddCell(std::string value) {
  TMERGE_CHECK(!rows_.empty());
  TMERGE_CHECK(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(value));
  return *this;
}

TablePrinter& TablePrinter::AddNumber(double value, int precision) {
  return AddCell(FormatFixed(value, precision));
}

TablePrinter& TablePrinter::AddInt(long long value) {
  return AddCell(std::to_string(value));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tmerge::core
