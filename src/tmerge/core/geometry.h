#ifndef TMERGE_CORE_GEOMETRY_H_
#define TMERGE_CORE_GEOMETRY_H_

#include <cmath>

namespace tmerge::core {

/// A 2D point in pixel coordinates (x rightward, y downward).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// An axis-aligned bounding box in pixel coordinates: (x, y) is the top-left
/// corner, width/height extend right/down. This is the BBox of the paper's
/// notation b^m_{c,k} (geometry only; the *content* of a BBox is modeled by
/// sim::BoxObservation).
struct BoundingBox {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  /// Center point Phi(b) used by BetaInit's spatial distance (paper §IV-C).
  Point Center() const { return {x + width / 2.0, y + height / 2.0}; }

  double Area() const { return width * height; }
  double Right() const { return x + width; }
  double Bottom() const { return y + height; }

  /// True if width and height are both positive.
  bool IsValid() const { return width > 0.0 && height > 0.0; }
};

/// Area of the intersection of two boxes (0 if disjoint).
double IntersectionArea(const BoundingBox& a, const BoundingBox& b);

/// Intersection-over-union in [0, 1]; 0 when either box is degenerate.
double Iou(const BoundingBox& a, const BoundingBox& b);

/// Fraction of `a`'s area covered by `b`, in [0, 1].
double CoverageFraction(const BoundingBox& a, const BoundingBox& b);

/// Clamps the box to the [0,0]-(frame_width,frame_height) rectangle. The
/// result may be degenerate (zero area) when the box lies fully outside.
BoundingBox ClampToFrame(const BoundingBox& box, double frame_width,
                         double frame_height);

}  // namespace tmerge::core

#endif  // TMERGE_CORE_GEOMETRY_H_
