#ifndef TMERGE_CORE_THREAD_ANNOTATIONS_H_
#define TMERGE_CORE_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (TMERGE_GUARDED_BY and
/// friends), expanding to no-ops on compilers without the attribute so GCC
/// builds are unaffected. With Clang, `-Wthread-safety -Werror` (the CI
/// `static-analysis` job, or -DTMERGE_THREAD_SAFETY=ON) turns every
/// annotated locking contract into a compile error when violated: touching
/// a TMERGE_GUARDED_BY member without holding its mutex, calling a
/// TMERGE_REQUIRES function unlocked, or re-entering a TMERGE_EXCLUDES
/// function with the lock held all fail the build.
///
/// The analysis only understands capability-annotated lock types, not raw
/// std::mutex, so annotated code locks through the core::Mutex /
/// core::MutexLock / core::CondVar wrappers in mutex.h.
///
/// This header is deliberately freestanding (no includes, macros only):
/// tmerge::obs may include it without creating a layering cycle with core.
/// See DESIGN.md "Static analysis & enforced invariants".

#if defined(__clang__) && (!defined(SWIG))
#define TMERGE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TMERGE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type as a lockable capability ("mutex").
#define TMERGE_CAPABILITY(x) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define TMERGE_SCOPED_CAPABILITY \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define TMERGE_GUARDED_BY(x) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define TMERGE_PT_GUARDED_BY(x) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define TMERGE_REQUIRES(...) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the listed capabilities
/// in shared (reader) mode.
#define TMERGE_REQUIRES_SHARED(...) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define TMERGE_ACQUIRE(...) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define TMERGE_RELEASE(...) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define TMERGE_TRY_ACQUIRE(ret, ...) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// The caller must NOT hold the listed capabilities (the function acquires
/// them itself; holding them on entry would deadlock).
#define TMERGE_EXCLUDES(...) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability guarding its result.
#define TMERGE_RETURN_CAPABILITY(x) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Asserts (at analysis time) that the capability is held, for code paths
/// the analysis cannot follow (e.g. locks smuggled through std types).
#define TMERGE_ASSERT_CAPABILITY(x) \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define TMERGE_NO_THREAD_SAFETY_ANALYSIS \
  TMERGE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TMERGE_CORE_THREAD_ANNOTATIONS_H_
