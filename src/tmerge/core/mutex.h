#ifndef TMERGE_CORE_MUTEX_H_
#define TMERGE_CORE_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "tmerge/core/thread_annotations.h"

namespace tmerge::core {

/// Capability-annotated wrapper over std::mutex. Clang's thread safety
/// analysis only tracks lock types carrying the `capability` attribute —
/// libstdc++'s std::mutex does not — so every lock-guarded structure in
/// the library (core::ThreadPool, obs::MetricsRegistry, ParallelFor's
/// ForLoopState) locks through this wrapper and declares its protected
/// members TMERGE_GUARDED_BY(the_mutex). Violations then fail the clang CI
/// build instead of waiting for tsan to catch them at runtime.
///
/// Header-only and allocation-free: a Mutex is exactly a std::mutex.
class TMERGE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TMERGE_ACQUIRE() { mu_.lock(); }
  void Unlock() TMERGE_RELEASE() { mu_.unlock(); }
  bool TryLock() TMERGE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex, the annotated analogue of std::lock_guard. The
/// analysis treats the guarded capability as held for this object's
/// lifetime.
class TMERGE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TMERGE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TMERGE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with core::Mutex. Wait requires the mutex held
/// (enforced by the analysis via TMERGE_REQUIRES); internally it adopts the
/// native handle into a std::unique_lock for the wait and releases the
/// adoption afterwards, so ownership never actually changes hands.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The mutex is released while waiting and
  /// re-held on return, as with std::condition_variable.
  void Wait(Mutex& mu) TMERGE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Blocks until `pred()` holds (checked with the mutex held).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) TMERGE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_MUTEX_H_
