#ifndef TMERGE_CORE_UNION_FIND_H_
#define TMERGE_CORE_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tmerge::core {

/// Disjoint-set forest with union-by-rank and path compression. Used by the
/// track merger to coalesce polyonymous track IDs (a chain of accepted pairs
/// (a,b), (b,c) collapses a, b, c into one merged identity).
class UnionFind {
 public:
  /// Creates `n` singleton sets with elements 0..n-1.
  explicit UnionFind(std::size_t n);

  /// Returns the canonical representative of `x`'s set.
  std::size_t Find(std::size_t x);

  /// Merges the sets containing `a` and `b`. Returns true if they were
  /// previously distinct.
  bool Union(std::size_t a, std::size_t b);

  /// True if `a` and `b` are in the same set.
  bool Connected(std::size_t a, std::size_t b);

  /// Number of elements.
  std::size_t size() const { return parent_.size(); }

  /// Current number of disjoint sets.
  std::size_t set_count() const { return set_count_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t set_count_;
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_UNION_FIND_H_
