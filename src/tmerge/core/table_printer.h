#ifndef TMERGE_CORE_TABLE_PRINTER_H_
#define TMERGE_CORE_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace tmerge::core {

/// Column-aligned console table writer used by the bench binaries to print
/// the rows/series the paper reports. Cells are strings; numeric helpers
/// format with fixed precision. The table is buffered and rendered on
/// Print() so column widths can be computed from the data.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  TablePrinter& AddRow();

  /// Appends a string cell to the current row.
  TablePrinter& AddCell(std::string value);

  /// Appends a fixed-precision numeric cell.
  TablePrinter& AddNumber(double value, int precision = 3);

  /// Appends an integer cell.
  TablePrinter& AddInt(long long value);

  /// Renders the table (with a header separator) to `os`.
  void Print(std::ostream& os) const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with fixed `precision` decimals (helper shared by
/// benches for inline reporting).
std::string FormatFixed(double value, int precision);

}  // namespace tmerge::core

#endif  // TMERGE_CORE_TABLE_PRINTER_H_
