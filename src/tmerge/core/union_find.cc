#include "tmerge/core/union_find.h"

#include <numeric>

#include "tmerge/core/status.h"

namespace tmerge::core {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), set_count_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::Find(std::size_t x) {
  TMERGE_CHECK(x < parent_.size());
  std::size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    std::size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(std::size_t a, std::size_t b) {
  std::size_t ra = Find(a);
  std::size_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --set_count_;
  return true;
}

bool UnionFind::Connected(std::size_t a, std::size_t b) {
  return Find(a) == Find(b);
}

}  // namespace tmerge::core
