#ifndef TMERGE_CORE_SIM_CLOCK_H_
#define TMERGE_CORE_SIM_CLOCK_H_

#include <cstdint>

#include "tmerge/obs/trace_clock.h"

namespace tmerge::core {

/// Accumulator for *simulated* time. The expensive operations of the paper's
/// pipeline (ReID inference, batched GPU inference, distance evaluation) do
/// not exist in this reproduction, so the cost model (reid/cost_model.h)
/// charges deterministic durations to a SimClock instead. FPS figures are
/// computed against this clock, making benches reproducible and
/// hardware-independent while preserving the relative cost structure.
class SimClock {
 public:
  SimClock() = default;

  /// Charges `seconds` of simulated time. Negative charges are ignored.
  void Advance(double seconds) {
    if (seconds > 0.0) elapsed_seconds_ += seconds;
  }

  /// Total simulated seconds accumulated so far.
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Resets the clock to zero.
  void Reset() { elapsed_seconds_ = 0.0; }

 private:
  double elapsed_seconds_ = 0.0;
};

/// Simple wall-clock stopwatch for reporting real bookkeeping overhead
/// alongside simulated model time. Reads the obs trace clock — the one
/// sanctioned wall-clock source — so the lint steady_clock allowlist stays
/// a single header.
class WallTimer {
 public:
  WallTimer() : start_ns_(obs::TraceClockNanos()) {}

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return obs::TraceClockSecondsBetween(start_ns_, obs::TraceClockNanos());
  }

  void Restart() { start_ns_ = obs::TraceClockNanos(); }

 private:
  std::int64_t start_ns_;
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_SIM_CLOCK_H_
