#ifndef TMERGE_CORE_SIM_CLOCK_H_
#define TMERGE_CORE_SIM_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace tmerge::core {

/// Accumulator for *simulated* time. The expensive operations of the paper's
/// pipeline (ReID inference, batched GPU inference, distance evaluation) do
/// not exist in this reproduction, so the cost model (reid/cost_model.h)
/// charges deterministic durations to a SimClock instead. FPS figures are
/// computed against this clock, making benches reproducible and
/// hardware-independent while preserving the relative cost structure.
class SimClock {
 public:
  SimClock() = default;

  /// Charges `seconds` of simulated time. Negative charges are ignored.
  void Advance(double seconds) {
    if (seconds > 0.0) elapsed_seconds_ += seconds;
  }

  /// Total simulated seconds accumulated so far.
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Resets the clock to zero.
  void Reset() { elapsed_seconds_ = 0.0; }

 private:
  double elapsed_seconds_ = 0.0;
};

/// Simple wall-clock stopwatch for reporting real bookkeeping overhead
/// alongside simulated model time.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tmerge::core

#endif  // TMERGE_CORE_SIM_CLOCK_H_
