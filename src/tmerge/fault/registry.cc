#include "tmerge/fault/registry.h"

#include <algorithm>
#include <charconv>

#include "tmerge/core/mutex.h"
#include "tmerge/obs/metrics.h"

namespace tmerge::fault {

namespace internal {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashName(std::string_view name) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis.
  for (char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;  // FNV-1a prime.
  }
  return hash;
}

double KeyedUniform(std::uint64_t seed, std::string_view name,
                    std::uint64_t key) {
  // Two mixing rounds so related keys (key, key ^ 1, ...) decorrelate.
  std::uint64_t mixed = SplitMix64(SplitMix64(seed ^ HashName(name)) ^ key);
  // Top 53 bits -> uniform double in [0, 1), portable across platforms.
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace internal

void Registry::Arm(const std::string& point, const FaultSpec& spec) {
  FaultSpec clamped;
  clamped.probability = std::clamp(spec.probability, 0.0, 1.0);
  clamped.latency_seconds = std::max(spec.latency_seconds, 0.0);
  core::MutexLock lock(mutex_);
  auto [it, inserted] = points_.try_emplace(point);
  it->second.spec = clamped;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void Registry::Disarm(const std::string& point) {
  core::MutexLock lock(mutex_);
  if (points_.erase(point) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Registry::Reset() {
  core::MutexLock lock(mutex_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
  total_fires_.store(0, std::memory_order_relaxed);
}

void Registry::SetSeed(std::uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
}

std::uint64_t Registry::seed() const {
  return seed_.load(std::memory_order_relaxed);
}

bool Registry::Lookup(std::string_view point, FaultSpec& spec) const {
  core::MutexLock lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  spec = it->second.spec;
  return true;
}

void Registry::CountFire(std::string_view point) {
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  {
    core::MutexLock lock(mutex_);
    auto it = points_.find(point);
    if (it != points_.end()) ++it->second.fires;
  }
  if (obs::Enabled()) {
    static obs::Counter& injected =
        obs::DefaultRegistry().GetCounter("fault.injected");
    injected.Add();
  }
}

bool Registry::ShouldFail(std::string_view point, std::uint64_t key) {
  FaultSpec spec;
  if (!Lookup(point, spec)) return false;
  // Edges are exact: 0 never fires (uniform < 0 is impossible) and 1
  // always fires (uniform is in [0, 1), strictly below 1).
  if (!(internal::KeyedUniform(seed(), point, key) < spec.probability)) {
    return false;
  }
  CountFire(point);
  return true;
}

double Registry::LatencySpike(std::string_view point, std::uint64_t key) {
  FaultSpec spec;
  if (!Lookup(point, spec)) return 0.0;
  if (!(internal::KeyedUniform(seed(), point, key) < spec.probability)) {
    return 0.0;
  }
  CountFire(point);
  return spec.latency_seconds;
}

std::int64_t Registry::fires(std::string_view point) const {
  core::MutexLock lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

namespace {

bool ParseSpecDouble(std::string_view field, double& out) {
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

}  // namespace

core::Status Registry::ApplySpec(std::string_view spec) {
  // Parse everything before arming anything: an invalid entry must not
  // leave the registry half-configured.
  std::map<std::string, FaultSpec> parsed;
  std::string_view rest = spec;
  while (!rest.empty()) {
    std::size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return core::Status::InvalidArgument(
          "fault spec entry \"" + std::string(entry) +
          "\" is not point=probability[@latency]");
    }
    std::string_view point = entry.substr(0, eq);
    std::string_view value = entry.substr(eq + 1);
    FaultSpec fault;
    std::size_t at = value.find('@');
    if (at != std::string_view::npos) {
      if (!ParseSpecDouble(value.substr(at + 1), fault.latency_seconds) ||
          fault.latency_seconds < 0.0) {
        return core::Status::InvalidArgument(
            "fault spec entry \"" + std::string(entry) +
            "\" has a malformed latency (want seconds >= 0)");
      }
      value = value.substr(0, at);
    }
    if (!ParseSpecDouble(value, fault.probability) ||
        fault.probability < 0.0 || fault.probability > 1.0) {
      return core::Status::InvalidArgument(
          "fault spec entry \"" + std::string(entry) +
          "\" has a malformed probability (want a number in [0, 1])");
    }
    parsed[std::string(point)] = fault;
  }
  for (const auto& [point, fault] : parsed) Arm(point, fault);
  return core::Status::Ok();
}

Registry& GlobalRegistry() {
  // Leaked on purpose: failpoints may be consulted during static
  // destruction of other objects.
  static Registry* registry = new Registry();  // tmerge-lint: allow(naked-new)
  return *registry;
}

}  // namespace tmerge::fault
