#ifndef TMERGE_FAULT_FAILPOINT_H_
#define TMERGE_FAULT_FAILPOINT_H_

#include "tmerge/fault/registry.h"

// Failpoint sites. A site names a failure the library promises to tolerate
// and passes a 64-bit key identifying the logical operation, so the
// injected schedule is a pure function of (seed, name, key) — identical at
// any thread count (see registry.h).
//
// Catalog of shipped failpoints (DESIGN.md "Fault model & degraded mode"):
//   reid.embed          one ReID forward pass errors (transient)
//   reid.latency        one ReID forward pass suffers a simulated latency
//                       spike (charged to the cost model, never slept)
//   reid.cache.evict    a cached feature is dropped before lookup (the
//                       reuse optimization loses an entry)
//   reid.cache.miss     a lookup is forced to miss without eviction (a
//                       re-embed is charged; the entry is refreshed)
//   reid.embed.batch_fail
//                       one EmbedScheduler batched dispatch fails whole:
//                       the launch cost is charged as a penalty and the
//                       batch's crops retry on the single path under a
//                       fresh salt (keyed first detection id ^ batch index
//                       ^ salt, so the schedule is group-content-
//                       deterministic across camera interleaves)
//   reid.sched.defer    one EmbedScheduler batch's dispatch is pushed
//                       behind the rest of its group (commit order, and
//                       therefore results and charges, are unaffected)
//   io.mot.short_read   a MOT reader's input ends mid-stream
//   io.mot.corrupt_row  a MOT reader row arrives corrupted
//   core.pool.submit    ThreadPool::Submit rejects the task
//   stream.camera.drop_frame
//                       a camera frame is lost in transport: its
//                       detections vanish but stream time still advances
//                       (keyed (camera_id << 32) | frame, so a retried
//                       frame gets the same verdict)
//   stream.director.defer
//                       the MergeDirector defers an otherwise-admissible
//                       merge job (scheduler hiccup; never consulted in
//                       force-flush mode, so Finish cannot wedge)
//
// Compile-out: -DTMERGE_FAULT_DISABLED erases every site to a constant, so
// production builds carry no registry lookups at all (the registry class
// itself stays linkable, mirroring TMERGE_OBS_DISABLED).

#if defined(TMERGE_FAULT_DISABLED)

// The operands are void-evaluated (all sites pass pure expressions) so the
// disabled build neither warns about unused values nor changes behavior;
// the optimizer deletes them and the site folds to a constant.
#define TMERGE_FAILPOINT(name, key) ((void)(name), (void)(key), false)
#define TMERGE_FAILPOINT_LATENCY(name, key) ((void)(name), (void)(key), 0.0)

#else

/// True when the armed failpoint `name` fires for operation `key`.
/// Evaluates to false (one relaxed load) when nothing is armed.
#define TMERGE_FAILPOINT(name, key)                        \
  (::tmerge::fault::GlobalRegistry().AnyArmed() &&         \
   ::tmerge::fault::GlobalRegistry().ShouldFail((name), (key)))

/// Simulated latency-spike seconds for operation `key` (0.0 when disarmed
/// or not fired). The caller charges the result to its cost model.
#define TMERGE_FAILPOINT_LATENCY(name, key)                \
  (::tmerge::fault::GlobalRegistry().AnyArmed()            \
       ? ::tmerge::fault::GlobalRegistry().LatencySpike((name), (key)) \
       : 0.0)

#endif  // TMERGE_FAULT_DISABLED

#endif  // TMERGE_FAULT_FAILPOINT_H_
