#ifndef TMERGE_FAULT_REGISTRY_H_
#define TMERGE_FAULT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "tmerge/core/mutex.h"
#include "tmerge/core/status.h"
#include "tmerge/core/thread_annotations.h"

namespace tmerge::fault {

/// Deterministic fault injection for TMerge's unreliable dependencies (the
/// ReID model above all — the whole system exists to ration that flaky,
/// expensive resource). A failpoint is a named site in library code (see
/// failpoint.h for the catalog and the TMERGE_FAILPOINT macro); arming it
/// with a probability makes the site fail on a schedule that is a pure
/// function of (registry seed, failpoint name, caller-supplied key).
///
/// Determinism: decisions are *keyed*, not sequenced. The caller passes a
/// 64-bit key identifying the logical operation (a detection id, a line
/// number, a submit ticket — mixed with the retry attempt where relevant),
/// and the verdict is splitmix64(seed ⊕ H(name) ⊕ key) compared against the
/// armed probability. Because the key is a property of the work item rather
/// than of execution order, the injected fault schedule is bit-identical
/// for every thread count and interleaving — the same guarantee the rest of
/// the pipeline makes (DESIGN.md "Threading model"). A dedicated splitmix64
/// stream (not core::Rng, which sits above this library in the link order)
/// also means arming a failpoint never perturbs any core::Rng sequence: a
/// faulted run and a clean run draw identical model/selector randomness.
///
/// No wall clock anywhere: latency faults report *simulated* seconds for
/// the caller to charge to its cost-model SimClock; nothing here sleeps.
///
/// Concurrency: Arm/Disarm/ShouldFail may race freely. The armed table is
/// guarded by mutex_; the common disarmed path is one relaxed atomic load.
struct FaultSpec {
  /// Probability in [0, 1] that an evaluation of this failpoint fires.
  double probability = 0.0;
  /// Simulated latency penalty (seconds) reported when the failpoint fires
  /// as a latency spike (LatencySpike); ignored by ShouldFail.
  double latency_seconds = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Arms `point` with `spec`. probability is clamped to [0, 1]; a negative
  /// latency is clamped to 0.
  void Arm(const std::string& point, const FaultSpec& spec)
      TMERGE_EXCLUDES(mutex_);

  /// Disarms one failpoint (no-op if not armed).
  void Disarm(const std::string& point) TMERGE_EXCLUDES(mutex_);

  /// Disarms everything and resets fire counts. Seed is kept.
  void Reset() TMERGE_EXCLUDES(mutex_);

  /// Sets the schedule seed. Same seed + same armed specs + same keys =>
  /// the identical fault schedule, which is how a failing run is replayed.
  void SetSeed(std::uint64_t seed);
  std::uint64_t seed() const;

  /// True if any failpoint is armed (one relaxed load; the reason the
  /// macros cost nothing in a clean process).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Deterministic verdict for one evaluation of `point` identified by
  /// `key`. False when the point is not armed. Fires are counted (and
  /// recorded to the obs "fault.injected" counter when obs is enabled).
  bool ShouldFail(std::string_view point, std::uint64_t key)
      TMERGE_EXCLUDES(mutex_);

  /// Latency-spike variant: returns the armed latency_seconds when the
  /// keyed draw fires, 0.0 otherwise. The caller charges the returned
  /// simulated seconds to its own SimClock/meter; the registry never
  /// sleeps or reads a wall clock.
  double LatencySpike(std::string_view point, std::uint64_t key)
      TMERGE_EXCLUDES(mutex_);

  /// Observed fire count of one failpoint since the last Reset.
  std::int64_t fires(std::string_view point) const TMERGE_EXCLUDES(mutex_);

  /// Total fires across all failpoints since the last Reset.
  std::int64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  /// Applies a ;-separated spec string, e.g.
  ///   "reid.embed=0.3;reid.latency=0.1@0.05;io.mot.corrupt_row=0.01"
  /// Each entry is point=probability with an optional @latency_seconds.
  /// Parsing is strict (full-token numbers, probability in [0, 1],
  /// latency >= 0); on any error nothing is armed and an InvalidArgument
  /// status describes the offending entry.
  core::Status ApplySpec(std::string_view spec) TMERGE_EXCLUDES(mutex_);

 private:
  struct Point {
    FaultSpec spec;
    std::int64_t fires = 0;
  };

  /// Looks up the armed spec; returns false when not armed.
  bool Lookup(std::string_view point, FaultSpec& spec) const
      TMERGE_EXCLUDES(mutex_);
  void CountFire(std::string_view point) TMERGE_EXCLUDES(mutex_);

  mutable core::Mutex mutex_;
  std::map<std::string, Point, std::less<>> points_ TMERGE_GUARDED_BY(mutex_);
  std::atomic<int> armed_count_{0};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::int64_t> total_fires_{0};
};

/// The process-wide registry every TMERGE_FAILPOINT site consults.
Registry& GlobalRegistry();

namespace internal {

/// splitmix64 — the keyed-decision mixer. Exposed for tests that verify
/// schedule reproducibility without going through a failpoint site.
std::uint64_t SplitMix64(std::uint64_t x);

/// FNV-1a hash of a failpoint name.
std::uint64_t HashName(std::string_view name);

/// The uniform-in-[0,1) value the (seed, name, key) triple maps to.
double KeyedUniform(std::uint64_t seed, std::string_view name,
                    std::uint64_t key);

}  // namespace internal

}  // namespace tmerge::fault

#endif  // TMERGE_FAULT_REGISTRY_H_
