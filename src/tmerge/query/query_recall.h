#ifndef TMERGE_QUERY_QUERY_RECALL_H_
#define TMERGE_QUERY_QUERY_RECALL_H_

#include "tmerge/metrics/gt_matcher.h"
#include "tmerge/query/cooccurrence_query.h"
#include "tmerge/query/count_query.h"
#include "tmerge/sim/world.h"
#include "tmerge/track/track.h"

namespace tmerge::query {

/// Recall of one query variant: found / expected, with the breakdown.
struct QueryRecall {
  std::int64_t expected = 0;  ///< GT answers.
  std::int64_t found = 0;     ///< GT answers covered by the tracking answer.

  double Value() const {
    return expected > 0 ? static_cast<double>(found) / expected : 1.0;
  }
};

/// Recall of the Count query when evaluated on `result` instead of GT: a
/// GT object that satisfies the predicate counts as found when some track
/// assigned to it (per geometric GT matching) also satisfies it.
QueryRecall CountQueryRecall(const sim::SyntheticVideo& video,
                             const track::TrackingResult& result,
                             const CountQuery& query,
                             const metrics::GtMatchConfig& match_config = {});

/// Recall of the Co-occurring Objects query: a GT triple satisfying the
/// predicate counts as found when some answer triple over `result` maps
/// (via GT matching) onto exactly that GT triple.
QueryRecall CoOccurrenceQueryRecall(
    const sim::SyntheticVideo& video, const track::TrackingResult& result,
    const CoOccurrenceQuery& query,
    const metrics::GtMatchConfig& match_config = {});

}  // namespace tmerge::query

#endif  // TMERGE_QUERY_QUERY_RECALL_H_
