#ifndef TMERGE_QUERY_TRACK_DATABASE_H_
#define TMERGE_QUERY_TRACK_DATABASE_H_

#include <cstdint>
#include <vector>

#include "tmerge/sim/world.h"
#include "tmerge/track/track.h"

namespace tmerge::query {

/// One row of the tracking-metadata relation a video query system ingests:
/// a track's identity and temporal extent. This is the metadata TMerge is
/// designed to clean before queries run (paper §V-H).
struct TrackRecord {
  track::TrackId tid = 0;
  std::int32_t first_frame = 0;
  std::int32_t last_frame = -1;
  std::int32_t observed_boxes = 0;

  /// Frame span (inclusive); the "visibility duration" queries filter on.
  std::int32_t Span() const {
    return last_frame >= first_frame ? last_frame - first_frame + 1 : 0;
  }

  /// Frames of the intersection of this record's span with another's.
  std::int32_t OverlapWith(const TrackRecord& other) const;
};

/// Columnar store of track metadata over one video, queryable by the query
/// operators in this module. Build it from tracker output (raw or merged)
/// or from ground truth (the reference answer).
class TrackDatabase {
 public:
  /// Ingests tracker output.
  explicit TrackDatabase(const track::TrackingResult& result);

  /// Ingests ground truth (TIDs are GT object ids).
  static TrackDatabase FromGroundTruth(const sim::SyntheticVideo& video);

  const std::vector<TrackRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

 private:
  TrackDatabase() = default;
  std::vector<TrackRecord> records_;
};

}  // namespace tmerge::query

#endif  // TMERGE_QUERY_TRACK_DATABASE_H_
