#include "tmerge/query/query_recall.h"

#include <algorithm>
#include <array>
#include <set>
#include <unordered_map>

namespace tmerge::query {
namespace {

// Maps each answer TID to its GT object, dropping unassigned tracks.
std::unordered_map<track::TrackId, sim::GtObjectId> TidToGt(
    const track::TrackingResult& result,
    const metrics::TrackGtAssignment& assignment) {
  std::unordered_map<track::TrackId, sim::GtObjectId> map;
  for (std::size_t i = 0; i < result.tracks.size(); ++i) {
    if (assignment.track_to_gt[i] != sim::kNoObject) {
      map.emplace(result.tracks[i].id, assignment.track_to_gt[i]);
    }
  }
  return map;
}

}  // namespace

QueryRecall CountQueryRecall(const sim::SyntheticVideo& video,
                             const track::TrackingResult& result,
                             const CountQuery& query,
                             const metrics::GtMatchConfig& match_config) {
  // Reference answer over ground truth.
  TrackDatabase gt_db = TrackDatabase::FromGroundTruth(video);
  std::vector<track::TrackId> gt_answer = RunCountQuery(gt_db, query);

  // Answer over the tracking metadata, lifted to GT identities.
  TrackDatabase db(result);
  std::vector<track::TrackId> answer = RunCountQuery(db, query);
  metrics::TrackGtAssignment assignment =
      metrics::MatchTracksToGt(video, result, match_config);
  auto tid_to_gt = TidToGt(result, assignment);
  std::set<sim::GtObjectId> found_gts;
  for (track::TrackId tid : answer) {
    auto it = tid_to_gt.find(tid);
    if (it != tid_to_gt.end()) found_gts.insert(it->second);
  }

  QueryRecall recall;
  recall.expected = static_cast<std::int64_t>(gt_answer.size());
  for (track::TrackId gt : gt_answer) {
    if (found_gts.contains(gt)) ++recall.found;
  }
  return recall;
}

QueryRecall CoOccurrenceQueryRecall(const sim::SyntheticVideo& video,
                                    const track::TrackingResult& result,
                                    const CoOccurrenceQuery& query,
                                    const metrics::GtMatchConfig& match_config) {
  TrackDatabase gt_db = TrackDatabase::FromGroundTruth(video);
  std::vector<CoOccurrence> gt_answer = RunCoOccurrenceQuery(gt_db, query);

  TrackDatabase db(result);
  std::vector<CoOccurrence> answer = RunCoOccurrenceQuery(db, query);
  metrics::TrackGtAssignment assignment =
      metrics::MatchTracksToGt(video, result, match_config);
  auto tid_to_gt = TidToGt(result, assignment);

  // Lift every answer triple to a GT identity triple (distinct ids only).
  std::set<std::array<sim::GtObjectId, 3>> found_triples;
  for (const auto& hit : answer) {
    std::array<sim::GtObjectId, 3> gts{};
    bool valid = true;
    for (std::size_t i = 0; i < 3; ++i) {
      auto it = tid_to_gt.find(hit.tids[i]);
      if (it == tid_to_gt.end()) {
        valid = false;
        break;
      }
      gts[i] = it->second;
    }
    if (!valid) continue;
    std::sort(gts.begin(), gts.end());
    if (gts[0] == gts[1] || gts[1] == gts[2]) continue;
    found_triples.insert(gts);
  }

  QueryRecall recall;
  recall.expected = static_cast<std::int64_t>(gt_answer.size());
  for (const auto& gt_hit : gt_answer) {
    std::array<sim::GtObjectId, 3> gts = {gt_hit.tids[0], gt_hit.tids[1],
                                          gt_hit.tids[2]};
    std::sort(gts.begin(), gts.end());
    if (found_triples.contains(gts)) ++recall.found;
  }
  return recall;
}

}  // namespace tmerge::query
