#include "tmerge/query/count_query.h"

#include <algorithm>

namespace tmerge::query {

std::vector<track::TrackId> RunCountQuery(const TrackDatabase& db,
                                          const CountQuery& query) {
  std::vector<track::TrackId> out;
  for (const auto& record : db.records()) {
    if (record.Span() > query.min_frames) out.push_back(record.tid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tmerge::query
