#ifndef TMERGE_QUERY_COOCCURRENCE_QUERY_H_
#define TMERGE_QUERY_COOCCURRENCE_QUERY_H_

#include <array>
#include <vector>

#include "tmerge/query/track_database.h"

namespace tmerge::query {

/// The paper's *Co-occurring Objects* query (§V-H): video clips longer
/// than `min_frames` in which the same `group_size` objects appear
/// jointly. group_size is fixed at 3 as in the paper's experiment.
struct CoOccurrenceQuery {
  std::int32_t min_frames = 50;
};

/// One query answer: three distinct TIDs (ascending) jointly visible on
/// [start_frame, end_frame].
struct CoOccurrence {
  std::array<track::TrackId, 3> tids{};
  std::int32_t start_frame = 0;
  std::int32_t end_frame = 0;

  std::int32_t Length() const { return end_frame - start_frame + 1; }

  friend bool operator==(const CoOccurrence&, const CoOccurrence&) = default;
};

/// Evaluates the query: all triples of tracks whose spans share an
/// interval longer than `min_frames`. Triples are enumerated over the
/// pairwise-overlap graph, so sparse scenes stay cheap. Sorted by TIDs.
std::vector<CoOccurrence> RunCoOccurrenceQuery(const TrackDatabase& db,
                                               const CoOccurrenceQuery& query);

}  // namespace tmerge::query

#endif  // TMERGE_QUERY_COOCCURRENCE_QUERY_H_
