#ifndef TMERGE_QUERY_COUNT_QUERY_H_
#define TMERGE_QUERY_COUNT_QUERY_H_

#include <vector>

#include "tmerge/query/track_database.h"

namespace tmerge::query {

/// The paper's *Count* query (§V-H): objects (individual tracks) visible
/// across more than `min_frames` frames — e.g. "find cars/persons visible
/// longer than a certain period". Fragmentation splits long tracks into
/// short ones that fail the predicate, which is exactly the recall loss
/// TMerge repairs.
struct CountQuery {
  std::int32_t min_frames = 200;
};

/// Evaluates the Count query: TIDs of tracks whose span exceeds the
/// threshold, sorted ascending.
std::vector<track::TrackId> RunCountQuery(const TrackDatabase& db,
                                          const CountQuery& query);

}  // namespace tmerge::query

#endif  // TMERGE_QUERY_COUNT_QUERY_H_
