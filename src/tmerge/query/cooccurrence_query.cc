#include "tmerge/query/cooccurrence_query.h"

#include <algorithm>

namespace tmerge::query {

std::vector<CoOccurrence> RunCoOccurrenceQuery(const TrackDatabase& db,
                                               const CoOccurrenceQuery& query) {
  const auto& records = db.records();
  const std::size_t n = records.size();

  // Adjacency over pairs with sufficient span overlap; triples are then
  // triangles of this graph, pruning the O(n^3) enumeration hard.
  std::vector<std::vector<std::size_t>> adjacent(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (records[i].OverlapWith(records[j]) > query.min_frames) {
        adjacent[i].push_back(j);
      }
    }
  }

  std::vector<CoOccurrence> out;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < adjacent[i].size(); ++a) {
      std::size_t j = adjacent[i][a];
      for (std::size_t b = a + 1; b < adjacent[i].size(); ++b) {
        std::size_t k = adjacent[i][b];
        // Joint interval of the triple.
        std::int32_t start = std::max({records[i].first_frame,
                                       records[j].first_frame,
                                       records[k].first_frame});
        std::int32_t end = std::min({records[i].last_frame,
                                     records[j].last_frame,
                                     records[k].last_frame});
        if (end - start + 1 <= query.min_frames) continue;
        CoOccurrence hit;
        hit.tids = {records[i].tid, records[j].tid, records[k].tid};
        std::sort(hit.tids.begin(), hit.tids.end());
        hit.start_frame = start;
        hit.end_frame = end;
        out.push_back(hit);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CoOccurrence& x, const CoOccurrence& y) {
              return x.tids < y.tids;
            });
  return out;
}

}  // namespace tmerge::query
