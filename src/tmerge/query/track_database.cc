#include "tmerge/query/track_database.h"

#include <algorithm>

namespace tmerge::query {

std::int32_t TrackRecord::OverlapWith(const TrackRecord& other) const {
  std::int32_t lo = std::max(first_frame, other.first_frame);
  std::int32_t hi = std::min(last_frame, other.last_frame);
  return hi >= lo ? hi - lo + 1 : 0;
}

TrackDatabase::TrackDatabase(const track::TrackingResult& result) {
  records_.reserve(result.tracks.size());
  for (const auto& track : result.tracks) {
    if (track.boxes.empty()) continue;
    TrackRecord record;
    record.tid = track.id;
    record.first_frame = track.first_frame();
    record.last_frame = track.last_frame();
    record.observed_boxes = track.size();
    records_.push_back(record);
  }
}

TrackDatabase TrackDatabase::FromGroundTruth(const sim::SyntheticVideo& video) {
  TrackDatabase db;
  db.records_.reserve(video.tracks.size());
  for (const auto& track : video.tracks) {
    if (track.boxes.empty()) continue;
    TrackRecord record;
    record.tid = track.id;
    record.first_frame = track.first_frame();
    record.last_frame = track.last_frame();
    record.observed_boxes = track.length();
    db.records_.push_back(record);
  }
  return db;
}

}  // namespace tmerge::query
