#include "tmerge/sim/video_generator.h"

#include <algorithm>
#include <cmath>

#include "tmerge/core/status.h"

namespace tmerge::sim {
namespace {

// Spawns one ground-truth track starting at `birth_frame`, simulating motion
// until its sampled lifetime or the end of the video.
GroundTruthTrack SpawnTrack(const VideoConfig& config, GtObjectId id,
                            std::int32_t birth_frame,
                            const AppearanceSpace& appearance_space,
                            const MotionModel& motion, core::Rng& rng) {
  GroundTruthTrack track;
  track.id = id;
  track.object_class = config.object_class;

  double u = rng.Uniform01();
  auto length = static_cast<std::int32_t>(
      config.min_track_length +
      (config.max_track_length - config.min_track_length) *
          std::pow(u, config.track_length_shape));
  std::int32_t death_frame =
      std::min(birth_frame + length - 1, config.num_frames - 1);

  double width = rng.Uniform(config.min_box_width, config.max_box_width);
  double height = width * config.box_aspect;
  MotionState state;
  state.box.width = width;
  state.box.height = height;
  state.box.x = rng.Uniform(0.0, std::max(1.0, config.frame_width - width));
  state.box.y = rng.Uniform(0.0, std::max(1.0, config.frame_height - height));
  // Appearance depends on the spawn location (see AppearanceSpaceConfig::
  // spatial_coherence): nearby objects tend to look alike.
  track.appearance = appearance_space.SampleObjectAt(
      state.box.x / config.frame_width, state.box.y / config.frame_height,
      rng);
  double angle = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
  double speed = config.initial_speed * rng.Uniform(0.5, 1.5);
  state.vx = speed * std::cos(angle);
  state.vy = speed * std::sin(angle);

  track.boxes.reserve(death_frame - birth_frame + 1);
  for (std::int32_t frame = birth_frame; frame <= death_frame; ++frame) {
    GroundTruthBox gt_box;
    gt_box.frame = frame;
    gt_box.box = state.box;
    track.boxes.push_back(gt_box);
    motion.Step(state, rng);
  }
  return track;
}

// Marks per-frame visibility from static occluders and (optionally) mutual
// object occlusion, and flags glare.
void AnnotateVisibility(const VideoConfig& config, SyntheticVideo& video) {
  // Index tracks by frame for the pairwise pass.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_frame(
      video.num_frames);  // (track index, box index within track)
  for (std::size_t t = 0; t < video.tracks.size(); ++t) {
    const auto& track = video.tracks[t];
    for (std::size_t b = 0; b < track.boxes.size(); ++b) {
      std::int32_t frame = track.boxes[b].frame;
      TMERGE_CHECK(frame >= 0 && frame < video.num_frames);
      by_frame[frame].emplace_back(t, b);
    }
  }

  for (std::int32_t frame = 0; frame < video.num_frames; ++frame) {
    const auto& entries = by_frame[frame];
    for (const auto& [t, b] : entries) {
      GroundTruthBox& gt_box = video.tracks[t].boxes[b];
      double occlusion = 0.0;
      for (const auto& occluder : video.occluders) {
        occlusion = std::max(
            occlusion, core::CoverageFraction(gt_box.box, occluder.region));
      }
      if (config.object_occlusion) {
        for (const auto& [t2, b2] : entries) {
          if (t2 == t) continue;
          const core::BoundingBox& other = video.tracks[t2].boxes[b2].box;
          // The object whose box reaches lower in the frame is nearer to a
          // typical elevated camera and occludes the other.
          if (other.Bottom() > gt_box.box.Bottom()) {
            occlusion =
                std::max(occlusion, core::CoverageFraction(gt_box.box, other));
          }
        }
      }
      gt_box.visibility = std::clamp(1.0 - occlusion, 0.0, 1.0);
      for (const auto& glare : video.glare_events) {
        if (frame >= glare.start_frame && frame <= glare.end_frame) {
          core::Point center = gt_box.box.Center();
          const core::BoundingBox& r = glare.region;
          if (center.x >= r.x && center.x <= r.Right() && center.y >= r.y &&
              center.y <= r.Bottom()) {
            gt_box.glared = true;
          }
        }
      }
    }
  }
}

}  // namespace

SyntheticVideo GenerateVideo(const VideoConfig& config, std::uint64_t seed) {
  TMERGE_CHECK(config.num_frames > 0);
  TMERGE_CHECK(config.min_track_length > 0);
  TMERGE_CHECK(config.min_track_length <= config.max_track_length);

  core::Rng rng(seed);
  SyntheticVideo video;
  video.name = config.name;
  video.num_frames = config.num_frames;
  video.frame_width = config.frame_width;
  video.frame_height = config.frame_height;
  video.fps = config.fps;

  AppearanceSpace appearance_space(config.appearance, rng);
  MotionConfig motion_config = config.motion;
  motion_config.frame_width = config.frame_width;
  motion_config.frame_height = config.frame_height;
  MotionModel motion(motion_config);

  for (std::int32_t i = 0; i < config.num_occluders; ++i) {
    Occluder occluder;
    double w = rng.Uniform(config.occluder_min_size, config.occluder_max_size);
    double h = rng.Uniform(config.occluder_min_size, config.occluder_max_size);
    occluder.region = {rng.Uniform(0.0, std::max(1.0, config.frame_width - w)),
                       rng.Uniform(0.0, std::max(1.0, config.frame_height - h)),
                       w, h};
    video.occluders.push_back(occluder);
  }

  for (std::int32_t frame = 0; frame < config.num_frames; ++frame) {
    double u = rng.Uniform01();
    if (u < config.glare_rate) {
      GlareEvent glare;
      glare.start_frame = frame;
      glare.end_frame = std::min<std::int32_t>(
          config.num_frames - 1,
          frame + static_cast<std::int32_t>(rng.UniformInt(
                      config.glare_min_length, config.glare_max_length)));
      if (rng.Bernoulli(config.glare_full_frame_prob)) {
        glare.region = {0.0, 0.0, config.frame_width, config.frame_height};
      } else {
        double w = rng.Uniform(config.frame_width * 0.2, config.frame_width * 0.6);
        double h =
            rng.Uniform(config.frame_height * 0.2, config.frame_height * 0.6);
        glare.region = {rng.Uniform(0.0, config.frame_width - w),
                        rng.Uniform(0.0, config.frame_height - h), w, h};
      }
      video.glare_events.push_back(glare);
    }
  }

  GtObjectId next_id = 0;
  for (std::int32_t i = 0; i < config.initial_objects; ++i) {
    video.tracks.push_back(
        SpawnTrack(config, next_id++, 0, appearance_space, motion, rng));
  }
  for (std::int32_t frame = 1; frame < config.num_frames; ++frame) {
    int arrivals = rng.Poisson(config.spawn_rate);
    for (int a = 0; a < arrivals; ++a) {
      // Skip spawns too close to the end to form a meaningful track.
      if (config.num_frames - frame < config.min_track_length / 2) break;
      video.tracks.push_back(
          SpawnTrack(config, next_id++, frame, appearance_space, motion, rng));
    }
  }

  AnnotateVisibility(config, video);
  return video;
}

}  // namespace tmerge::sim
