#ifndef TMERGE_SIM_VIDEO_GENERATOR_H_
#define TMERGE_SIM_VIDEO_GENERATOR_H_

#include <cstdint>
#include <string>

#include "tmerge/sim/motion.h"
#include "tmerge/sim/world.h"

namespace tmerge::sim {

/// All knobs of the synthetic scene. Dataset profiles (sim/dataset.h)
/// provide presets mimicking the statistics of MOT-17, KITTI and PathTrack.
struct VideoConfig {
  std::string name = "synthetic";
  std::int32_t num_frames = 800;
  double frame_width = 1920.0;
  double frame_height = 1080.0;
  double fps = 30.0;
  ObjectClass object_class = ObjectClass::kPedestrian;

  /// Objects present at frame 0.
  std::int32_t initial_objects = 12;
  /// Expected new objects per frame (Poisson arrivals).
  double spawn_rate = 0.05;
  /// Track length bounds in frames. `max_track_length` is the paper's
  /// L_max: no GT track spans more frames, which the windowing scheme
  /// relies on (L >= 2 * L_max).
  std::int32_t min_track_length = 60;
  std::int32_t max_track_length = 400;
  /// Shape of the track-length distribution: length = min + (max - min) *
  /// u^shape for u ~ U[0,1). 1 is uniform; larger values skew short while
  /// keeping the max (PathTrack-like: many short tracks, a 1000-frame cap).
  double track_length_shape = 1.0;

  /// Object geometry: width uniform in [min, max], height = width * aspect.
  double min_box_width = 40.0;
  double max_box_width = 90.0;
  double box_aspect = 2.4;
  /// Initial speed magnitude in pixels/frame.
  double initial_speed = 2.5;
  MotionConfig motion;

  /// Static foreground occluders (pillars, parked vehicles).
  std::int32_t num_occluders = 3;
  double occluder_min_size = 90.0;
  double occluder_max_size = 240.0;
  /// Whether objects occlude each other (nearer object wins; "nearer" =
  /// larger bottom edge, the usual surveillance-camera depth cue).
  bool object_occlusion = true;

  /// Expected glare events per frame; each suppresses detections in a
  /// region for a bounded duration.
  double glare_rate = 0.002;
  std::int32_t glare_min_length = 10;
  std::int32_t glare_max_length = 40;
  /// Probability that a glare event covers the whole frame.
  double glare_full_frame_prob = 0.2;

  AppearanceSpaceConfig appearance;
};

/// Generates a SyntheticVideo from a config and seed. Deterministic: the
/// same (config, seed) yields the same video.
SyntheticVideo GenerateVideo(const VideoConfig& config, std::uint64_t seed);

}  // namespace tmerge::sim

#endif  // TMERGE_SIM_VIDEO_GENERATOR_H_
