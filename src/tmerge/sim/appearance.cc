#include "tmerge/sim/appearance.h"

#include <cmath>

#include "tmerge/core/status.h"

namespace tmerge::sim {

double SquaredDistance(const AppearanceVector& a, const AppearanceVector& b) {
  TMERGE_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(const AppearanceVector& a, const AppearanceVector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

AppearanceSpace::AppearanceSpace(const AppearanceSpaceConfig& config,
                                 core::Rng& rng)
    : config_(config) {
  TMERGE_CHECK(config.dim > 0);
  TMERGE_CHECK(config.num_clusters > 0);
  cluster_centers_.reserve(config_.num_clusters);
  cluster_anchors_.reserve(config_.num_clusters);
  for (std::size_t c = 0; c < config_.num_clusters; ++c) {
    AppearanceVector center(config_.dim);
    for (auto& v : center) v = rng.Normal(0.0, config_.cluster_scale);
    cluster_centers_.push_back(std::move(center));
    cluster_anchors_.push_back({rng.Uniform01(), rng.Uniform01()});
  }
}

AppearanceVector AppearanceSpace::SampleFromCluster(std::size_t cluster,
                                                    core::Rng& rng) const {
  const AppearanceVector& center = cluster_centers_[cluster];
  AppearanceVector out(config_.dim);
  for (std::size_t i = 0; i < config_.dim; ++i) {
    out[i] = center[i] + rng.Normal(0.0, config_.within_cluster_scale);
  }
  return out;
}

AppearanceVector AppearanceSpace::SampleObject(core::Rng& rng) const {
  return SampleFromCluster(rng.Index(cluster_centers_.size()), rng);
}

AppearanceVector AppearanceSpace::SampleObjectAt(double x, double y,
                                                 core::Rng& rng) const {
  if (!rng.Bernoulli(config_.spatial_coherence)) return SampleObject(rng);
  // Draw the cluster with probability proportional to a Gaussian kernel of
  // the anchor distance.
  double bandwidth = std::max(1e-3, config_.anchor_bandwidth);
  std::vector<double> weights(cluster_anchors_.size());
  double total = 0.0;
  for (std::size_t c = 0; c < cluster_anchors_.size(); ++c) {
    double dx = x - cluster_anchors_[c].x;
    double dy = y - cluster_anchors_[c].y;
    weights[c] = std::exp(-(dx * dx + dy * dy) / (2.0 * bandwidth * bandwidth));
    total += weights[c];
  }
  double pick = rng.Uniform(0.0, total);
  std::size_t cluster = cluster_anchors_.size() - 1;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    if (pick < weights[c]) {
      cluster = c;
      break;
    }
    pick -= weights[c];
  }
  return SampleFromCluster(cluster, rng);
}

AppearanceVector AppearanceSpace::SampleBackground(core::Rng& rng) const {
  AppearanceVector out(config_.dim);
  for (auto& v : out) {
    v = rng.Normal(0.0, config_.cluster_scale + config_.within_cluster_scale);
  }
  return out;
}

}  // namespace tmerge::sim
