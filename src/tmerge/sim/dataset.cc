#include "tmerge/sim/dataset.h"

#include "tmerge/core/rng.h"
#include "tmerge/core/status.h"

namespace tmerge::sim {

const char* DatasetProfileName(DatasetProfile profile) {
  switch (profile) {
    case DatasetProfile::kMot17Like:
      return "MOT-17";
    case DatasetProfile::kKittiLike:
      return "KITTI";
    case DatasetProfile::kPathTrackLike:
      return "PathTrack";
  }
  return "unknown";
}

VideoConfig ProfileConfig(DatasetProfile profile) {
  VideoConfig config;
  switch (profile) {
    case DatasetProfile::kMot17Like:
      config.name = "mot17like";
      config.num_frames = 900;
      config.frame_width = 1920.0;
      config.frame_height = 1080.0;
      config.object_class = ObjectClass::kPedestrian;
      config.initial_objects = 7;
      config.spawn_rate = 0.018;
      config.min_track_length = 100;
      config.max_track_length = 650;
      config.min_box_width = 45.0;
      config.max_box_width = 95.0;
      config.box_aspect = 2.4;
      config.initial_speed = 2.5;
      config.num_occluders = 2;
      config.occluder_min_size = 80.0;
      config.occluder_max_size = 170.0;
      config.glare_rate = 0.0015;
      break;
    case DatasetProfile::kKittiLike:
      config.name = "kittilike";
      config.num_frames = 420;
      config.frame_width = 1242.0;
      config.frame_height = 375.0;
      config.object_class = ObjectClass::kPedestrian;
      config.initial_objects = 5;
      config.spawn_rate = 0.04;
      config.min_track_length = 40;
      config.max_track_length = 200;
      config.min_box_width = 30.0;
      config.max_box_width = 60.0;
      config.box_aspect = 2.2;
      config.initial_speed = 4.0;  // Ego-motion makes pedestrians sweep fast.
      config.num_occluders = 3;
      config.occluder_min_size = 60.0;
      config.occluder_max_size = 160.0;
      config.glare_rate = 0.004;  // Sun glare is common in driving scenes.
      config.glare_full_frame_prob = 0.4;
      break;
    case DatasetProfile::kPathTrackLike:
      config.name = "pathtracklike";
      config.num_frames = 3600;  // ~2 minutes at 30 fps.
      config.frame_width = 1280.0;
      config.frame_height = 720.0;
      config.object_class = ObjectClass::kPedestrian;
      config.initial_objects = 4;
      config.spawn_rate = 0.012;
      config.min_track_length = 60;
      // The PathTrack annotations cap GT tracks around 1000 frames; this is
      // the L_max the paper's Fig. 9 discussion relies on.
      config.max_track_length = 1000;
      config.track_length_shape = 3.0;
      config.min_box_width = 35.0;
      config.max_box_width = 80.0;
      config.box_aspect = 2.3;
      config.initial_speed = 2.0;
      config.num_occluders = 4;
      config.glare_rate = 0.002;
      break;
  }
  return config;
}

Dataset MakeDataset(DatasetProfile profile, std::int32_t num_videos,
                    std::uint64_t seed) {
  TMERGE_CHECK(num_videos > 0);
  Dataset dataset;
  dataset.profile = profile;
  dataset.name = DatasetProfileName(profile);
  dataset.videos.reserve(num_videos);
  core::Rng rng(seed ^ 0xD5DA7A5E7ULL);
  for (std::int32_t i = 0; i < num_videos; ++i) {
    VideoConfig config = ProfileConfig(profile);
    config.name += "_" + std::to_string(i);
    // Vary scene density across videos to emulate distinct scenes.
    config.initial_objects += static_cast<std::int32_t>(rng.UniformInt(-2, 3));
    if (config.initial_objects < 2) config.initial_objects = 2;
    config.spawn_rate *= rng.Uniform(0.8, 1.25);
    config.num_occluders += static_cast<std::int32_t>(rng.UniformInt(-1, 1));
    if (config.num_occluders < 1) config.num_occluders = 1;
    dataset.videos.push_back(GenerateVideo(config, seed + 1000 + i));
  }
  return dataset;
}

}  // namespace tmerge::sim
