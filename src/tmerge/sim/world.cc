#include "tmerge/sim/world.h"

#include <algorithm>

namespace tmerge::sim {

const char* ObjectClassName(ObjectClass object_class) {
  switch (object_class) {
    case ObjectClass::kPedestrian:
      return "pedestrian";
    case ObjectClass::kVehicle:
      return "vehicle";
  }
  return "unknown";
}

std::int64_t SyntheticVideo::TotalBoxes() const {
  std::int64_t total = 0;
  for (const auto& track : tracks) total += track.length();
  return total;
}

std::vector<std::size_t> SyntheticVideo::TracksInFrame(
    std::int32_t frame) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i].first_frame() <= frame && frame <= tracks[i].last_frame()) {
      out.push_back(i);
    }
  }
  return out;
}

SyntheticVideo TruncateVideo(const SyntheticVideo& video,
                             std::int32_t num_frames) {
  SyntheticVideo out = video;
  out.num_frames = num_frames;
  out.tracks.clear();
  for (const auto& track : video.tracks) {
    if (track.first_frame() >= num_frames) continue;
    GroundTruthTrack copy = track;
    while (!copy.boxes.empty() && copy.boxes.back().frame >= num_frames) {
      copy.boxes.pop_back();
    }
    if (!copy.boxes.empty()) out.tracks.push_back(std::move(copy));
  }
  out.glare_events.clear();
  for (const auto& glare : video.glare_events) {
    if (glare.start_frame >= num_frames) continue;
    GlareEvent copy = glare;
    copy.end_frame = std::min(copy.end_frame, num_frames - 1);
    out.glare_events.push_back(copy);
  }
  return out;
}

}  // namespace tmerge::sim
