#ifndef TMERGE_SIM_DATASET_H_
#define TMERGE_SIM_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tmerge/sim/video_generator.h"
#include "tmerge/sim/world.h"

namespace tmerge::sim {

/// Synthetic analogue of one of the paper's benchmark datasets (§V-A).
/// Each profile produces VideoConfigs whose statistics (video length, object
/// density, track length, occlusion pressure) mimic the real dataset the
/// paper evaluated on. See DESIGN.md §1 for the substitution rationale.
enum class DatasetProfile : std::uint8_t {
  /// MOT-17-like: ~800-frame pedestrian scenes, dense crowds, heavy mutual
  /// occlusion. The paper treats each whole video as one window.
  kMot17Like = 0,
  /// KITTI-like: short driving scenes, wide/short frames, sparse
  /// pedestrians moving quickly through the field of view.
  kKittiLike = 1,
  /// PathTrack-like: ~2-minute YouTube-style videos with many tracks; used
  /// with overlapping windows of length L (default 2000).
  kPathTrackLike = 2,
};

/// Returns "MOT-17", "KITTI", or "PathTrack" (the dataset each profile
/// emulates).
const char* DatasetProfileName(DatasetProfile profile);

/// A collection of synthetic videos sharing a profile.
struct Dataset {
  std::string name;
  DatasetProfile profile = DatasetProfile::kMot17Like;
  std::vector<SyntheticVideo> videos;
};

/// Returns the base VideoConfig for a profile; callers may tweak fields
/// (e.g. num_frames for scaling studies) before calling GenerateVideo.
VideoConfig ProfileConfig(DatasetProfile profile);

/// Generates `num_videos` videos of the given profile. Video i uses seed
/// `seed + i` and varies scene density slightly to emulate distinct scenes.
Dataset MakeDataset(DatasetProfile profile, std::int32_t num_videos,
                    std::uint64_t seed);

}  // namespace tmerge::sim

#endif  // TMERGE_SIM_DATASET_H_
