#ifndef TMERGE_SIM_WORLD_H_
#define TMERGE_SIM_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tmerge/core/geometry.h"
#include "tmerge/sim/appearance.h"

namespace tmerge::sim {

/// Identifier of a ground-truth (GT) object; unique within one video.
using GtObjectId = std::int32_t;

/// Sentinel GT id for detections that correspond to no real object
/// (false positives).
inline constexpr GtObjectId kNoObject = -1;

/// Coarse object category; queries and trackers may filter on it.
enum class ObjectClass : std::uint8_t {
  kPedestrian = 0,
  kVehicle = 1,
};

/// Returns "pedestrian" / "vehicle".
const char* ObjectClassName(ObjectClass object_class);

/// One ground-truth observation of an object in one frame.
struct GroundTruthBox {
  std::int32_t frame = 0;
  core::BoundingBox box;
  /// Fraction of the object that is unobstructed, in [0, 1]. Occluders and
  /// other objects reduce it; the detection simulator drops detections when
  /// visibility falls below its threshold.
  double visibility = 1.0;
  /// True when a glare event covers the object in this frame (detections
  /// become unreliable regardless of geometric visibility).
  bool glared = false;
};

/// A complete ground-truth track: one physical object across consecutive
/// frames. This is the paper's "GT track"; the tracker's fragments of it are
/// the polyonymous tracks TMerge must re-associate.
struct GroundTruthTrack {
  GtObjectId id = 0;
  ObjectClass object_class = ObjectClass::kPedestrian;
  /// Latent appearance observed (noisily) by the synthetic ReID model.
  AppearanceVector appearance;
  /// Observations on consecutive frames [first_frame(), last_frame()].
  std::vector<GroundTruthBox> boxes;

  std::int32_t first_frame() const {
    return boxes.empty() ? 0 : boxes.front().frame;
  }
  std::int32_t last_frame() const {
    return boxes.empty() ? -1 : boxes.back().frame;
  }
  /// Number of frames the object is present.
  std::int32_t length() const { return static_cast<std::int32_t>(boxes.size()); }
};

/// A static occluder: a foreground rectangle (pillar, parked truck, tree)
/// that hides whatever passes behind it.
struct Occluder {
  core::BoundingBox region;
};

/// A transient glare event: within [start_frame, end_frame] detections
/// inside `region` are suppressed with high probability.
struct GlareEvent {
  std::int32_t start_frame = 0;
  std::int32_t end_frame = 0;
  core::BoundingBox region;
};

/// A synthetic video: frame geometry plus the full ground truth. There are
/// no pixels — downstream components consume only metadata, exactly the
/// inputs the paper's algorithms observe (BBoxes and ReID features).
struct SyntheticVideo {
  std::string name;
  std::int32_t num_frames = 0;
  double frame_width = 1920.0;
  double frame_height = 1080.0;
  double fps = 30.0;
  std::vector<GroundTruthTrack> tracks;
  std::vector<Occluder> occluders;
  std::vector<GlareEvent> glare_events;

  /// Total GT boxes across all tracks.
  std::int64_t TotalBoxes() const;

  /// Returns indices into `tracks` of objects present in `frame`.
  std::vector<std::size_t> TracksInFrame(std::int32_t frame) const;
};

/// Returns the prefix of `video` covering frames [0, num_frames): tracks
/// are truncated at the boundary and tracks starting later are dropped.
/// Used by scaling studies that process one growing video (paper Fig. 4).
SyntheticVideo TruncateVideo(const SyntheticVideo& video,
                             std::int32_t num_frames);

}  // namespace tmerge::sim

#endif  // TMERGE_SIM_WORLD_H_
