#ifndef TMERGE_SIM_MOTION_H_
#define TMERGE_SIM_MOTION_H_

#include "tmerge/core/geometry.h"
#include "tmerge/core/rng.h"

namespace tmerge::sim {

/// Kinematic state of one simulated object: top-left-anchored box plus
/// per-frame velocity in pixels.
struct MotionState {
  core::BoundingBox box;
  double vx = 0.0;  ///< Horizontal velocity, pixels/frame.
  double vy = 0.0;  ///< Vertical velocity, pixels/frame.
};

/// Parameters of the near-constant-velocity motion model.
struct MotionConfig {
  /// Per-frame standard deviation of random acceleration (pixels/frame^2).
  double accel_stddev = 0.15;
  /// Maximum speed magnitude per axis (pixels/frame).
  double max_speed = 8.0;
  /// Per-frame relative size drift stddev (models approach/recede scaling).
  double size_drift_stddev = 0.002;
  /// Frame bounds used for boundary reflection.
  double frame_width = 1920.0;
  double frame_height = 1080.0;
  /// If true, objects bounce off frame edges; if false they may exit (their
  /// track then ends when fully outside).
  bool reflect_at_edges = true;
};

/// Near-constant-velocity motion with small random acceleration, bounded
/// speed, mild size drift, and optional boundary reflection. This matches
/// the assumption under which SORT-style Kalman trackers work well, so
/// tracking errors in the reproduction come from *detection gaps*
/// (occlusion/glare) rather than from an adversarial motion model — the
/// same failure mode the paper attributes fragmentation to.
class MotionModel {
 public:
  explicit MotionModel(const MotionConfig& config) : config_(config) {}

  /// Advances `state` by one frame.
  void Step(MotionState& state, core::Rng& rng) const;

  const MotionConfig& config() const { return config_; }

 private:
  MotionConfig config_;
};

}  // namespace tmerge::sim

#endif  // TMERGE_SIM_MOTION_H_
