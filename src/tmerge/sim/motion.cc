#include "tmerge/sim/motion.h"

#include <algorithm>
#include <cmath>

namespace tmerge::sim {

void MotionModel::Step(MotionState& state, core::Rng& rng) const {
  state.vx += rng.Normal(0.0, config_.accel_stddev);
  state.vy += rng.Normal(0.0, config_.accel_stddev);
  state.vx = std::clamp(state.vx, -config_.max_speed, config_.max_speed);
  state.vy = std::clamp(state.vy, -config_.max_speed, config_.max_speed);

  state.box.x += state.vx;
  state.box.y += state.vy;

  double scale = std::exp(rng.Normal(0.0, config_.size_drift_stddev));
  // Scale about the box center so drift does not translate the object.
  double cx = state.box.x + state.box.width / 2.0;
  double cy = state.box.y + state.box.height / 2.0;
  state.box.width *= scale;
  state.box.height *= scale;
  state.box.x = cx - state.box.width / 2.0;
  state.box.y = cy - state.box.height / 2.0;

  if (config_.reflect_at_edges) {
    if (state.box.x < 0.0) {
      state.box.x = 0.0;
      state.vx = std::abs(state.vx);
    }
    if (state.box.Right() > config_.frame_width) {
      state.box.x = config_.frame_width - state.box.width;
      state.vx = -std::abs(state.vx);
    }
    if (state.box.y < 0.0) {
      state.box.y = 0.0;
      state.vy = std::abs(state.vy);
    }
    if (state.box.Bottom() > config_.frame_height) {
      state.box.y = config_.frame_height - state.box.height;
      state.vy = -std::abs(state.vy);
    }
  }
}

}  // namespace tmerge::sim
