#ifndef TMERGE_SIM_APPEARANCE_H_
#define TMERGE_SIM_APPEARANCE_H_

#include <cstddef>
#include <vector>

#include "tmerge/core/geometry.h"
#include "tmerge/core/rng.h"

namespace tmerge::sim {

/// Latent appearance of a ground-truth object: a point in a D-dimensional
/// feature space. The synthetic ReID model (reid/synthetic_reid_model.h)
/// observes this vector plus noise, mirroring how a trained ReID embedder
/// maps same-object crops to nearby vectors.
using AppearanceVector = std::vector<double>;

/// Squared Euclidean distance between two appearance vectors of equal size.
double SquaredDistance(const AppearanceVector& a, const AppearanceVector& b);

/// Euclidean distance between two appearance vectors of equal size.
double EuclideanDistance(const AppearanceVector& a, const AppearanceVector& b);

/// Configuration for the latent appearance space.
struct AppearanceSpaceConfig {
  /// Dimensionality of the latent space.
  std::size_t dim = 16;
  /// Number of appearance clusters ("red sedan", "dark coat", ...). Objects
  /// in the same cluster are hard negatives for ReID-based merging.
  std::size_t num_clusters = 20;
  /// Standard deviation of cluster centers around the origin.
  double cluster_scale = 1.0;
  /// Standard deviation of objects around their cluster center. Smaller
  /// values make distinct same-cluster objects harder to tell apart.
  double within_cluster_scale = 0.45;
  /// Spatial coherence of appearance: each cluster is anchored somewhere
  /// in the scene, and objects spawning nearby are more likely to belong
  /// to it (groups walking together, region lighting). This is what gives
  /// track-pair scores their positive correlation with spatial distance —
  /// the signal BetaInit exploits (paper SIV-C: Pearson r >= 0.3).
  /// 0 disables (location-independent appearance); 1 = fully anchored.
  double spatial_coherence = 0.6;
  /// Kernel width of the anchor attraction, as a fraction of the scene
  /// diagonal.
  double anchor_bandwidth = 0.22;
};

/// Generates latent appearance vectors for ground-truth objects. Clusters
/// model visually-similar object populations so that a fraction of
/// non-polyonymous track pairs have genuinely low ReID distance — the "hard
/// pairs" that require more sampling iterations in the paper's Fig. 7
/// discussion.
class AppearanceSpace {
 public:
  /// Creates the space with `config`, drawing cluster centers from `rng`.
  AppearanceSpace(const AppearanceSpaceConfig& config, core::Rng& rng);

  /// Samples the latent appearance for a new object with no location
  /// information (cluster chosen uniformly).
  AppearanceVector SampleObject(core::Rng& rng) const;

  /// Samples the latent appearance for an object spawning at normalized
  /// scene coordinates (x, y) in [0, 1]^2: with probability
  /// `spatial_coherence` the cluster is drawn by proximity to the cluster
  /// anchors, otherwise uniformly.
  AppearanceVector SampleObjectAt(double x, double y, core::Rng& rng) const;

  /// Samples a latent appearance unrelated to any cluster; used for false
  /// positive detections.
  AppearanceVector SampleBackground(core::Rng& rng) const;

  std::size_t dim() const { return config_.dim; }

 private:
  AppearanceVector SampleFromCluster(std::size_t cluster,
                                     core::Rng& rng) const;

  AppearanceSpaceConfig config_;
  std::vector<AppearanceVector> cluster_centers_;
  /// Normalized scene anchor of each cluster.
  std::vector<core::Point> cluster_anchors_;
};

}  // namespace tmerge::sim

#endif  // TMERGE_SIM_APPEARANCE_H_
