#include "tmerge/gate/pair_gate.h"

#include <algorithm>
#include <cstddef>

#include "tmerge/core/geometry.h"
#include "tmerge/track/track.h"

namespace tmerge::gate {
namespace {

/// Pixels/frame along each axis.
struct Velocity {
  double vx = 0.0;
  double vy = 0.0;
};

/// Endpoint-slope velocity estimate over the last up-to-`window` boxes of
/// `track`: (last center - first-of-window center) / frames between them.
/// Single-box tracks report zero velocity (extrapolation degenerates to
/// "the box stays put", which is the honest prior with one observation).
Velocity EstimateVelocity(const track::Track& track, std::int32_t window) {
  const std::size_t n = track.boxes.size();
  if (n < 2 || window < 2) return {0.0, 0.0};
  const std::size_t span = std::min<std::size_t>(
      n, static_cast<std::size_t>(window));
  const track::TrackedBox& first = track.boxes[n - span];
  const track::TrackedBox& last = track.boxes[n - 1];
  const std::int32_t frames = last.frame - first.frame;
  if (frames <= 0) return {0.0, 0.0};
  core::Point a = first.box.Center();
  core::Point b = last.box.Center();
  return {(b.x - a.x) / frames, (b.y - a.y) / frames};
}

}  // namespace

GateEvidence ComputeEvidence(const merge::PairContext& context,
                             std::size_t index,
                             const GateConfig& config) {
  const track::Track& a = context.TrackA(index);
  const track::Track& b = context.TrackB(index);
  // Temporal order, matching PairContext::SpatialDistance's convention.
  const track::Track& earlier = a.last_frame() <= b.last_frame() ? a : b;
  const track::Track& later = a.last_frame() <= b.last_frame() ? b : a;

  GateEvidence evidence;
  evidence.gap_frames = context.TemporalGap(index);
  evidence.spatial_distance = context.SpatialDistance(index);

  const track::TrackedBox& from = earlier.boxes.back();
  const track::TrackedBox& to = later.boxes.front();
  // Frames to extrapolate across; admissible pairs may overlap by a couple
  // of frames (window.h overlap tolerance), in which case the boxes are
  // compared where they stand.
  const std::int32_t delta = std::max(to.frame - from.frame, 0);
  evidence.required_speed =
      evidence.spatial_distance / static_cast<double>(std::max(delta, 1));

  const Velocity velocity = EstimateVelocity(earlier, config.velocity_window);
  core::BoundingBox predicted = from.box;
  predicted.x += velocity.vx * delta;
  predicted.y += velocity.vy * delta;
  evidence.extrapolated_iou = core::Iou(predicted, to.box);
  return evidence;
}

GateVerdict Classify(const GateEvidence& evidence, const GateConfig& config) {
  // Accept rules FIRST: a pair whose evidence clears the accept thresholds
  // is never rejected, whatever the reject rules would say (the gate
  // soundness property).
  if (evidence.extrapolated_iou >= config.accept_min_iou &&
      evidence.gap_frames <= config.accept_max_gap_frames) {
    return GateVerdict::kAccept;
  }
  if (evidence.gap_frames > config.reject_min_gap_frames) {
    return GateVerdict::kReject;
  }
  if (evidence.required_speed > config.max_speed_pixels_per_frame &&
      evidence.extrapolated_iou <= config.reject_max_iou) {
    return GateVerdict::kReject;
  }
  return GateVerdict::kAmbiguous;
}

GateVerdict ClassifyPair(const merge::PairContext& context, std::size_t index,
                         const GateConfig& config) {
  return Classify(ComputeEvidence(context, index, config), config);
}

}  // namespace tmerge::gate
