#include "tmerge/gate/gated_selector.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "tmerge/core/sim_clock.h"
#include "tmerge/reid/embed_scheduler.h"

namespace tmerge::gate {

GatedSelector::GatedSelector(merge::CandidateSelector& inner,
                             const GateConfig& config)
    : inner_(inner), config_(config) {}

std::string GatedSelector::name() const {
  return "Gated(" + inner_.name() + ")";
}

merge::SelectionResult GatedSelector::Select(
    const merge::PairContext& context, const reid::ReidModel& model,
    reid::FeatureCache& cache, const merge::SelectorOptions& options) {
  if (!config_.enabled) {
    // Pass-through: forward verbatim. No timer, no meter, no copy — the
    // inner result IS the result, bit for bit.
    return inner_.Select(context, model, cache, options);
  }

  core::WallTimer timer;
  reid::InferenceMeter gate_meter(options.cost_model);
  const std::size_t num_pairs = context.num_pairs();

  // 1. Classify every pair. Evidence is retained because the overflow
  // demotion below ranks accepted pairs by it.
  std::vector<GateEvidence> evidence(num_pairs);
  std::vector<GateVerdict> verdicts(num_pairs, GateVerdict::kAmbiguous);
  GateCounts counts;
  for (std::size_t p = 0; p < num_pairs; ++p) {
    evidence[p] = ComputeEvidence(context, p, config_);
    verdicts[p] = Classify(evidence[p], config_);
    switch (verdicts[p]) {
      case GateVerdict::kAccept:
        ++counts.accepted;
        break;
      case GateVerdict::kReject:
        ++counts.rejected;
        break;
      case GateVerdict::kAmbiguous:
        ++counts.ambiguous;
        break;
    }
  }
  gate_meter.ChargeGateChecks(static_cast<std::int64_t>(num_pairs));
  gate_meter.RecordGateVerdicts(counts.accepted, counts.rejected,
                                counts.ambiguous);

  // 2. Accepted pairs become candidates directly, capped at the window's
  // top-K count. Overflow keeps the strongest evidence (highest
  // extrapolated IoU, ties by pair index — a strict total order, so the
  // demotion is deterministic) and demotes the rest to ambiguous.
  const std::size_t k_total = merge::TopKCount(options.k_fraction, num_pairs);
  std::vector<std::size_t> accepted;
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (verdicts[p] == GateVerdict::kAccept) accepted.push_back(p);
  }
  if (accepted.size() > k_total) {
    std::sort(accepted.begin(), accepted.end(),
              [&evidence](std::size_t a, std::size_t b) {
                if (evidence[a].extrapolated_iou !=
                    evidence[b].extrapolated_iou) {
                  return evidence[a].extrapolated_iou >
                         evidence[b].extrapolated_iou;
                }
                return a < b;
              });
    for (std::size_t i = k_total; i < accepted.size(); ++i) {
      verdicts[accepted[i]] = GateVerdict::kAmbiguous;
    }
    accepted.resize(k_total);
    // Back to pair-index order for stable candidate emission.
    std::sort(accepted.begin(), accepted.end());
  }

  // 3./4. Rejected pairs vanish; ambiguous pairs (including demotions, in
  // pair-index order) form the inner selector's sub-window.
  std::vector<metrics::TrackPairKey> ambiguous_keys;
  std::vector<std::size_t> ambiguous_indices;
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (verdicts[p] == GateVerdict::kAmbiguous) {
      ambiguous_keys.push_back(context.pair(p));
      ambiguous_indices.push_back(p);
    }
  }
  const std::size_t m = ambiguous_keys.size();
  const std::size_t remaining = k_total - accepted.size();

  merge::SelectionResult result;
  if (m > 0 && remaining > 0) {
    merge::PairContext sub_context(context.result(),
                                   std::move(ambiguous_keys));
    merge::SelectorOptions inner_options = options;
    // ceil(k' * m) == min(remaining, m): the inner selector fills exactly
    // the candidate slots the accepted pairs left open.
    inner_options.k_fraction =
        remaining >= m
            ? 1.0
            : (static_cast<double>(remaining) - 0.5) / static_cast<double>(m);
    if (config_.scale_bandit_budget) {
      inner_options.budget_scale =
          std::max(config_.min_budget_scale,
                   static_cast<double>(m) / static_cast<double>(num_pairs));
    }
    if (config_.prefetch_ambiguous && options.embed_scheduler != nullptr) {
      // Warm the cache through the batched scheduler so the inner
      // selector's misses turn into batch-amortized charges. The
      // scheduler dedups against the cache and within the group; charges
      // land on the gate meter (same cost model, summed below).
      std::vector<reid::CropRef> crops;
      for (std::size_t p : ambiguous_indices) {
        const auto& a = context.CropsA(p);
        const auto& b = context.CropsB(p);
        crops.insert(crops.end(), a.begin(), a.end());
        crops.insert(crops.end(), b.begin(), b.end());
      }
      options.embed_scheduler->EmbedAll(crops, cache, model, gate_meter,
                                        options.seed);
    }
    result = inner_.Select(sub_context, model, cache, inner_options);
  }

  // Compose: accepted candidates first (pair-index order), then the inner
  // selector's picks (disjoint by construction — accepted pairs are not in
  // the sub-window).
  std::vector<metrics::TrackPairKey> candidates;
  candidates.reserve(accepted.size() + result.candidates.size());
  for (std::size_t p : accepted) candidates.push_back(context.pair(p));
  candidates.insert(candidates.end(), result.candidates.begin(),
                    result.candidates.end());
  result.candidates = std::move(candidates);
  result.simulated_seconds += gate_meter.elapsed_seconds();
  result.usage += gate_meter.stats();
  result.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace tmerge::gate
