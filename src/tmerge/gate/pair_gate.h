#ifndef TMERGE_GATE_PAIR_GATE_H_
#define TMERGE_GATE_PAIR_GATE_H_

#include <cstdint>
#include <cstddef>

#include "tmerge/merge/pair_store.h"

namespace tmerge::gate {

/// Verdict of the cheap-evidence gate on one candidate pair.
enum class GateVerdict : std::uint8_t {
  /// Evidence that the two tracks are the same object is strong enough to
  /// emit the pair as a candidate without spending any ReID budget.
  kAccept = 0,
  /// Evidence rules the pair out; it is dropped before selection.
  kReject = 1,
  /// Neither rule fired; the pair proceeds to the (ReID-charged) selector.
  kAmbiguous = 2,
};

/// Thresholds of the pair gate. The decision order is fixed: accept rules
/// are evaluated BEFORE reject rules, so a pair whose evidence clears the
/// accept thresholds can never be rejected — the soundness property the
/// gate property tests pin (tests/gate/gate_property_test.cc).
///
/// Defaults are calibrated against the synthetic profiles (the
/// `bench_gate_frontier --calibrate` evidence split): ground-truth-same
/// pairs extrapolate to IoU >= ~0.48 with temporal gaps under ~30 frames
/// and required speeds under ~5 px/frame, while different-object pairs
/// extrapolate to IoU ~0 with median gaps in the hundreds of frames. The
/// motion model bounds per-axis speed at 8 px/frame (sim/motion.h), so
/// the 12 px/frame speed gate still clears the fastest physically
/// possible fragment reconnection, and the 120-frame gap bound leaves a
/// 4x margin over the occlusion gaps that actually fragment tracks.
struct GateConfig {
  /// Master switch. Disabled (the default) means pass-through: every pair
  /// is forwarded to the inner selector untouched and the gate charges
  /// nothing — bit-identical to the ungated pipeline by construction.
  bool enabled = false;

  /// Accept when the earlier track's last box, extrapolated across the
  /// temporal gap at its estimated velocity, overlaps the later track's
  /// first box with IoU >= accept_min_iou ...
  double accept_min_iou = 0.30;
  /// ... and the temporal gap does not exceed this (extrapolation loses
  /// predictive power with distance; a large-gap overlap is coincidence).
  std::int32_t accept_max_gap_frames = 60;

  /// Reject when the temporal gap alone exceeds this bound (no plausible
  /// occlusion lasts this long in the profiles).
  std::int32_t reject_min_gap_frames = 120;
  /// Reject when covering the spatial gap would require a speed above this
  /// bound (px/frame) AND the extrapolation shows no overlap at all
  /// (extrapolated IoU <= reject_max_iou). Both must hold: speed evidence
  /// alone is noisy for short gaps.
  double max_speed_pixels_per_frame = 12.0;
  double reject_max_iou = 0.05;

  /// Boxes used to estimate the earlier track's velocity (its last up-to-N
  /// centers, least-squares-free endpoint slope).
  std::int32_t velocity_window = 8;

  /// When true, the gated selector shrinks the inner bandit budget
  /// (SelectorOptions::budget_scale) to the ambiguous fraction of the
  /// window, so tau_max tracks the work the gate left behind.
  bool scale_bandit_budget = true;
  /// Floor on that scale so a near-empty ambiguous set still gets a
  /// usable budget.
  double min_budget_scale = 0.05;

  /// When true and SelectorOptions::embed_scheduler is set, the gated
  /// selector pushes every crop of the ambiguous pairs through the
  /// EmbedScheduler before running the inner selector, converting the
  /// inner selector's single-inference misses into CostModel-optimal
  /// batches (amortizing batch_fixed_seconds).
  bool prefetch_ambiguous = false;
};

/// Cheap per-pair evidence the gate decides on. Pure geometry over the
/// PairContext's tracks; no ReID features are touched.
struct GateEvidence {
  /// IoU between the earlier track's last box extrapolated to the later
  /// track's first frame and the later track's first box.
  double extrapolated_iou = 0.0;
  /// Speed (px/frame) required to cover the spatial gap within the
  /// temporal gap.
  double required_speed = 0.0;
  /// Temporal gap in frames (>= 0, as PairContext::TemporalGap).
  std::int32_t gap_frames = 0;
  /// Center distance between the earlier track's last box and the later
  /// track's first box.
  double spatial_distance = 0.0;
};

/// Per-window verdict counters; accepted + rejected + ambiguous always
/// equals the number of classified pairs.
struct GateCounts {
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t ambiguous = 0;

  std::int64_t total() const { return accepted + rejected + ambiguous; }
};

/// Computes the gate evidence for pair `index` of `context`.
GateEvidence ComputeEvidence(const merge::PairContext& context,
                             std::size_t index,
                             const GateConfig& config);

/// Classifies one evidence record. Accept rules run before reject rules
/// (see GateConfig).
GateVerdict Classify(const GateEvidence& evidence, const GateConfig& config);

/// Convenience: evidence + classification in one call.
GateVerdict ClassifyPair(const merge::PairContext& context, std::size_t index,
                         const GateConfig& config);

}  // namespace tmerge::gate

#endif  // TMERGE_GATE_PAIR_GATE_H_
