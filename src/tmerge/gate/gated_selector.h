#ifndef TMERGE_GATE_GATED_SELECTOR_H_
#define TMERGE_GATE_GATED_SELECTOR_H_

#include <string>

#include "tmerge/gate/pair_gate.h"
#include "tmerge/merge/selector.h"

namespace tmerge::gate {

/// Decorator that puts a PairGate in front of any CandidateSelector.
///
/// Disabled (GateConfig::enabled == false, the default), Select forwards to
/// the inner selector verbatim — same context, same options, same result
/// object — so a pass-through GatedSelector is bit-identical to the bare
/// selector by construction (pinned for every selector, batched and
/// streaming, by tests/gate/gate_differential_test.cc).
///
/// Enabled, one Select call becomes:
///   1. Classify every pair of the window from cheap geometric evidence
///      (pair_gate.h), charging gate_check_seconds per pair and recording
///      the verdict counters into UsageStats.
///   2. Accepted pairs are emitted as candidates directly, spending no ReID
///      budget. When more pairs are accepted than the window's top-K count,
///      the strongest (highest extrapolated IoU, ties broken by pair index)
///      keep their acceptance and the overflow is demoted to ambiguous.
///   3. Rejected pairs are dropped before selection.
///   4. Ambiguous pairs form a sub-window (a PairContext over the same
///      TrackingResult) handed to the inner selector, with k adjusted so
///      the inner selector returns exactly the remaining candidate slots,
///      and — when GateConfig::scale_bandit_budget is set — the bandit
///      budget scaled to the ambiguous fraction via
///      SelectorOptions::budget_scale. With prefetch_ambiguous and a
///      SelectorOptions::embed_scheduler, the ambiguous pairs' crops are
///      pushed through the EmbedScheduler first, so the inner selector's
///      misses become CostModel-optimal batches.
///
/// Posterior safety: gate verdicts NEVER become bandit evidence. Accepted
/// and rejected pairs are excluded from the inner selector's context
/// entirely — their posteriors are simply never created — rather than
/// being converted into synthetic Bernoulli observations, mirroring how
/// ReidGuard keeps failed pulls out of the posteriors (DESIGN.md "Fault
/// model"). The bandit only ever updates on distances it actually
/// measured.
///
/// Stateless across Select calls like every selector (the gate config is
/// construction-time), so one GatedSelector is safe to share across
/// EvaluateDataset's worker threads and stream merge jobs.
class GatedSelector : public merge::CandidateSelector {
 public:
  /// Wraps `inner`, which must outlive this object. Non-owning.
  GatedSelector(merge::CandidateSelector& inner, const GateConfig& config);

  merge::SelectionResult Select(const merge::PairContext& context,
                                const reid::ReidModel& model,
                                reid::FeatureCache& cache,
                                const merge::SelectorOptions& options) override;

  /// "Gated(<inner>)", e.g. "Gated(TMerge)".
  std::string name() const override;

  const GateConfig& config() const { return config_; }

 private:
  merge::CandidateSelector& inner_;
  const GateConfig config_;
};

}  // namespace tmerge::gate

#endif  // TMERGE_GATE_GATED_SELECTOR_H_
