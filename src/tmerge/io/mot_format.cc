#include "tmerge/io/mot_format.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tmerge/fault/failpoint.h"

namespace tmerge::io {
namespace {

// Splits one CSV line into fields (no quoting — MOT files never quote).
std::vector<std::string_view> SplitCsv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

bool ParseDouble(std::string_view field, double& out) {
  // std::from_chars<double> handles leading '-' but not leading spaces. It
  // also accepts "nan" and "inf" — callers that feed geometry must reject
  // those via std::isfinite, or a single corrupt row would poison every
  // downstream IoU/score computation (found by the io fuzz test).
  while (!field.empty() && field.front() == ' ') field.remove_prefix(1);
  auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(),
                                   out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

bool AllFinite(std::initializer_list<double> values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool ParseInt(std::string_view field, std::int64_t& out) {
  while (!field.empty() && field.front() == ' ') field.remove_prefix(1);
  auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(),
                                   out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

std::string LineError(std::size_t line_number, const std::string& message) {
  return "line " + std::to_string(line_number) + ": " + message;
}

/// Injected read faults, applied per row in every reader: a short read
/// (stream ends mid-file) or a corrupt row (parses as garbage). Keyed by
/// line number so a fixed seed reproduces the same failing line.
core::Status InjectedRowFault(std::size_t line_number) {
  if (TMERGE_FAILPOINT("io.mot.short_read", line_number)) {
    return core::Status::Unavailable(
        LineError(line_number, "injected short read (stream truncated)"));
  }
  if (TMERGE_FAILPOINT("io.mot.corrupt_row", line_number)) {
    return core::Status::InvalidArgument(
        LineError(line_number, "injected corrupt row"));
  }
  return core::Status::Ok();
}

}  // namespace

std::uint64_t MotDetectionId(std::int32_t frame, track::TrackId tid) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(frame))
          << 32) |
         static_cast<std::uint32_t>(tid);
}

void WriteTracks(const track::TrackingResult& result, std::ostream& os) {
  struct Row {
    std::int32_t frame;
    track::TrackId tid;
    const track::TrackedBox* box;
  };
  std::vector<Row> rows;
  rows.reserve(result.TotalBoxes());
  for (const auto& track : result.tracks) {
    for (const auto& box : track.boxes) {
      rows.push_back({box.frame, track.id, &box});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.frame != b.frame) return a.frame < b.frame;
    return a.tid < b.tid;
  });
  for (const auto& row : rows) {
    os << (row.frame + 1) << ',' << row.tid << ',' << row.box->box.x << ','
       << row.box->box.y << ',' << row.box->box.width << ','
       << row.box->box.height << ',' << row.box->confidence << ",-1,-1,-1\n";
  }
}

core::Result<track::TrackingResult> ReadTracks(std::istream& is) {
  std::map<track::TrackId, std::vector<track::TrackedBox>> by_tid;
  std::set<std::pair<std::int32_t, track::TrackId>> seen;
  std::int32_t max_frame = -1;
  double max_right = 0.0, max_bottom = 0.0;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (core::Status fault = InjectedRowFault(line_number); !fault.ok()) {
      return fault;
    }
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> fields = SplitCsv(line);
    if (fields.size() < 7) {
      return core::Status::InvalidArgument(
          LineError(line_number, "expected >= 7 fields"));
    }
    std::int64_t frame1 = 0, tid = 0;
    double left = 0, top = 0, width = 0, height = 0, confidence = 0;
    if (!ParseInt(fields[0], frame1) || !ParseInt(fields[1], tid) ||
        !ParseDouble(fields[2], left) || !ParseDouble(fields[3], top) ||
        !ParseDouble(fields[4], width) || !ParseDouble(fields[5], height) ||
        !ParseDouble(fields[6], confidence)) {
      return core::Status::InvalidArgument(
          LineError(line_number, "malformed field"));
    }
    if (!AllFinite({left, top, width, height, confidence})) {
      return core::Status::InvalidArgument(
          LineError(line_number, "non-finite value"));
    }
    if (frame1 < 1) {
      return core::Status::InvalidArgument(
          LineError(line_number, "frames are 1-based"));
    }
    auto frame = static_cast<std::int32_t>(frame1 - 1);
    auto track_id = static_cast<track::TrackId>(tid);
    if (!seen.insert({frame, track_id}).second) {
      return core::Status::InvalidArgument(
          LineError(line_number, "duplicate (frame, tid) row"));
    }
    track::TrackedBox box;
    box.frame = frame;
    box.box = {left, top, width, height};
    box.confidence = confidence;
    box.detection_id = MotDetectionId(frame, track_id);
    box.noise_seed = box.detection_id;
    by_tid[track_id].push_back(box);
    max_frame = std::max(max_frame, frame);
    max_right = std::max(max_right, left + width);
    max_bottom = std::max(max_bottom, top + height);
  }

  track::TrackingResult result;
  result.tracker_name = "mot-import";
  result.num_frames = max_frame + 1;
  result.frame_width = max_right;
  result.frame_height = max_bottom;
  for (auto& [tid, boxes] : by_tid) {
    std::sort(boxes.begin(), boxes.end(),
              [](const track::TrackedBox& a, const track::TrackedBox& b) {
                return a.frame < b.frame;
              });
    track::Track track;
    track.id = tid;
    track.boxes = std::move(boxes);
    result.tracks.push_back(std::move(track));
  }
  return result;
}

void WriteGroundTruth(const sim::SyntheticVideo& video, std::ostream& os) {
  for (const auto& track : video.tracks) {
    for (const auto& gt_box : track.boxes) {
      os << (gt_box.frame + 1) << ',' << track.id << ',' << gt_box.box.x
         << ',' << gt_box.box.y << ',' << gt_box.box.width << ','
         << gt_box.box.height << ",1,1," << gt_box.visibility << '\n';
    }
  }
}

core::Result<sim::SyntheticVideo> ReadGroundTruth(std::istream& is) {
  std::map<sim::GtObjectId, std::vector<sim::GroundTruthBox>> by_id;
  std::int32_t max_frame = -1;
  double max_right = 0.0, max_bottom = 0.0;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (core::Status fault = InjectedRowFault(line_number); !fault.ok()) {
      return fault;
    }
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> fields = SplitCsv(line);
    if (fields.size() < 6) {
      return core::Status::InvalidArgument(
          LineError(line_number, "expected >= 6 fields"));
    }
    std::int64_t frame1 = 0, id = 0;
    double left = 0, top = 0, width = 0, height = 0;
    if (!ParseInt(fields[0], frame1) || !ParseInt(fields[1], id) ||
        !ParseDouble(fields[2], left) || !ParseDouble(fields[3], top) ||
        !ParseDouble(fields[4], width) || !ParseDouble(fields[5], height)) {
      return core::Status::InvalidArgument(
          LineError(line_number, "malformed field"));
    }
    double visibility = 1.0;
    if (fields.size() >= 9 && !ParseDouble(fields[8], visibility)) {
      return core::Status::InvalidArgument(
          LineError(line_number, "malformed visibility"));
    }
    if (!AllFinite({left, top, width, height, visibility})) {
      return core::Status::InvalidArgument(
          LineError(line_number, "non-finite value"));
    }
    if (frame1 < 1) {
      return core::Status::InvalidArgument(
          LineError(line_number, "frames are 1-based"));
    }
    sim::GroundTruthBox box;
    box.frame = static_cast<std::int32_t>(frame1 - 1);
    box.box = {left, top, width, height};
    box.visibility = visibility;
    by_id[static_cast<sim::GtObjectId>(id)].push_back(box);
    max_frame = std::max(max_frame, box.frame);
    max_right = std::max(max_right, left + width);
    max_bottom = std::max(max_bottom, top + height);
  }

  sim::SyntheticVideo video;
  video.name = "mot-import";
  video.num_frames = max_frame + 1;
  video.frame_width = max_right;
  video.frame_height = max_bottom;
  for (auto& [id, boxes] : by_id) {
    std::sort(boxes.begin(), boxes.end(),
              [](const sim::GroundTruthBox& a, const sim::GroundTruthBox& b) {
                return a.frame < b.frame;
              });
    for (std::size_t i = 1; i < boxes.size(); ++i) {
      if (boxes[i].frame != boxes[i - 1].frame + 1) {
        return core::Status::InvalidArgument(
            "GT track " + std::to_string(id) +
            " is not on consecutive frames (gap after frame " +
            std::to_string(boxes[i - 1].frame + 1) + ")");
      }
    }
    sim::GroundTruthTrack track;
    track.id = id;
    track.boxes = std::move(boxes);
    video.tracks.push_back(std::move(track));
  }
  return video;
}

core::Result<std::unordered_map<std::uint64_t, reid::FeatureVector>>
ReadFeatureTable(std::istream& is) {
  std::unordered_map<std::uint64_t, reid::FeatureVector> features;
  std::size_t dim = 0;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (core::Status fault = InjectedRowFault(line_number); !fault.ok()) {
      return fault;
    }
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> fields = SplitCsv(line);
    if (fields.size() < 3) {
      return core::Status::InvalidArgument(
          LineError(line_number, "expected frame,tid,f0,..."));
    }
    std::int64_t frame1 = 0, tid = 0;
    if (!ParseInt(fields[0], frame1) || !ParseInt(fields[1], tid) ||
        frame1 < 1) {
      return core::Status::InvalidArgument(
          LineError(line_number, "malformed frame/tid"));
    }
    reid::FeatureVector feature(fields.size() - 2);
    for (std::size_t i = 2; i < fields.size(); ++i) {
      if (!ParseDouble(fields[i], feature[i - 2]) ||
          !std::isfinite(feature[i - 2])) {
        return core::Status::InvalidArgument(
            LineError(line_number, "malformed feature value"));
      }
    }
    if (dim == 0) {
      dim = feature.size();
    } else if (feature.size() != dim) {
      return core::Status::InvalidArgument(
          LineError(line_number, "inconsistent feature dimension"));
    }
    std::uint64_t key = MotDetectionId(static_cast<std::int32_t>(frame1 - 1),
                                       static_cast<track::TrackId>(tid));
    if (!features.emplace(key, std::move(feature)).second) {
      return core::Status::InvalidArgument(
          LineError(line_number, "duplicate (frame, tid) feature row"));
    }
  }
  if (features.empty()) {
    return core::Status::InvalidArgument("empty feature table");
  }
  return features;
}

}  // namespace tmerge::io
