#ifndef TMERGE_IO_MOT_FORMAT_H_
#define TMERGE_IO_MOT_FORMAT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "tmerge/core/status.h"
#include "tmerge/reid/feature.h"
#include "tmerge/sim/world.h"
#include "tmerge/track/track.h"

namespace tmerge::io {

/// Serialization in the MOTChallenge text format, the lingua franca of
/// multi-object tracking data. This is the adoption path for real data:
/// export a real tracker's output and a feature table (embeddings from a
/// real ReID network, keyed per box), then run the merging algorithms on
/// them via reid::PrecomputedReidModel.
///
/// Result rows:  frame,id,bb_left,bb_top,bb_width,bb_height,conf,-1,-1,-1
/// GT rows:      frame,id,bb_left,bb_top,bb_width,bb_height,1,1,visibility
/// Frames are 1-based on disk (MOT convention) and 0-based in memory.

/// Deterministic detection id for a (frame, tid) row, shared by the track
/// reader and the feature-table reader so features join correctly.
std::uint64_t MotDetectionId(std::int32_t frame, track::TrackId tid);

/// Writes tracker output in MOT result format, rows sorted by frame then
/// TID.
void WriteTracks(const track::TrackingResult& result, std::ostream& os);

/// Parses MOT result format into a TrackingResult. Boxes are grouped by
/// TID and sorted by frame; detection ids come from MotDetectionId. Rows
/// must be well-formed; duplicate (frame, tid) rows are rejected.
core::Result<track::TrackingResult> ReadTracks(std::istream& is);

/// Writes ground truth in MOT GT format (with the visibility column).
void WriteGroundTruth(const sim::SyntheticVideo& video, std::ostream& os);

/// Parses MOT GT format into a SyntheticVideo usable by the evaluation
/// oracle (GT matching, metrics, query recall). Each GT track must occupy
/// consecutive frames; appearance vectors are left empty, so the result
/// supports evaluation but not the synthetic ReID model.
core::Result<sim::SyntheticVideo> ReadGroundTruth(std::istream& is);

/// Writes a feature table: one row per tracked box,
/// `frame,tid,f0,f1,...,fD`. Features are produced by `embed`, a callable
/// (const track::TrackedBox&) -> reid::FeatureVector.
template <typename EmbedFn>
void WriteFeatureTable(const track::TrackingResult& result, EmbedFn&& embed,
                       std::ostream& os);

/// Parses a feature table into the map PrecomputedReidModel consumes,
/// keyed by MotDetectionId(frame, tid). All rows must have equal feature
/// dimension.
core::Result<std::unordered_map<std::uint64_t, reid::FeatureVector>>
ReadFeatureTable(std::istream& is);

// --- Implementation details only below here. ---

template <typename EmbedFn>
void WriteFeatureTable(const track::TrackingResult& result, EmbedFn&& embed,
                       std::ostream& os) {
  for (const auto& track : result.tracks) {
    for (const auto& box : track.boxes) {
      reid::FeatureVector feature = embed(box);
      os << (box.frame + 1) << ',' << track.id;
      for (double v : feature) os << ',' << v;
      os << '\n';
    }
  }
}

}  // namespace tmerge::io

#endif  // TMERGE_IO_MOT_FORMAT_H_
