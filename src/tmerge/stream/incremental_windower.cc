#include "tmerge/stream/incremental_windower.h"

#include <algorithm>
#include <set>

#include "tmerge/core/status.h"

namespace tmerge::stream {

IncrementalWindower::IncrementalWindower(const merge::WindowConfig& config,
                                         std::int32_t num_frames)
    : config_(config), num_frames_(num_frames) {
  length_ = config.single_window ? num_frames : config.length;
  if (num_frames_ <= 0) {
    // Degenerate stream: no frames can arrive, so no windows exist (the
    // batch path never reaches its length check either — it early-returns
    // on the empty track list such a stream produces).
    length_ = std::max<std::int32_t>(1, length_);
    half_ = 1;
    num_buckets_ = 0;
    return;
  }
  TMERGE_CHECK(length_ > 0);
  half_ = std::max<std::int32_t>(1, length_ / 2);
  num_buckets_ = (num_frames_ + half_ - 1) / half_;
  if (config.single_window) num_buckets_ = 1;
  buckets_.resize(num_buckets_);
}

void IncrementalWindower::AbsorbTracks(
    const std::vector<track::Track>& tracks) {
  for (std::size_t i = tracks_seen_; i < tracks.size(); ++i) {
    std::int32_t first = tracks[i].first_frame();
    std::int32_t bucket = config_.single_window ? 0 : first / half_;
    if (bucket >= num_buckets_) bucket = num_buckets_ - 1;
    // A track retires only after windows strictly before its bucket have
    // possibly closed; its own bucket cannot have closed yet (closure
    // requires the track to be retired first), so this never lands in a
    // sealed bucket.
    buckets_[bucket].push_back(i);
  }
  tracks_seen_ = tracks.size();
}

void IncrementalWindower::CloseUpTo(std::int32_t bucket_end,
                                    const std::vector<track::Track>& tracks,
                                    std::vector<merge::WindowPairs>& closed) {
  static const std::vector<std::size_t> kEmpty;
  for (std::int32_t c = next_window_; c < bucket_end; ++c) {
    merge::WindowPairs window;
    window.window_index = c;
    window.start_frame = config_.single_window ? 0 : c * half_;
    window.end_frame =
        std::min(num_frames_ - 1, window.start_frame + length_ - 1);
    window.new_tracks = buckets_[c];

    const std::vector<std::size_t>& tc = buckets_[c];
    const std::vector<std::size_t>& prev = c > 0 ? buckets_[c - 1] : kEmpty;
    std::set<metrics::TrackPairKey> seen;
    for (std::size_t i = 0; i < tc.size(); ++i) {
      for (std::size_t j = i + 1; j < tc.size(); ++j) {
        const auto& a = tracks[tc[i]];
        const auto& b = tracks[tc[j]];
        if (merge::PairAdmissible(a, b, config_)) {
          seen.insert(metrics::MakePairKey(a.id, b.id));
        }
      }
    }
    for (std::size_t i : tc) {
      for (std::size_t j : prev) {
        const auto& a = tracks[i];
        const auto& b = tracks[j];
        if (merge::PairAdmissible(a, b, config_)) {
          seen.insert(metrics::MakePairKey(a.id, b.id));
        }
      }
    }
    window.pairs.assign(seen.begin(), seen.end());
    if (!window.new_tracks.empty() || !window.pairs.empty()) {
      closed.push_back(std::move(window));
    }
  }
  if (bucket_end > next_window_) next_window_ = bucket_end;
}

std::vector<merge::WindowPairs> IncrementalWindower::Advance(
    const std::vector<track::Track>& tracks, std::int32_t frames_observed,
    std::int32_t min_active_first_frame) {
  std::vector<merge::WindowPairs> closed;
  if (finished_ || num_buckets_ == 0) return closed;
  AbsorbTracks(tracks);
  watermark_ = std::max(watermark_, frames_observed);

  // Bucket c is final once neither births (watermark) nor extent growth
  // (active tracks born before its end) can change it. The last bucket
  // absorbs clamped late births, so it only closes at Finish; ditto
  // single-window mode.
  std::int32_t frontier = std::min(watermark_, min_active_first_frame);
  std::int32_t bucket_end = std::min(frontier / half_, num_buckets_ - 1);
  if (config_.single_window) bucket_end = 0;
  CloseUpTo(bucket_end, tracks, closed);
  return closed;
}

std::vector<merge::WindowPairs> IncrementalWindower::Finish(
    const std::vector<track::Track>& tracks) {
  std::vector<merge::WindowPairs> closed;
  if (finished_ || num_buckets_ == 0) {
    finished_ = true;
    return closed;
  }
  AbsorbTracks(tracks);
  if (tracks_seen_ == 0) {
    // BuildWindows returns no windows at all for a trackless video; skip
    // emitting the (necessarily empty) tail so the lists agree.
    finished_ = true;
    next_window_ = num_buckets_;
    return closed;
  }
  CloseUpTo(num_buckets_, tracks, closed);
  finished_ = true;
  return closed;
}

std::int32_t IncrementalWindower::open_windows() const {
  if (num_buckets_ == 0) return 0;
  return num_buckets_ - next_window_;
}

}  // namespace tmerge::stream
