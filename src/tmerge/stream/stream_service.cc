#include "tmerge/stream/stream_service.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_set>
#include <utility>

#include "tmerge/core/mutex.h"
#include "tmerge/core/status.h"
#include "tmerge/fault/failpoint.h"
#include "tmerge/merge/pair_store.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/obs/span.h"
#include "tmerge/obs/trace.h"

namespace tmerge::stream {

namespace {

/// Newest events per thread kept in a stall post-mortem dump: enough to
/// see the full defer/flush run-up without dumping a whole soak's rings.
constexpr std::size_t kPostMortemEventsPerThread = 2048;

}  // namespace

#ifndef TMERGE_OBS_DISABLED
namespace {

obs::Counter& StreamCounter(const char* name) {
  return obs::DefaultRegistry().GetCounter(name);
}

}  // namespace
#endif  // TMERGE_OBS_DISABLED

StreamService::CameraState::CameraState(std::int32_t id,
                                        const CameraConfig& camera,
                                        const merge::WindowConfig& window)
    : camera_id(id),
      config(camera),
      tracker(camera.sort, camera.num_frames, camera.frame_width,
              camera.frame_height, camera.fps),
      windower(window, camera.num_frames) {}

StreamService::StreamService(const StreamServiceConfig& config,
                             merge::CandidateSelector& selector)
    : config_(config),
      ingest_estimate_(std::clamp<std::int64_t>(
          config.ingest_pair_estimate, 1,
          config.director.max_intermediate_pairs)),
      selector_(selector),
      director_(config.director) {
  TMERGE_CHECK(config_.max_queued_frames_per_camera > 0);
  TMERGE_CHECK(config_.max_windows_per_merge_job > 0);
  int workers = core::ResolveNumThreads(config_.num_threads);
  // num_threads == 1 is the serial reference path (no threads at all),
  // matching the pipeline convention.
  if (config_.num_threads != 1 && workers > 1) {
    pool_ = std::make_unique<core::ThreadPool>(workers);
  }
  if (config_.enable_embed_scheduler) {
    embed_scheduler_ = std::make_unique<reid::EmbedScheduler>(
        config_.embed_scheduler, pool_.get());
  }
}

StreamService::~StreamService() {
  // Join in-flight merge jobs before the state they reference is torn
  // down. (ThreadPool's destructor discards still-queued jobs, which is
  // fine here: an abandoned service has no result to corrupt.)
  pool_.reset();
}

std::int32_t StreamService::AddCamera(const CameraConfig& camera) {
  TMERGE_CHECK(camera.num_frames >= 0);
  TMERGE_CHECK(camera.model != nullptr);
  core::MutexLock lock(mutex_);
  TMERGE_CHECK(!finished_);
  std::int32_t id = static_cast<std::int32_t>(cameras_.size());
  cameras_.push_back(
      std::make_unique<CameraState>(id, camera, config_.window));
#ifndef TMERGE_OBS_DISABLED
  // Per-camera series share one family name and differ only in the
  // `camera` label, so the Prometheus exporter emits them natively
  // (stream_camera_queued_frames{camera="3"}) without name-mangling.
  CameraState& state = *cameras_.back();
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  std::vector<obs::MetricLabel> labels{{"camera", std::to_string(id)}};
  state.latency_hist = &registry.GetHistogram(
      obs::LabeledName("stream.camera.ingest_to_result.seconds", labels),
      obs::DurationBounds());
  state.queue_gauge = &registry.GetGauge(
      obs::LabeledName("stream.camera.queued_frames", labels));
#endif  // TMERGE_OBS_DISABLED
  ++open_cameras_;
  return id;
}

IngestOutcome StreamService::IngestFrame(std::int32_t camera_id,
                                         const detect::DetectionFrame& frame,
                                         double now_seconds) {
  TMERGE_SPAN("stream.ingest.seconds");
  std::vector<MergeJob> jobs;
  IngestOutcome outcome = IngestOutcome::kAccepted;
  {
    core::MutexLock lock(mutex_);
    now_watermark_ = std::max(now_watermark_, now_seconds);
    if (finished_ || camera_id < 0 ||
        camera_id >= static_cast<std::int32_t>(cameras_.size())) {
      return IngestOutcome::kRejected;
    }
    CameraState& camera = *cameras_[camera_id];
    if (camera.close_requested) return IngestOutcome::kRejected;
    // A full queue is a backpressure event whether or not the producer
    // ends up bounced: either way it was stalled by the consumer side.
    if (static_cast<std::int32_t>(camera.frame_queue.size()) >=
        config_.max_queued_frames_per_camera) {
      ++backpressure_events_;
      TMERGE_OBS({
        static obs::Counter& counter =
            StreamCounter("stream.backpressure_events");
        counter.Add();
      });
    }
    // Full queue with jobs in flight: wait for a completion instead of
    // bouncing. The Wait releases the mutex, which is what lets the worker
    // in — a producer that spins on kBackpressure in a tight loop would
    // otherwise starve ExecuteChain of the lock and wedge the stream with
    // the director convinced a job is still running.
    while (static_cast<std::int32_t>(camera.frame_queue.size()) >=
               config_.max_queued_frames_per_camera &&
           inflight_jobs_ > 0) {
      idle_cv_.Wait(mutex_);
    }
    if (camera.close_requested || finished_) return IngestOutcome::kRejected;
    if (static_cast<std::int32_t>(camera.frame_queue.size()) >=
        config_.max_queued_frames_per_camera) {
      // Nothing in flight to wait for: bounce, but still pump before
      // returning — these bounced calls are the only thing probing the
      // director with advancing sim time, and the pump is what arms the
      // stall watchdog and schedules the merge jobs that eventually
      // unblock ingest. Returning early here deadlocks.
      outcome = IngestOutcome::kBackpressure;
    } else {
      // Keyed per (camera, frame): a retried frame gets the same verdict,
      // so drop schedules are reproducible under any ingest interleaving.
      std::uint64_t drop_key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(camera_id))
           << 32) |
          static_cast<std::uint32_t>(frame.frame);
      if (TMERGE_FAILPOINT("stream.camera.drop_frame", drop_key)) {
        // Transport loss: the detections are gone but stream time still
        // advances, so an empty frame takes the slot (the tracker coasts).
        detect::DetectionFrame lost;
        lost.frame = frame.frame;
        camera.frame_queue.push_back(std::move(lost));
        ++camera.frames_dropped;
        TMERGE_OBS({
          static obs::Counter& counter =
              StreamCounter("stream.frames_dropped");
          counter.Add();
        });
        outcome = IngestOutcome::kDropped;
      } else {
        camera.frame_queue.push_back(frame);
      }
      TMERGE_TRACE_INSTANT("stream.frame.enqueue", now_seconds,
                           {"camera", camera_id}, {"frame", frame.frame});
      ++camera.frames_ingested;
      ++queued_frames_;
      peak_queued_frames_ = std::max(peak_queued_frames_, queued_frames_);
      TMERGE_OBS({
        static obs::Counter& counter =
            StreamCounter("stream.frames_ingested");
        counter.Add();
      });
    }
    jobs = PumpLocked(now_seconds);
  }
  Dispatch(std::move(jobs));
  MaybeWriteStallPostMortem();
  return outcome;
}

void StreamService::CloseCamera(std::int32_t camera_id, double now_seconds) {
  std::vector<MergeJob> jobs;
  {
    core::MutexLock lock(mutex_);
    now_watermark_ = std::max(now_watermark_, now_seconds);
    TMERGE_CHECK(camera_id >= 0 &&
                 camera_id < static_cast<std::int32_t>(cameras_.size()));
    CameraState& camera = *cameras_[camera_id];
    if (camera.close_requested) return;
    camera.close_requested = true;
    --open_cameras_;
    if (open_cameras_ == 0) director_.OnStreamCompleted();
    jobs = PumpLocked(now_seconds);
  }
  Dispatch(std::move(jobs));
  MaybeWriteStallPostMortem();
}

void StreamService::DrainCameraLocked(CameraState& camera,
                                      double now_seconds) {
  while (!camera.frame_queue.empty()) {
    if (!director_.CanScheduleIngestJob(ingest_estimate_, now_seconds)) {
      return;
    }
    director_.OnIngestJobStarted(ingest_estimate_);
    detect::DetectionFrame frame = std::move(camera.frame_queue.front());
    camera.frame_queue.pop_front();
    --queued_frames_;
    TMERGE_TRACE_INSTANT("stream.frame.dequeue", now_seconds,
                         {"camera", camera.camera_id},
                         {"frame", frame.frame});
    {
      TMERGE_TRACE_SCOPE("stream.frame.ingest", now_seconds,
                         {"camera", camera.camera_id},
                         {"frame", frame.frame});
      camera.tracker.Observe(frame);
      std::vector<merge::WindowPairs> closed = camera.windower.Advance(
          camera.tracker.result().tracks, camera.tracker.frames_observed(),
          camera.tracker.min_active_first_frame());
      EnqueueClosedLocked(camera, std::move(closed), now_seconds);
    }
    // Release the estimate reservation; actual pair counts were reported
    // above via OnMergeInputProcessed (they may differ in either
    // direction, as in the auto-merge scenario this models).
    director_.OnIngestJobFinished(ingest_estimate_);
  }
  if (camera.close_requested && !camera.tracker_finished) {
    FinishCameraLocked(camera, now_seconds);
  }
}

void StreamService::FinishCameraLocked(CameraState& camera,
                                       double now_seconds) {
  camera.tracker.Finish();
  std::vector<merge::WindowPairs> closed =
      camera.windower.Finish(camera.tracker.result().tracks);
  EnqueueClosedLocked(camera, std::move(closed), now_seconds);
  camera.tracker_finished = true;
}

void StreamService::EnqueueClosedLocked(
    CameraState& camera, std::vector<merge::WindowPairs> closed,
    double now_seconds) {
  for (merge::WindowPairs& window : closed) {
    TMERGE_TRACE_SCOPE("stream.window.close", now_seconds,
                       {"camera", camera.camera_id},
                       {"window", window.window_index});
    TMERGE_OBS({
      static obs::Counter& counter = StreamCounter("stream.windows_closed");
      counter.Add();
    });
    // Pairless windows never reach a selector in the batch path either
    // (EvaluateSelector skips them), so they close silently.
    if (window.pairs.empty()) continue;
    director_.OnMergeInputProcessed(
        static_cast<std::int64_t>(window.pairs.size()));
    PendingWindow pending;
    pending.window = std::move(window);
    pending.ready_seconds = now_seconds;
    camera.pending_windows.push_back(std::move(pending));
  }
}

bool StreamService::ScheduleCameraJobLocked(CameraState& camera,
                                            double now_seconds,
                                            MergeJob& job) {
  if (camera.job_inflight || camera.pending_windows.empty()) return false;
  std::int32_t batch = std::min<std::int32_t>(
      config_.max_windows_per_merge_job,
      static_cast<std::int32_t>(camera.pending_windows.size()));
  std::int64_t total_pairs = 0;
  for (std::int32_t i = 0; i < batch; ++i) {
    total_pairs +=
        static_cast<std::int64_t>(camera.pending_windows[i].window.pairs.size());
  }
  if (!director_.CanScheduleMergeJob(total_pairs)) return false;
  director_.OnMergeJobStarted(total_pairs);
  camera.job_inflight = true;
  // Brackets the admitted job's build (window batch + track copies) so
  // the timeline shows where admission happened and what it cost.
  TMERGE_TRACE_SCOPE("stream.director.admit", now_seconds,
                     {"camera", camera.camera_id}, {"pairs", total_pairs});

  job.camera_id = camera.camera_id;
  job.camera = &camera;
  job.total_pairs = total_pairs;
  job.admit_seconds = now_seconds;
  job.windows.reserve(batch);
  std::unordered_set<track::TrackId> wanted;
  for (std::int32_t i = 0; i < batch; ++i) {
    PendingWindow& pending = camera.pending_windows.front();
    for (const metrics::TrackPairKey& key : pending.window.pairs) {
      wanted.insert(key.first);
      wanted.insert(key.second);
    }
    job.windows.push_back(std::move(pending));
    camera.pending_windows.pop_front();
  }
  // Copy the referenced tracks out of the live tracking result: the
  // camera keeps retiring tracks into it while this job runs, and a
  // push_back may reallocate under a concurrent reader. The copies carry
  // the same ids and boxes the batch PairContext would see.
  const track::TrackingResult& live = camera.tracker.result();
  job.tracks.tracker_name = live.tracker_name;
  job.tracks.num_frames = live.num_frames;
  job.tracks.frame_width = live.frame_width;
  job.tracks.frame_height = live.frame_height;
  job.tracks.fps = live.fps;
  job.tracks.tracks.reserve(wanted.size());
  for (const track::Track& track : live.tracks) {
    if (wanted.contains(track.id)) job.tracks.tracks.push_back(track);
  }

  ++inflight_jobs_;
  ++merge_jobs_run_;
  TMERGE_OBS({
    static obs::Counter& counter = StreamCounter("stream.merge_jobs");
    counter.Add();
  });
  TMERGE_TRACE_INSTANT("stream.merge_job.submit", now_seconds,
                       {"camera", camera.camera_id}, {"windows", batch});
  return true;
}

std::vector<StreamService::MergeJob> StreamService::PumpLocked(
    double now_seconds) {
  for (auto& camera : cameras_) DrainCameraLocked(*camera, now_seconds);
  std::vector<MergeJob> jobs;
  for (auto& camera : cameras_) {
    MergeJob job;
    if (ScheduleCameraJobLocked(*camera, now_seconds, job)) {
      jobs.push_back(std::move(job));
    }
  }
  TMERGE_OBS({
    if (obs::Enabled()) {
      obs::MetricsRegistry& registry = obs::DefaultRegistry();
      static obs::Gauge& queued = registry.GetGauge("stream.queued_frames");
      static obs::Gauge& open_windows =
          registry.GetGauge("stream.open_windows");
      static obs::Gauge& pending = registry.GetGauge("stream.pending_pairs");
      static obs::Gauge& inflight =
          registry.GetGauge("stream.inflight_merge_jobs");
      queued.Set(static_cast<double>(queued_frames_));
      std::int64_t open = 0;
      for (const auto& camera : cameras_) {
        open += camera->windower.open_windows();
      }
      open_windows.Set(static_cast<double>(open));
      pending.Set(static_cast<double>(director_.stats().pending_pairs));
      inflight.Set(static_cast<double>(inflight_jobs_));
      for (const auto& camera : cameras_) {
        if (camera->queue_gauge != nullptr) {
          camera->queue_gauge->Set(
              static_cast<double>(camera->frame_queue.size()));
        }
      }
    }
    if (obs::TraceRecorder::Default().recording()) {
      obs::TraceCounter("stream.queued_frames", queued_frames_, now_seconds);
      obs::TraceCounter("stream.inflight_merge_jobs", inflight_jobs_,
                        now_seconds);
      obs::TraceCounter("stream.pending_pairs",
                        director_.stats().pending_pairs, now_seconds);
      // First stall flush with a post-mortem path configured: arm the dump
      // (written by the caller once the mutex is released).
      if (!stall_dump_written_ && !stall_dump_pending_ &&
          !config_.stall_post_mortem_path.empty() &&
          director_.stats().stall_flushes > 0) {
        stall_dump_pending_ = true;
      }
    }
  });
  return jobs;
}

void StreamService::MaybeWriteStallPostMortem() {
  bool write = false;
  {
    core::MutexLock lock(mutex_);
    if (stall_dump_pending_ && !stall_dump_written_) {
      stall_dump_written_ = true;
      write = true;
    }
    stall_dump_pending_ = false;
  }
  if (!write) return;
  obs::TraceSnapshot snapshot =
      obs::TraceRecorder::Default().Snapshot(kPostMortemEventsPerThread);
  if (obs::WriteChromeTraceFile(config_.stall_post_mortem_path, snapshot)) {
    std::fprintf(stderr,
                 "stream: stall watchdog fired; flight-recorder post-mortem "
                 "written to %s (%zu events)\n",
                 config_.stall_post_mortem_path.c_str(),
                 snapshot.events.size());
  } else {
    std::fprintf(stderr,
                 "stream: stall watchdog fired but post-mortem write to %s "
                 "failed\n",
                 config_.stall_post_mortem_path.c_str());
  }
}

void StreamService::Dispatch(std::vector<MergeJob> jobs) {
  for (MergeJob& job : jobs) {
    if (!pool_) {
      ExecuteChain(std::move(job));
      continue;
    }
    // shared_ptr because std::function requires a copyable callable.
    auto shared = std::make_shared<MergeJob>(std::move(job));
    core::Status status =
        pool_->Submit([this, shared] { ExecuteChain(std::move(*shared)); });
    if (!status.ok()) {
      // Saturated executor ("core.pool.submit" failpoint): degrade to
      // inline execution instead of dropping the job.
      {
        core::MutexLock lock(mutex_);
        ++inline_fallbacks_;
      }
      ExecuteChain(std::move(*shared));
    }
  }
}

void StreamService::ExecuteChain(MergeJob job) {
  // A worklist, not recursion: in serial mode one long stream chains
  // hundreds of jobs and must not grow the stack with them.
  std::deque<MergeJob> local;
  local.push_back(std::move(job));
  while (!local.empty()) {
    MergeJob current = std::move(local.front());
    local.pop_front();
    std::vector<WindowOutcome> outcomes = RunMergeJob(current);
    std::vector<MergeJob> next;
    {
      TMERGE_TRACE_SCOPE("stream.merge_job.reduce", obs::kTraceNoSimTime,
                         {"camera", current.camera_id});
      core::MutexLock lock(mutex_);
      CameraState& camera = *current.camera;
      for (WindowOutcome& outcome : outcomes) {
        // Service-side ingest-to-result latency, per camera and fleet-wide.
        if (camera.latency_hist != nullptr) {
          camera.latency_hist->Record(outcome.latency_seconds);
        }
        TMERGE_OBS({
          static obs::Histogram& latency = obs::DefaultRegistry().GetHistogram(
              "stream.ingest_to_result.seconds");
          latency.Record(outcome.latency_seconds);
        });
        camera.outcomes.push_back(std::move(outcome));
      }
      camera.job_inflight = false;
      --inflight_jobs_;
      director_.OnMergeJobFinished(current.total_pairs);
      // Completing a job frees budget on both sides: drain what the
      // director now admits and schedule follow-up jobs.
      next = PumpLocked(now_watermark_);
      idle_cv_.NotifyAll();
    }
    for (MergeJob& follow : next) {
      if (!pool_) {
        local.push_back(std::move(follow));
        continue;
      }
      auto shared = std::make_shared<MergeJob>(std::move(follow));
      core::Status status =
          pool_->Submit([this, shared] { ExecuteChain(std::move(*shared)); });
      if (!status.ok()) {
        {
          core::MutexLock lock(mutex_);
          ++inline_fallbacks_;
        }
        local.push_back(std::move(*shared));
      }
    }
  }
}

std::vector<StreamService::WindowOutcome> StreamService::RunMergeJob(
    MergeJob& job) {
  TMERGE_SPAN("stream.merge_job.seconds");
  TMERGE_TRACE_SCOPE("stream.merge_job.run", job.admit_seconds,
                     {"camera", job.camera_id},
                     {"windows",
                      static_cast<std::int64_t>(job.windows.size())});
  std::vector<WindowOutcome> outcomes;
  outcomes.reserve(job.windows.size());
  for (PendingWindow& pending : job.windows) {
    merge::SelectorOptions options = config_.selector;
    // The batch pipeline's per-window derivation, verbatim — this is what
    // makes every streamed SelectionResult bit-identical to its batch
    // counterpart (EvaluateSelector in merge/pipeline.cc).
    options.seed =
        config_.selector.seed + 1009 * (pending.window.window_index + 1);
    if (embed_scheduler_) options.embed_scheduler = embed_scheduler_.get();
    merge::PairContext context(job.tracks, pending.window.pairs);
    WindowOutcome outcome;
    outcome.window_pairs =
        static_cast<std::int64_t>(pending.window.pairs.size());
    {
      TMERGE_SPAN("stream.select.seconds");
      TMERGE_TRACE_SCOPE("stream.merge_job.select", job.admit_seconds,
                         {"camera", job.camera_id},
                         {"window", pending.window.window_index});
      outcome.selection = selector_.Select(context, *job.camera->config.model,
                                           job.camera->cache, options);
    }
    // Service-side close latency: how long the closed window waited for
    // admission, plus the simulated selection time of the window itself.
    outcome.latency_seconds = (job.admit_seconds - pending.ready_seconds) +
                              outcome.selection.simulated_seconds;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

StreamResult StreamService::Finish(double now_seconds) {
  {
    core::MutexLock lock(mutex_);
    TMERGE_CHECK(!finished_);
    now_watermark_ = std::max(now_watermark_, now_seconds);
    for (auto& camera : cameras_) {
      if (!camera->close_requested) {
        camera->close_requested = true;
        --open_cameras_;
      }
    }
    if (open_cameras_ == 0) director_.OnStreamCompleted();
  }

  // Drain loop. Every iteration either runs jobs, observes progress made
  // by PumpLocked (frames drained, trackers finished), or blocks on a job
  // completion — with force-flush on, the director always admits the next
  // step, so the loop terminates (DESIGN.md §11, liveness argument).
  bool done = false;
  while (!done) {
    std::vector<MergeJob> jobs;
    {
      core::MutexLock lock(mutex_);
      jobs = PumpLocked(now_watermark_);
      if (jobs.empty()) {
        if (AllIdleLocked()) {
          done = true;
        } else if (inflight_jobs_ > 0) {
          std::int64_t before = inflight_jobs_;
          while (inflight_jobs_ >= before && !AllIdleLocked()) {
            idle_cv_.Wait(mutex_);
          }
        }
      }
    }
    Dispatch(std::move(jobs));
    MaybeWriteStallPostMortem();
  }

  // Clean end-of-stream drain: no scheduler batch may be left in flight
  // once every merge job has completed (scheduler_fault_test pins the
  // zero-outstanding invariant this asserts).
  if (embed_scheduler_) embed_scheduler_->Flush();

  core::MutexLock lock(mutex_);
  finished_ = true;
  return BuildResultLocked();
}

bool StreamService::AllIdleLocked() const {
  if (inflight_jobs_ > 0) return false;
  for (const auto& camera : cameras_) {
    if (!camera->frame_queue.empty()) return false;
    if (!camera->tracker_finished) return false;
    if (!camera->pending_windows.empty()) return false;
    if (camera->job_inflight) return false;
  }
  return true;
}

StreamResult StreamService::BuildResultLocked() {
  StreamResult out;
  out.cameras.reserve(cameras_.size());
  for (const auto& camera_ptr : cameras_) {
    const CameraState& camera = *camera_ptr;
    CameraStreamResult per;
    per.camera_id = camera.camera_id;
    per.frames_ingested = camera.frames_ingested;
    per.frames_dropped = camera.frames_dropped;
    per.tracks_finalized =
        static_cast<std::int64_t>(camera.tracker.result().tracks.size());
    per.window_close_latency_seconds.reserve(camera.outcomes.size());
    // Window-order accumulation — the same floating-point sequence as
    // EvaluateSelector's per-window loop.
    std::set<metrics::TrackPairKey> selected;
    for (const WindowOutcome& outcome : camera.outcomes) {
      const merge::SelectionResult& selection = outcome.selection;
      per.simulated_seconds += selection.simulated_seconds;
      per.usage += selection.usage;
      per.box_pairs_evaluated += selection.box_pairs_evaluated;
      per.failed_pulls += selection.failed_pulls;
      per.reid_retries += selection.reid_retries;
      if (selection.degraded) ++per.degraded_windows;
      per.pairs += outcome.window_pairs;
      ++per.windows;
      for (const metrics::TrackPairKey& pair : selection.candidates) {
        selected.insert(pair);
      }
      per.window_close_latency_seconds.push_back(outcome.latency_seconds);
    }
    per.candidates.assign(selected.begin(), selected.end());

    // Camera-order reduction — EvaluateDataset's video-order sequence.
    out.simulated_seconds += per.simulated_seconds;
    out.usage += per.usage;
    out.box_pairs_evaluated += per.box_pairs_evaluated;
    out.failed_pulls += per.failed_pulls;
    out.reid_retries += per.reid_retries;
    out.degraded_windows += per.degraded_windows;
    out.windows += per.windows;
    out.pairs += per.pairs;
    out.frames_ingested += per.frames_ingested;
    out.frames_dropped += per.frames_dropped;
    out.tracks_finalized += per.tracks_finalized;
    out.cameras.push_back(std::move(per));
  }
  out.backpressure_events = backpressure_events_;
  out.peak_queued_frames = peak_queued_frames_;
  out.merge_jobs_run = merge_jobs_run_;
  out.merge_jobs_inline_fallback = inline_fallbacks_;
  out.director = director_.stats();
  return out;
}

std::int64_t StreamService::queued_frames() const {
  core::MutexLock lock(mutex_);
  return queued_frames_;
}

}  // namespace tmerge::stream
