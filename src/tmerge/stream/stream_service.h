#ifndef TMERGE_STREAM_STREAM_SERVICE_H_
#define TMERGE_STREAM_STREAM_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "tmerge/core/mutex.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/core/thread_annotations.h"
#include "tmerge/core/thread_pool.h"
#include "tmerge/detect/detection_simulator.h"
#include "tmerge/merge/selector.h"
#include "tmerge/merge/window.h"
#include "tmerge/reid/embed_scheduler.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/reid_model.h"
#include "tmerge/stream/incremental_windower.h"
#include "tmerge/stream/merge_director.h"
#include "tmerge/track/sort_tracker.h"
#include "tmerge/track/track.h"

namespace tmerge::stream {

/// Configuration of the long-running ingestion service.
struct StreamServiceConfig {
  MergeDirectorConfig director;
  /// Windowing applied per camera (the same knobs as the batch pipeline).
  merge::WindowConfig window;
  /// Selector options shared by every merge job. Per-window seeds are
  /// derived exactly as merge::EvaluateSelector derives them
  /// (seed + 1009 * (window_index + 1)), which is what makes streamed
  /// SelectionResults bit-identical to the batch pipeline's.
  merge::SelectorOptions selector;
  /// Merge-job workers: 0 = hardware_concurrency, 1 = run merge jobs
  /// inline on the ingesting thread (the serial reference path; results
  /// are identical either way, per the repo-wide threading convention).
  int num_threads = 1;
  /// Bound on frames buffered per camera awaiting ingest admission. A
  /// full buffer surfaces as IngestOutcome::kBackpressure to the caller —
  /// the knob that keeps ingest memory bounded when the director defers.
  std::int32_t max_queued_frames_per_camera = 256;
  /// Intermediate-pair estimate charged per admitted ingest step (frames
  /// mostly close no window, so this is a small smoothing constant, not a
  /// per-window pair count). Clamped to the intermediate budget so a
  /// misconfiguration can never wedge admission permanently.
  std::int64_t ingest_pair_estimate = 16;
  /// Cap on closed windows batched into one merge job.
  std::int32_t max_windows_per_merge_job = 4;
  /// When non-empty and the flight recorder is capturing
  /// (obs::TraceRecorder::Default().recording()), the first stall-watchdog
  /// force-flush writes a Chrome-trace post-mortem — the recorder's most
  /// recent events per thread — to this path, once per service. The write
  /// happens outside the service mutex; an I/O failure warns on stderr and
  /// is otherwise ignored (post-mortems must never take the service down).
  std::string stall_post_mortem_path;
  /// When true the service owns a reid::EmbedScheduler bound to its own
  /// pool and injects it into every merge job's SelectorOptions
  /// (embed_scheduler), so a gated selector with prefetch_ambiguous
  /// coalesces embed requests across windows and cameras. Finish drains
  /// the scheduler (Flush) before building the result. Off by default:
  /// without it selector options pass through untouched, preserving the
  /// ungated bit-identity contract.
  bool enable_embed_scheduler = false;
  reid::EmbedSchedulerConfig embed_scheduler;
};

/// One camera's stream registration.
struct CameraConfig {
  std::int32_t num_frames = 0;
  double frame_width = 0.0;
  double frame_height = 0.0;
  double fps = 30.0;
  track::SortConfig sort;
  /// ReID model embedding this camera's crops (per-camera, like the batch
  /// pipeline's per-video SyntheticReidModel). Shared-ptr because merge
  /// jobs hold it across scheduling points; must be safely callable from
  /// concurrent jobs of *other* cameras (all shipped models are).
  std::shared_ptr<const reid::ReidModel> model;
};

/// Verdict of one IngestFrame call.
enum class IngestOutcome : std::uint8_t {
  /// Frame accepted (buffered; processed as admission allows).
  kAccepted = 0,
  /// Camera buffer full — admission control has ingest blocked. Retry
  /// after sim-time advances (merge completions drain the backlog).
  kBackpressure = 1,
  /// The "stream.camera.drop_frame" failpoint dropped the frame in
  /// transport: its detections are lost (an empty frame advances the
  /// tracker clock instead), modeling camera outage / network loss.
  kDropped = 2,
  /// Unknown camera id or the camera's stream was already closed.
  kRejected = 3,
};

/// Everything the service accumulated for one camera, reduced in window
/// order (the same floating-point accumulation order as the batch
/// EvaluateSelector, so the totals are bit-comparable).
struct CameraStreamResult {
  std::int32_t camera_id = 0;
  /// Dedup-sorted union of selected candidates across the camera's
  /// windows — elementwise equal to the batch EvalResult::candidates for
  /// the same video, selector and seeds.
  std::vector<metrics::TrackPairKey> candidates;
  reid::UsageStats usage;
  double simulated_seconds = 0.0;
  std::int64_t windows = 0;  ///< Windows with a nonempty pair set.
  std::int64_t pairs = 0;
  std::int64_t box_pairs_evaluated = 0;
  std::int64_t failed_pulls = 0;
  std::int64_t reid_retries = 0;
  std::int64_t degraded_windows = 0;
  std::int64_t frames_ingested = 0;
  std::int64_t frames_dropped = 0;
  std::int64_t tracks_finalized = 0;
  /// Per merged window, in window order: sim-seconds from the window
  /// becoming closable to its merge job being admitted, plus the
  /// simulated selection time of the window itself — the service-side
  /// window-close latency bench_stream reports the p99 of.
  std::vector<double> window_close_latency_seconds;
};

/// Aggregated outcome of a whole streaming session.
struct StreamResult {
  std::vector<CameraStreamResult> cameras;
  // Ordered reduction over cameras (camera order, then window order) —
  // the batch EvaluateDataset accumulation sequence.
  reid::UsageStats usage;
  double simulated_seconds = 0.0;
  std::int64_t windows = 0;
  std::int64_t pairs = 0;
  std::int64_t box_pairs_evaluated = 0;
  std::int64_t failed_pulls = 0;
  std::int64_t reid_retries = 0;
  std::int64_t degraded_windows = 0;
  std::int64_t frames_ingested = 0;
  std::int64_t frames_dropped = 0;
  std::int64_t tracks_finalized = 0;
  /// IngestFrame calls bounced with kBackpressure.
  std::int64_t backpressure_events = 0;
  /// High-water mark of frames buffered across all cameras.
  std::int64_t peak_queued_frames = 0;
  std::int64_t merge_jobs_run = 0;
  /// Merge jobs that ran inline because ThreadPool::Submit rejected them
  /// (the "core.pool.submit" failpoint's degradation path).
  std::int64_t merge_jobs_inline_fallback = 0;
  MergeDirectorStats director;
};

/// Long-running multi-camera ingestion service (ROADMAP item 1): frames
/// arrive per camera, windows close incrementally
/// (stream::IncrementalWindower over track::StreamingSortTracker), and a
/// MergeDirector decides when enough candidate pairs have accumulated to
/// schedule a batched selection/merge job on the shared core::ThreadPool.
///
/// Determinism contract: per camera, merge jobs run strictly in window
/// order against the camera's own FeatureCache, with per-window seeds
/// derived as in the batch pipeline — so each window's SelectionResult is
/// bit-identical to the batch path's no matter how jobs interleave across
/// cameras or how often backpressure engages. Scheduling *counters*
/// (deferrals, backpressure events, job count) are timing-dependent under
/// num_threads > 1; the selection outputs are not. bench_stream
/// --check-determinism pins this.
///
/// Time: the service never reads a wall clock. Callers stamp IngestFrame /
/// CloseCamera / Finish with simulated seconds (frame timestamps); the
/// director's stall watchdog and the latency metrics run on those stamps.
///
/// Concurrency: one mutex guards all control state (camera registry,
/// queues, director bookkeeping). Ingest (tracking + window closure) runs
/// under it; merge jobs — the expensive ReID/selection work — run outside
/// it on pool workers. Per-camera state touched by a running job (the
/// FeatureCache, the job's private track copies) is exclusive to that job
/// by the one-job-per-camera rule; handoff between consecutive jobs is
/// ordered by the service mutex and the pool queue.
class StreamService {
 public:
  explicit StreamService(const StreamServiceConfig& config,
                         merge::CandidateSelector& selector);
  ~StreamService();

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Registers a camera; returns its id (dense, starting at 0).
  std::int32_t AddCamera(const CameraConfig& camera) TMERGE_EXCLUDES(mutex_);

  /// Feeds the next frame of `camera_id` at simulated time `now_seconds`.
  /// Frames must arrive in frame order per camera. A kBackpressure verdict
  /// means the caller keeps the frame and retries after advancing sim
  /// time. When the camera's buffer is full but merge jobs are in flight,
  /// the call waits for a completion instead of bouncing — the wait yields
  /// the service mutex, so a producer hammering a full queue can never
  /// starve the workers whose completions would unblock it; kBackpressure
  /// is returned only when there is nothing in flight to wait for.
  IngestOutcome IngestFrame(std::int32_t camera_id,
                            const detect::DetectionFrame& frame,
                            double now_seconds) TMERGE_EXCLUDES(mutex_);

  /// Declares end-of-stream for one camera: once its buffered frames
  /// drain, its tracker finishes and remaining windows force-flush. When
  /// every camera is closed the director enters stream-completed
  /// force-flush mode.
  void CloseCamera(std::int32_t camera_id, double now_seconds)
      TMERGE_EXCLUDES(mutex_);

  /// Closes any still-open cameras, drains every queue and in-flight
  /// merge job (blocking), and returns the aggregated result. The service
  /// is spent afterwards; further ingest is rejected.
  StreamResult Finish(double now_seconds) TMERGE_EXCLUDES(mutex_);

  /// Current frames buffered across all cameras (diagnostics/tests).
  std::int64_t queued_frames() const TMERGE_EXCLUDES(mutex_);

  MergeDirectorStats director_stats() const { return director_.stats(); }

  const StreamServiceConfig& config() const { return config_; }

 private:
  /// A window whose pair set is final, waiting for a merge job.
  struct PendingWindow {
    merge::WindowPairs window;
    double ready_seconds = 0.0;
  };

  /// One scheduled merge job: a contiguous in-order run of a camera's
  /// pending windows plus private copies of every track they reference
  /// (the camera's live TrackingResult keeps growing, so jobs never read
  /// it). Executed outside the service mutex.
  struct CameraState;

  struct MergeJob {
    std::int32_t camera_id = 0;
    /// Stable owner pointer (cameras_ holds unique_ptrs), captured under
    /// the mutex at schedule time. Outside the lock the job only touches
    /// the camera's job-exclusive state (FeatureCache, model).
    CameraState* camera = nullptr;
    std::vector<PendingWindow> windows;
    /// Private copies of the referenced tracks (ids + boxes identical to
    /// the batch tracking result's, which is all selectors read).
    track::TrackingResult tracks;
    std::int64_t total_pairs = 0;
    double admit_seconds = 0.0;
  };

  struct WindowOutcome {
    merge::SelectionResult selection;
    std::int64_t window_pairs = 0;
    double latency_seconds = 0.0;
  };

  struct CameraState {
    std::int32_t camera_id = 0;
    CameraConfig config;
    track::StreamingSortTracker tracker;
    IncrementalWindower windower;
    /// Frames accepted but not yet admitted by the director.
    std::deque<detect::DetectionFrame> frame_queue;
    /// Closed windows with nonempty pair sets, awaiting a merge job.
    std::deque<PendingWindow> pending_windows;
    /// Embedding cache shared by this camera's merge jobs (in window
    /// order — the batch pipeline's per-video cross-window reuse).
    /// Accessed only by the camera's single in-flight job.
    reid::FeatureCache cache;
    bool job_inflight = false;
    bool close_requested = false;
    bool tracker_finished = false;
    /// SelectionResults in window order (jobs per camera are serial).
    std::vector<WindowOutcome> outcomes;
    std::int64_t frames_ingested = 0;
    std::int64_t frames_dropped = 0;
    /// Per-camera ingest-to-result latency histogram and queue-depth
    /// gauge, registered under obs::LabeledName(..., {{"camera", id}}) at
    /// AddCamera time. Null when compiled with TMERGE_OBS_DISABLED;
    /// updates self-gate on obs::Enabled() either way.
    obs::Histogram* latency_hist = nullptr;
    obs::Gauge* queue_gauge = nullptr;

    CameraState(std::int32_t id, const CameraConfig& camera,
                const merge::WindowConfig& window);
  };

  /// Drains admissible frames of one camera through tracking and window
  /// closure, then registers any newly pending pairs with the director.
  void DrainCameraLocked(CameraState& camera, double now_seconds)
      TMERGE_REQUIRES(mutex_);

  /// Finishes a camera whose stream closed and whose queue drained.
  void FinishCameraLocked(CameraState& camera, double now_seconds)
      TMERGE_REQUIRES(mutex_);

  /// Registers freshly closed windows as pending merge input.
  void EnqueueClosedLocked(CameraState& camera,
                           std::vector<merge::WindowPairs> closed,
                           double now_seconds) TMERGE_REQUIRES(mutex_);

  /// One full admission pass: drain every camera's queue, then collect
  /// every merge job the director admits right now.
  std::vector<MergeJob> PumpLocked(double now_seconds)
      TMERGE_REQUIRES(mutex_);

  /// Builds the next merge job for `camera` if the director admits one.
  bool ScheduleCameraJobLocked(CameraState& camera, double now_seconds,
                               MergeJob& job) TMERGE_REQUIRES(mutex_);

  /// Runs jobs: pool mode submits (inline fallback on Submit rejection),
  /// serial mode executes on the calling thread. Never holds the mutex.
  void Dispatch(std::vector<MergeJob> jobs) TMERGE_EXCLUDES(mutex_);

  /// Executes `job` and every follow-up job that completing it makes
  /// schedulable (loop, not recursion, so serial mode cannot blow the
  /// stack on long streams).
  void ExecuteChain(MergeJob job) TMERGE_EXCLUDES(mutex_);

  /// Selector work of one job (no lock held): one Select per window, in
  /// window order, against the camera's cache.
  std::vector<WindowOutcome> RunMergeJob(MergeJob& job);

  /// True when every queue, tracker, pending list and job has drained.
  bool AllIdleLocked() const TMERGE_REQUIRES(mutex_);

  /// Ordered (camera, then window) reduction into the final result.
  StreamResult BuildResultLocked() TMERGE_REQUIRES(mutex_);

  /// Writes the flight-recorder post-mortem if a stall flush was detected
  /// (PumpLocked sets the pending flag) and one hasn't been written yet.
  /// Called from the public entry points after the mutex is released —
  /// the dump itself (snapshot + file write) never holds the service lock.
  void MaybeWriteStallPostMortem() TMERGE_EXCLUDES(mutex_);

  const StreamServiceConfig config_;
  /// ingest_pair_estimate clamped into [1, max_intermediate_pairs]: an
  /// estimate larger than the whole budget could never be admitted and
  /// would wedge the drain loop.
  const std::int64_t ingest_estimate_;
  merge::CandidateSelector& selector_;
  MergeDirector director_;
  /// Null in serial mode (num_threads == 1), matching the pipeline's
  /// convention that 1 means "no threads at all".
  std::unique_ptr<core::ThreadPool> pool_;
  /// Present iff config.enable_embed_scheduler; bound to pool_ (so merge
  /// jobs running ON pool workers compute inline — the scheduler's
  /// reentrancy rule — while main-thread callers go async). Declared after
  /// pool_ so it is destroyed first.
  std::unique_ptr<reid::EmbedScheduler> embed_scheduler_;

  mutable core::Mutex mutex_;
  core::CondVar idle_cv_;
  std::vector<std::unique_ptr<CameraState>> cameras_ TMERGE_GUARDED_BY(mutex_);
  std::int32_t open_cameras_ TMERGE_GUARDED_BY(mutex_) = 0;
  bool finished_ TMERGE_GUARDED_BY(mutex_) = false;
  double now_watermark_ TMERGE_GUARDED_BY(mutex_) = 0.0;
  std::int64_t queued_frames_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t peak_queued_frames_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t backpressure_events_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t inflight_jobs_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t merge_jobs_run_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t inline_fallbacks_ TMERGE_GUARDED_BY(mutex_) = 0;
  /// Stall post-mortem state: pending is set by PumpLocked when the
  /// director reports its first stall flush; written latches after the
  /// one-and-only dump.
  bool stall_dump_pending_ TMERGE_GUARDED_BY(mutex_) = false;
  bool stall_dump_written_ TMERGE_GUARDED_BY(mutex_) = false;
};

}  // namespace tmerge::stream

#endif  // TMERGE_STREAM_STREAM_SERVICE_H_
