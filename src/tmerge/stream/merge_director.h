#ifndef TMERGE_STREAM_MERGE_DIRECTOR_H_
#define TMERGE_STREAM_MERGE_DIRECTOR_H_

#include <cstdint>

#include "tmerge/core/mutex.h"
#include "tmerge/core/thread_annotations.h"

namespace tmerge::stream {

/// Budgets and timeouts of the admission controller. Defaults are sized
/// for the synthetic profiles (hundreds of pairs per window); bench_stream
/// and the soak tests shrink them to force backpressure on purpose.
struct MergeDirectorConfig {
  /// Ceiling on candidate pairs resident in the system: pending (closed
  /// windows waiting for a merge job) plus the estimates of admitted
  /// ingest jobs that have not reported their actual pair counts yet.
  /// Ingest admission is denied once this budget would be exceeded — the
  /// backpressure-before-memory-pressure contract.
  std::int64_t max_intermediate_pairs = 65536;
  /// A merge job is only worth scheduling once this many pairs are
  /// pending (amortizes per-job overhead), except in force-flush mode.
  std::int64_t min_pairs_per_merge_job = 512;
  /// Concurrent merge jobs allowed in flight.
  std::int32_t max_inflight_merge_jobs = 8;
  /// Simulated seconds the ingest side may stay blocked on the pair
  /// budget before the director force-flushes (schedules merge jobs below
  /// min_pairs_per_merge_job) to break the stall. <= 0 disables the
  /// watchdog (force-flush then only happens at stream end).
  double stall_timeout_seconds = 5.0;
};

/// Point-in-time view of the director's accounting, for tests and the
/// service's metrics export.
struct MergeDirectorStats {
  std::int64_t pending_pairs = 0;
  std::int64_t estimated_pairs = 0;
  std::int64_t inflight_merge_jobs = 0;
  std::int64_t ingest_jobs_admitted = 0;
  std::int64_t ingest_jobs_deferred = 0;
  std::int64_t merge_jobs_admitted = 0;
  std::int64_t merge_jobs_deferred = 0;
  std::int64_t force_flushes = 0;
  /// The subset of force_flushes triggered by the stall watchdog (as
  /// opposed to end-of-stream): a nonzero value means ingest was wedged on
  /// the pair budget for stall_timeout_seconds of sim time — the signal
  /// StreamService's flight-recorder post-mortem dump keys on.
  std::int64_t stall_flushes = 0;
  bool force_flush = false;
};

/// Admission controller for the streaming pipeline, modeled on the
/// auto-merge director pattern (SNIPPETS.md Snippet 1): "task jobs"
/// (ingest work that closes windows and produces intermediate candidate
/// pairs) and "merge jobs" (batched ReID/selection over pending pairs)
/// compete under two budgets —
///
///   - an intermediate-pair budget: ingest is admitted only while
///     pending + in-flight-estimated pairs stay within
///     max_intermediate_pairs, so the frame queues back up (visible,
///     bounded backpressure) instead of the pair pool (unbounded memory);
///   - an in-flight-job budget: at most max_inflight_merge_jobs merge
///     jobs run concurrently, and a job is only scheduled once
///     min_pairs_per_merge_job pairs are pending — unless force-flush is
///     on, when any nonzero backlog is admissible.
///
/// Force-flush turns on at stream end (OnStreamCompleted) and when the
/// ingest side has been continuously deferred for stall_timeout_seconds
/// of *simulated* time (the caller passes sim-time into the admission
/// probes; the director never reads a wall clock). It turns back off as
/// soon as ingest makes progress again mid-stream.
///
/// State machine (DESIGN.md §11):
///
///     FLOWING --budget exhausted--> BLOCKED --stall timeout--> FLUSHING
///        ^                            |                           |
///        |---- ingest admitted -------+--- pending drained -------|
///
/// Thread-safe: every method takes the internal mutex; the service calls
/// the probes from its own locked region, merge-job completions from pool
/// threads.
class MergeDirector {
 public:
  explicit MergeDirector(const MergeDirectorConfig& config);

  /// True when an ingest step expected to produce `estimated_pairs` new
  /// candidate pairs may run at simulated time `now_seconds`. A denial
  /// counts as a deferral and starts (or continues) the stall clock; a
  /// denial that has lasted stall_timeout_seconds flips force-flush on.
  bool CanScheduleIngestJob(std::int64_t estimated_pairs, double now_seconds)
      TMERGE_EXCLUDES(mutex_);

  /// Reserves `estimated_pairs` against the intermediate budget. Call
  /// only after CanScheduleIngestJob approved the same estimate.
  void OnIngestJobStarted(std::int64_t estimated_pairs)
      TMERGE_EXCLUDES(mutex_);

  /// Releases the reservation made by OnIngestJobStarted. The pairs the
  /// job actually produced are reported separately via
  /// OnMergeInputProcessed (they may differ from the estimate in either
  /// direction, as in Snippet 1's scenario).
  void OnIngestJobFinished(std::int64_t estimated_pairs)
      TMERGE_EXCLUDES(mutex_);

  /// Adds `actual_pairs` pairs to the pending (mergeable) pool.
  void OnMergeInputProcessed(std::int64_t actual_pairs)
      TMERGE_EXCLUDES(mutex_);

  /// True when a merge job over `pending_pairs` of the pool may start:
  /// the in-flight budget has room and the batch is either large enough
  /// or force-flush is on (then any nonzero batch goes). Denials are
  /// counted. The "stream.director.defer" failpoint, keyed by the probe
  /// ticket, forces a deferral to model scheduler hiccups.
  bool CanScheduleMergeJob(std::int64_t pending_pairs)
      TMERGE_EXCLUDES(mutex_);

  void OnMergeJobStarted(std::int64_t pairs_taken) TMERGE_EXCLUDES(mutex_);

  /// Completes one merge job that drained `pairs_processed` pairs from
  /// the pool; ingest may resume if the budget recovered.
  void OnMergeJobFinished(std::int64_t pairs_processed)
      TMERGE_EXCLUDES(mutex_);

  /// The stream ended: force-flush stays on until the pool is empty, so
  /// every remaining pair is merged regardless of batch-size thresholds.
  void OnStreamCompleted() TMERGE_EXCLUDES(mutex_);

  /// True while small-batch merge jobs are admissible (stream completed
  /// or stall watchdog fired).
  bool force_flush() const TMERGE_EXCLUDES(mutex_);

  MergeDirectorStats stats() const TMERGE_EXCLUDES(mutex_);

  const MergeDirectorConfig& config() const { return config_; }

 private:
  /// Shared accounting for both admission outcomes of the ingest probe.
  void NoteIngestDeferred(double now_seconds) TMERGE_REQUIRES(mutex_);

  const MergeDirectorConfig config_;
  mutable core::Mutex mutex_;
  /// Pairs sitting in closed windows, waiting for a merge job.
  std::int64_t pending_pairs_ TMERGE_GUARDED_BY(mutex_) = 0;
  /// Estimates reserved by admitted-but-unfinished ingest jobs.
  std::int64_t estimated_pairs_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int32_t inflight_merge_jobs_ TMERGE_GUARDED_BY(mutex_) = 0;
  bool stream_completed_ TMERGE_GUARDED_BY(mutex_) = false;
  bool stall_flush_ TMERGE_GUARDED_BY(mutex_) = false;
  /// Sim-time when the current run of consecutive ingest deferrals
  /// started; < 0 when ingest is not blocked.
  double blocked_since_seconds_ TMERGE_GUARDED_BY(mutex_) = -1.0;
  /// Monotonic ticket per merge-admission probe; keys the
  /// "stream.director.defer" failpoint.
  std::uint64_t merge_probe_tickets_ TMERGE_GUARDED_BY(mutex_) = 0;
  // Counters (stats()).
  std::int64_t ingest_admitted_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t ingest_deferred_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t merge_admitted_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t merge_deferred_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t force_flushes_ TMERGE_GUARDED_BY(mutex_) = 0;
  std::int64_t stall_flushes_ TMERGE_GUARDED_BY(mutex_) = 0;
};

}  // namespace tmerge::stream

#endif  // TMERGE_STREAM_MERGE_DIRECTOR_H_
