#ifndef TMERGE_STREAM_INCREMENTAL_WINDOWER_H_
#define TMERGE_STREAM_INCREMENTAL_WINDOWER_H_

#include <cstdint>
#include <vector>

#include "tmerge/merge/window.h"
#include "tmerge/track/track.h"

namespace tmerge::stream {

/// Incremental version of merge::BuildWindows for one camera stream:
/// windows close as soon as their pair sets are provably final, instead of
/// all at once after the video ends.
///
/// The batch windower buckets tracks by the half-window stride their first
/// frame falls in; window c pairs bucket c against itself and bucket c-1,
/// and pair admissibility depends on both tracks' *final* extents. Window
/// c's pair set is therefore final exactly when
///
///   1. the frame watermark has passed the end of stride c (no track can
///      be born into bucket c anymore), and
///   2. every track born before the end of stride c has retired (its
///      extent cannot grow, so admissibility checks are final).
///
/// Advance() closes every window whose closure condition newly holds;
/// Finish() closes the rest (the stream-end force-flush). Feeding the
/// whole stream and concatenating the closures yields a window list
/// element-for-element identical to BuildWindows on the final
/// TrackingResult (pinned by IncrementalWindowerTest.MatchesBatchWindows).
///
/// Thread-confined like the streaming tracker it consumes.
class IncrementalWindower {
 public:
  /// `num_frames` is the declared stream length (needed to clamp the last
  /// bucket exactly as BuildWindows does).
  IncrementalWindower(const merge::WindowConfig& config,
                      std::int32_t num_frames);

  /// Registers newly finalized tracks and the new frame watermark
  /// (`frames_observed` frames seen, `min_active_first_frame` the oldest
  /// birth frame still active — INT32_MAX when none). `tracks` is the
  /// camera's full finalized track list in retirement order; only indices
  /// >= the count seen so far are consumed. Returns the windows that
  /// became closable, in window order.
  std::vector<merge::WindowPairs> Advance(
      const std::vector<track::Track>& tracks, std::int32_t frames_observed,
      std::int32_t min_active_first_frame);

  /// Stream end: every remaining window closes. Idempotent.
  std::vector<merge::WindowPairs> Finish(
      const std::vector<track::Track>& tracks);

  /// Index of the next window that has not closed yet.
  std::int32_t next_window() const { return next_window_; }

  /// Windows whose pair sets exist but have not closed yet (the "open
  /// windows" gauge of the service).
  std::int32_t open_windows() const;

  bool finished() const { return finished_; }

 private:
  /// Closes windows [next_window_, first stride that cannot close),
  /// appending non-empty ones to `closed`.
  void CloseUpTo(std::int32_t bucket_end,
                 const std::vector<track::Track>& tracks,
                 std::vector<merge::WindowPairs>& closed);

  /// Consumes tracks [tracks_seen_, tracks.size()) into buckets.
  void AbsorbTracks(const std::vector<track::Track>& tracks);

  merge::WindowConfig config_;
  std::int32_t num_frames_;
  std::int32_t length_;
  std::int32_t half_;
  std::int32_t num_buckets_;
  /// Bucket -> indices into the camera's finalized track list, in
  /// retirement order (matching BuildWindows' iteration order).
  std::vector<std::vector<std::size_t>> buckets_;
  std::size_t tracks_seen_ = 0;
  std::int32_t next_window_ = 0;
  std::int32_t watermark_ = 0;
  bool finished_ = false;
};

}  // namespace tmerge::stream

#endif  // TMERGE_STREAM_INCREMENTAL_WINDOWER_H_
