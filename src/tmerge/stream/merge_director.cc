#include "tmerge/stream/merge_director.h"

#include "tmerge/core/mutex.h"
#include "tmerge/core/status.h"
#include "tmerge/fault/failpoint.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/obs/span.h"

namespace tmerge::stream {

#ifndef TMERGE_OBS_DISABLED
namespace {

obs::Counter& DirectorCounter(const char* name) {
  return obs::DefaultRegistry().GetCounter(name);
}

}  // namespace
#endif  // TMERGE_OBS_DISABLED

MergeDirector::MergeDirector(const MergeDirectorConfig& config)
    : config_(config) {
  TMERGE_CHECK(config_.max_intermediate_pairs > 0);
  TMERGE_CHECK(config_.min_pairs_per_merge_job > 0);
  TMERGE_CHECK(config_.max_inflight_merge_jobs > 0);
}

void MergeDirector::NoteIngestDeferred(double now_seconds) {
  ++ingest_deferred_;
  TMERGE_OBS({
    static obs::Counter& deferred =
        DirectorCounter("stream.director.ingest_deferred");
    deferred.Add();
  });
  TMERGE_TRACE_INSTANT("stream.director.ingest_defer", now_seconds);
  if (blocked_since_seconds_ < 0.0) {
    blocked_since_seconds_ = now_seconds;
    return;
  }
  if (config_.stall_timeout_seconds > 0.0 && !stall_flush_ &&
      now_seconds - blocked_since_seconds_ >= config_.stall_timeout_seconds) {
    stall_flush_ = true;
    ++force_flushes_;
    ++stall_flushes_;
    TMERGE_OBS({
      static obs::Counter& flushes =
          DirectorCounter("stream.director.force_flushes");
      flushes.Add();
    });
    TMERGE_TRACE_INSTANT("stream.director.force_flush", now_seconds,
                         {"stall", 1});
  }
}

bool MergeDirector::CanScheduleIngestJob(std::int64_t estimated_pairs,
                                         double now_seconds) {
  core::MutexLock lock(mutex_);
  if (pending_pairs_ + estimated_pairs_ + estimated_pairs >
      config_.max_intermediate_pairs) {
    NoteIngestDeferred(now_seconds);
    return false;
  }
  ++ingest_admitted_;
  // Ingest flows again: the stall clock resets and a watchdog-triggered
  // flush (unlike the end-of-stream one) switches back off.
  blocked_since_seconds_ = -1.0;
  stall_flush_ = false;
  return true;
}

void MergeDirector::OnIngestJobStarted(std::int64_t estimated_pairs) {
  core::MutexLock lock(mutex_);
  estimated_pairs_ += estimated_pairs;
}

void MergeDirector::OnIngestJobFinished(std::int64_t estimated_pairs) {
  core::MutexLock lock(mutex_);
  estimated_pairs_ -= estimated_pairs;
  if (estimated_pairs_ < 0) estimated_pairs_ = 0;
}

void MergeDirector::OnMergeInputProcessed(std::int64_t actual_pairs) {
  core::MutexLock lock(mutex_);
  pending_pairs_ += actual_pairs;
}

bool MergeDirector::CanScheduleMergeJob(std::int64_t pending_pairs) {
  core::MutexLock lock(mutex_);
  std::uint64_t ticket = merge_probe_tickets_++;
  if (pending_pairs <= 0) return false;
  bool deferred = false;
  if (inflight_merge_jobs_ >= config_.max_inflight_merge_jobs) {
    deferred = true;
  } else if (!(stream_completed_ || stall_flush_)) {
    if (pending_pairs < config_.min_pairs_per_merge_job) {
      deferred = true;
    } else if (TMERGE_FAILPOINT("stream.director.defer", ticket)) {
      // Injected scheduler hiccup: a job that was admissible is deferred
      // anyway, exercising the retry/backpressure path. Never consulted in
      // force-flush mode — the flush is the liveness guarantee that drains
      // the stream, so even a 100%-probability spec cannot wedge Finish.
      deferred = true;
    }
  }
  if (deferred) {
    ++merge_deferred_;
    TMERGE_OBS({
      static obs::Counter& counter =
          DirectorCounter("stream.director.merge_deferred");
      counter.Add();
    });
    TMERGE_TRACE_INSTANT("stream.director.merge_defer",
                         obs::kTraceNoSimTime, {"pairs", pending_pairs});
    return false;
  }
  ++merge_admitted_;
  TMERGE_OBS({
    static obs::Counter& counter =
        DirectorCounter("stream.director.merge_admitted");
    counter.Add();
  });
  return true;
}

void MergeDirector::OnMergeJobStarted(std::int64_t pairs_taken) {
  core::MutexLock lock(mutex_);
  ++inflight_merge_jobs_;
  pending_pairs_ -= pairs_taken;
  if (pending_pairs_ < 0) pending_pairs_ = 0;
}

void MergeDirector::OnMergeJobFinished(std::int64_t pairs_processed) {
  (void)pairs_processed;
  core::MutexLock lock(mutex_);
  --inflight_merge_jobs_;
  if (inflight_merge_jobs_ < 0) inflight_merge_jobs_ = 0;
}

void MergeDirector::OnStreamCompleted() {
  core::MutexLock lock(mutex_);
  if (!stream_completed_) {
    stream_completed_ = true;
    ++force_flushes_;
    TMERGE_OBS({
      static obs::Counter& flushes =
          DirectorCounter("stream.director.force_flushes");
      flushes.Add();
    });
    TMERGE_TRACE_INSTANT("stream.director.force_flush",
                         obs::kTraceNoSimTime, {"stall", 0});
  }
}

bool MergeDirector::force_flush() const {
  core::MutexLock lock(mutex_);
  return stream_completed_ || stall_flush_;
}

MergeDirectorStats MergeDirector::stats() const {
  core::MutexLock lock(mutex_);
  MergeDirectorStats stats;
  stats.pending_pairs = pending_pairs_;
  stats.estimated_pairs = estimated_pairs_;
  stats.inflight_merge_jobs = inflight_merge_jobs_;
  stats.ingest_jobs_admitted = ingest_admitted_;
  stats.ingest_jobs_deferred = ingest_deferred_;
  stats.merge_jobs_admitted = merge_admitted_;
  stats.merge_jobs_deferred = merge_deferred_;
  stats.force_flushes = force_flushes_;
  stats.stall_flushes = stall_flushes_;
  stats.force_flush = stream_completed_ || stall_flush_;
  return stats;
}

}  // namespace tmerge::stream
