#ifndef TMERGE_OBS_TRACE_H_
#define TMERGE_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

// Header-only annotated lock wrappers, freestanding like metrics.h's
// includes — tmerge_obs stays std-only at link time.
#include "tmerge/core/mutex.h"
#include "tmerge/core/thread_annotations.h"
#include "tmerge/obs/trace_clock.h"

namespace tmerge::obs {

/// Chrome-trace phases the recorder understands. kBegin/kEnd bracket a
/// duration on one thread's timeline ("B"/"E"), kInstant marks a point
/// ("i"), kCounter samples a value series ("C").
enum class TracePhase : std::uint8_t {
  kBegin = 0,
  kEnd = 1,
  kInstant = 2,
  kCounter = 3,
};

/// One optional integer argument attached to an event (camera id, window
/// index, pair count). `key` must be a string literal (or otherwise
/// outlive the recorder) — events store the pointer, never a copy.
struct TraceArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// Sentinel for "no simulated timestamp": events record wall (trace-clock)
/// time always, sim time only when the caller has one in hand.
inline constexpr double kTraceNoSimTime =
    -std::numeric_limits<double>::infinity();

/// One decoded flight-recorder event (read side; the ring slots themselves
/// are atomic fields, see trace.cc).
struct TraceEvent {
  const char* name = nullptr;  ///< Static literal, lowercase dotted.
  TracePhase phase = TracePhase::kInstant;
  /// Registration-order index of the recording thread (stable within one
  /// recorder, exported as the Chrome-trace tid).
  std::int32_t thread_index = 0;
  std::int64_t steady_ns = 0;           ///< TraceClockNanos() at record.
  double sim_seconds = kTraceNoSimTime; ///< kTraceNoSimTime when absent.
  TraceArg args[2];
};

/// Sizing of one recorder. Memory is strictly bounded:
///   max_threads * RoundUpPow2(events_per_thread) * sizeof(slot)
/// (sizeof(slot) is 72 bytes; TraceRecorder::ApproxMemoryBytes() reports
/// the exact figure). Threads beyond max_threads record nothing and are
/// counted in TraceSnapshot::dropped_threads.
struct TraceRecorderOptions {
  std::size_t events_per_thread = 8192;
  std::size_t max_threads = 128;
};

/// Read-side copy of the recorder: events merged across threads, ordered
/// by (steady_ns, thread registration order, per-thread record order).
struct TraceSnapshot {
  std::vector<TraceEvent> events;
  /// Events ever recorded, including ones the rings have since overwritten.
  std::int64_t total_recorded = 0;
  /// Threads that arrived after max_threads buffers were handed out; their
  /// events were dropped entirely.
  std::int64_t dropped_threads = 0;
};

/// Lock-free flight recorder: each recording thread owns a fixed-size ring
/// of event slots and publishes into it with relaxed atomic stores plus a
/// per-slot sequence word (a seqlock), so the hot path is wait-free and
/// never blocks on — or is blocked by — a reader. Readers (Snapshot, the
/// post-mortem dumps) run concurrently with writers and simply skip slots
/// that are mid-write or already overwritten; under wraparound they see
/// the newest `events_per_thread` events per thread, which is the flight-
/// recorder contract.
///
/// Recording is default-off behind the same style of gate as
/// obs::SetEnabled: one relaxed load per instrumentation site while
/// stopped, and the TMERGE_TRACE_* macros below compile out entirely
/// under TMERGE_OBS_DISABLED. Event names and arg keys must be string
/// literals — slots store pointers, never copies.
class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceRecorderOptions& options = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder the TMERGE_TRACE_* macros and span
  /// integration record into. Leaked like DefaultRegistry().
  static TraceRecorder& Default();

  /// Clears every ring and enables recording.
  void Start();

  /// Disables recording. Buffered events stay readable.
  void Stop();

  /// True while events are being captured. One relaxed load — the only
  /// cost a non-tracing process pays per instrumentation site.
  bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Resets every ring (drops buffered events) without toggling the gate.
  /// Safe concurrently with writers; a handful of in-flight events may
  /// survive the clear.
  void Clear();

  /// Records one event on the calling thread's ring. No-op while stopped.
  void Record(const char* name, TracePhase phase,
              double sim_seconds = kTraceNoSimTime, TraceArg arg0 = {},
              TraceArg arg1 = {});

  /// Test hook: like Record but with an explicit trace-clock timestamp,
  /// so golden exports are byte-stable.
  void RecordAt(std::int64_t steady_ns, const char* name, TracePhase phase,
                double sim_seconds = kTraceNoSimTime, TraceArg arg0 = {},
                TraceArg arg1 = {});

  /// Copies out the newest `last_n_per_thread` events of every thread
  /// (all of them by default), merged and time-ordered.
  TraceSnapshot Snapshot(
      std::size_t last_n_per_thread = std::numeric_limits<std::size_t>::max())
      const TMERGE_EXCLUDES(mutex_);

  /// Exact bytes held in ring slots right now (registered threads only).
  std::size_t ApproxMemoryBytes() const TMERGE_EXCLUDES(mutex_);

  const TraceRecorderOptions& options() const { return options_; }

 private:
  struct ThreadBuffer;

  /// This thread's buffer in this recorder (registering it on first use),
  /// or nullptr once max_threads buffers exist.
  ThreadBuffer* BufferForThisThread() TMERGE_EXCLUDES(mutex_);

  const TraceRecorderOptions options_;
  const std::size_t capacity_;  ///< events_per_thread rounded up to 2^k.
  const std::uint64_t id_;      ///< Process-unique, keys thread caches.
  std::atomic<bool> recording_{false};
  std::atomic<std::int64_t> dropped_threads_{0};

  mutable core::Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      TMERGE_GUARDED_BY(mutex_);
};

/// Serializes a snapshot in Chrome trace-event JSON (the "JSON Array
/// Format" wrapped in {"traceEvents": [...]}), loadable in chrome://tracing
/// and Perfetto. Timestamps are microseconds relative to the snapshot's
/// earliest event; events with a simulated timestamp carry it as a
/// "sim_s" arg. Deterministic for a deterministic snapshot
/// (golden-testable).
std::string ExportChromeTrace(const TraceSnapshot& snapshot);

/// Streams ExportChromeTrace (for benches writing trace files).
void WriteChromeTrace(std::ostream& os, const TraceSnapshot& snapshot);

/// Writes ExportChromeTrace of `snapshot` to `path`. Returns false on I/O
/// failure (callers decide whether that is fatal; post-mortem dumps warn
/// and continue).
bool WriteChromeTraceFile(const std::string& path,
                          const TraceSnapshot& snapshot);

/// Convenience wrappers the macros expand to: gate check + Default()
/// record in one call.
inline void TraceInstant(const char* name,
                         double sim_seconds = kTraceNoSimTime,
                         TraceArg arg0 = {}, TraceArg arg1 = {}) {
  TraceRecorder& recorder = TraceRecorder::Default();
  if (recorder.recording()) {
    recorder.Record(name, TracePhase::kInstant, sim_seconds, arg0, arg1);
  }
}

inline void TraceCounter(const char* name, std::int64_t value,
                         double sim_seconds = kTraceNoSimTime) {
  TraceRecorder& recorder = TraceRecorder::Default();
  if (recorder.recording()) {
    recorder.Record(name, TracePhase::kCounter, sim_seconds,
                    TraceArg{"value", value});
  }
}

/// RAII begin/end pair on the default recorder. Arms only if recording at
/// construction; a disarmed scope does no clock reads and records nothing.
/// Args are attached to both the begin and end events.
class TraceScope {
 public:
  explicit TraceScope(const char* name,
                      double sim_seconds = kTraceNoSimTime,
                      TraceArg arg0 = {}, TraceArg arg1 = {}) {
    TraceRecorder& recorder = TraceRecorder::Default();
    if (recorder.recording()) {
      name_ = name;
      arg0_ = arg0;
      arg1_ = arg1;
      recorder.Record(name, TracePhase::kBegin, sim_seconds, arg0, arg1);
    }
  }

  ~TraceScope() {
    if (name_ != nullptr) {
      TraceRecorder::Default().Record(name_, TracePhase::kEnd,
                                      kTraceNoSimTime, arg0_, arg1_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  TraceArg arg0_;
  TraceArg arg1_;
};

}  // namespace tmerge::obs

// Trace instrumentation macros, compiled out together with the metric
// macros under TMERGE_OBS_DISABLED (span.h documents the option). Usage:
//
//   TMERGE_TRACE_SCOPE("stream.merge_job.run");                // B/E pair
//   TMERGE_TRACE_SCOPE("stream.frame.ingest", now_seconds,
//                      {"camera", camera_id});                 // with args
//   TMERGE_TRACE_INSTANT("stream.window.close", now_seconds,
//                        {"camera", id}, {"window", w});
//   TMERGE_TRACE_COUNTER("stream.queued_frames", depth);
#define TMERGE_TRACE_CONCAT_INNER(a, b) a##b
#define TMERGE_TRACE_CONCAT(a, b) TMERGE_TRACE_CONCAT_INNER(a, b)

#if defined(TMERGE_OBS_DISABLED)

#define TMERGE_TRACE_SCOPE(...)
#define TMERGE_TRACE_INSTANT(...)
#define TMERGE_TRACE_COUNTER(...)

#else

#define TMERGE_TRACE_SCOPE(...)                         \
  ::tmerge::obs::TraceScope TMERGE_TRACE_CONCAT(        \
      tmerge_trace_scope_, __LINE__)(__VA_ARGS__)

#define TMERGE_TRACE_INSTANT(...) ::tmerge::obs::TraceInstant(__VA_ARGS__)

#define TMERGE_TRACE_COUNTER(...) ::tmerge::obs::TraceCounter(__VA_ARGS__)

#endif  // TMERGE_OBS_DISABLED

#endif  // TMERGE_OBS_TRACE_H_
