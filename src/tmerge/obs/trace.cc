#include "tmerge/obs/trace.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "tmerge/core/mutex.h"

namespace tmerge::obs {

namespace {

std::size_t RoundUpPow2(std::size_t value) {
  std::size_t pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

// Recorder ids are handed out once and never reused, so a thread cache
// keyed by id can never alias a destroyed recorder (tests create and
// destroy local recorders freely).
std::uint64_t NextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// One thread's ring. Every slot field is atomic and accessed relaxed, so
// concurrent snapshot reads are formally race-free; the per-slot `seq`
// word (a seqlock) is what makes them *consistent*: a reader only accepts
// a slot whose seq equals 2*(event_index+1) both before and after reading
// the fields, which rejects slots that are mid-write or were overwritten
// by a ring wrap between the two checks.
struct TraceRecorder::ThreadBuffer {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 2i+1 writing event i, 2(i+1) done.
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint8_t> phase{0};
    std::atomic<std::int64_t> steady_ns{0};
    std::atomic<double> sim_seconds{0.0};
    std::atomic<const char*> arg_key0{nullptr};
    std::atomic<std::int64_t> arg_value0{0};
    std::atomic<const char*> arg_key1{nullptr};
    std::atomic<std::int64_t> arg_value1{0};
  };

  ThreadBuffer(std::size_t capacity, std::int32_t index)
      : thread_index(index), slots(capacity) {}

  const std::int32_t thread_index;
  /// Events this thread has ever recorded here; slot i lives at
  /// i & (capacity-1). Advances only after the slot's seq is published.
  std::atomic<std::uint64_t> head{0};
  std::vector<Slot> slots;
};

TraceRecorder::TraceRecorder(const TraceRecorderOptions& options)
    : options_(options),
      capacity_(RoundUpPow2(std::max<std::size_t>(options.events_per_thread,
                                                  std::size_t{2}))),
      id_(NextRecorderId()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Default() {
  // Leaked like DefaultRegistry(): threads may record during static
  // destruction of other objects.
  static TraceRecorder* recorder =
      new TraceRecorder();  // tmerge-lint: allow(naked-new)
  return *recorder;
}

void TraceRecorder::Start() {
  Clear();
  recording_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  recording_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  core::MutexLock lock(mutex_);
  for (auto& buffer : buffers_) {
    // Resetting head is enough: readers bound themselves by head, so the
    // stale slots behind it become unreachable, and their stale seq words
    // can never match a post-clear event index until that index is
    // actually rewritten.
    buffer->head.store(0, std::memory_order_release);
  }
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  struct Cache {
    std::uint64_t recorder_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  // Cached per (thread, recorder id); ids are never reused, so a stale
  // entry for a destroyed recorder simply misses and re-registers.
  thread_local Cache cache;
  if (cache.recorder_id == id_) {
    return cache.buffer;
  }
  ThreadBuffer* buffer = nullptr;
  {
    core::MutexLock lock(mutex_);
    if (buffers_.size() < options_.max_threads) {
      buffers_.push_back(std::make_unique<ThreadBuffer>(
          capacity_, static_cast<std::int32_t>(buffers_.size())));
      buffer = buffers_.back().get();
    }
  }
  if (buffer == nullptr) {
    dropped_threads_.fetch_add(1, std::memory_order_relaxed);
  }
  cache = Cache{id_, buffer};
  return buffer;
}

void TraceRecorder::Record(const char* name, TracePhase phase,
                           double sim_seconds, TraceArg arg0, TraceArg arg1) {
  if (!recording()) {
    return;
  }
  RecordAt(TraceClockNanos(), name, phase, sim_seconds, arg0, arg1);
}

void TraceRecorder::RecordAt(std::int64_t steady_ns, const char* name,
                             TracePhase phase, double sim_seconds,
                             TraceArg arg0, TraceArg arg1) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer == nullptr) {
    return;  // Thread arrived after max_threads rings were handed out.
  }
  const std::uint64_t index = buffer->head.load(std::memory_order_relaxed);
  ThreadBuffer::Slot& slot = buffer->slots[index & (capacity_ - 1)];
  // Seqlock write protocol (Boehm's fence recipe): mark the slot in-flight,
  // fence so the mark is ordered before the field stores, publish fields
  // relaxed, then publish the even seq with release.
  slot.seq.store(2 * index + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.phase.store(static_cast<std::uint8_t>(phase),
                   std::memory_order_relaxed);
  slot.steady_ns.store(steady_ns, std::memory_order_relaxed);
  slot.sim_seconds.store(sim_seconds, std::memory_order_relaxed);
  slot.arg_key0.store(arg0.key, std::memory_order_relaxed);
  slot.arg_value0.store(arg0.value, std::memory_order_relaxed);
  slot.arg_key1.store(arg1.key, std::memory_order_relaxed);
  slot.arg_value1.store(arg1.value, std::memory_order_relaxed);
  slot.seq.store(2 * (index + 1), std::memory_order_release);
  buffer->head.store(index + 1, std::memory_order_release);
}

TraceSnapshot TraceRecorder::Snapshot(std::size_t last_n_per_thread) const {
  struct Ordered {
    TraceEvent event;
    std::uint64_t order = 0;  ///< Per-thread record index, for tie-breaks.
  };
  std::vector<Ordered> ordered;
  TraceSnapshot snapshot;
  snapshot.dropped_threads = dropped_threads_.load(std::memory_order_relaxed);
  {
    core::MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
      snapshot.total_recorded += static_cast<std::int64_t>(head);
      std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
      if (last_n_per_thread < head - lo) {
        lo = head - last_n_per_thread;
      }
      for (std::uint64_t i = lo; i < head; ++i) {
        const ThreadBuffer::Slot& slot = buffer->slots[i & (capacity_ - 1)];
        const std::uint64_t want = 2 * (i + 1);
        if (slot.seq.load(std::memory_order_acquire) != want) {
          continue;  // Mid-write or already overwritten by a wrap.
        }
        Ordered entry;
        entry.order = i;
        entry.event.name = slot.name.load(std::memory_order_relaxed);
        entry.event.phase = static_cast<TracePhase>(
            slot.phase.load(std::memory_order_relaxed));
        entry.event.thread_index = buffer->thread_index;
        entry.event.steady_ns =
            slot.steady_ns.load(std::memory_order_relaxed);
        entry.event.sim_seconds =
            slot.sim_seconds.load(std::memory_order_relaxed);
        entry.event.args[0] =
            TraceArg{slot.arg_key0.load(std::memory_order_relaxed),
                     slot.arg_value0.load(std::memory_order_relaxed)};
        entry.event.args[1] =
            TraceArg{slot.arg_key1.load(std::memory_order_relaxed),
                     slot.arg_value1.load(std::memory_order_relaxed)};
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != want) {
          continue;  // Overwritten while we were reading: discard.
        }
        ordered.push_back(entry);
      }
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Ordered& a, const Ordered& b) {
              if (a.event.steady_ns != b.event.steady_ns) {
                return a.event.steady_ns < b.event.steady_ns;
              }
              if (a.event.thread_index != b.event.thread_index) {
                return a.event.thread_index < b.event.thread_index;
              }
              return a.order < b.order;
            });
  snapshot.events.reserve(ordered.size());
  for (const Ordered& entry : ordered) {
    snapshot.events.push_back(entry.event);
  }
  return snapshot;
}

std::size_t TraceRecorder::ApproxMemoryBytes() const {
  core::MutexLock lock(mutex_);
  return buffers_.size() * capacity_ * sizeof(ThreadBuffer::Slot);
}

namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                          sizeof(buf) - 1));
  }
}

char PhaseChar(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return 'B';
    case TracePhase::kEnd:
      return 'E';
    case TracePhase::kInstant:
      return 'i';
    case TracePhase::kCounter:
      return 'C';
  }
  return 'i';
}

}  // namespace

std::string ExportChromeTrace(const TraceSnapshot& snapshot) {
  // Chrome trace-event "JSON Object Format": a traceEvents array of
  // {name, cat, ph, pid, tid, ts} records, ts in microseconds. Timestamps
  // are normalized to the snapshot's earliest event so timelines start at
  // zero regardless of the steady clock's epoch.
  std::int64_t min_ns = 0;
  if (!snapshot.events.empty()) {
    min_ns = snapshot.events.front().steady_ns;
    for (const TraceEvent& event : snapshot.events) {
      min_ns = std::min(min_ns, event.steady_ns);
    }
  }
  std::string out;
  out.reserve(128 + snapshot.events.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot.events) {
    if (event.name == nullptr) {
      continue;  // A torn or cleared slot that slipped through: drop it.
    }
    if (!first) {
      out += ",\n";
    } else {
      out += "\n";
      first = false;
    }
    out += "{\"name\":\"";
    out += event.name;
    AppendF(out, "\",\"cat\":\"tmerge\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d",
            PhaseChar(event.phase), event.thread_index);
    AppendF(out, ",\"ts\":%.3f",
            static_cast<double>(event.steady_ns - min_ns) / 1000.0);
    if (event.phase == TracePhase::kInstant) {
      out += ",\"s\":\"t\"";  // Thread-scoped instant (Perfetto arrow tick).
    }
    const bool has_sim = event.sim_seconds != kTraceNoSimTime;
    const bool has_args =
        has_sim || event.args[0].key != nullptr || event.args[1].key != nullptr;
    if (has_args) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const TraceArg& arg : event.args) {
        if (arg.key == nullptr) {
          continue;
        }
        if (!first_arg) {
          out += ",";
        }
        first_arg = false;
        out += "\"";
        out += arg.key;
        AppendF(out, "\":%lld", static_cast<long long>(arg.value));
      }
      if (has_sim) {
        if (!first_arg) {
          out += ",";
        }
        AppendF(out, "\"sim_s\":%.9g", event.sim_seconds);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void WriteChromeTrace(std::ostream& os, const TraceSnapshot& snapshot) {
  os << ExportChromeTrace(snapshot);
}

bool WriteChromeTraceFile(const std::string& path,
                          const TraceSnapshot& snapshot) {
  std::ofstream os(path, std::ios::out | std::ios::trunc);
  if (!os) {
    return false;
  }
  os << ExportChromeTrace(snapshot);
  os.flush();
  return os.good();
}

}  // namespace tmerge::obs
