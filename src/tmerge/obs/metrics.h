#ifndef TMERGE_OBS_METRICS_H_
#define TMERGE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

// Header-only annotated lock wrappers. tmerge_obs stays std-only at link
// time (no dependency on tmerge_core's objects); these two core headers are
// freestanding, so including them creates no layering cycle.
#include "tmerge/core/mutex.h"
#include "tmerge/core/thread_annotations.h"

namespace tmerge::obs {

namespace internal {

/// Global runtime switch backing Enabled(). Off by default: a library user
/// who never touches tmerge::obs pays only one relaxed load per
/// instrumentation site.
extern std::atomic<bool> g_enabled;

/// Number of per-metric shards. Each writer thread is pinned to one shard
/// (round-robin by thread), so concurrent updates of one metric from up to
/// kShards threads never contend on a cache line.
inline constexpr std::size_t kShards = 8;

/// This thread's shard index in [0, kShards).
std::size_t ShardIndex();

/// One cache-line-sized counter cell, so neighbouring shards never falsely
/// share a line.
struct alignas(64) CounterCell {
  std::atomic<std::int64_t> value{0};
};

/// One cache-line-sized accumulator cell for double-valued sums.
struct alignas(64) SumCell {
  std::atomic<double> value{0.0};
};

/// Lock-free add on an atomic double (CAS loop; fetch_add on double is
/// C++20 but not yet universally lock-free).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// True when instrumentation is runtime-enabled. Every metric write checks
/// this first, so a disabled process does no atomic RMW work and no clock
/// reads — the near-zero-overhead off state the benches' overhead guard
/// relies on. (Compile-time removal is separate: see TMERGE_OBS_DISABLED
/// in span.h, which erases the instrumentation sites themselves.)
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the runtime switch. Typically called once at startup (benches read
/// the TMERGE_OBS environment variable; see bench_util).
void SetEnabled(bool enabled);

/// Monotonically increasing integer metric. Writes are relaxed atomic adds
/// on a per-thread shard; Value() sums the shards, so a read concurrent
/// with writes sees some valid intermediate total.
class Counter {
 public:
  void Add(std::int64_t delta = 1) {
    if (!Enabled()) return;
    cells_[internal::ShardIndex()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::CounterCell, internal::kShards> cells_;
};

/// Last-write-wins double metric (queue depths, configuration values).
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// plus an implicit +Inf overflow bucket, Prometheus-style. Each shard owns
/// a private run of bucket cells and a sum cell; Record is two relaxed
/// atomic ops on this thread's shard. Count is derived from the buckets
/// (every recorded value lands in exactly one).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value) {
    if (!Enabled()) return;
    std::size_t shard = internal::ShardIndex();
    buckets_[shard * stride_ + BucketOf(value)].fetch_add(
        1, std::memory_order_relaxed);
    internal::AtomicAddDouble(sums_[shard].value, value);
  }

  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket counts merged across shards; size bounds().size() + 1,
  /// last entry the +Inf bucket.
  std::vector<std::int64_t> BucketCounts() const;

  std::int64_t Count() const;
  double Sum() const;
  void Reset();

 private:
  std::size_t BucketOf(double value) const;

  std::vector<double> bounds_;
  std::size_t stride_;  // bounds_.size() + 1, padded to a cache line.
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::array<internal::SumCell, internal::kShards> sums_;
};

/// Default bucket bounds for duration histograms (spans): 1 microsecond to
/// 100 seconds, decade-spaced.
std::vector<double> DurationBounds();

/// Default bucket bounds for count-valued histograms (iterations per
/// window, posterior pseudo-counts): 1 to 1e6, roughly decade-spaced.
std::vector<double> CountBounds();

/// Read-side copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;
  /// bounds.size() + 1 entries; last is the +Inf overflow bucket.
  std::vector<std::int64_t> bucket_counts;
  std::int64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of a whole registry, ordered by name (so exports and
/// golden tests are deterministic). Mergeable: shards, processes or repeat
/// runs can be combined by summation.
struct RegistrySnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Adds `other` into this snapshot: counters and histogram buckets/sums
  /// add; gauges take `other`'s value (last write wins). Histograms present
  /// in both must have identical bounds.
  void MergeFrom(const RegistrySnapshot& other);
};

/// Thread-safe registry of named metrics. Registration (GetCounter etc.)
/// takes mutex_ — the annotated lock guarding only the name maps — and
/// returns a reference that stays valid for the registry's lifetime, so
/// instrumentation sites look a metric up once (a static local) and update
/// it lock-free afterwards: the Counter/Gauge/Histogram fast paths above
/// are sharded relaxed atomics and never touch mutex_. Names are lowercase
/// dotted paths; histograms of durations end in ".seconds" (see DESIGN.md
/// "Observability").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. A histogram's bounds are fixed by
  /// its first registration; later calls ignore the argument.
  Counter& GetCounter(const std::string& name) TMERGE_EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name) TMERGE_EXCLUDES(mutex_);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = DurationBounds())
      TMERGE_EXCLUDES(mutex_);

  RegistrySnapshot Snapshot() const TMERGE_EXCLUDES(mutex_);

  /// Zeroes every metric, keeping registrations (and thus outstanding
  /// references) intact.
  void Reset() TMERGE_EXCLUDES(mutex_);

 private:
  mutable core::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TMERGE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      TMERGE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TMERGE_GUARDED_BY(mutex_);
};

/// The process-wide registry all built-in instrumentation records into.
MetricsRegistry& DefaultRegistry();

/// One metric label (Prometheus key/value pair). Keys must be
/// `[a-zA-Z_][a-zA-Z0-9_]*`; values are arbitrary (quotes and backslashes
/// are escaped on formatting).
struct MetricLabel {
  std::string key;
  std::string value;
};

/// Builds a labeled metric name: the base name plus a canonical
/// `{key="value",...}` suffix, e.g.
///
///   LabeledName("stream.camera.queued_frames", {{"camera", "3"}})
///     == "stream.camera.queued_frames{camera=\"3\"}"
///
/// The result is an ordinary registry name — labeled variants of a metric
/// are independent Counter/Gauge/Histogram instances — but the exporters
/// understand the suffix: SnapshotToPrometheus mangles only the base and
/// emits the label block natively (merging `le` for histogram buckets),
/// and SnapshotToJson escapes the embedded quotes. Labels are emitted in
/// the order given; call sites should pick one order per family so
/// variants sort adjacently.
std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels);

}  // namespace tmerge::obs

#endif  // TMERGE_OBS_METRICS_H_
