#ifndef TMERGE_OBS_EXPORT_H_
#define TMERGE_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "tmerge/obs/metrics.h"

namespace tmerge::obs {

/// Serializes a snapshot as one JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":N,"sum":S,
///                          "buckets":[{"le":0.001,"count":2},...,
///                                     {"le":"+Inf","count":0}]}}}
/// Keys are emitted in name order, so equal snapshots serialize equally
/// (golden-testable, diffable across runs).
std::string SnapshotToJson(const RegistrySnapshot& snapshot);

/// Serializes a snapshot in Prometheus text exposition format. Metric
/// names are mangled to Prometheus conventions: prefixed "tmerge_", dots
/// replaced by underscores; histograms expand to the usual _bucket{le=}/
/// _sum/_count triple with cumulative bucket counts.
std::string SnapshotToPrometheus(const RegistrySnapshot& snapshot);

/// Streams SnapshotToJson (convenience for benches writing report lines).
void WriteJson(std::ostream& os, const RegistrySnapshot& snapshot);

}  // namespace tmerge::obs

#endif  // TMERGE_OBS_EXPORT_H_
