#ifndef TMERGE_OBS_SPAN_H_
#define TMERGE_OBS_SPAN_H_

#include "tmerge/obs/metrics.h"
#include "tmerge/obs/trace.h"
#include "tmerge/obs/trace_clock.h"

namespace tmerge::obs {

/// RAII scoped timer recording its lifetime into a duration histogram
/// (count, sum of seconds, latency distribution in one metric) and — when
/// the flight recorder is capturing — emitting a begin/end trace pair
/// under the same name, so every TMERGE_SPAN site shows up on the
/// chrome://tracing timeline for free. Metrics and tracing arm
/// independently at construction (obs::Enabled() vs
/// TraceRecorder::Default().recording()); a fully disarmed span does no
/// clock reads and records nothing.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram& histogram, const char* trace_name = nullptr) {
    if (Enabled()) {
      histogram_ = &histogram;
    }
    if (trace_name != nullptr && TraceRecorder::Default().recording()) {
      trace_name_ = trace_name;
    }
    if (histogram_ != nullptr || trace_name_ != nullptr) {
      start_ns_ = TraceClockNanos();
    }
    if (trace_name_ != nullptr) {
      TraceRecorder::Default().RecordAt(start_ns_, trace_name_,
                                        TracePhase::kBegin);
    }
  }

  ~ScopedSpan() { Stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records now, disarms, and returns the measured seconds (0.0 if the
  /// span never armed or was already stopped).
  double Stop() {
    if (histogram_ == nullptr && trace_name_ == nullptr) return 0.0;
    std::int64_t end_ns = TraceClockNanos();
    double seconds = TraceClockSecondsBetween(start_ns_, end_ns);
    if (histogram_ != nullptr) {
      histogram_->Record(seconds);
      histogram_ = nullptr;
    }
    if (trace_name_ != nullptr) {
      TraceRecorder::Default().RecordAt(end_ns, trace_name_,
                                        TracePhase::kEnd);
      trace_name_ = nullptr;
    }
    return seconds;
  }

 private:
  Histogram* histogram_ = nullptr;
  const char* trace_name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace tmerge::obs

// Instrumentation macros. These are the only pieces of the obs API affected
// by TMERGE_OBS_DISABLED: defining it (the TMERGE_OBS_DISABLED CMake
// option applies it globally) compiles every TMERGE_SPAN / TMERGE_OBS site
// out of the binary entirely. The registry classes above stay available
// either way, so exporters, tests and explicit callers keep compiling.
//
//   TMERGE_SPAN("prepare.detect.seconds");   // times the enclosing scope
//   TMERGE_OBS(counter.Add(n));              // arbitrary instrumentation
#define TMERGE_OBS_CONCAT_INNER(a, b) a##b
#define TMERGE_OBS_CONCAT(a, b) TMERGE_OBS_CONCAT_INNER(a, b)

#if defined(TMERGE_OBS_DISABLED)

#define TMERGE_SPAN(name)
#define TMERGE_OBS(...)

#else

/// Times the enclosing scope into the default registry's duration
/// histogram named `name` (a string literal; the metric is looked up once
/// per site via a static local) and, when the flight recorder is
/// capturing, emits a begin/end trace pair under the same name.
#define TMERGE_SPAN(name)                                                  \
  static ::tmerge::obs::Histogram& TMERGE_OBS_CONCAT(tmerge_span_metric_,  \
                                                     __LINE__) =           \
      ::tmerge::obs::DefaultRegistry().GetHistogram(                       \
          (name), ::tmerge::obs::DurationBounds());                        \
  ::tmerge::obs::ScopedSpan TMERGE_OBS_CONCAT(tmerge_span_, __LINE__)(     \
      TMERGE_OBS_CONCAT(tmerge_span_metric_, __LINE__), (name))

/// Wraps instrumentation-only statements so they vanish under
/// TMERGE_OBS_DISABLED.
#define TMERGE_OBS(...) __VA_ARGS__

#endif  // TMERGE_OBS_DISABLED

#endif  // TMERGE_OBS_SPAN_H_
