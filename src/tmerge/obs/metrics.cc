#include "tmerge/obs/metrics.h"

#include <algorithm>

#include "tmerge/core/mutex.h"

namespace tmerge::obs {

namespace internal {

std::atomic<bool> g_enabled{false};

std::size_t ShardIndex() {
  // Round-robin shard assignment at first use per thread: cheaper and more
  // evenly spread than hashing thread ids, and stable for the thread's
  // lifetime so its writes stay on one cache line.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

// Pads a histogram's per-shard bucket run to a whole number of cache lines
// so shards never share one.
std::size_t PaddedStride(std::size_t num_buckets) {
  constexpr std::size_t kPerLine = 64 / sizeof(std::atomic<std::int64_t>);
  return (num_buckets + kPerLine - 1) / kPerLine * kPerLine;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), stride_(PaddedStride(bounds_.size() + 1)) {
  std::size_t cells = stride_ * internal::kShards;
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketOf(double value) const {
  // First bound >= value; past-the-end means the +Inf overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> merged(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < internal::kShards; ++shard) {
    for (std::size_t b = 0; b < merged.size(); ++b) {
      merged[b] +=
          buckets_[shard * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::int64_t Histogram::Count() const {
  std::int64_t total = 0;
  for (std::int64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& cell : sums_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  std::size_t cells = stride_ * internal::kShards;
  for (std::size_t i = 0; i < cells; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& cell : sums_) cell.value.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DurationBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

std::vector<double> CountBounds() {
  return {1.0, 4.0, 16.0, 64.0, 256.0, 1e3, 4e3, 1.6e4, 1e5, 1e6};
}

void RegistrySnapshot::MergeFrom(const RegistrySnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, hist);
    if (inserted) continue;
    HistogramSnapshot& mine = it->second;
    // Merging histograms with different bucketing would silently misbin;
    // bounds are fixed at first registration, so this indicates two
    // registries disagreeing on a metric's meaning.
    if (mine.bounds != hist.bounds ||
        mine.bucket_counts.size() != hist.bucket_counts.size()) {
      continue;
    }
    for (std::size_t b = 0; b < mine.bucket_counts.size(); ++b) {
      mine.bucket_counts[b] += hist.bucket_counts[b];
    }
    mine.count += hist.count;
    mine.sum += hist.sum;
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  core::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  core::MutexLock lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot hist;
    hist.bounds = histogram->bounds();
    hist.bucket_counts = histogram->BucketCounts();
    for (std::int64_t c : hist.bucket_counts) hist.count += c;
    hist.sum = histogram->Sum();
    snapshot.histograms[name] = std::move(hist);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  core::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& DefaultRegistry() {
  // Leaked on purpose: instrumentation sites cache references for the
  // process lifetime and may fire from detached/static destructors.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // tmerge-lint: allow(naked-new)
  return *registry;
}

std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels) {
  if (labels.empty()) return base;
  std::string name = base;
  name += '{';
  bool first = true;
  for (const MetricLabel& label : labels) {
    if (!first) name += ',';
    first = false;
    name += label.key;
    name += "=\"";
    for (char c : label.value) {
      // Prometheus label-value escaping (backslash, quote, newline); the
      // JSON exporter re-escapes on output, so values round-trip there too.
      if (c == '\\' || c == '"') {
        name += '\\';
        name += c;
      } else if (c == '\n') {
        name += "\\n";
      } else {
        name += c;
      }
    }
    name += '"';
  }
  name += '}';
  return name;
}

}  // namespace tmerge::obs
