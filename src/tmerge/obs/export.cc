#include "tmerge/obs/export.h"

#include <sstream>

namespace tmerge::obs {
namespace {

// Shortest round-trippable-enough representation: %.12g avoids both
// trailing-zero noise ("0.500000") and precision loss for the counters and
// second-scale sums exported here.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

// Metric names are dotted lowercase identifiers, optionally carrying a
// LabeledName `{key="value"}` suffix whose values may embed quotes and
// backslashes — escape both for JSON.
void AppendQuoted(std::string& out, const std::string& name) {
  out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

std::string PrometheusName(const std::string& name) {
  std::string mangled = "tmerge_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    mangled += ok ? c : '_';
  }
  return mangled;
}

// A registry name split for Prometheus exposition: the mangled base plus
// the raw label block (sans braces, already escaped by LabeledName).
struct PromParts {
  std::string name;
  std::string labels;
};

PromParts SplitLabels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return PromParts{PrometheusName(name), ""};
  }
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return PromParts{PrometheusName(name.substr(0, brace)), std::move(labels)};
}

// `base{labels}` or bare `base`.
void WritePromSeries(std::ostream& os, const PromParts& parts,
                     const std::string& suffix) {
  os << parts.name << suffix;
  if (!parts.labels.empty()) os << "{" << parts.labels << "}";
}

// Bucket series need `le` merged into the label block.
void WritePromBucket(std::ostream& os, const PromParts& parts,
                     const std::string& le) {
  os << parts.name << "_bucket{";
  if (!parts.labels.empty()) os << parts.labels << ",";
  os << "le=\"" << le << "\"}";
}

// One `# TYPE` line per family: labeled variants of a metric sort
// adjacently in the snapshot's name-ordered map ('{' compares above every
// name character used in bases), so suppressing repeats is a one-token
// memo.
void WritePromType(std::ostream& os, const PromParts& parts,
                   const char* type, std::string& last_family) {
  if (parts.name == last_family) return;
  os << "# TYPE " << parts.name << " " << type << "\n";
  last_family = parts.name;
}

}  // namespace

std::string SnapshotToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ':';
    out += FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count);
    out += ",\"sum\":";
    out += FormatDouble(hist.sum);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      if (b > 0) out += ',';
      out += "{\"le\":";
      if (b < hist.bounds.size()) {
        out += FormatDouble(hist.bounds[b]);
      } else {
        out += "\"+Inf\"";
      }
      out += ",\"count\":";
      out += std::to_string(hist.bucket_counts[b]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string SnapshotToPrometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  std::string last_family;
  for (const auto& [name, value] : snapshot.counters) {
    PromParts parts = SplitLabels(name);
    WritePromType(os, parts, "counter", last_family);
    WritePromSeries(os, parts, "");
    os << " " << value << "\n";
  }
  last_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    PromParts parts = SplitLabels(name);
    WritePromType(os, parts, "gauge", last_family);
    WritePromSeries(os, parts, "");
    os << " " << FormatDouble(value) << "\n";
  }
  last_family.clear();
  for (const auto& [name, hist] : snapshot.histograms) {
    PromParts parts = SplitLabels(name);
    WritePromType(os, parts, "histogram", last_family);
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      cumulative += hist.bucket_counts[b];
      WritePromBucket(os, parts,
                      b < hist.bounds.size() ? FormatDouble(hist.bounds[b])
                                             : "+Inf");
      os << " " << cumulative << "\n";
    }
    WritePromSeries(os, parts, "_sum");
    os << " " << FormatDouble(hist.sum) << "\n";
    WritePromSeries(os, parts, "_count");
    os << " " << hist.count << "\n";
  }
  return os.str();
}

void WriteJson(std::ostream& os, const RegistrySnapshot& snapshot) {
  os << SnapshotToJson(snapshot);
}

}  // namespace tmerge::obs
