#include "tmerge/obs/export.h"

#include <sstream>

namespace tmerge::obs {
namespace {

// Shortest round-trippable-enough representation: %.12g avoids both
// trailing-zero noise ("0.500000") and precision loss for the counters and
// second-scale sums exported here.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

// Metric names are dotted lowercase identifiers (no quotes/backslashes/
// control characters), so JSON escaping reduces to quoting.
void AppendQuoted(std::string& out, const std::string& name) {
  out += '"';
  out += name;
  out += '"';
}

std::string PrometheusName(const std::string& name) {
  std::string mangled = "tmerge_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    mangled += ok ? c : '_';
  }
  return mangled;
}

}  // namespace

std::string SnapshotToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ':';
    out += FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count);
    out += ",\"sum\":";
    out += FormatDouble(hist.sum);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      if (b > 0) out += ',';
      out += "{\"le\":";
      if (b < hist.bounds.size()) {
        out += FormatDouble(hist.bounds[b]);
      } else {
        out += "\"+Inf\"";
      }
      out += ",\"count\":";
      out += std::to_string(hist.bucket_counts[b]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string SnapshotToPrometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << " " << FormatDouble(value) << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      cumulative += hist.bucket_counts[b];
      os << prom << "_bucket{le=\"";
      if (b < hist.bounds.size()) {
        os << FormatDouble(hist.bounds[b]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << prom << "_sum " << FormatDouble(hist.sum) << "\n"
       << prom << "_count " << hist.count << "\n";
  }
  return os.str();
}

void WriteJson(std::ostream& os, const RegistrySnapshot& snapshot) {
  os << SnapshotToJson(snapshot);
}

}  // namespace tmerge::obs
