#ifndef TMERGE_OBS_TRACE_CLOCK_H_
#define TMERGE_OBS_TRACE_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace tmerge::obs {

/// The one wall-clock read in the tree. Every real-time measurement —
/// trace events, span histograms, WallTimer, the thread pool's queue-wait
/// instrumentation — flows through this helper, and the repo linter
/// (tools/tmerge_lint.py) confines `steady_clock` to this header. That
/// keeps the determinism audit trivial: simulated results must never
/// depend on a value returned from here, and any new wall-clock read has
/// to either route through this function or argue its case in the lint
/// allowlist.
///
/// Returns monotonic nanoseconds from an arbitrary epoch (steady_clock's):
/// only differences are meaningful. Trace exports normalize to the
/// earliest event so Chrome/Perfetto timelines start at zero.
inline std::int64_t TraceClockNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds between two TraceClockNanos() readings.
inline double TraceClockSecondsBetween(std::int64_t start_ns,
                                       std::int64_t end_ns) {
  return static_cast<double>(end_ns - start_ns) * 1e-9;
}

}  // namespace tmerge::obs

#endif  // TMERGE_OBS_TRACE_CLOCK_H_
