#include "bench_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "tmerge/core/thread_pool.h"
#include "tmerge/fault/registry.h"
#include "tmerge/obs/export.h"
#include "tmerge/obs/metrics.h"
#include "tmerge/obs/trace.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/reid/distance_kernels.h"
#include "tmerge/merge/lcb.h"
#include "tmerge/merge/proportional.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/track/appearance_tracker.h"
#include "tmerge/track/regression_tracker.h"
#include "tmerge/track/sort_tracker.h"

namespace tmerge::bench {

std::int64_t BenchEnv::TotalFrames() const {
  std::int64_t total = 0;
  for (const auto& video : dataset->videos) total += video.num_frames;
  return total;
}

std::int64_t BenchEnv::TotalPairs() const {
  std::int64_t total = 0;
  for (const auto& video : prepared) total += video.TotalPairs();
  return total;
}

std::int64_t BenchEnv::TotalTruth() const {
  std::int64_t total = 0;
  for (const auto& video : prepared) {
    total += static_cast<std::int64_t>(video.truth.size());
  }
  return total;
}

const char* TrackerKindName(TrackerKind kind) {
  switch (kind) {
    case TrackerKind::kSort:
      return "SORT";
    case TrackerKind::kAppearance:
      return "DeepSORT";
    case TrackerKind::kRegression:
      return "Tracktor";
  }
  return "unknown";
}

int BenchNumThreads() {
  const char* env = std::getenv("TMERGE_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  // std::atoi would map garbage ("abc") silently to 0 = all cores; parse
  // strictly instead and refuse anything but a full non-negative number.
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value < 0 ||
      value > 4096) {
    std::fprintf(stderr,
                 "bench: ignoring invalid TMERGE_NUM_THREADS=\"%s\" "
                 "(want an integer in [0, 4096]); using 0 = all cores\n",
                 env);
    return 0;
  }
  return static_cast<int>(value);
}

void InitObsFromEnv() {
  const char* env = std::getenv("TMERGE_OBS");
  if (env == nullptr || std::strcmp(env, "1") == 0) {
    obs::SetEnabled(true);
    return;
  }
  if (std::strcmp(env, "0") == 0) {
    obs::SetEnabled(false);
    return;
  }
  // Strict on purpose (same policy as TMERGE_NUM_THREADS): accepting
  // "yes"/"true"/"00" loosely would let a typo silently change which code
  // path a bench measures.
  std::fprintf(stderr,
               "bench: ignoring invalid TMERGE_OBS=\"%s\" (want 0 or 1); "
               "instrumentation stays enabled (the default)\n",
               env);
  obs::SetEnabled(true);
}

void InitFaultFromEnv() {
  const char* seed_env = std::getenv("TMERGE_FAULT_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    errno = 0;
    char* end = nullptr;
    unsigned long long seed = std::strtoull(seed_env, &end, 10);
    if (errno != 0 || end == seed_env || *end != '\0') {
      std::fprintf(stderr,
                   "bench: ignoring invalid TMERGE_FAULT_SEED=\"%s\" "
                   "(want a non-negative integer); seed unchanged\n",
                   seed_env);
    } else {
      fault::GlobalRegistry().SetSeed(static_cast<std::uint64_t>(seed));
    }
  }
  const char* spec = std::getenv("TMERGE_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  // Strict like TMERGE_NUM_THREADS / TMERGE_OBS: a malformed spec arms
  // nothing (ApplySpec validates every entry before arming any).
  core::Status applied = fault::GlobalRegistry().ApplySpec(spec);
  if (!applied.ok()) {
    std::fprintf(stderr,
                 "bench: ignoring invalid TMERGE_FAULT=\"%s\": %s\n", spec,
                 applied.ToString().c_str());
  }
}

bool InitTraceFromEnv() {
  const char* env = std::getenv("TMERGE_TRACE");
  if (env == nullptr || std::strcmp(env, "0") == 0) return false;
  if (std::strcmp(env, "1") == 0) {
    obs::TraceRecorder::Default().Start();
    return true;
  }
  // Strict on purpose (TMERGE_OBS policy): a typo must never silently
  // decide whether a bench runs with the flight recorder armed.
  std::fprintf(stderr,
               "bench: ignoring invalid TMERGE_TRACE=\"%s\" (want 0 or 1); "
               "tracing stays off (the default)\n",
               env);
  return false;
}

void InitKernelsFromEnv() {
  const char* env = std::getenv("TMERGE_SCALAR_KERNELS");
  if (env == nullptr || *env == '\0') return;
  if (std::strcmp(env, "1") == 0) {
    reid::kernels::SetUseScalarKernels(true);
    return;
  }
  if (std::strcmp(env, "0") == 0) {
    reid::kernels::SetUseScalarKernels(false);
    return;
  }
  // Strict on purpose (TMERGE_OBS policy): a typo must never silently
  // decide which kernel tier a perf run measures.
  std::fprintf(stderr,
               "bench: ignoring invalid TMERGE_SCALAR_KERNELS=\"%s\" "
               "(want 0 or 1); keeping the %s kernels\n",
               env,
               reid::kernels::KernelLevelName(
                   reid::kernels::CurrentKernelLevel()));
}

std::string TraceOutputPath(const std::string& fallback) {
  const char* env = std::getenv("TMERGE_TRACE_OUT");
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

bool DumpTrace(const std::string& path, const char* why) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  if (!recorder.recording()) return false;
  obs::TraceSnapshot snapshot = recorder.Snapshot();
  if (!obs::WriteChromeTraceFile(path, snapshot)) {
    std::fprintf(stderr, "bench: failed to write %s trace to %s\n", why,
                 path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench: %s trace written (%zu events, %lld recorded)\n",
               why, snapshot.events.size(),
               static_cast<long long>(snapshot.total_recorded));
  // Flushed immediately: the watchdog dump is followed by _Exit, which
  // skips stdio teardown.
  std::cout << "TRACE_JSON " << path << "\n" << std::flush;
  return true;
}

void EmitObsSnapshot(const std::string& bench_name) {
  if (!obs::Enabled()) {
    std::cout << "(obs disabled: no instrumentation snapshot for "
              << bench_name << ")\n";
    return;
  }
  obs::RegistrySnapshot snapshot = obs::DefaultRegistry().Snapshot();
  std::cout << "OBS_JSON {\"bench\":\"" << bench_name << "\",\"metrics\":"
            << obs::SnapshotToJson(snapshot) << "}\n";
}

void EmitBenchJson(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::ostringstream out;
  out << "BENCH_JSON {\"bench\":\"" << bench_name << "\"";
  out << std::setprecision(10);
  for (const auto& [key, value] : fields) {
    out << ",\"" << key << "\":" << value;
  }
  out << "}";
  std::cout << out.str() << "\n";
}

BenchEnv PrepareEnvWithWindow(sim::DatasetProfile profile,
                              std::int32_t num_videos, TrackerKind tracker,
                              const merge::WindowConfig& window,
                              std::uint64_t seed, int num_threads) {
  InitObsFromEnv();
  InitFaultFromEnv();
  InitTraceFromEnv();
  InitKernelsFromEnv();
  BenchEnv env;
  env.name = sim::DatasetProfileName(profile);
  env.dataset = std::make_unique<sim::Dataset>(
      sim::MakeDataset(profile, num_videos, seed));

  merge::PipelineConfig config;
  config.window = window;
  config.seed = seed ^ 0xBEEFULL;

  // Per-video work (seeds derived by index, tracker objects per video), so
  // iterations are independent and results match the serial loop exactly.
  auto prepare_one = [&](std::size_t v) {
    merge::PipelineConfig per_video = config;
    per_video.seed = config.seed + 31 * (v + 1);
    const sim::SyntheticVideo& video = env.dataset->videos[v];
    // The appearance tracker needs a ReID model for this video. Build a
    // throwaway one with the same seeding PrepareVideo will use.
    if (tracker == TrackerKind::kAppearance) {
      reid::SyntheticReidModel model(video, reid::ReidModelConfig{},
                                     per_video.seed);
      track::AppearanceTracker appearance(&model);
      return merge::PrepareVideo(video, appearance, per_video);
    } else if (tracker == TrackerKind::kRegression) {
      track::RegressionTracker regression;
      return merge::PrepareVideo(video, regression, per_video);
    }
    track::SortTracker sort_tracker;
    return merge::PrepareVideo(video, sort_tracker, per_video);
  };

  std::size_t count = env.dataset->videos.size();
  env.prepared.resize(count);
  int workers = core::ResolveNumThreads(num_threads);
  if (workers == 1 || count <= 1) {
    for (std::size_t v = 0; v < count; ++v) env.prepared[v] = prepare_one(v);
  } else {
    core::ThreadPool pool(workers);
    pool.ParallelFor(0, static_cast<std::int64_t>(count), [&](std::int64_t v) {
      env.prepared[v] = prepare_one(static_cast<std::size_t>(v));
    });
  }
  return env;
}

BenchEnv PrepareEnv(sim::DatasetProfile profile, std::int32_t num_videos,
                    TrackerKind tracker, std::int32_t window_length,
                    std::uint64_t seed, int num_threads) {
  merge::WindowConfig window;
  window.single_window = profile != sim::DatasetProfile::kPathTrackLike;
  window.length = window_length;
  return PrepareEnvWithWindow(profile, num_videos, tracker, window, seed,
                              num_threads);
}

std::vector<CurvePoint> SweepMethods(const BenchEnv& env,
                                     const MethodSweepConfig& config) {
  std::vector<CurvePoint> points;
  merge::SelectorOptions options;
  options.k_fraction = config.k_fraction;
  options.batch_size = config.batch_size;
  options.seed = config.seed;
  const char* suffix = config.batch_size > 1 ? "-B" : "";

  auto record = [&](const std::string& method, double parameter,
                    merge::CandidateSelector& selector) {
    merge::EvalResult eval = merge::EvaluateSelectorAveraged(
        env.prepared, selector, options, config.trials, config.num_threads);
    CurvePoint point;
    point.method = method;
    point.parameter = parameter;
    point.rec = eval.rec;
    point.fps = eval.fps;
    point.simulated_seconds = eval.simulated_seconds;
    point.inferences = eval.usage.TotalInferences();
    point.distances = eval.usage.distance_evals;
    points.push_back(point);
  };

  if (config.include_bl) {
    merge::BaselineSelector baseline;
    record(std::string("BL") + suffix, 0.0, baseline);
  }
  if (config.include_ps) {
    for (double eta : config.ps_etas) {
      merge::ProportionalSelector ps(eta);
      record(std::string("PS") + suffix, eta, ps);
    }
  }
  if (config.include_lcb) {
    for (std::int64_t tau : config.bandit_taus) {
      merge::LcbSelector lcb(tau);
      record(std::string("LCB") + suffix, static_cast<double>(tau), lcb);
    }
  }
  if (config.include_tmerge) {
    for (std::int64_t tau : config.bandit_taus) {
      merge::TMergeOptions tmerge_options;
      tmerge_options.tau_max = tau;
      merge::TMergeSelector tmerge(tmerge_options);
      record(std::string("TMerge") + suffix, static_cast<double>(tau), tmerge);
    }
  }
  return points;
}

std::vector<metrics::RecFpsPoint> CurveOf(const std::vector<CurvePoint>& points,
                                          const std::string& method) {
  std::vector<metrics::RecFpsPoint> curve;
  for (const auto& point : points) {
    if (point.method == method) curve.push_back({point.rec, point.fps});
  }
  return curve;
}

}  // namespace tmerge::bench
