// Figure 6: REC-FPS curves of the GPU-batched algorithm variants (BL-B,
// PS-B, LCB-B, TMerge-B) with batch sizes B = 10 and B = 100. Batching
// multiplies TMerge's throughput while LCB-B barely moves — its strictly
// sequential arm choice leaves nothing to batch.
//
// The second section drives the real reid::EmbedScheduler: a gated TMerge
// with GateConfig::prefetch_ambiguous pushes the ambiguous pairs' crops
// through the scheduler (async, on the scheduler's own pool), so the
// selector's misses land as CostModel-optimal batches instead of single
// inferences. Its BENCH_JSON line ("gate_batched") feeds the CI perf gate
// (bench/BENCH_tier1.json via tools/bench_regress.py).
//
// `--sched-only` skips the Figure 6 sweep and runs just the scheduler
// section (the CI perf-smoke configuration).

#include <iostream>
#include <string>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/core/thread_pool.h"
#include "tmerge/gate/gated_selector.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/reid/embed_scheduler.h"

namespace tmerge::bench {
namespace {

void RunFigure6() {
  struct Spec {
    sim::DatasetProfile profile;
    std::int32_t videos;
  };
  for (Spec spec : {Spec{sim::DatasetProfile::kMot17Like, 5},
                    Spec{sim::DatasetProfile::kKittiLike, 5},
                    Spec{sim::DatasetProfile::kPathTrackLike, 2}}) {
    BenchEnv env = PrepareEnv(spec.profile, spec.videos);
    std::cout << "=== Figure 6 (" << env.name
              << "-like): batched REC-FPS curves ===\n";
    core::TablePrinter table(
        {"method", "B", "param", "REC", "FPS", "batch calls"});
    for (std::int32_t batch : {10, 100}) {
      MethodSweepConfig sweep;
      sweep.batch_size = batch;
      std::vector<CurvePoint> points = SweepMethods(env, sweep);
      for (const auto& point : points) {
        table.AddRow()
            .AddCell(point.method)
            .AddInt(batch)
            .AddNumber(point.parameter, 2)
            .AddNumber(point.rec, 3)
            .AddNumber(point.fps, 2)
            .AddCell("-");
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: TMerge-B gains the most from batching and "
               "B=100 beats B=10; LCB-B gains little because each iteration "
               "depends on the previous one.\n";
}

void RunScheduler() {
  int threads = BenchNumThreads();
  BenchEnv env =
      PrepareEnv(sim::DatasetProfile::kMot17Like, /*num_videos=*/4,
                 TrackerKind::kSort, /*window_length=*/2000,
                 /*seed=*/424242, threads);

  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  merge::TMergeOptions tmerge_options;
  tmerge_options.tau_max = 4000;
  merge::TMergeSelector tmerge(tmerge_options);

  // Ungated reference: single-inference cache misses.
  merge::EvalResult base = merge::EvaluateSelectorAveraged(
      env.prepared, tmerge, options, /*trials=*/3, threads);

  // Gated + scheduled: the ambiguous pairs' crops are prefetched through
  // the EmbedScheduler (async on its own pool), amortizing
  // batch_fixed_seconds across every miss the inner selector would have
  // paid single_inference_seconds for.
  gate::GateConfig gate_config;
  gate_config.enabled = true;
  gate_config.prefetch_ambiguous = true;
  gate::GatedSelector gated(tmerge, gate_config);
  core::ThreadPool sched_pool(4);
  reid::EmbedScheduler scheduler(reid::EmbedSchedulerConfig{}, &sched_pool);
  merge::SelectorOptions gated_options = options;
  gated_options.embed_scheduler = &scheduler;
  merge::EvalResult gated_eval = merge::EvaluateSelectorAveraged(
      env.prepared, gated, gated_options, /*trials=*/3, threads);
  scheduler.Flush();
  reid::EmbedSchedulerStats sched = scheduler.stats();

  const double fps_ratio = base.fps > 0.0 ? gated_eval.fps / base.fps : 0.0;
  std::cout << "=== EmbedScheduler: gated TMerge with batched prefetch "
               "(MOT-17-like) ===\n";
  core::TablePrinter table({"config", "REC", "FPS", "sim-seconds",
                            "batches", "batched-crops", "single-infs"});
  table.AddRow()
      .AddCell("TMerge (ungated)")
      .AddNumber(base.rec, 3)
      .AddNumber(base.fps, 2)
      .AddNumber(base.simulated_seconds, 2)
      .AddCell("-")
      .AddCell("-")
      .AddInt(base.usage.single_inferences);
  table.AddRow()
      .AddCell("Gated(TMerge)+sched")
      .AddNumber(gated_eval.rec, 3)
      .AddNumber(gated_eval.fps, 2)
      .AddNumber(gated_eval.simulated_seconds, 2)
      .AddInt(sched.batches)
      .AddInt(sched.batched_crops)
      .AddInt(gated_eval.usage.single_inferences);
  table.Print(std::cout);
  std::cout << "Scheduler conservation: requested=" << sched.requested
            << " cache_hits=" << sched.cache_hits
            << " dedup_hits=" << sched.dedup_hits
            << " embedded=" << sched.batched_crops + sched.single_crops
            << " failed=" << sched.failed_crops
            << " outstanding=" << sched.outstanding << "\n";

  // Counts carry tolerance 0 in BENCH_tier1.json: the scheduler plan and
  // the gated selection are deterministic at every thread count.
  EmitBenchJson(
      "gate_batched",
      {{"rec", gated_eval.rec},
       {"rec_base", base.rec},
       {"fps_ratio", fps_ratio},
       {"sched_requested", static_cast<double>(sched.requested)},
       {"sched_batches", static_cast<double>(sched.batches)},
       {"sched_batched_crops", static_cast<double>(sched.batched_crops)},
       {"sched_single_crops", static_cast<double>(sched.single_crops)},
       {"sched_failed_crops", static_cast<double>(sched.failed_crops)},
       {"sched_outstanding", static_cast<double>(sched.outstanding)}});
}

}  // namespace
}  // namespace tmerge::bench

int main(int argc, char** argv) {
  bool sched_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sched-only") sched_only = true;
  }
  if (!sched_only) tmerge::bench::RunFigure6();
  tmerge::bench::RunScheduler();
  return 0;
}
