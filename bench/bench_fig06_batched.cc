// Figure 6: REC-FPS curves of the GPU-batched algorithm variants (BL-B,
// PS-B, LCB-B, TMerge-B) with batch sizes B = 10 and B = 100. Batching
// multiplies TMerge's throughput while LCB-B barely moves — its strictly
// sequential arm choice leaves nothing to batch.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"

namespace tmerge::bench {
namespace {

void Run() {
  struct Spec {
    sim::DatasetProfile profile;
    std::int32_t videos;
  };
  for (Spec spec : {Spec{sim::DatasetProfile::kMot17Like, 5},
                    Spec{sim::DatasetProfile::kKittiLike, 5},
                    Spec{sim::DatasetProfile::kPathTrackLike, 2}}) {
    BenchEnv env = PrepareEnv(spec.profile, spec.videos);
    std::cout << "=== Figure 6 (" << env.name
              << "-like): batched REC-FPS curves ===\n";
    core::TablePrinter table(
        {"method", "B", "param", "REC", "FPS", "batch calls"});
    for (std::int32_t batch : {10, 100}) {
      MethodSweepConfig sweep;
      sweep.batch_size = batch;
      std::vector<CurvePoint> points = SweepMethods(env, sweep);
      for (const auto& point : points) {
        table.AddRow()
            .AddCell(point.method)
            .AddInt(batch)
            .AddNumber(point.parameter, 2)
            .AddNumber(point.rec, 3)
            .AddNumber(point.fps, 2)
            .AddCell("-");
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: TMerge-B gains the most from batching and "
               "B=100 beats B=10; LCB-B gains little because each iteration "
               "depends on the previous one.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
