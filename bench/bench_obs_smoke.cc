// Observability smoke: a deliberately small end-to-end run (MOT-17-like,
// 2 videos, TMerge only) whose point is the instrumentation, not the
// numbers. CI runs this binary, pipes the OBS_JSON line through a JSON
// validator, and asserts the expected metric names are present; it also
// cross-checks the exported ReID counters against the pipeline's own
// UsageStats so the two accounting systems can never drift apart.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/status.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/obs/metrics.h"

namespace tmerge::bench {
namespace {

void Run() {
  // Force >= 2 workers so the ThreadPool instrumentation (queue wait, busy
  // time) shows up in the snapshot even on single-core hosts.
  int threads = BenchNumThreads();
  if (threads >= 0 && threads < 2) threads = 2;
  BenchEnv env =
      PrepareEnv(sim::DatasetProfile::kMot17Like, /*num_videos=*/2,
                 TrackerKind::kSort, /*window_length=*/2000,
                 /*seed=*/424242, threads);

  merge::TMergeSelector selector;
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  merge::EvalResult eval =
      merge::EvaluateDataset(env.prepared, selector, options, threads);

  std::cout << "=== Observability smoke (" << env.name << "-like, "
            << env.prepared.size() << " videos) ===\n";
  core::TablePrinter table({"REC", "FPS", "inferences", "cache-hits",
                            "summed-wall-s", "elapsed-s"});
  table.AddRow()
      .AddNumber(eval.rec, 3)
      .AddNumber(eval.fps, 2)
      .AddInt(eval.usage.TotalInferences())
      .AddInt(eval.usage.cache_hits)
      .AddNumber(eval.summed_wall_seconds, 3)
      .AddNumber(eval.elapsed_seconds, 3);
  table.Print(std::cout);

  std::cout << "BENCH_JSON {\"bench\":\"obs_smoke\",\"rec\":" << eval.rec
            << ",\"inferences\":" << eval.usage.TotalInferences()
            << ",\"summed_wall_seconds\":" << eval.summed_wall_seconds
            << ",\"elapsed_seconds\":" << eval.elapsed_seconds << "}\n";

#ifndef TMERGE_OBS_DISABLED
  if (obs::Enabled()) {
    // The registry was touched only by this run, so the exported counters
    // must agree exactly with the EvalResult's UsageStats aggregation.
    obs::MetricsRegistry& registry = obs::DefaultRegistry();
    TMERGE_CHECK(registry.GetCounter("reid.inferences.single").Value() ==
                 eval.usage.single_inferences);
    TMERGE_CHECK(registry.GetCounter("reid.distance_evals").Value() ==
                 eval.usage.distance_evals);
    TMERGE_CHECK(registry.GetCounter("reid.cache.hits").Value() ==
                 eval.usage.cache_hits);
    TMERGE_CHECK(registry.GetCounter("evaluate.windows").Value() ==
                 eval.windows);
    std::cout << "obs counters consistent with UsageStats\n";
  }
#endif

  EmitObsSnapshot("obs_smoke");
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
