// Fault sweep: TMerge recall as the injected reid.embed failure rate grows
// from 0 (the healthy baseline) to 1.0 (every embed attempt errors). The
// headline robustness numbers of DESIGN.md "Fault model & degraded mode":
// recall degrades gracefully instead of cliffing, the pipeline never
// crashes, and at failure 1.0 the BetaInit spatial prior still orders
// candidates at least as well as an IoU-only selection (TMerge with
// tau_max pinned to the minimum, no faults).
//
// Arm additional failpoints via TMERGE_FAULT (the sweep arms reid.embed
// itself); pick the schedule with TMERGE_FAULT_SEED. One BENCH_JSON line
// per failure rate makes the recall-vs-failure-rate curve machine-readable.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/fault/registry.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

void Run() {
  int threads = BenchNumThreads();
  BenchEnv env =
      PrepareEnv(sim::DatasetProfile::kMot17Like, /*num_videos=*/4,
                 TrackerKind::kSort, /*window_length=*/2000,
                 /*seed=*/424242, threads);

  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  merge::TMergeOptions tmerge_options;
  tmerge_options.tau_max = 4000;
  merge::TMergeSelector selector(tmerge_options);

  core::TablePrinter table({"failure-rate", "REC", "failed-pulls",
                            "retries", "degraded-windows", "sim-seconds"});
  for (double rate : {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    fault::GlobalRegistry().Arm("reid.embed", {rate, 0.0});
    merge::EvalResult eval = merge::EvaluateSelectorAveraged(
        env.prepared, selector, options, /*trials=*/3, threads);
    table.AddRow()
        .AddNumber(rate, 2)
        .AddNumber(eval.rec, 3)
        .AddInt(eval.failed_pulls)
        .AddInt(eval.reid_retries)
        .AddInt(eval.degraded_windows)
        .AddNumber(eval.simulated_seconds, 2);
    std::cout << "BENCH_JSON {\"bench\":\"fault_sweep\",\"failure_rate\":"
              << rate << ",\"rec\":" << eval.rec
              << ",\"failed_pulls\":" << eval.failed_pulls
              << ",\"reid_retries\":" << eval.reid_retries
              << ",\"degraded_windows\":" << eval.degraded_windows
              << ",\"simulated_seconds\":" << eval.simulated_seconds
              << "}\n";
  }
  fault::GlobalRegistry().Disarm("reid.embed");

  std::cout << "=== Fault sweep: TMerge REC vs injected reid.embed failure "
               "rate (MOT-17-like) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: REC decays smoothly toward the spatial-"
               "prior level as the failure rate approaches 1.0; no crash, "
               "no posterior updates from failed pulls.\n";
  EmitObsSnapshot("fault_sweep");
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
