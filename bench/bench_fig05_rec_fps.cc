// Figure 5: REC-FPS trade-off curves of BL, PS, LCB and TMerge on the three
// datasets (unbatched, K = 5%). Points closer to the top-right are better;
// the paper reports TMerge 10x-100x faster than BL/PS at matched REC.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"

namespace tmerge::bench {
namespace {

void Run() {
  struct Spec {
    sim::DatasetProfile profile;
    std::int32_t videos;
  };
  for (Spec spec : {Spec{sim::DatasetProfile::kMot17Like, 5},
                    Spec{sim::DatasetProfile::kKittiLike, 5},
                    Spec{sim::DatasetProfile::kPathTrackLike, 2}}) {
    BenchEnv env = PrepareEnv(spec.profile, spec.videos);
    MethodSweepConfig sweep;
    std::vector<CurvePoint> points = SweepMethods(env, sweep);

    std::cout << "=== Figure 5 (" << env.name << "-like): REC-FPS curves, "
              << env.TotalPairs() << " pairs, " << env.TotalTruth()
              << " polyonymous ===\n";
    core::TablePrinter table(
        {"method", "param", "REC", "FPS", "inferences", "distances"});
    for (const auto& point : points) {
      table.AddRow()
          .AddCell(point.method)
          .AddNumber(point.parameter, point.method == "PS" ? 2 : 0)
          .AddNumber(point.rec, 3)
          .AddNumber(point.fps, 2)
          .AddInt(point.inferences)
          .AddInt(point.distances);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: at matched REC, TMerge's FPS dominates PS "
               "and BL by roughly an order of magnitude; LCB sits between "
               "PS and TMerge.\n";
  EmitObsSnapshot("fig05_rec_fps");
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
