// Regret analysis (paper §IV-E, Eq. 11): the average regret
//   R(tau_max) = (1/tau_max) * sum_tau (d~_tau - s~_min)
// of TMerge's sampling sequence must decrease as tau_max grows — evidence
// that Thompson sampling progressively biases evaluation toward the
// lowest-score track pairs (the O(sqrt(|P| log(tau)/tau)) bound). LCB is
// shown alongside; uniform PS would stay flat at the mean pair score.
//
// Single-window workload so s~_min is unambiguous.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/merge/lcb.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/track/sort_tracker.h"

namespace tmerge::bench {
namespace {

void Run() {
  sim::SyntheticVideo video = sim::GenerateVideo(
      sim::ProfileConfig(sim::DatasetProfile::kMot17Like), /*seed=*/7);
  track::SortTracker tracker;
  merge::PipelineConfig config;
  config.window.single_window = true;
  merge::PreparedVideo prepared = merge::PrepareVideo(video, tracker, config);
  merge::PairContext context(prepared.tracking, prepared.windows[0].pairs);

  // Exact minimum score via the baseline.
  merge::BaselineSelector baseline;
  merge::SelectorOptions options;
  options.k_fraction = 1.0;
  reid::FeatureCache bl_cache;
  baseline.Select(context, *prepared.model, bl_cache, options);
  double s_min = *std::min_element(baseline.last_scores().begin(),
                                   baseline.last_scores().end());
  double s_mean = 0.0;
  for (double s : baseline.last_scores()) s += 0.0, s_mean += s;
  s_mean /= static_cast<double>(baseline.last_scores().size());

  std::cout << "=== Regret of the sampling sequence (paper SIV-E, Eq. 11) "
               "===\n";
  std::cout << "window: " << context.num_pairs()
            << " pairs; exact s~_min = " << core::FormatFixed(s_min, 3)
            << ", mean pair score = " << core::FormatFixed(s_mean, 3)
            << " (uniform sampling's regret level)\n\n";

  core::TablePrinter table({"tau_max", "TMerge R(tau)", "LCB R(tau)"});
  options.k_fraction = 0.05;
  for (std::int64_t tau : {250, 500, 1000, 2000, 4000, 8000, 16000}) {
    merge::TMergeOptions tmerge_options;
    tmerge_options.tau_max = tau;
    merge::TMergeSelector tmerge(tmerge_options);
    reid::FeatureCache cache1;
    merge::SelectionResult tm =
        tmerge.Select(context, *prepared.model, cache1, options);
    merge::LcbSelector lcb(tau);
    reid::FeatureCache cache2;
    merge::SelectionResult lc =
        lcb.Select(context, *prepared.model, cache2, options);
    auto regret = [&](const merge::SelectionResult& r) {
      return r.box_pairs_evaluated > 0
                 ? r.sum_sampled_distance / r.box_pairs_evaluated - s_min
                 : 0.0;
    };
    table.AddRow()
        .AddInt(tau)
        .AddNumber(regret(tm), 3)
        .AddNumber(regret(lc), 3);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: TMerge's average regret falls steadily "
               "with tau (Eq. 11's O(sqrt(|P| log tau / tau)) bound) while "
               "LCB's stays near-flat — its confidence bonus keeps pulling "
               "cold arms, which is why TMerge ends up touching far fewer "
               "distinct crops at matched budgets.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
