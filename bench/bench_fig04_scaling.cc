// Figure 4: runtime and accumulated track pairs of the brute-force baseline
// as video length grows (PathTrack-like videos, L = 2000 windows).
// Reproduces the motivating scaling wall: both time and pairs grow
// super-linearly with video length.
//
// Second section: thread-scaling of the dataset-level pipeline. Prepares a
// multi-profile dataset and runs PrepareDataset + EvaluateDataset at 1, 2,
// 4 and 8 worker threads, asserting bit-identical results and reporting
// the wall-clock speedup as a machine-readable BENCH_JSON line.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "tmerge/core/status.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/track/sort_tracker.h"

namespace tmerge::bench {
namespace {

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Videos from all three profiles glued into one dataset, so the parallel
// path is exercised on heterogeneous per-video workloads.
sim::Dataset MultiProfileDataset() {
  sim::Dataset combined;
  combined.name = "multi-profile";
  for (auto [profile, count] :
       {std::pair{sim::DatasetProfile::kMot17Like, 4},
        std::pair{sim::DatasetProfile::kKittiLike, 4},
        std::pair{sim::DatasetProfile::kPathTrackLike, 1}}) {
    sim::Dataset part = sim::MakeDataset(profile, count, /*seed=*/515151);
    for (auto& video : part.videos) {
      combined.videos.push_back(std::move(video));
    }
  }
  return combined;
}

void RunThreadScaling() {
  sim::Dataset dataset = MultiProfileDataset();
  track::SortTracker tracker;
  merge::PipelineConfig config;
  config.window.length = 2000;
  config.window.single_window = false;

  std::cout << "\n=== Thread scaling: PrepareDataset + EvaluateDataset "
            << "(multi-profile, " << dataset.videos.size() << " videos, "
            << "hardware_concurrency="
            << std::thread::hardware_concurrency() << ") ===\n";

  core::TablePrinter table({"threads", "prepare-s", "evaluate-s", "speedup",
                            "rec", "hits", "candidates"});
  std::vector<merge::PreparedVideo> prepared;
  merge::TMergeSelector selector;
  merge::SelectorOptions options;
  options.k_fraction = 0.05;

  double serial_total = 0.0;
  double best_speedup = 1.0;
  merge::EvalResult reference;
  for (int threads : {1, 2, 4, 8}) {
    config.num_threads = threads;
    double prepare_s = WallSeconds([&] {
      prepared = merge::PrepareDataset(dataset, tracker, config);
    });
    merge::EvalResult eval;
    double evaluate_s = WallSeconds([&] {
      eval = merge::EvaluateDataset(prepared, selector, options, threads);
    });
    if (threads == 1) {
      serial_total = prepare_s + evaluate_s;
      reference = eval;
    } else {
      // The determinism contract: parallel results are bit-identical to
      // the serial reference path.
      TMERGE_CHECK(eval.rec == reference.rec);
      TMERGE_CHECK(eval.hits == reference.hits);
      TMERGE_CHECK(eval.candidates == reference.candidates);
      TMERGE_CHECK(eval.usage.TotalInferences() ==
                   reference.usage.TotalInferences());
    }
    double speedup = serial_total / (prepare_s + evaluate_s);
    best_speedup = std::max(best_speedup, speedup);
    table.AddRow()
        .AddInt(threads)
        .AddNumber(prepare_s, 3)
        .AddNumber(evaluate_s, 3)
        .AddNumber(speedup, 2)
        .AddNumber(eval.rec, 4)
        .AddInt(eval.hits)
        .AddInt(static_cast<long long>(eval.candidates.size()));
    std::cout << "BENCH_JSON {\"bench\":\"fig04_thread_scaling\","
              << "\"threads\":" << threads
              << ",\"prepare_seconds\":" << prepare_s
              << ",\"evaluate_seconds\":" << evaluate_s
              << ",\"speedup_vs_serial\":" << speedup
              << ",\"rec\":" << eval.rec << ",\"hits\":" << eval.hits
              << "}\n";
  }
  table.Print(std::cout);
  std::cout << "Best speedup vs serial: " << best_speedup
            << "x (expect ~min(threads, cores) on a multi-core host; "
               "results above are bit-identical across thread counts).\n";
}

void Run() {
  core::TablePrinter table({"frames", "minutes", "tracks", "pairs",
                            "box-pairs", "BL sim-seconds", "BL wall-seconds"});

  // One long video, processed at growing prefixes (the paper feeds a single
  // lengthening video to Algorithm 1).
  sim::SyntheticVideo full = sim::GenerateVideo(
      sim::ProfileConfig(sim::DatasetProfile::kPathTrackLike), /*seed=*/4242);
  for (std::int32_t frames : {600, 1200, 1800, 2400, 3000, 3600}) {
    sim::SyntheticVideo video = sim::TruncateVideo(full, frames);

    track::SortTracker tracker;
    merge::PipelineConfig pipeline;
    pipeline.window.length = 2000;
    merge::PreparedVideo prepared =
        merge::PrepareVideo(video, tracker, pipeline);

    merge::BaselineSelector baseline;
    merge::SelectorOptions options;
    options.k_fraction = 0.05;
    merge::EvalResult eval =
        merge::EvaluateSelector(prepared, baseline, options);

    std::int64_t box_pairs = 0;
    for (const auto& window : prepared.windows) {
      merge::PairContext context(prepared.tracking, window.pairs);
      box_pairs += context.TotalBoxPairs();
    }
    table.AddRow()
        .AddInt(frames)
        .AddNumber(frames / (30.0 * 60.0), 1)
        .AddInt(static_cast<long long>(prepared.tracking.tracks.size()))
        .AddInt(prepared.TotalPairs())
        .AddInt(box_pairs)
        .AddNumber(eval.simulated_seconds, 2)
        .AddNumber(eval.summed_wall_seconds, 3);
  }

  std::cout << "=== Figure 4: BL cost vs video length (PathTrack-like, "
               "L=2000) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: pair count and runtime grow dramatically "
               "and synchronously with video length.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::InitObsFromEnv();
  tmerge::bench::Run();
  tmerge::bench::RunThreadScaling();
  tmerge::bench::EmitObsSnapshot("fig04_scaling");
  return 0;
}
