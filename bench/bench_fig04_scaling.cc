// Figure 4: runtime and accumulated track pairs of the brute-force baseline
// as video length grows (PathTrack-like videos, L = 2000 windows).
// Reproduces the motivating scaling wall: both time and pairs grow
// super-linearly with video length.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/track/sort_tracker.h"

namespace tmerge::bench {
namespace {

void Run() {
  core::TablePrinter table({"frames", "minutes", "tracks", "pairs",
                            "box-pairs", "BL sim-seconds", "BL wall-seconds"});

  // One long video, processed at growing prefixes (the paper feeds a single
  // lengthening video to Algorithm 1).
  sim::SyntheticVideo full = sim::GenerateVideo(
      sim::ProfileConfig(sim::DatasetProfile::kPathTrackLike), /*seed=*/4242);
  for (std::int32_t frames : {600, 1200, 1800, 2400, 3000, 3600}) {
    sim::SyntheticVideo video = sim::TruncateVideo(full, frames);

    track::SortTracker tracker;
    merge::PipelineConfig pipeline;
    pipeline.window.length = 2000;
    merge::PreparedVideo prepared =
        merge::PrepareVideo(video, tracker, pipeline);

    merge::BaselineSelector baseline;
    merge::SelectorOptions options;
    options.k_fraction = 0.05;
    merge::EvalResult eval =
        merge::EvaluateSelector(prepared, baseline, options);

    std::int64_t box_pairs = 0;
    for (const auto& window : prepared.windows) {
      merge::PairContext context(prepared.tracking, window.pairs);
      box_pairs += context.TotalBoxPairs();
    }
    table.AddRow()
        .AddInt(frames)
        .AddNumber(frames / (30.0 * 60.0), 1)
        .AddInt(static_cast<long long>(prepared.tracking.tracks.size()))
        .AddInt(prepared.TotalPairs())
        .AddInt(box_pairs)
        .AddNumber(eval.simulated_seconds, 2)
        .AddNumber(eval.wall_seconds, 3);
  }

  std::cout << "=== Figure 4: BL cost vs video length (PathTrack-like, "
               "L=2000) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: pair count and runtime grow dramatically "
               "and synchronously with video length.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
