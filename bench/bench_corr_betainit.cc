// BetaInit design analysis (paper §IV-C and footnote 4): Pearson
// correlation between exact track-pair scores and (a) the spatial distance
// DisS and (b) the temporal distance DisT. The paper reports r >= 0.3 for
// DisS on several datasets and r < 0.1 for DisT — which is why BetaInit
// uses the spatial signal only. This bench regenerates that table.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/metrics/recall.h"
#include "tmerge/reid/feature_cache.h"

namespace tmerge::bench {
namespace {

void Run() {
  std::cout << "=== BetaInit design analysis: score correlations "
               "(paper SIV-C, footnote 4) ===\n";
  core::TablePrinter table(
      {"dataset", "pairs", "corr(score, DisS)", "corr(score, DisT)"});

  struct Spec {
    sim::DatasetProfile profile;
    std::int32_t videos;
  };
  for (Spec spec : {Spec{sim::DatasetProfile::kMot17Like, 5},
                    Spec{sim::DatasetProfile::kKittiLike, 5},
                    Spec{sim::DatasetProfile::kPathTrackLike, 2}}) {
    BenchEnv env = PrepareEnv(spec.profile, spec.videos);

    std::vector<double> scores, spatial, temporal;
    merge::BaselineSelector baseline;
    merge::SelectorOptions options;
    options.k_fraction = 1.0;
    for (const auto& prepared : env.prepared) {
      reid::FeatureCache cache;
      for (const auto& window : prepared.windows) {
        if (window.pairs.empty()) continue;
        merge::PairContext context(prepared.tracking, window.pairs);
        baseline.Select(context, *prepared.model, cache, options);
        for (std::size_t p = 0; p < context.num_pairs(); ++p) {
          scores.push_back(baseline.last_scores()[p]);
          spatial.push_back(context.SpatialDistance(p));
          temporal.push_back(context.TemporalGap(p));
        }
      }
    }
    table.AddRow()
        .AddCell(env.name)
        .AddInt(static_cast<long long>(scores.size()))
        .AddNumber(metrics::PearsonCorrelation(scores, spatial), 3)
        .AddNumber(metrics::PearsonCorrelation(scores, temporal), 3);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: corr(score, DisS) >= ~0.3 on every "
               "dataset; corr(score, DisT) well below it (paper: < 0.1) — "
               "justifying a purely spatial BetaInit.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
