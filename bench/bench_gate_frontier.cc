// Gate frontier: the recall/cost trade-off of selective ReID gating
// (tmerge::gate) on the default MOT-17-like profile. Three gate
// strictness settings are swept against the ungated TMerge reference; the
// default setting is the acceptance gate of ROADMAP item 2 — the bench
// exits nonzero unless it reaches >= 1.3x simulated FPS at <= 1% recall
// loss, and its BENCH_JSON line ("gate_frontier") is additionally pinned
// by bench/BENCH_tier1.json in CI (tools/bench_regress.py).
//
// `--calibrate` prints the gate-evidence distributions split by ground
// truth (same object vs not) — the data the GateConfig defaults were
// chosen from — and skips the sweep.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/gate/gated_selector.h"
#include "tmerge/gate/pair_gate.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

struct FrontierSetting {
  const char* label;
  gate::GateConfig config;
};

std::vector<FrontierSetting> Settings() {
  gate::GateConfig conservative;
  conservative.enabled = true;
  conservative.accept_min_iou = 0.45;
  conservative.reject_min_gap_frames = 450;
  conservative.max_speed_pixels_per_frame = 24.0;
  conservative.reject_max_iou = 0.02;

  gate::GateConfig fallback;  // The shipped defaults.
  fallback.enabled = true;

  gate::GateConfig aggressive;
  aggressive.enabled = true;
  aggressive.accept_min_iou = 0.20;
  aggressive.accept_max_gap_frames = 90;
  aggressive.reject_min_gap_frames = 90;
  aggressive.max_speed_pixels_per_frame = 10.0;
  aggressive.reject_max_iou = 0.08;

  return {{"conservative", conservative},
          {"default", fallback},
          {"aggressive", aggressive}};
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Evidence distributions over every window pair, split by ground truth —
/// the calibration data behind the GateConfig defaults.
void RunCalibrate(const BenchEnv& env) {
  gate::GateConfig config;
  struct Split {
    std::vector<double> iou, speed, gap;
  } same, diff;
  for (const auto& prepared : env.prepared) {
    std::set<metrics::TrackPairKey> truth(prepared.truth.begin(),
                                          prepared.truth.end());
    for (const auto& window : prepared.windows) {
      merge::PairContext context(prepared.tracking, window.pairs);
      for (std::size_t p = 0; p < context.num_pairs(); ++p) {
        gate::GateEvidence e = gate::ComputeEvidence(context, p, config);
        Split& split = truth.contains(context.pair(p)) ? same : diff;
        split.iou.push_back(e.extrapolated_iou);
        split.speed.push_back(e.required_speed);
        split.gap.push_back(static_cast<double>(e.gap_frames));
      }
    }
  }
  std::cout << "=== Gate evidence calibration (MOT-17-like) ===\n";
  core::TablePrinter table(
      {"population", "n", "metric", "p10", "p50", "p90", "p99"});
  auto emit = [&table](const char* population, const char* metric,
                       const std::vector<double>& values) {
    table.AddRow()
        .AddCell(population)
        .AddInt(static_cast<std::int64_t>(values.size()))
        .AddCell(metric)
        .AddNumber(Percentile(values, 0.10), 3)
        .AddNumber(Percentile(values, 0.50), 3)
        .AddNumber(Percentile(values, 0.90), 3)
        .AddNumber(Percentile(values, 0.99), 3);
  };
  emit("gt-same", "extrapolated_iou", same.iou);
  emit("gt-same", "required_speed", same.speed);
  emit("gt-same", "gap_frames", same.gap);
  emit("gt-diff", "extrapolated_iou", diff.iou);
  emit("gt-diff", "required_speed", diff.speed);
  emit("gt-diff", "gap_frames", diff.gap);
  table.Print(std::cout);
}

int RunFrontier(const BenchEnv& env, int threads) {
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  merge::TMergeOptions tmerge_options;
  tmerge_options.tau_max = 4000;
  merge::TMergeSelector tmerge(tmerge_options);

  merge::EvalResult base = merge::EvaluateSelectorAveraged(
      env.prepared, tmerge, options, /*trials=*/3, threads);

  std::cout << "=== Gate frontier: gated vs ungated TMerge (MOT-17-like) "
               "===\n";
  core::TablePrinter table({"gate", "REC", "rec-loss", "FPS", "FPS-ratio",
                            "accepted", "rejected", "ambiguous"});
  table.AddRow()
      .AddCell("off")
      .AddNumber(base.rec, 3)
      .AddNumber(0.0, 4)
      .AddNumber(base.fps, 2)
      .AddNumber(1.0, 2)
      .AddCell("-")
      .AddCell("-")
      .AddCell("-");

  int exit_code = 0;
  for (const FrontierSetting& setting : Settings()) {
    gate::GatedSelector gated(tmerge, setting.config);
    merge::EvalResult eval = merge::EvaluateSelectorAveraged(
        env.prepared, gated, options, /*trials=*/3, threads);
    const double recall_loss = base.rec - eval.rec;
    const double fps_ratio = base.fps > 0.0 ? eval.fps / base.fps : 0.0;
    table.AddRow()
        .AddCell(setting.label)
        .AddNumber(eval.rec, 3)
        .AddNumber(recall_loss, 4)
        .AddNumber(eval.fps, 2)
        .AddNumber(fps_ratio, 2)
        .AddInt(eval.usage.gate_accepted)
        .AddInt(eval.usage.gate_rejected)
        .AddInt(eval.usage.gate_ambiguous);
    if (std::string(setting.label) == "default") {
      EmitBenchJson(
          "gate_frontier",
          {{"rec_base", base.rec},
           {"rec_gated", eval.rec},
           {"recall_loss", recall_loss},
           {"fps_ratio", fps_ratio},
           {"gate_accepted", static_cast<double>(eval.usage.gate_accepted)},
           {"gate_rejected", static_cast<double>(eval.usage.gate_rejected)},
           {"gate_ambiguous",
            static_cast<double>(eval.usage.gate_ambiguous)}});
      // The acceptance gate of ROADMAP item 2, enforced here so a local
      // run fails as loudly as CI's bench_regress comparison.
      if (fps_ratio < 1.3) {
        std::cerr << "FAIL: default gate fps_ratio " << fps_ratio
                  << " < 1.3\n";
        exit_code = 1;
      }
      if (recall_loss > 0.01) {
        std::cerr << "FAIL: default gate recall loss " << recall_loss
                  << " > 0.01\n";
        exit_code = 1;
      }
    }
  }
  table.Print(std::cout);
  std::cout << "Frontier shape: stricter accept thresholds trade FPS for "
               "recall; the default setting is the >=1.3x FPS at <=1% "
               "recall-loss operating point.\n";
  return exit_code;
}

}  // namespace
}  // namespace tmerge::bench

int main(int argc, char** argv) {
  bool calibrate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--calibrate") calibrate = true;
  }
  int threads = tmerge::bench::BenchNumThreads();
  tmerge::bench::BenchEnv env = tmerge::bench::PrepareEnv(
      tmerge::sim::DatasetProfile::kMot17Like, /*num_videos=*/4,
      tmerge::bench::TrackerKind::kSort, /*window_length=*/2000,
      /*seed=*/424242, threads);
  if (calibrate) {
    tmerge::bench::RunCalibrate(env);
    return 0;
  }
  return tmerge::bench::RunFrontier(env, threads);
}
