// Figure 9: REC of BL and TMerge as the window length L varies on the
// PathTrack-like dataset (L_max = 1000). For L < 2 * L_max some polyonymous
// pairs span more than two half-overlapping windows and become
// undiscoverable, hurting both methods; for L >= 2 * L_max REC is flat —
// the algorithms are insensitive to L.

#include <iostream>
#include <set>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

void Run() {
  std::cout << "=== Figure 9: REC vs window length L (PathTrack-like, "
               "L_max=1000) ===\n";
  core::TablePrinter table(
      {"L", "windows", "pairs", "reachable-truth", "BL REC", "TMerge REC"});

  for (std::int32_t length : {1000, 1500, 2000, 3000, 4000}) {
    merge::WindowConfig window;
    window.length = length;
    BenchEnv env = PrepareEnvWithWindow(sim::DatasetProfile::kPathTrackLike, 2,
                                        TrackerKind::kSort, window);

    std::int64_t windows = 0;
    for (const auto& prepared : env.prepared) {
      windows += static_cast<std::int64_t>(prepared.windows.size());
    }

    merge::SelectorOptions options;
    options.k_fraction = 0.05;
    merge::BaselineSelector baseline;
    merge::EvalResult bl =
        merge::EvaluateSelectorAveraged(env.prepared, baseline, options, 1);
    merge::TMergeOptions tmerge_options;
    // Hold the per-pair sampling budget roughly constant across L: larger
    // windows hold quadratically more pairs, and the paper's default
    // tau_max was chosen for windows of a few hundred pairs.
    std::int64_t pairs_per_window =
        windows > 0 ? env.TotalPairs() / windows : 0;
    tmerge_options.tau_max = std::max<std::int64_t>(
        15000, 12 * pairs_per_window);
    merge::TMergeSelector tmerge(tmerge_options);
    merge::EvalResult tm =
        merge::EvaluateSelectorAveraged(env.prepared, tmerge, options, 5);

    // Reachable truth: polyonymous pairs present in some window's pair set.
    std::int64_t reachable = 0;
    for (const auto& prepared : env.prepared) {
      std::set<metrics::TrackPairKey> truth(prepared.truth.begin(),
                                            prepared.truth.end());
      std::set<metrics::TrackPairKey> seen;
      for (const auto& w : prepared.windows) {
        for (const auto& pair : w.pairs) {
          if (truth.contains(pair)) seen.insert(pair);
        }
      }
      reachable += static_cast<std::int64_t>(seen.size());
    }

    table.AddRow()
        .AddInt(length)
        .AddInt(windows)
        .AddInt(env.TotalPairs())
        .AddCell(std::to_string(reachable) + "/" +
                 std::to_string(env.TotalTruth()))
        .AddNumber(bl.rec, 3)
        .AddNumber(tm.rec, 3);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: REC degraded at L < 2000 (= 2*L_max), "
               "flat and similar for both methods at L >= 2000.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
