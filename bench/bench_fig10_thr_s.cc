// Figure 10: sensitivity of TMerge to the BetaInit spatial threshold thr_S
// (MOT-17-like). "off" disables BetaInit entirely (the worst curve in the
// paper); among enabled settings the threshold matters: too small marks too
// few pairs, too large floods the prior with false leads.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

void Run() {
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 5);
  merge::SelectorOptions options;
  options.k_fraction = 0.05;

  std::cout << "=== Figure 10: TMerge REC-FPS varying thr_S (MOT-17-like) "
               "===\n";
  core::TablePrinter table({"thr_S", "tau_max", "REC", "FPS"});
  struct Setting {
    const char* label;
    bool enabled;
    double thr_s;
  };
  for (Setting setting : {Setting{"off", false, 0.0}, Setting{"100", true, 100.0},
                          Setting{"200", true, 200.0},
                          Setting{"300", true, 300.0},
                          Setting{"500", true, 500.0}}) {
    for (std::int64_t tau : {500, 1500, 5000, 15000}) {
      merge::TMergeOptions tmerge_options;
      tmerge_options.tau_max = tau;
      tmerge_options.use_beta_init = setting.enabled;
      tmerge_options.thr_s = setting.thr_s;
      merge::TMergeSelector selector(tmerge_options);
      merge::EvalResult eval =
          merge::EvaluateSelectorAveraged(env.prepared, selector, options, 3);
      table.AddRow()
          .AddCell(setting.label)
          .AddInt(tau)
          .AddNumber(eval.rec, 3)
          .AddNumber(eval.fps, 2);
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the no-BetaInit curve is dominated; "
               "moderate thresholds (~200) do best; performance is "
               "sensitive to thr_S.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
