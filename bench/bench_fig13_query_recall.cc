// Figure 13: recall of the two downstream video queries of §V-H — Count
// and Co-occurring Objects — on the MOT-17-like dataset, with and without
// TMerge. The paper reports Count recall rising from <75% to >95% and
// Co-occurrence from ~88% to ~95%. Thresholds here (>450 frames, >150
// frames) are scaled to this simulator's track-length distribution so that
// fragments fall below them the way the paper's fragments fell below its
// 200/50-frame thresholds on real data.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/query/query_recall.h"

namespace tmerge::bench {
namespace {

void Run() {
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 8,
                            TrackerKind::kSort);

  merge::TMergeOptions tmerge_options;
  tmerge_options.tau_max = 15000;
  merge::TMergeSelector selector(tmerge_options);
  merge::SelectorOptions options;
  options.k_fraction = 0.05;

  query::CountQuery count_query;
  count_query.min_frames = 450;
  query::CoOccurrenceQuery cooccur_query;
  cooccur_query.min_frames = 150;

  query::QueryRecall count_before, count_after;
  query::QueryRecall cooccur_before, cooccur_after;
  for (const auto& prepared : env.prepared) {
    track::TrackingResult merged =
        merge::SelectAndMerge(prepared, selector, options);

    query::QueryRecall cb = query::CountQueryRecall(
        *prepared.video, prepared.tracking, count_query);
    query::QueryRecall ca =
        query::CountQueryRecall(*prepared.video, merged, count_query);
    count_before.expected += cb.expected;
    count_before.found += cb.found;
    count_after.expected += ca.expected;
    count_after.found += ca.found;

    query::QueryRecall ob = query::CoOccurrenceQueryRecall(
        *prepared.video, prepared.tracking, cooccur_query);
    query::QueryRecall oa =
        query::CoOccurrenceQueryRecall(*prepared.video, merged, cooccur_query);
    cooccur_before.expected += ob.expected;
    cooccur_before.found += ob.found;
    cooccur_after.expected += oa.expected;
    cooccur_after.found += oa.found;
  }

  std::cout << "=== Figure 13: query recall with/without TMerge "
               "(MOT-17-like) ===\n";
  core::TablePrinter table(
      {"query", "GT answers", "recall w/o TMerge", "recall w/ TMerge"});
  table.AddRow()
      .AddCell("Count (>450 frames)")
      .AddInt(count_before.expected)
      .AddNumber(count_before.Value(), 3)
      .AddNumber(count_after.Value(), 3);
  table.AddRow()
      .AddCell("Co-occurring objects (3, >150 frames)")
      .AddInt(cooccur_before.expected)
      .AddNumber(cooccur_before.Value(), 3)
      .AddNumber(cooccur_after.Value(), 3);
  table.Print(std::cout);
  std::cout << "\nExpected shape: both queries' recall rises substantially "
               "after merging (paper: Count <75% -> >95%, Co-occurrence "
               "~88% -> ~95%).\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
