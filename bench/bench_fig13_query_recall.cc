// Figure 13: recall of the two downstream video queries of §V-H — Count
// and Co-occurring Objects — on the MOT-17-like dataset, with and without
// TMerge. The paper reports Count recall rising from <75% to >95% and
// Co-occurrence from ~88% to ~95%. Thresholds here (>450 frames, >150
// frames) are scaled to this simulator's track-length distribution so that
// fragments fall below them the way the paper's fragments fell below its
// 200/50-frame thresholds on real data.

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/core/thread_pool.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/query/query_recall.h"

namespace tmerge::bench {
namespace {

/// Per-video query-recall measurements; reduced in video order below so
/// the aggregate is independent of the worker count.
struct VideoRecalls {
  query::QueryRecall count_before, count_after;
  query::QueryRecall cooccur_before, cooccur_after;
};

void Run() {
  int num_threads = BenchNumThreads();
  auto prepare_start = std::chrono::steady_clock::now();
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 8,
                            TrackerKind::kSort, /*window_length=*/2000,
                            /*seed=*/424242, num_threads);
  double prepare_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - prepare_start)
                         .count();

  merge::TMergeOptions tmerge_options;
  tmerge_options.tau_max = 15000;
  merge::TMergeSelector selector(tmerge_options);
  merge::SelectorOptions options;
  options.k_fraction = 0.05;

  query::CountQuery count_query;
  count_query.min_frames = 450;
  query::CoOccurrenceQuery cooccur_query;
  cooccur_query.min_frames = 150;

  // Merge + query each video concurrently: SelectAndMerge touches only the
  // video's own prepared state, and each iteration writes its own slot.
  std::vector<VideoRecalls> per_video(env.prepared.size());
  auto eval_start = std::chrono::steady_clock::now();
  core::ThreadPool pool(num_threads);
  pool.ParallelFor(
      0, static_cast<std::int64_t>(env.prepared.size()), [&](std::int64_t v) {
        const merge::PreparedVideo& prepared = env.prepared[v];
        track::TrackingResult merged =
            merge::SelectAndMerge(prepared, selector, options);
        VideoRecalls& out = per_video[v];
        out.count_before = query::CountQueryRecall(
            *prepared.video, prepared.tracking, count_query);
        out.count_after =
            query::CountQueryRecall(*prepared.video, merged, count_query);
        out.cooccur_before = query::CoOccurrenceQueryRecall(
            *prepared.video, prepared.tracking, cooccur_query);
        out.cooccur_after = query::CoOccurrenceQueryRecall(
            *prepared.video, merged, cooccur_query);
      });
  double eval_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - eval_start)
                      .count();

  query::QueryRecall count_before, count_after;
  query::QueryRecall cooccur_before, cooccur_after;
  for (const VideoRecalls& recalls : per_video) {
    count_before.expected += recalls.count_before.expected;
    count_before.found += recalls.count_before.found;
    count_after.expected += recalls.count_after.expected;
    count_after.found += recalls.count_after.found;
    cooccur_before.expected += recalls.cooccur_before.expected;
    cooccur_before.found += recalls.cooccur_before.found;
    cooccur_after.expected += recalls.cooccur_after.expected;
    cooccur_after.found += recalls.cooccur_after.found;
  }

  std::cout << "BENCH_JSON {\"bench\":\"fig13_query_recall\",\"threads\":"
            << core::ResolveNumThreads(num_threads)
            << ",\"prepare_seconds\":" << prepare_s
            << ",\"merge_query_seconds\":" << eval_s << "}\n";

  std::cout << "=== Figure 13: query recall with/without TMerge "
               "(MOT-17-like) ===\n";
  core::TablePrinter table(
      {"query", "GT answers", "recall w/o TMerge", "recall w/ TMerge"});
  table.AddRow()
      .AddCell("Count (>450 frames)")
      .AddInt(count_before.expected)
      .AddNumber(count_before.Value(), 3)
      .AddNumber(count_after.Value(), 3);
  table.AddRow()
      .AddCell("Co-occurring objects (3, >150 frames)")
      .AddInt(cooccur_before.expected)
      .AddNumber(cooccur_before.Value(), 3)
      .AddNumber(cooccur_after.Value(), 3);
  table.Print(std::cout);
  std::cout << "\nExpected shape: both queries' recall rises substantially "
               "after merging (paper: Count <75% -> >95%, Co-occurrence "
               "~88% -> ~95%).\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  tmerge::bench::EmitObsSnapshot("fig13_query_recall");
  return 0;
}
