// Figure 12: identity metrics (IDF1, IDP, IDR) of the Tracktor-like
// tracker on the MOT-17-like dataset, with and without TMerge merging.
// The paper reports ~5 points of IDF1 improvement with both IDP and IDR
// rising. MOTA and ID-switch counts are printed as supporting context.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/metrics/clear_mot.h"
#include "tmerge/metrics/id_metrics.h"

namespace tmerge::bench {
namespace {

void Run() {
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 5,
                            TrackerKind::kRegression);

  merge::TMergeOptions tmerge_options;
  tmerge_options.tau_max = 15000;
  merge::TMergeSelector selector(tmerge_options);
  merge::SelectorOptions options;
  options.k_fraction = 0.05;

  metrics::IdMetricsResult before_total, after_total;
  std::int64_t idsw_before = 0, idsw_after = 0;
  for (const auto& prepared : env.prepared) {
    track::TrackingResult merged =
        merge::SelectAndMerge(prepared, selector, options);
    metrics::IdMetricsResult before =
        metrics::ComputeIdMetrics(*prepared.video, prepared.tracking);
    metrics::IdMetricsResult after =
        metrics::ComputeIdMetrics(*prepared.video, merged);
    before_total.idtp += before.idtp;
    before_total.idfp += before.idfp;
    before_total.idfn += before.idfn;
    after_total.idtp += after.idtp;
    after_total.idfp += after.idfp;
    after_total.idfn += after.idfn;
    idsw_before +=
        metrics::ComputeClearMot(*prepared.video, prepared.tracking)
            .id_switches;
    idsw_after += metrics::ComputeClearMot(*prepared.video, merged).id_switches;
  }

  std::cout << "=== Figure 12: identity metrics with/without TMerge "
               "(Tracktor-like, MOT-17-like) ===\n";
  core::TablePrinter table({"metric", "without TMerge", "with TMerge"});
  table.AddRow()
      .AddCell("IDF1")
      .AddNumber(before_total.Idf1(), 3)
      .AddNumber(after_total.Idf1(), 3);
  table.AddRow()
      .AddCell("IDP")
      .AddNumber(before_total.Idp(), 3)
      .AddNumber(after_total.Idp(), 3);
  table.AddRow()
      .AddCell("IDR")
      .AddNumber(before_total.Idr(), 3)
      .AddNumber(after_total.Idr(), 3);
  table.AddRow()
      .AddCell("ID switches")
      .AddInt(idsw_before)
      .AddInt(idsw_after);
  table.Print(std::cout);
  std::cout << "\nExpected shape: IDF1, IDP and IDR all improve (paper: ~5 "
               "points of IDF1); ID switches drop.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
