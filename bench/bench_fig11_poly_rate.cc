// Figure 11: polyonymous rates of the three trackers on the MOT-17-like
// dataset, with and without TMerge. Rate = |P*| / |P| before merging, and
// |P* \ P-hat*| / |P| after TMerge removes the identified pairs. The paper
// reports a >10x reduction for every tracker.

#include <iostream>
#include <set>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

void Run() {
  std::cout << "=== Figure 11: polyonymous rate with/without TMerge "
               "(MOT-17-like) ===\n";
  core::TablePrinter table({"tracker", "pairs", "poly", "rate %",
                            "rate % | TMerge", "reduction"});

  for (TrackerKind kind : {TrackerKind::kSort, TrackerKind::kAppearance,
                           TrackerKind::kRegression}) {
    BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 5, kind);

    // Deployment setting: the paper calibrates K on representative videos
    // so that REC clears ~0.95 (SIII); with this simulator's higher
    // polyonymous rate (~3-4%) that calibration lands at K = 0.10, and the
    // correction pass runs with a generous budget.
    merge::TMergeOptions tmerge_options;
    tmerge_options.tau_max = 30000;
    merge::TMergeSelector selector(tmerge_options);
    merge::SelectorOptions options;
    options.k_fraction = 0.10;
    merge::EvalResult eval =
        merge::EvaluateSelectorOnVideos(env.prepared, selector, options);

    std::int64_t pairs = env.TotalPairs();
    std::int64_t poly = env.TotalTruth();
    std::int64_t remaining = poly - eval.hits;  // P* \ P-hat*.
    double rate = pairs > 0 ? 100.0 * poly / pairs : 0.0;
    double rate_after = pairs > 0 ? 100.0 * remaining / pairs : 0.0;
    table.AddRow()
        .AddCell(TrackerKindName(kind))
        .AddInt(pairs)
        .AddInt(poly)
        .AddNumber(rate, 3)
        .AddNumber(rate_after, 3)
        .AddCell(rate_after > 0.0
                     ? core::FormatFixed(rate / rate_after, 1) + "x"
                     : "inf");
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: every tracker leaves a nonzero polyonymous "
               "rate; TMerge reduces it by an order of magnitude or more.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
