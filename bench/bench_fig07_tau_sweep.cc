// Figure 7: runtime and REC of TMerge-B (B = 10) as tau_max grows, on the
// MOT-17-like dataset. REC climbs quickly then saturates near the BL level
// (the easy polyonymous pairs are found early; hard pairs need more
// iterations); runtime grows sub-linearly late because feature reuse makes
// later iterations cheap.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

void Run() {
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 5);
  merge::SelectorOptions options;
  options.k_fraction = 0.05;
  options.batch_size = 10;

  core::TablePrinter table({"tau_max", "REC", "sim-seconds", "inferences",
                            "cache hits", "wall-seconds"});
  for (std::int64_t tau :
       {250, 500, 1000, 2000, 4000, 8000, 16000, 32000}) {
    merge::TMergeOptions tmerge_options;
    tmerge_options.tau_max = tau;
    merge::TMergeSelector selector(tmerge_options);
    merge::EvalResult eval =
        merge::EvaluateSelectorAveraged(env.prepared, selector, options, 3);
    table.AddRow()
        .AddInt(tau)
        .AddNumber(eval.rec, 3)
        .AddNumber(eval.simulated_seconds, 2)
        .AddInt(eval.usage.TotalInferences())
        .AddInt(eval.usage.cache_hits)
        .AddNumber(eval.summed_wall_seconds, 3);
  }

  merge::BaselineSelector baseline;
  merge::SelectorOptions bl_options = options;
  merge::EvalResult bl =
      merge::EvaluateSelectorAveraged(env.prepared, baseline, bl_options, 1);

  std::cout << "=== Figure 7: TMerge-B (B=10) REC & runtime vs tau_max "
               "(MOT-17-like) ===\n";
  table.Print(std::cout);
  std::cout << "\nBL-B reference: REC=" << core::FormatFixed(bl.rec, 3)
            << " sim-seconds=" << core::FormatFixed(bl.simulated_seconds, 2)
            << " (the level TMerge-B approaches at a fraction of the cost)\n";
  std::cout << "Expected shape: REC rises fast then flattens near the BL "
               "level; runtime growth slows as cache hits dominate.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
