// Microbenchmarks (google-benchmark) of the hot operations underneath the
// selectors: Beta sampling, Hungarian assignment, Kalman filtering,
// synthetic ReID embedding + distance, one TMerge Thompson round — plus
// the slab/kernel hot path this repo optimizes: distance kernels (scalar
// reference vs unrolled), a one-vs-many distance row (seed-style
// unordered_map lookup + per-pair scalar sqrt vs slab gather +
// OneVsManySquared + NormalizedFromSquared), and cache lookups
// (unordered_map vs the open-addressed DetectionIndex).
//
// `bench_micro --json-only` skips the google-benchmark suite and instead
// times the comparison pairs with a fixed deterministic harness, emitting
// one BENCH_JSON line per comparison. The CI perf-smoke job validates
// those lines with json.tool and compares them against the committed
// bench/BENCH_tier1.json baseline (tools/bench_regress.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "tmerge/core/beta.h"
#include "tmerge/core/rng.h"
#include "tmerge/core/status.h"
#include "tmerge/merge/pair_store.h"
#include "tmerge/reid/distance_kernels.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/feature_store.h"
#include "tmerge/reid/synthetic_reid_model.h"
#include "tmerge/sim/video_generator.h"
#include "tmerge/track/hungarian.h"
#include "tmerge/track/kalman_filter.h"

namespace tmerge {
namespace {

void BM_BetaSample(benchmark::State& state) {
  core::Rng rng(1);
  core::BetaPosterior beta(3.0, 7.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(beta.Sample(rng));
  }
}
BENCHMARK(BM_BetaSample);

void BM_ThompsonRound(benchmark::State& state) {
  // One TMerge iteration's dominant bookkeeping: drawing a theta per live
  // pair and taking the arg-min.
  const std::int64_t pairs = state.range(0);
  core::Rng rng(2);
  std::vector<core::BetaPosterior> bandits(pairs);
  for (auto _ : state) {
    double best = 2.0;
    std::size_t arg = 0;
    for (std::size_t p = 0; p < bandits.size(); ++p) {
      double theta = bandits[p].Sample(rng);
      if (theta < best) {
        best = theta;
        arg = p;
      }
    }
    benchmark::DoNotOptimize(arg);
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_ThompsonRound)->Arg(100)->Arg(400)->Arg(1600);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Rng rng(3);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& cell : row) cell = rng.Uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(track::SolveAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

void BM_KalmanPredictUpdate(benchmark::State& state) {
  track::KalmanBoxFilter filter({100, 100, 50, 120});
  core::BoundingBox observed{102, 100, 50, 120};
  for (auto _ : state) {
    filter.Predict();
    filter.Update(observed);
  }
}
BENCHMARK(BM_KalmanPredictUpdate);

void BM_ReidEmbed(benchmark::State& state) {
  sim::VideoConfig config;
  config.num_frames = 60;
  config.initial_objects = 4;
  config.min_track_length = 30;
  config.max_track_length = 50;
  sim::SyntheticVideo video = sim::GenerateVideo(config, 4);
  reid::SyntheticReidModel model(video, {}, 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    reid::CropRef crop{seed, 0, 1.0, false, seed};
    benchmark::DoNotOptimize(model.Embed(crop));
    ++seed;
  }
}
BENCHMARK(BM_ReidEmbed);

void BM_FeatureDistance(benchmark::State& state) {
  core::Rng rng(6);
  reid::FeatureVector a(16), b(16);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reid::FeatureDistance(a, b));
  }
}
BENCHMARK(BM_FeatureDistance);

void BM_BoxPairSampler(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    merge::BoxPairSampler sampler(100, 100);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(sampler.Sample(rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BoxPairSampler);

// --- Slab/kernel hot path ----------------------------------------------

/// Feature dimension used throughout (SyntheticReidModel ships dim 16).
constexpr std::size_t kDim = 16;
/// Stand-in normalization scale (the model's exact value is irrelevant to
/// the timing; sqrt + divide + clamp is the per-pair work being measured).
constexpr double kScale = 4.0;

/// Restores the kernel dispatch mode on scope exit.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(bool scalar)
      : saved_(reid::kernels::UseScalarKernels()) {
    reid::kernels::SetUseScalarKernels(scalar);
  }
  ~ScopedKernelMode() { reid::kernels::SetUseScalarKernels(saved_); }

 private:
  bool saved_;
};

#if defined(__GNUC__) || defined(__clang__)
#define TMERGE_BENCH_NOINLINE __attribute__((noinline))
#else
#define TMERGE_BENCH_NOINLINE
#endif

/// Replica of the seed-era FeatureDistance: runtime dimension check,
/// scalar loop bounded by a.size(), sqrt. Kept out of line because the
/// original lived in feature.cc, so seed callers paid a real function
/// call per box pair.
TMERGE_BENCH_NOINLINE double SeedFeatureDistance(
    const reid::FeatureVector& a, const reid::FeatureVector& b) {
  TMERGE_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

/// Boxes per track in the one-vs-many fixture: a 16x16 grid of box pairs
/// per track pair, a typical window overlap.
constexpr std::size_t kBoxes = 16;

/// Seed-era model shape: normalization_scale() was virtual on ReidModel,
/// and NormalizedDistance re-read it through the vtable for every box
/// pair. noinline keeps the per-pair call in the measurement even if the
/// optimizer devirtualizes the fixture's concrete type.
struct SeedScaleModel {
  virtual ~SeedScaleModel() = default;
  virtual double normalization_scale() const = 0;
  double NormalizedDistance(const reid::FeatureVector& a,
                            const reid::FeatureVector& b) const {
    double d = SeedFeatureDistance(a, b) / normalization_scale();
    return std::clamp(d, 0.0, 1.0);
  }
};

struct FixedScaleModel final : SeedScaleModel {
  TMERGE_BENCH_NOINLINE double normalization_scale() const override {
    return kScale;
  }
};

/// One full track-pair evaluation, built both ways, each side replicating
/// its era's inner loop statement for statement (seed side from the
/// pre-slab baseline.cc). The seed way: features in unordered_map node
/// storage, gathered per track pair into freshly constructed
/// FeatureVector-pointer vectors (one hash lookup + hit-counter bump per
/// box, as GetOrEmbed did), then a 16x16 grid of
/// model.NormalizedDistance calls — each an out-of-line scalar
/// FeatureDistance with per-call sqrt plus a virtual
/// normalization_scale() read. The current way: features in the slab
/// arena, gathered as raw rows through DetectionIndex into scratch
/// reused across pairs, then one OneVsManySquared call per row + one
/// batched NormalizedFromSquaredMany epilogue. Both sides pay their own
/// lookup and allocation traffic; accumulation order is identical, so
/// the two sums must match bit for bit.
struct PairFixture {
  PairFixture() {
    core::Rng rng(41);
    for (std::size_t i = 0; i < 2 * kBoxes; ++i) {
      reid::FeatureVector f(kDim);
      for (double& v : f) v = rng.Normal(0.0, 1.0);
      // Non-sequential ids, as real detection ids are.
      std::uint64_t id = i * 2654435761u + 97;
      ids.push_back(id);
      map.emplace(id, f);
      index.Insert(id, store.Append(f));
    }
    slab_a.reserve(kBoxes);
    slab_b.reserve(kBoxes);
    row.resize(kBoxes);
  }

  std::unordered_map<std::uint64_t, reid::FeatureVector> map;
  std::vector<std::uint64_t> ids;
  reid::FeatureStore store;
  reid::DetectionIndex index;
  FixedScaleModel seed_model;
  std::uint64_t cache_hits = 0;
  std::vector<const double*> slab_a, slab_b;
  std::vector<double> row;
};

double SeedPair(PairFixture& f) {
  // The seed declared these inside the per-track-pair loop, so every
  // track pair paid the two gather allocations; reserve matches the
  // seed's embed_track.
  std::vector<const reid::FeatureVector*> seed_a, seed_b;
  seed_a.reserve(kBoxes);
  seed_b.reserve(kBoxes);
  for (std::size_t i = 0; i < kBoxes; ++i) {
    // Seed GetOrEmbed hit path: map find + RecordCacheHit.
    auto it_a = f.map.find(f.ids[i]);
    ++f.cache_hits;
    seed_a.push_back(&it_a->second);
    auto it_b = f.map.find(f.ids[kBoxes + i]);
    ++f.cache_hits;
    seed_b.push_back(&it_b->second);
  }
  double sum = 0.0;
  for (const auto* fa : seed_a) {
    for (const auto* fb : seed_b) {
      sum += f.seed_model.NormalizedDistance(*fa, *fb);
    }
  }
  return sum;
}

double SlabPair(PairFixture& f) {
  f.slab_a.clear();
  f.slab_b.clear();
  for (std::size_t i = 0; i < kBoxes; ++i) {
    // Current GetOrEmbed hit path: index find + RecordCacheHit.
    f.slab_a.push_back(f.store.Data(f.index.Find(f.ids[i])));
    ++f.cache_hits;
    f.slab_b.push_back(f.store.Data(f.index.Find(f.ids[kBoxes + i])));
    ++f.cache_hits;
  }
  double sum = 0.0;
  for (const double* fa : f.slab_a) {
    reid::kernels::OneVsManySquared(fa, f.slab_b.data(), kBoxes, kDim,
                                    f.row.data());
    reid::kernels::NormalizedFromSquaredMany(f.row.data(), kBoxes, kScale,
                                             f.row.data());
    for (double d : f.row) sum += d;
  }
  return sum;
}

/// The ranking-only fast path layered on top of the same gather: squared
/// distances with no per-pair sqrt at all (legal when only the order or
/// a single-distance threshold matters; DESIGN.md §10 spells out where
/// that is and is not safe).
double SlabSquaredPair(PairFixture& f) {
  f.slab_a.clear();
  f.slab_b.clear();
  for (std::size_t i = 0; i < kBoxes; ++i) {
    f.slab_a.push_back(f.store.Data(f.index.Find(f.ids[i])));
    ++f.cache_hits;
    f.slab_b.push_back(f.store.Data(f.index.Find(f.ids[kBoxes + i])));
    ++f.cache_hits;
  }
  double sum = 0.0;
  for (const double* fa : f.slab_a) {
    reid::kernels::OneVsManySquared(fa, f.slab_b.data(), kBoxes, kDim,
                                    f.row.data());
    for (double sq : f.row) sum += sq;
  }
  return sum;
}

/// detection_id -> feature lookup built both ways: the seed-era
/// unordered_map and the open-addressed DetectionIndex.
struct LookupFixture {
  explicit LookupFixture(std::size_t entries) {
    core::Rng rng(43);
    reid::FeatureVector f(kDim, 0.5);
    for (std::size_t i = 0; i < entries; ++i) {
      std::uint64_t id = i * 2654435761u + 97;
      ids.push_back(id);
      map.emplace(id, f);
      index.Insert(id, store.Append(f));
    }
    // Probe in an order decorrelated from insertion.
    for (std::size_t i = ids.size() - 1; i > 0; --i) {
      std::swap(ids[i], ids[static_cast<std::size_t>(
                            rng.UniformInt(0, static_cast<int>(i)))]);
    }
  }

  std::unordered_map<std::uint64_t, reid::FeatureVector> map;
  reid::FeatureStore store;
  reid::DetectionIndex index;
  std::vector<std::uint64_t> ids;
};

std::size_t MapLookups(const LookupFixture& f) {
  std::size_t acc = 0;
  for (std::uint64_t id : f.ids) acc += f.map.find(id)->second.size();
  return acc;
}

std::size_t IndexLookups(const LookupFixture& f) {
  std::size_t acc = 0;
  for (std::uint64_t id : f.ids) acc += f.index.Find(id).index;
  return acc;
}

void BM_SquaredDistanceScalar(benchmark::State& state) {
  core::Rng rng(6);
  reid::FeatureVector a(kDim), b(kDim);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reid::kernels::ScalarSquaredDistance(a.data(), b.data(), kDim));
  }
}
BENCHMARK(BM_SquaredDistanceScalar);

void BM_SquaredDistanceUnrolled(benchmark::State& state) {
  ScopedKernelMode mode(/*scalar=*/false);
  core::Rng rng(6);
  reid::FeatureVector a(kDim), b(kDim);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reid::kernels::SquaredDistance(a.data(), b.data(), kDim));
  }
}
BENCHMARK(BM_SquaredDistanceUnrolled);

void BM_PairGridMapScalar(benchmark::State& state) {
  PairFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeedPair(f));
  }
  state.SetItemsProcessed(state.iterations() * kBoxes * kBoxes);
}
BENCHMARK(BM_PairGridMapScalar);

void BM_PairGridSlabVectorized(benchmark::State& state) {
  ScopedKernelMode mode(/*scalar=*/false);
  PairFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlabPair(f));
  }
  state.SetItemsProcessed(state.iterations() * kBoxes * kBoxes);
}
BENCHMARK(BM_PairGridSlabVectorized);

void BM_PairGridSlabSquared(benchmark::State& state) {
  ScopedKernelMode mode(/*scalar=*/false);
  PairFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlabSquaredPair(f));
  }
  state.SetItemsProcessed(state.iterations() * kBoxes * kBoxes);
}
BENCHMARK(BM_PairGridSlabSquared);

void BM_CacheLookupMap(benchmark::State& state) {
  LookupFixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapLookups(f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CacheLookupMap)->Arg(1024)->Arg(16384);

void BM_CacheLookupSlabIndex(benchmark::State& state) {
  LookupFixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndexLookups(f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CacheLookupSlabIndex)->Arg(1024)->Arg(16384);

// --- Deterministic BENCH_JSON harness ----------------------------------

/// Nanoseconds per op over a fixed iteration count (steady_clock is fine
/// here: bench/ is outside the determinism lint's steady_clock ban, and
/// wall-clock is the measurand).
template <typename Op>
double NsPerOp(Op&& op, std::int64_t iters) {
  for (int i = 0; i < 100; ++i) op();  // Warmup.
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < iters; ++i) op();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

/// The CI perf-smoke entry point: times the seed vs slab comparison
/// pairs and emits one BENCH_JSON line per comparison. Sides alternate
/// in short rounds and each keeps its minimum: alternation cancels the
/// slow drift of a busy or thermally throttling host (measuring one side
/// entirely before the other would hand whichever goes first a
/// systematic advantage), and the minimum is the standard noise-robust
/// estimator for a deterministic op.
void RunJsonBenches() {
  ScopedKernelMode mode(/*scalar=*/false);
  constexpr int kRounds = 7;
  const double kInf = std::numeric_limits<double>::infinity();

  PairFixture f;
  // Same elements in the same accumulation order: the two paths must
  // agree to the last bit, or the comparison is timing different math.
  TMERGE_CHECK(SeedPair(f) == SlabPair(f));
  double seed_ns = kInf, slab_ns = kInf, squared_ns = kInf;
  for (int r = 0; r < kRounds; ++r) {
    seed_ns = std::min(
        seed_ns, NsPerOp([&] { benchmark::DoNotOptimize(SeedPair(f)); }, 3000));
    slab_ns = std::min(
        slab_ns, NsPerOp([&] { benchmark::DoNotOptimize(SlabPair(f)); }, 3000));
    squared_ns = std::min(
        squared_ns,
        NsPerOp([&] { benchmark::DoNotOptimize(SlabSquaredPair(f)); }, 3000));
  }
  bench::EmitBenchJson(
      "micro_one_vs_many",
      {{"boxes", static_cast<double>(kBoxes)},
       {"dim", static_cast<double>(kDim)},
       {"box_pairs", static_cast<double>(kBoxes * kBoxes)},
       {"map_scalar_ns", seed_ns},
       {"slab_vectorized_ns", slab_ns},
       {"slab_squared_ns", squared_ns},
       {"speedup", seed_ns / slab_ns},
       {"ranking_speedup", seed_ns / squared_ns}});

  constexpr std::size_t kEntries = 4096;
  LookupFixture l(kEntries);
  TMERGE_CHECK(IndexLookups(l) > 0);
  double map_lookup_ns = kInf, index_lookup_ns = kInf;
  for (int r = 0; r < kRounds; ++r) {
    map_lookup_ns = std::min(
        map_lookup_ns,
        NsPerOp([&] { benchmark::DoNotOptimize(MapLookups(l)); }, 300));
    index_lookup_ns = std::min(
        index_lookup_ns,
        NsPerOp([&] { benchmark::DoNotOptimize(IndexLookups(l)); }, 300));
  }
  bench::EmitBenchJson("micro_cache_lookup",
                       {{"entries", static_cast<double>(kEntries)},
                        {"map_ns", map_lookup_ns},
                        {"index_ns", index_lookup_ns},
                        {"speedup", map_lookup_ns / index_lookup_ns}});
}

}  // namespace
}  // namespace tmerge

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      tmerge::RunJsonBenches();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tmerge::RunJsonBenches();
  return 0;
}
