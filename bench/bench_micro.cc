// Microbenchmarks (google-benchmark) of the hot operations underneath the
// selectors: Beta sampling, Hungarian assignment, Kalman filtering,
// synthetic ReID embedding + distance, and one TMerge Thompson round.

#include <benchmark/benchmark.h>

#include "tmerge/core/beta.h"
#include "tmerge/core/rng.h"
#include "tmerge/merge/pair_store.h"
#include "tmerge/reid/synthetic_reid_model.h"
#include "tmerge/sim/video_generator.h"
#include "tmerge/track/hungarian.h"
#include "tmerge/track/kalman_filter.h"

namespace tmerge {
namespace {

void BM_BetaSample(benchmark::State& state) {
  core::Rng rng(1);
  core::BetaPosterior beta(3.0, 7.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(beta.Sample(rng));
  }
}
BENCHMARK(BM_BetaSample);

void BM_ThompsonRound(benchmark::State& state) {
  // One TMerge iteration's dominant bookkeeping: drawing a theta per live
  // pair and taking the arg-min.
  const std::int64_t pairs = state.range(0);
  core::Rng rng(2);
  std::vector<core::BetaPosterior> bandits(pairs);
  for (auto _ : state) {
    double best = 2.0;
    std::size_t arg = 0;
    for (std::size_t p = 0; p < bandits.size(); ++p) {
      double theta = bandits[p].Sample(rng);
      if (theta < best) {
        best = theta;
        arg = p;
      }
    }
    benchmark::DoNotOptimize(arg);
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_ThompsonRound)->Arg(100)->Arg(400)->Arg(1600);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Rng rng(3);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& cell : row) cell = rng.Uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(track::SolveAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

void BM_KalmanPredictUpdate(benchmark::State& state) {
  track::KalmanBoxFilter filter({100, 100, 50, 120});
  core::BoundingBox observed{102, 100, 50, 120};
  for (auto _ : state) {
    filter.Predict();
    filter.Update(observed);
  }
}
BENCHMARK(BM_KalmanPredictUpdate);

void BM_ReidEmbed(benchmark::State& state) {
  sim::VideoConfig config;
  config.num_frames = 60;
  config.initial_objects = 4;
  config.min_track_length = 30;
  config.max_track_length = 50;
  sim::SyntheticVideo video = sim::GenerateVideo(config, 4);
  reid::SyntheticReidModel model(video, {}, 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    reid::CropRef crop{seed, 0, 1.0, false, seed};
    benchmark::DoNotOptimize(model.Embed(crop));
    ++seed;
  }
}
BENCHMARK(BM_ReidEmbed);

void BM_FeatureDistance(benchmark::State& state) {
  core::Rng rng(6);
  reid::FeatureVector a(16), b(16);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reid::FeatureDistance(a, b));
  }
}
BENCHMARK(BM_FeatureDistance);

void BM_BoxPairSampler(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    merge::BoxPairSampler sampler(100, 100);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(sampler.Sample(rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BoxPairSampler);

}  // namespace
}  // namespace tmerge

BENCHMARK_MAIN();
