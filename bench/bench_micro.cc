// Microbenchmarks (google-benchmark) of the hot operations underneath the
// selectors: Beta sampling, Hungarian assignment, Kalman filtering,
// synthetic ReID embedding + distance, one TMerge Thompson round — plus
// the slab/kernel hot path this repo optimizes: distance kernels (scalar
// reference vs unrolled), a one-vs-many distance row (seed-style
// unordered_map lookup + per-pair scalar sqrt vs slab gather +
// OneVsManySquared + NormalizedFromSquared), and cache lookups
// (unordered_map vs the open-addressed DetectionIndex).
//
// `bench_micro --json-only` skips the google-benchmark suite and instead
// times the comparison pairs with a fixed deterministic harness, emitting
// one BENCH_JSON line per comparison. The CI perf-smoke job validates
// those lines with json.tool and compares them against the committed
// bench/BENCH_tier1.json baseline (tools/bench_regress.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "tmerge/core/beta.h"
#include "tmerge/core/rng.h"
#include "tmerge/core/status.h"
#include "tmerge/merge/index_support.h"
#include "tmerge/merge/pair_store.h"
#include "tmerge/reid/candidate_index.h"
#include "tmerge/reid/distance_kernels.h"
#include "tmerge/reid/feature_cache.h"
#include "tmerge/reid/feature_store.h"
#include "tmerge/reid/synthetic_reid_model.h"
#include "tmerge/sim/video_generator.h"
#include "tmerge/track/hungarian.h"
#include "tmerge/track/kalman_filter.h"

namespace tmerge {
namespace {

void BM_BetaSample(benchmark::State& state) {
  core::Rng rng(1);
  core::BetaPosterior beta(3.0, 7.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(beta.Sample(rng));
  }
}
BENCHMARK(BM_BetaSample);

void BM_ThompsonRound(benchmark::State& state) {
  // One TMerge iteration's dominant bookkeeping: drawing a theta per live
  // pair and taking the arg-min.
  const std::int64_t pairs = state.range(0);
  core::Rng rng(2);
  std::vector<core::BetaPosterior> bandits(pairs);
  for (auto _ : state) {
    double best = 2.0;
    std::size_t arg = 0;
    for (std::size_t p = 0; p < bandits.size(); ++p) {
      double theta = bandits[p].Sample(rng);
      if (theta < best) {
        best = theta;
        arg = p;
      }
    }
    benchmark::DoNotOptimize(arg);
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_ThompsonRound)->Arg(100)->Arg(400)->Arg(1600);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Rng rng(3);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& cell : row) cell = rng.Uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(track::SolveAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

void BM_KalmanPredictUpdate(benchmark::State& state) {
  track::KalmanBoxFilter filter({100, 100, 50, 120});
  core::BoundingBox observed{102, 100, 50, 120};
  for (auto _ : state) {
    filter.Predict();
    filter.Update(observed);
  }
}
BENCHMARK(BM_KalmanPredictUpdate);

void BM_ReidEmbed(benchmark::State& state) {
  sim::VideoConfig config;
  config.num_frames = 60;
  config.initial_objects = 4;
  config.min_track_length = 30;
  config.max_track_length = 50;
  sim::SyntheticVideo video = sim::GenerateVideo(config, 4);
  reid::SyntheticReidModel model(video, {}, 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    reid::CropRef crop{seed, 0, 1.0, false, seed};
    benchmark::DoNotOptimize(model.Embed(crop));
    ++seed;
  }
}
BENCHMARK(BM_ReidEmbed);

void BM_FeatureDistance(benchmark::State& state) {
  core::Rng rng(6);
  reid::FeatureVector a(16), b(16);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reid::FeatureDistance(a, b));
  }
}
BENCHMARK(BM_FeatureDistance);

void BM_BoxPairSampler(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    merge::BoxPairSampler sampler(100, 100);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(sampler.Sample(rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BoxPairSampler);

// --- Slab/kernel hot path ----------------------------------------------

/// Feature dimension used throughout (SyntheticReidModel ships dim 16).
constexpr std::size_t kDim = 16;
/// Stand-in normalization scale (the model's exact value is irrelevant to
/// the timing; sqrt + divide + clamp is the per-pair work being measured).
constexpr double kScale = 4.0;

/// Restores the kernel dispatch mode on scope exit.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(bool scalar)
      : saved_(reid::kernels::UseScalarKernels()) {
    reid::kernels::SetUseScalarKernels(scalar);
  }
  ~ScopedKernelMode() { reid::kernels::SetUseScalarKernels(saved_); }

 private:
  bool saved_;
};

#if defined(__GNUC__) || defined(__clang__)
#define TMERGE_BENCH_NOINLINE __attribute__((noinline))
#else
#define TMERGE_BENCH_NOINLINE
#endif

/// Replica of the seed-era FeatureDistance: runtime dimension check,
/// scalar loop bounded by a.size(), sqrt. Kept out of line because the
/// original lived in feature.cc, so seed callers paid a real function
/// call per box pair.
TMERGE_BENCH_NOINLINE double SeedFeatureDistance(
    const reid::FeatureVector& a, const reid::FeatureVector& b) {
  TMERGE_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

/// Boxes per track in the one-vs-many fixture: a 16x16 grid of box pairs
/// per track pair, a typical window overlap.
constexpr std::size_t kBoxes = 16;

/// Seed-era model shape: normalization_scale() was virtual on ReidModel,
/// and NormalizedDistance re-read it through the vtable for every box
/// pair. noinline keeps the per-pair call in the measurement even if the
/// optimizer devirtualizes the fixture's concrete type.
struct SeedScaleModel {
  virtual ~SeedScaleModel() = default;
  virtual double normalization_scale() const = 0;
  double NormalizedDistance(const reid::FeatureVector& a,
                            const reid::FeatureVector& b) const {
    double d = SeedFeatureDistance(a, b) / normalization_scale();
    return std::clamp(d, 0.0, 1.0);
  }
};

struct FixedScaleModel final : SeedScaleModel {
  TMERGE_BENCH_NOINLINE double normalization_scale() const override {
    return kScale;
  }
};

/// One full track-pair evaluation, built both ways, each side replicating
/// its era's inner loop statement for statement (seed side from the
/// pre-slab baseline.cc). The seed way: features in unordered_map node
/// storage, gathered per track pair into freshly constructed
/// FeatureVector-pointer vectors (one hash lookup + hit-counter bump per
/// box, as GetOrEmbed did), then a 16x16 grid of
/// model.NormalizedDistance calls — each an out-of-line scalar
/// FeatureDistance with per-call sqrt plus a virtual
/// normalization_scale() read. The current way: features in the slab
/// arena, gathered as raw rows through DetectionIndex into scratch
/// reused across pairs, then one OneVsManySquared call per row + one
/// batched NormalizedFromSquaredMany epilogue. Both sides pay their own
/// lookup and allocation traffic; accumulation order is identical, so
/// the two sums must match bit for bit.
struct PairFixture {
  PairFixture() {
    core::Rng rng(41);
    for (std::size_t i = 0; i < 2 * kBoxes; ++i) {
      reid::FeatureVector f(kDim);
      for (double& v : f) v = rng.Normal(0.0, 1.0);
      // Non-sequential ids, as real detection ids are.
      std::uint64_t id = i * 2654435761u + 97;
      ids.push_back(id);
      map.emplace(id, f);
      index.Insert(id, store.Append(f));
    }
    slab_a.reserve(kBoxes);
    slab_b.reserve(kBoxes);
    row.resize(kBoxes);
  }

  std::unordered_map<std::uint64_t, reid::FeatureVector> map;
  std::vector<std::uint64_t> ids;
  reid::FeatureStore store;
  reid::DetectionIndex index;
  FixedScaleModel seed_model;
  std::uint64_t cache_hits = 0;
  std::vector<const double*> slab_a, slab_b;
  std::vector<double> row;
};

double SeedPair(PairFixture& f) {
  // The seed declared these inside the per-track-pair loop, so every
  // track pair paid the two gather allocations; reserve matches the
  // seed's embed_track.
  std::vector<const reid::FeatureVector*> seed_a, seed_b;
  seed_a.reserve(kBoxes);
  seed_b.reserve(kBoxes);
  for (std::size_t i = 0; i < kBoxes; ++i) {
    // Seed GetOrEmbed hit path: map find + RecordCacheHit.
    auto it_a = f.map.find(f.ids[i]);
    ++f.cache_hits;
    seed_a.push_back(&it_a->second);
    auto it_b = f.map.find(f.ids[kBoxes + i]);
    ++f.cache_hits;
    seed_b.push_back(&it_b->second);
  }
  double sum = 0.0;
  for (const auto* fa : seed_a) {
    for (const auto* fb : seed_b) {
      sum += f.seed_model.NormalizedDistance(*fa, *fb);
    }
  }
  return sum;
}

double SlabPair(PairFixture& f) {
  f.slab_a.clear();
  f.slab_b.clear();
  for (std::size_t i = 0; i < kBoxes; ++i) {
    // Current GetOrEmbed hit path: index find + RecordCacheHit.
    f.slab_a.push_back(f.store.Data(f.index.Find(f.ids[i])));
    ++f.cache_hits;
    f.slab_b.push_back(f.store.Data(f.index.Find(f.ids[kBoxes + i])));
    ++f.cache_hits;
  }
  double sum = 0.0;
  for (const double* fa : f.slab_a) {
    reid::kernels::OneVsManySquared(fa, f.slab_b.data(), kBoxes, kDim,
                                    f.row.data());
    reid::kernels::NormalizedFromSquaredMany(f.row.data(), kBoxes, kScale,
                                             f.row.data());
    for (double d : f.row) sum += d;
  }
  return sum;
}

/// The ranking-only fast path layered on top of the same gather: squared
/// distances with no per-pair sqrt at all (legal when only the order or
/// a single-distance threshold matters; DESIGN.md §10 spells out where
/// that is and is not safe).
double SlabSquaredPair(PairFixture& f) {
  f.slab_a.clear();
  f.slab_b.clear();
  for (std::size_t i = 0; i < kBoxes; ++i) {
    f.slab_a.push_back(f.store.Data(f.index.Find(f.ids[i])));
    ++f.cache_hits;
    f.slab_b.push_back(f.store.Data(f.index.Find(f.ids[kBoxes + i])));
    ++f.cache_hits;
  }
  double sum = 0.0;
  for (const double* fa : f.slab_a) {
    reid::kernels::OneVsManySquared(fa, f.slab_b.data(), kBoxes, kDim,
                                    f.row.data());
    for (double sq : f.row) sum += sq;
  }
  return sum;
}

/// detection_id -> feature lookup built both ways: the seed-era
/// unordered_map and the open-addressed DetectionIndex.
struct LookupFixture {
  explicit LookupFixture(std::size_t entries) {
    core::Rng rng(43);
    reid::FeatureVector f(kDim, 0.5);
    for (std::size_t i = 0; i < entries; ++i) {
      std::uint64_t id = i * 2654435761u + 97;
      ids.push_back(id);
      map.emplace(id, f);
      index.Insert(id, store.Append(f));
    }
    // Probe in an order decorrelated from insertion.
    for (std::size_t i = ids.size() - 1; i > 0; --i) {
      std::swap(ids[i], ids[static_cast<std::size_t>(
                            rng.UniformInt(0, static_cast<int>(i)))]);
    }
  }

  std::unordered_map<std::uint64_t, reid::FeatureVector> map;
  reid::FeatureStore store;
  reid::DetectionIndex index;
  std::vector<std::uint64_t> ids;
};

std::size_t MapLookups(const LookupFixture& f) {
  std::size_t acc = 0;
  for (std::uint64_t id : f.ids) acc += f.map.find(id)->second.size();
  return acc;
}

std::size_t IndexLookups(const LookupFixture& f) {
  std::size_t acc = 0;
  for (std::uint64_t id : f.ids) acc += f.index.Find(id).index;
  return acc;
}

void BM_SquaredDistanceScalar(benchmark::State& state) {
  core::Rng rng(6);
  reid::FeatureVector a(kDim), b(kDim);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reid::kernels::ScalarSquaredDistance(a.data(), b.data(), kDim));
  }
}
BENCHMARK(BM_SquaredDistanceScalar);

void BM_SquaredDistanceUnrolled(benchmark::State& state) {
  ScopedKernelMode mode(/*scalar=*/false);
  core::Rng rng(6);
  reid::FeatureVector a(kDim), b(kDim);
  for (auto& v : a) v = rng.Normal(0, 1);
  for (auto& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reid::kernels::SquaredDistance(a.data(), b.data(), kDim));
  }
}
BENCHMARK(BM_SquaredDistanceUnrolled);

void BM_PairGridMapScalar(benchmark::State& state) {
  PairFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeedPair(f));
  }
  state.SetItemsProcessed(state.iterations() * kBoxes * kBoxes);
}
BENCHMARK(BM_PairGridMapScalar);

void BM_PairGridSlabVectorized(benchmark::State& state) {
  ScopedKernelMode mode(/*scalar=*/false);
  PairFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlabPair(f));
  }
  state.SetItemsProcessed(state.iterations() * kBoxes * kBoxes);
}
BENCHMARK(BM_PairGridSlabVectorized);

void BM_PairGridSlabSquared(benchmark::State& state) {
  ScopedKernelMode mode(/*scalar=*/false);
  PairFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlabSquaredPair(f));
  }
  state.SetItemsProcessed(state.iterations() * kBoxes * kBoxes);
}
BENCHMARK(BM_PairGridSlabSquared);

void BM_CacheLookupMap(benchmark::State& state) {
  LookupFixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapLookups(f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CacheLookupMap)->Arg(1024)->Arg(16384);

void BM_CacheLookupSlabIndex(benchmark::State& state) {
  LookupFixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndexLookups(f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CacheLookupSlabIndex)->Arg(1024)->Arg(16384);

// --- Deterministic BENCH_JSON harness ----------------------------------

/// Nanoseconds per op over a fixed iteration count (steady_clock is fine
/// here: bench/ is outside the determinism lint's steady_clock ban, and
/// wall-clock is the measurand).
template <typename Op>
double NsPerOp(Op&& op, std::int64_t iters) {
  for (int i = 0; i < 100; ++i) op();  // Warmup.
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < iters; ++i) op();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

/// One timed invocation, for section ops big enough (milliseconds of
/// work) that per-call clock overhead is noise; callers alternate sides
/// and keep the min over a few rounds, like NsPerOp users do.
template <typename Op>
double OnceNs(Op&& op) {
  const auto start = std::chrono::steady_clock::now();
  op();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count();
}

/// Peak resident set (VmHWM) in MiB from /proc/self/status, or -1 when
/// unavailable. Advisory per-section telemetry: the committed baseline
/// carries no RSS fields, so host differences can never gate CI.
double PeakRssMb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return -1.0;
  char line[256];
  double mb = -1.0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(status);
  return mb;
}

/// Resets the VmHWM watermark so the next PeakRssMb reading is the
/// current section's own peak, not the whole binary's. Best-effort: on
/// kernels without the "5" clear_refs command the old watermark simply
/// carries over, and the field stays advisory either way.
void ResetPeakRss() {
  std::FILE* clear = std::fopen("/proc/self/clear_refs", "w");
  if (clear == nullptr) return;
  std::fputs("5", clear);
  std::fclose(clear);
}

// --- Million-row candidate-index sections (DESIGN.md §15) ---------------

/// (score, row) under the ascending (score, index) total order that
/// merge::internal::TopKByScore uses for pair ranking.
using RankedRow = std::pair<double, std::uint32_t>;

/// Top-k smallest (score, index) rows via a k-element max-heap: one pass
/// over a million scores with O(k) state, sorted ascending on return.
void TopKRows(const double* scores, const std::uint32_t* indices,
              std::size_t n, std::size_t k, std::vector<RankedRow>* out) {
  out->clear();
  for (std::size_t i = 0; i < n; ++i) {
    const RankedRow cand{scores[i],
                         indices != nullptr ? indices[i]
                                            : static_cast<std::uint32_t>(i)};
    if (out->size() < k) {
      out->push_back(cand);
      std::push_heap(out->begin(), out->end());
    } else if (cand < out->front()) {
      std::pop_heap(out->begin(), out->end());
      out->back() = cand;
      std::push_heap(out->begin(), out->end());
    }
  }
  std::sort(out->begin(), out->end());
}

/// Million-row fixture shared by the screen and router sections. Rows are
/// clustered — the shape real embedding sets have, and what the screen
/// and the centroid router exploit — at a realistic embedding width
/// (dim 64; the dim-16 fixtures above match SyntheticReidModel instead).
/// The query is appended as the store's last row so the mirror pass
/// quantizes it exactly like every candidate.
constexpr std::size_t kMillionRows = std::size_t{1} << 20;
constexpr std::size_t kMillionDim = 64;
constexpr std::size_t kMillionClusters = 64;
constexpr std::size_t kMillionK = 64;
constexpr double kMillionScale = 16.0;
constexpr double kMillionMargin = 1.5;  ///< IndexOptions default.

struct MillionFixture {
  MillionFixture() {
    core::Rng rng(61);
    std::vector<std::vector<double>> centers(
        kMillionClusters, std::vector<double>(kMillionDim));
    for (auto& center : centers) {
      for (double& v : center) v = rng.Normal(0.0, 1.0);
    }
    std::vector<double> f(kMillionDim);
    for (std::size_t r = 0; r < kMillionRows; ++r) {
      const auto& center = centers[r % kMillionClusters];
      for (std::size_t i = 0; i < kMillionDim; ++i) {
        f[i] = center[i] + rng.Normal(0.0, 0.15);
      }
      store.Append(f.data(), kMillionDim);
    }
    for (std::size_t i = 0; i < kMillionDim; ++i) {
      f[i] = centers[7][i] + rng.Normal(0.0, 0.15);
    }
    query_ref = store.Append(f.data(), kMillionDim);
    store.EnsureInt8Mirror();
    rows.reserve(kMillionRows);
    int8_rows.reserve(kMillionRows);
    int8_scales.reserve(kMillionRows);
    errors.reserve(kMillionRows);
    for (std::size_t r = 0; r < kMillionRows; ++r) {
      const reid::FeatureRef ref{static_cast<std::uint32_t>(r)};
      rows.push_back(store.Data(ref));
      int8_rows.push_back(store.Int8Row(ref));
      int8_scales.push_back(store.Int8Scale(ref));
      errors.push_back(store.Int8Error(ref));
    }
  }

  reid::FeatureStore store;
  reid::FeatureRef query_ref;
  std::vector<const double*> rows;
  std::vector<const std::int8_t*> int8_rows;
  std::vector<float> int8_scales;
  std::vector<float> errors;
};

/// Headline comparison (§15.2): the PR 5 exact path — SSE2 fp64 full
/// sweep + batched normalize + top-k — against the quantized screen:
/// int8 sweep at the session's dispatch level, per-row over-fetch
/// bounds, ShortlistMask, exact fp64 re-rank of the shortlist only.
/// Both paths must produce the identical top-k (scores and rows): the
/// screen changes how fast the top-k is found, never what it contains —
/// recall 1.0 by construction, not approximation.
void RunMillionScreenSection(MillionFixture& f) {
  using reid::kernels::KernelLevel;
  ResetPeakRss();
  const double* query = f.store.Data(f.query_ref);
  const std::int8_t* q8 = f.store.Int8Row(f.query_ref);
  const float q8_scale = f.store.Int8Scale(f.query_ref);
  const double h_q = static_cast<double>(f.store.Int8Error(f.query_ref));

  // Per-row screen bound. ScreenBound is affine in the candidate's
  // reconstruction error, so two anchor evaluations recover slope and
  // intercept while the formula itself stays owned by index_support.
  const double bound0 = merge::internal::ScreenBound(
      h_q, 0.0, kMillionDim, kMillionScale, kMillionMargin);
  const double bound_slope =
      merge::internal::ScreenBound(h_q, 1.0, kMillionDim, kMillionScale,
                                   kMillionMargin) -
      bound0;

  std::vector<double> sq(kMillionRows);
  std::vector<double> norm(kMillionRows);
  std::vector<RankedRow> exact_top, screen_top;
  auto exact_op = [&] {
    reid::kernels::OneVsManySquared(query, f.rows.data(), kMillionRows,
                                    kMillionDim, sq.data());
    reid::kernels::NormalizedFromSquaredMany(sq.data(), kMillionRows,
                                             kMillionScale, norm.data());
    TopKRows(norm.data(), nullptr, kMillionRows, kMillionK, &exact_top);
  };

  std::vector<float> approx32(kMillionRows);
  std::vector<double> approx(kMillionRows);
  std::vector<double> bound(kMillionRows);
  std::vector<std::uint32_t> short_idx;
  std::vector<const double*> short_rows;
  std::vector<double> short_sq;
  auto screen_op = [&] {
    reid::kernels::Int8OneVsManySquared(q8, q8_scale, f.int8_rows.data(),
                                        f.int8_scales.data(), kMillionRows,
                                        kMillionDim, approx32.data());
    for (std::size_t i = 0; i < kMillionRows; ++i) {
      approx[i] = static_cast<double>(approx32[i]);
      bound[i] = bound0 + bound_slope * static_cast<double>(f.errors[i]);
    }
    reid::kernels::NormalizedFromSquaredMany(approx.data(), kMillionRows,
                                             kMillionScale, approx.data());
    const std::vector<char> mask =
        merge::internal::ShortlistMask(approx, bound, kMillionK);
    short_idx.clear();
    short_rows.clear();
    for (std::size_t i = 0; i < kMillionRows; ++i) {
      if (mask[i] != 0) {
        short_idx.push_back(static_cast<std::uint32_t>(i));
        short_rows.push_back(f.rows[i]);
      }
    }
    short_sq.resize(short_idx.size());
    reid::kernels::OneVsManySquared(query, short_rows.data(),
                                    short_rows.size(), kMillionDim,
                                    short_sq.data());
    reid::kernels::NormalizedFromSquaredMany(
        short_sq.data(), short_sq.size(), kMillionScale, short_sq.data());
    TopKRows(short_sq.data(), short_idx.data(), short_idx.size(), kMillionK,
             &screen_top);
  };

  const double kInf = std::numeric_limits<double>::infinity();
  const KernelLevel session_level = reid::kernels::CurrentKernelLevel();
  double exact_ns = kInf;
  double screen_ns = kInf;
  for (int r = 0; r < 5; ++r) {
    // The exact side pins SSE2 — the best tier PR 5 had — even on AVX
    // hosts; the screen side runs at the session's dispatch level. The
    // fp64 kernels return identical bits at every level, so the pin
    // changes only the timing, never the ranking being compared.
    reid::kernels::SetKernelLevel(KernelLevel::kSse2);
    exact_ns = std::min(exact_ns, OnceNs(exact_op));
    reid::kernels::SetKernelLevel(session_level);
    screen_ns = std::min(screen_ns, OnceNs(screen_op));
  }

  TMERGE_CHECK(exact_top.size() == screen_top.size());
  for (std::size_t i = 0; i < exact_top.size(); ++i) {
    TMERGE_CHECK(exact_top[i] == screen_top[i]);
  }
  bench::EmitBenchJson(
      "micro_million_screen",
      {{"rows", static_cast<double>(kMillionRows)},
       {"dim", static_cast<double>(kMillionDim)},
       {"k", static_cast<double>(kMillionK)},
       {"exact_sse2_ns", exact_ns},
       {"screen_rerank_ns", screen_ns},
       {"speedup", exact_ns / screen_ns},
       {"shortlist_rows", static_cast<double>(short_idx.size())},
       {"exact_topk_preserved", 1.0},
       {"peak_rss_mb", PeakRssMb()}});
}

/// Coarse cluster router over the same million rows (§15.3): one
/// from-scratch build (sampled Lloyd + full assignment — the per-video
/// amortized cost) and the per-query probe NearestClusters performs.
void RunMillionRouterSection(MillionFixture& f) {
  ResetPeakRss();
  const double kInf = std::numeric_limits<double>::infinity();
  reid::ClusterIndexOptions options;
  reid::CoarseClusterIndex index(options);
  double build_ns = kInf;
  for (int r = 0; r < 2; ++r) {
    index.Clear();
    build_ns = std::min(build_ns, OnceNs([&] { index.Ensure(f.store); }));
  }
  TMERGE_CHECK(index.built());

  const reid::FeatureView query(f.store.Data(f.query_ref), kMillionDim);
  constexpr std::int32_t kProbes = 8;  // IndexOptions default.
  std::vector<std::int32_t> probed;
  double route_ns = kInf;
  for (int r = 0; r < 5; ++r) {
    route_ns = std::min(route_ns, NsPerOp(
                                      [&] {
                                        index.NearestClusters(query, kProbes,
                                                              &probed);
                                        benchmark::DoNotOptimize(
                                            probed.data());
                                      },
                                      2000));
  }
  TMERGE_CHECK(static_cast<std::int32_t>(probed.size()) == kProbes);
  bench::EmitBenchJson(
      "micro_million_router",
      {{"rows", static_cast<double>(index.assigned_rows())},
       {"clusters", static_cast<double>(index.num_clusters())},
       {"probes", static_cast<double>(kProbes)},
       {"build_ns", build_ns},
       {"route_ns", route_ns},
       {"probed_fraction", static_cast<double>(kProbes) /
                               static_cast<double>(index.num_clusters())},
       {"peak_rss_mb", PeakRssMb()}});
}

/// Per-dispatch-level timing of the exact one-vs-many sweep, with the
/// cross-level bit-identity contract checked on the shipping binary: every
/// level's output must equal the scalar reference byte for byte. The
/// quantized kernels ride along at the session's level, checked the same
/// way against their scalar-level bits.
void RunKernelLevelSection() {
  using reid::kernels::KernelLevel;
  ResetPeakRss();
  constexpr std::size_t kRows = 4096;
  const double kInf = std::numeric_limits<double>::infinity();
  core::Rng rng(62);
  reid::FeatureStore store;
  {
    std::vector<double> f(kDim);
    for (std::size_t r = 0; r < kRows + 1; ++r) {
      for (double& v : f) v = rng.Normal(0.0, 1.0);
      store.Append(f.data(), kDim);
    }
  }
  const reid::FeatureRef query_ref{static_cast<std::uint32_t>(kRows)};
  store.EnsureInt8Mirror();
  store.EnsureFp16Mirror();
  std::vector<const double*> rows(kRows);
  std::vector<const std::int8_t*> int8_rows(kRows);
  std::vector<float> int8_scales(kRows);
  std::vector<const std::uint16_t*> fp16_rows(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    const reid::FeatureRef ref{static_cast<std::uint32_t>(r)};
    rows[r] = store.Data(ref);
    int8_rows[r] = store.Int8Row(ref);
    int8_scales[r] = store.Int8Scale(ref);
    fp16_rows[r] = store.Fp16Row(ref);
  }
  const double* query = store.Data(query_ref);
  const std::int8_t* q8 = store.Int8Row(query_ref);
  const float q8_scale = store.Int8Scale(query_ref);
  const std::uint16_t* q16 = store.Fp16Row(query_ref);

  std::vector<double> reference(kRows), out(kRows);
  std::vector<float> ref8(kRows), out8(kRows), ref16(kRows), out16(kRows);
  auto sweep = [&](std::vector<double>& dst) {
    reid::kernels::OneVsManySquared(query, rows.data(), kRows, kDim,
                                    dst.data());
    reid::kernels::NormalizedFromSquaredMany(dst.data(), kRows, kScale,
                                             dst.data());
    benchmark::DoNotOptimize(dst.data());
  };
  auto int8_sweep = [&](std::vector<float>& dst) {
    reid::kernels::Int8OneVsManySquared(q8, q8_scale, int8_rows.data(),
                                        int8_scales.data(), kRows, kDim,
                                        dst.data());
    benchmark::DoNotOptimize(dst.data());
  };
  auto fp16_sweep = [&](std::vector<float>& dst) {
    reid::kernels::Fp16OneVsManySquared(q16, fp16_rows.data(), kRows, kDim,
                                        dst.data());
    benchmark::DoNotOptimize(dst.data());
  };

  const KernelLevel session_level = reid::kernels::CurrentKernelLevel();
  reid::kernels::SetKernelLevel(KernelLevel::kScalar);
  sweep(reference);
  int8_sweep(ref8);
  fp16_sweep(ref16);

  std::vector<std::pair<std::string, double>> fields = {
      {"rows", static_cast<double>(kRows)},
      {"dim", static_cast<double>(kDim)}};
  for (KernelLevel level : reid::kernels::SupportedKernelLevels()) {
    TMERGE_CHECK(reid::kernels::SetKernelLevel(level));
    sweep(out);
    TMERGE_CHECK(std::memcmp(out.data(), reference.data(),
                             kRows * sizeof(double)) == 0);
    double ns = kInf;
    for (int r = 0; r < 5; ++r) {
      ns = std::min(ns, NsPerOp([&] { sweep(out); }, 200));
    }
    fields.emplace_back(
        std::string(reid::kernels::KernelLevelName(level)) + "_ns", ns);
  }

  reid::kernels::SetKernelLevel(session_level);
  int8_sweep(out8);
  TMERGE_CHECK(std::memcmp(out8.data(), ref8.data(),
                           kRows * sizeof(float)) == 0);
  fp16_sweep(out16);
  TMERGE_CHECK(std::memcmp(out16.data(), ref16.data(),
                           kRows * sizeof(float)) == 0);
  double int8_ns = kInf;
  double fp16_ns = kInf;
  for (int r = 0; r < 5; ++r) {
    int8_ns = std::min(int8_ns, NsPerOp([&] { int8_sweep(out8); }, 200));
    fp16_ns = std::min(fp16_ns, NsPerOp([&] { fp16_sweep(out16); }, 200));
  }
  fields.emplace_back("int8_ns", int8_ns);
  fields.emplace_back("fp16_ns", fp16_ns);
  fields.emplace_back("peak_rss_mb", PeakRssMb());
  bench::EmitBenchJson("micro_kernel_levels", fields);
}

/// The CI perf-smoke entry point: times the seed vs slab comparison
/// pairs and emits one BENCH_JSON line per comparison. Sides alternate
/// in short rounds and each keeps its minimum: alternation cancels the
/// slow drift of a busy or thermally throttling host (measuring one side
/// entirely before the other would hand whichever goes first a
/// systematic advantage), and the minimum is the standard noise-robust
/// estimator for a deterministic op.
void RunJsonBenches() {
  ScopedKernelMode mode(/*scalar=*/false);
  constexpr int kRounds = 7;
  const double kInf = std::numeric_limits<double>::infinity();

  ResetPeakRss();
  PairFixture f;
  // Same elements in the same accumulation order: the two paths must
  // agree to the last bit, or the comparison is timing different math.
  TMERGE_CHECK(SeedPair(f) == SlabPair(f));
  double seed_ns = kInf, slab_ns = kInf, squared_ns = kInf;
  for (int r = 0; r < kRounds; ++r) {
    seed_ns = std::min(
        seed_ns, NsPerOp([&] { benchmark::DoNotOptimize(SeedPair(f)); }, 3000));
    slab_ns = std::min(
        slab_ns, NsPerOp([&] { benchmark::DoNotOptimize(SlabPair(f)); }, 3000));
    squared_ns = std::min(
        squared_ns,
        NsPerOp([&] { benchmark::DoNotOptimize(SlabSquaredPair(f)); }, 3000));
  }
  bench::EmitBenchJson(
      "micro_one_vs_many",
      {{"boxes", static_cast<double>(kBoxes)},
       {"dim", static_cast<double>(kDim)},
       {"box_pairs", static_cast<double>(kBoxes * kBoxes)},
       {"map_scalar_ns", seed_ns},
       {"slab_vectorized_ns", slab_ns},
       {"slab_squared_ns", squared_ns},
       {"speedup", seed_ns / slab_ns},
       {"ranking_speedup", seed_ns / squared_ns},
       {"peak_rss_mb", PeakRssMb()}});

  ResetPeakRss();
  constexpr std::size_t kEntries = 4096;
  LookupFixture l(kEntries);
  TMERGE_CHECK(IndexLookups(l) > 0);
  double map_lookup_ns = kInf, index_lookup_ns = kInf;
  for (int r = 0; r < kRounds; ++r) {
    map_lookup_ns = std::min(
        map_lookup_ns,
        NsPerOp([&] { benchmark::DoNotOptimize(MapLookups(l)); }, 300));
    index_lookup_ns = std::min(
        index_lookup_ns,
        NsPerOp([&] { benchmark::DoNotOptimize(IndexLookups(l)); }, 300));
  }
  bench::EmitBenchJson("micro_cache_lookup",
                       {{"entries", static_cast<double>(kEntries)},
                        {"map_ns", map_lookup_ns},
                        {"index_ns", index_lookup_ns},
                        {"speedup", map_lookup_ns / index_lookup_ns},
                        {"peak_rss_mb", PeakRssMb()}});

  RunKernelLevelSection();
  MillionFixture million;
  RunMillionScreenSection(million);
  RunMillionRouterSection(million);
}

}  // namespace
}  // namespace tmerge

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-only") == 0) {
      tmerge::RunJsonBenches();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tmerge::RunJsonBenches();
  return 0;
}
