// Table II: FPS of BL, PS, LCB and TMerge (plain and batched with B = 10
// and B = 100) on the MOT-17-like dataset at two REC operating points.
// The paper uses REC = 0.80 (mid-curve) and REC = 0.93 (near its exact-
// ranking ceiling of ~0.95); this reproduction's ceiling is ~0.91, so the
// equivalent operating points here are REC = 0.80 and REC = 0.88. FPS values are linearly
// interpolated from each method's REC-FPS curve; "-" marks a method that
// never reaches the target (as BL at 0.80 in the paper, whose exact
// ranking starts above it).

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/metrics/recall.h"

namespace tmerge::bench {
namespace {

std::string FpsCell(const std::vector<CurvePoint>& points,
                    const std::string& method, double target) {
  std::vector<metrics::RecFpsPoint> curve = CurveOf(points, method);
  double fps = metrics::FpsAtRecall(curve, target);
  if (fps <= 0.0) return "-";
  return core::FormatFixed(fps, 2);
}

void Run() {
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 5);

  MethodSweepConfig plain;
  plain.ps_etas = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};
  plain.bandit_taus = {500, 1000, 2000, 5000, 10000, 20000, 40000};
  std::vector<CurvePoint> unbatched = SweepMethods(env, plain);

  MethodSweepConfig b10 = plain;
  b10.batch_size = 10;
  std::vector<CurvePoint> batched10 = SweepMethods(env, b10);

  MethodSweepConfig b100 = plain;
  b100.batch_size = 100;
  std::vector<CurvePoint> batched100 = SweepMethods(env, b100);

  std::cout << "=== Table II: FPS at REC=0.80 and REC=0.88 (MOT-17-like) "
               "===\n";
  core::TablePrinter table({"method", "REC=0.80", "REC=0.88"});
  for (const char* method : {"BL", "PS", "LCB", "TMerge"}) {
    table.AddRow()
        .AddCell(method)
        .AddCell(FpsCell(unbatched, method, 0.80))
        .AddCell(FpsCell(unbatched, method, 0.88));
  }
  table.Print(std::cout);

  std::cout << "\n--- batched variants ---\n";
  core::TablePrinter batched_table({"method", "B=10 REC=0.80", "B=10 REC=0.88",
                                    "B=100 REC=0.80", "B=100 REC=0.88"});
  for (const char* method : {"BL-B", "PS-B", "LCB-B", "TMerge-B"}) {
    batched_table.AddRow()
        .AddCell(method)
        .AddCell(FpsCell(batched10, method, 0.80))
        .AddCell(FpsCell(batched10, method, 0.88))
        .AddCell(FpsCell(batched100, method, 0.80))
        .AddCell(FpsCell(batched100, method, 0.88));
  }
  batched_table.Print(std::cout);
  std::cout << "\nExpected shape: TMerge > LCB > PS > BL at both operating "
               "points; TMerge-B(100) > TMerge-B(10) >> TMerge; LCB-B gains "
               "little over LCB.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
