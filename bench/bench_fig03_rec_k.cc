// Figure 3: REC-K curves of the exact (baseline) ranking on the three
// datasets. Reproduces the trade-off that motivates small K: REC exceeds
// ~0.95 at K around 0.05, so inspecting <10% of the pairs suffices.
//
// Also prints the §III context statistics: average pairs per window and
// polyonymous rate per dataset.

#include <iostream>
#include <set>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/baseline.h"
#include "tmerge/reid/feature_cache.h"

namespace tmerge::bench {
namespace {

void Run() {
  const std::vector<double> ks = {0.01, 0.02, 0.03, 0.05, 0.075, 0.1,
                                  0.15, 0.2};
  core::TablePrinter table(
      {"dataset", "K=0.01", "K=0.02", "K=0.03", "K=0.05", "K=0.075", "K=0.10",
       "K=0.15", "K=0.20"});
  core::TablePrinter stats(
      {"dataset", "videos", "windows", "pairs/window", "poly pairs",
       "poly rate %"});

  struct Spec {
    sim::DatasetProfile profile;
    std::int32_t videos;
  };
  for (Spec spec : {Spec{sim::DatasetProfile::kMot17Like, 5},
                    Spec{sim::DatasetProfile::kKittiLike, 5},
                    Spec{sim::DatasetProfile::kPathTrackLike, 2}}) {
    BenchEnv env = PrepareEnv(spec.profile, spec.videos);

    // Full exact ranking per window (BL with K = 1), then REC at each K
    // prefix, micro-averaged over all windows against the full truth.
    std::vector<std::int64_t> hits(ks.size(), 0);
    std::int64_t truth_total = 0;
    std::int64_t windows = 0;
    merge::SelectorOptions options;
    options.k_fraction = 1.0;
    merge::BaselineSelector baseline;
    for (const auto& prepared : env.prepared) {
      std::set<metrics::TrackPairKey> truth(prepared.truth.begin(),
                                            prepared.truth.end());
      truth_total += static_cast<std::int64_t>(truth.size());
      reid::FeatureCache cache;
      for (const auto& window : prepared.windows) {
        if (window.pairs.empty()) continue;
        ++windows;
        merge::PairContext context(prepared.tracking, window.pairs);
        merge::SelectionResult ranked =
            baseline.Select(context, *prepared.model, cache, options);
        for (std::size_t k_index = 0; k_index < ks.size(); ++k_index) {
          std::size_t take = merge::TopKCount(ks[k_index], window.pairs.size());
          for (std::size_t i = 0; i < take; ++i) {
            if (truth.contains(ranked.candidates[i])) ++hits[k_index];
          }
        }
      }
    }

    table.AddRow().AddCell(env.name);
    for (std::size_t k_index = 0; k_index < ks.size(); ++k_index) {
      double rec = truth_total > 0
                       ? static_cast<double>(hits[k_index]) / truth_total
                       : 1.0;
      table.AddNumber(rec, 3);
    }
    stats.AddRow()
        .AddCell(env.name)
        .AddInt(spec.videos)
        .AddInt(windows)
        .AddNumber(windows > 0 ? static_cast<double>(env.TotalPairs()) / windows
                               : 0.0,
                   1)
        .AddInt(env.TotalTruth())
        .AddNumber(env.TotalPairs() > 0
                       ? 100.0 * env.TotalTruth() / env.TotalPairs()
                       : 0.0,
                   2);
  }

  std::cout << "=== Figure 3: REC-K curves of the exact ranking (BL) ===\n";
  table.Print(std::cout);
  std::cout << "\n--- dataset statistics (paper SIII context) ---\n";
  stats.Print(std::cout);
  std::cout << "\nExpected shape: REC rises steeply and exceeds ~0.9-0.95 by "
               "K = 0.05-0.085 on every dataset.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
