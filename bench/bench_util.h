#ifndef TMERGE_BENCH_BENCH_UTIL_H_
#define TMERGE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tmerge/merge/pipeline.h"
#include "tmerge/metrics/recall.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/track/track.h"

namespace tmerge::bench {

/// A dataset plus its prepared per-video state (tracking, windows, truth),
/// computed once per bench binary and reused across sweeps. Owns the videos
/// that PreparedVideo points into.
struct BenchEnv {
  std::string name;
  std::unique_ptr<sim::Dataset> dataset;
  std::vector<merge::PreparedVideo> prepared;

  std::int64_t TotalFrames() const;
  std::int64_t TotalPairs() const;
  std::int64_t TotalTruth() const;
};

/// Which tracker feeds the pipeline.
enum class TrackerKind { kSort, kAppearance, kRegression };

const char* TrackerKindName(TrackerKind kind);

/// Worker threads benches use for dataset preparation and evaluation:
/// the TMERGE_NUM_THREADS environment variable when set, otherwise 0
/// (= hardware_concurrency). Results are identical for any value; only
/// wall-clock changes. Invalid values (non-numeric, trailing junk,
/// negative) are rejected with a warning on stderr and fall back to 0.
int BenchNumThreads();

/// Applies the TMERGE_OBS environment variable to the runtime
/// instrumentation switch: unset or "1" enables it (benches default to
/// instrumented runs so they can emit snapshots), "0" disables. Anything
/// else — "true", "yes", stray whitespace — is rejected with a warning on
/// stderr and falls back to the enabled default, mirroring
/// BenchNumThreads' strict parsing: a typo must never silently flip what a
/// bench measures. Called by PrepareEnv* so most benches need nothing
/// explicit.
void InitObsFromEnv();

/// Applies the TMERGE_FAULT / TMERGE_FAULT_SEED environment variables to
/// the global failpoint registry (fault/registry.h). TMERGE_FAULT is a
/// spec string "point=probability[@latency];..." (e.g.
/// "reid.embed=0.1;io.mot.corrupt_row=0.01@0.002") applied via ApplySpec;
/// TMERGE_FAULT_SEED is the injection seed (default 0). Parsing is strict
/// like the other TMERGE_* knobs: a malformed spec or seed is rejected
/// with a warning on stderr and arms nothing — a typo must never silently
/// run a bench with the wrong fault schedule. Called by PrepareEnv*.
void InitFaultFromEnv();

/// Applies the TMERGE_TRACE environment variable to the default flight
/// recorder (obs/trace.h): "1" starts it (clears the rings and enables
/// recording), unset or "0" leaves it stopped. Tracing is opt-in, unlike
/// TMERGE_OBS metrics — the recorder buffers every instrumented event and
/// benches should only pay for that when someone wants the trace. Strict
/// parsing like the other knobs; an invalid value warns and stays off.
/// Returns whether recording ended up on. Called by PrepareEnv*.
bool InitTraceFromEnv();

/// Applies the TMERGE_SCALAR_KERNELS environment variable to the kernel
/// dispatcher (reid/distance_kernels.h): "1" pins the scalar reference
/// kernels, "0" restores the session default (detected best level or the
/// TMERGE_KERNEL_LEVEL override), unset leaves the dispatcher alone.
/// Results are bit-identical either way — only wall-clock changes — but a
/// perf bench must still never measure the wrong tier because of a typo,
/// so parsing is strict like the other TMERGE_* knobs: junk warns on
/// stderr and changes nothing. Called by PrepareEnv*.
void InitKernelsFromEnv();

/// The path benches write Chrome-trace JSON to: TMERGE_TRACE_OUT when set
/// and non-empty, otherwise `fallback`.
std::string TraceOutputPath(const std::string& fallback);

/// Snapshots the default flight recorder and writes Chrome trace-event
/// JSON to `path`, then prints one machine-readable "TRACE_JSON <path>"
/// line so CI jobs and humans reading a failed log can find the artifact.
/// `why` labels the dump on stderr ("stream soak", "watchdog
/// post-mortem", ...). Returns false — without printing TRACE_JSON — when
/// the recorder is not recording or the file cannot be written.
bool DumpTrace(const std::string& path, const char* why);

/// Prints one machine-readable "OBS_JSON {...}" line: the default
/// registry's snapshot wrapped with the bench name, next to the bench's
/// BENCH_JSON numbers. No-op (with a notice) when instrumentation is
/// runtime-disabled.
void EmitObsSnapshot(const std::string& bench_name);

/// Prints one machine-readable "BENCH_JSON {...}" line: the bench name
/// followed by numeric fields, in the given order. Integral values print
/// without a decimal point. The CI perf-smoke job parses these lines and
/// compares them against the committed bench/BENCH_tier1.json baseline
/// (tools/bench_regress.py).
void EmitBenchJson(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& fields);

/// Prepares a profile's benchmark environment: generates `num_videos`
/// videos, runs detection + tracking, builds windows and ground truth
/// (videos prepared concurrently with `num_threads` workers; 0 =
/// hardware_concurrency). MOT-17/KITTI profiles use whole-video windows;
/// PathTrack uses half-overlapping windows of `window_length` (paper §V-A).
BenchEnv PrepareEnv(sim::DatasetProfile profile, std::int32_t num_videos,
                    TrackerKind tracker = TrackerKind::kSort,
                    std::int32_t window_length = 2000,
                    std::uint64_t seed = 424242, int num_threads = 0);

/// Variant that forces the windowing mode regardless of profile.
BenchEnv PrepareEnvWithWindow(sim::DatasetProfile profile,
                              std::int32_t num_videos, TrackerKind tracker,
                              const merge::WindowConfig& window,
                              std::uint64_t seed = 424242,
                              int num_threads = 0);

/// One point of a method's trade-off curve, with bookkeeping.
struct CurvePoint {
  std::string method;
  double parameter = 0.0;  ///< eta for PS, tau_max for LCB/TMerge, 0 for BL.
  double rec = 0.0;
  double fps = 0.0;
  double simulated_seconds = 0.0;
  std::int64_t inferences = 0;
  std::int64_t distances = 0;
};

/// The methods of §V-B. `batch_size` 1 = plain; >1 = the "-B" variant.
struct MethodSweepConfig {
  double k_fraction = 0.05;
  std::int32_t batch_size = 1;
  std::vector<double> ps_etas = {0.003, 0.01, 0.03, 0.1, 0.3};
  std::vector<std::int64_t> bandit_taus = {500, 1500, 5000, 15000};
  bool include_bl = true;
  bool include_ps = true;
  bool include_lcb = true;
  bool include_tmerge = true;
  std::uint64_t seed = 11;
  /// Independent trials averaged per point (the paper averages 10).
  int trials = 3;
  /// Worker threads per EvaluateDataset call (0 = hardware_concurrency,
  /// 1 = serial). Does not change results, only wall-clock.
  int num_threads = 1;
};

/// Sweeps every requested method over the environment, producing REC-FPS
/// curve points (Figs. 5-6 and Table II's raw material).
std::vector<CurvePoint> SweepMethods(const BenchEnv& env,
                                     const MethodSweepConfig& config);

/// Extracts one method's (REC, FPS) curve from sweep output.
std::vector<metrics::RecFpsPoint> CurveOf(const std::vector<CurvePoint>& points,
                                          const std::string& method);

}  // namespace tmerge::bench

#endif  // TMERGE_BENCH_BENCH_UTIL_H_
