// Figure 8: ablation study — REC-FPS curves of full TMerge vs TMerge
// without BetaInit vs TMerge without ULB, on the MOT-17-like dataset.
// The paper finds BetaInit contributes more than ULB.

#include <iostream>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/merge/tmerge.h"

namespace tmerge::bench {
namespace {

void Run() {
  BenchEnv env = PrepareEnv(sim::DatasetProfile::kMot17Like, 5);
  merge::SelectorOptions options;
  options.k_fraction = 0.05;

  struct Variant {
    const char* name;
    bool beta_init;
    bool ulb;
  };
  const Variant variants[] = {
      {"TMerge", true, true},
      {"TMerge w/o BetaInit", false, true},
      {"TMerge w/o ULB", true, false},
      {"TMerge w/o both", false, false},
  };

  std::cout << "=== Figure 8: ablation of BetaInit and ULB (MOT-17-like) "
               "===\n";
  core::TablePrinter table({"variant", "tau_max", "REC", "FPS", "inferences"});
  for (const auto& variant : variants) {
    for (std::int64_t tau : {500, 1500, 5000, 15000}) {
      merge::TMergeOptions tmerge_options;
      tmerge_options.tau_max = tau;
      tmerge_options.use_beta_init = variant.beta_init;
      tmerge_options.use_ulb = variant.ulb;
      merge::TMergeSelector selector(tmerge_options);
      merge::EvalResult eval =
          merge::EvaluateSelectorAveraged(env.prepared, selector, options, 3);
      table.AddRow()
          .AddCell(variant.name)
          .AddInt(tau)
          .AddNumber(eval.rec, 3)
          .AddNumber(eval.fps, 2)
          .AddInt(eval.usage.TotalInferences());
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the full-TMerge curve dominates; removing "
               "BetaInit costs more than removing ULB.\n";
}

}  // namespace
}  // namespace tmerge::bench

int main() {
  tmerge::bench::Run();
  return 0;
}
