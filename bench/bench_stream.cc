// Streaming ingestion soak: N cameras (default 100) feed a StreamService
// round-robin under deliberately tight director budgets, so admission
// control and backpressure actually engage while the merge workers keep
// up. Reports ingest throughput, p99 service-side window-close latency
// and the scheduling counters as one BENCH_JSON line for the CI perf
// lane, and hard-fails (non-zero exit) when the soak invariants break:
// ingest must finish before the wall-clock watchdog, backpressure must
// have engaged at least once, and the frame backlog must stay bounded by
// the per-camera queue cap.
//
// --check-determinism additionally runs the batch pipeline over the same
// synthetic videos and asserts the streamed per-camera selection output
// is bit-identical (candidates, simulated seconds, inference usage) —
// the tentpole equivalence guarantee of DESIGN.md §11, checked end to
// end on every CI run.
//
// Env knobs (strict parsing, mirroring the TMERGE_* convention):
//   TMERGE_STREAM_CAMERAS    number of cameras (default 100)
//   TMERGE_STREAM_FRAMES     frames per camera (default 300)
//   TMERGE_STREAM_TIMEOUT_S  wall-clock watchdog in seconds (default 300)
//   TMERGE_STREAM_GATE       "1" wraps the selector in an enabled
//                            gate::GatedSelector (prefetch on) and gives
//                            the service a reid::EmbedScheduler — the
//                            gated soak of the CI gate-smoke lane. The
//                            determinism check then replays the batch
//                            side with its own scheduler, pinning gated
//                            streamed == gated batch bit-identity.
//   TMERGE_NUM_THREADS       merge workers (bench_util.h, BenchNumThreads)
//   TMERGE_FAULT[_SEED]      optional failpoint schedule (InitFaultFromEnv)
//   TMERGE_TRACE             "1" arms the flight recorder (InitTraceFromEnv)
//   TMERGE_TRACE_OUT         Chrome-trace output path (default
//                            bench_stream_trace.json in the cwd)
//
// With tracing armed the bench writes a Chrome-trace JSON dump (loadable
// in chrome://tracing / Perfetto, summarizable with
// tools/trace_summarize.py) and prints its path as a "TRACE_JSON <path>"
// line: always at exit, and — the part that matters for CI triage — from
// the watchdog thread right before it kills a wedged run, so the last
// seconds of scheduling history survive the crash. The stall watchdog
// inside StreamService additionally writes its own post-mortem next to
// the main dump (<trace>_stall.json) the first time a stall force-flush
// fires.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "tmerge/core/table_printer.h"
#include "tmerge/gate/gated_selector.h"
#include "tmerge/obs/trace.h"
#include "tmerge/obs/trace_clock.h"
#include "tmerge/detect/detection_simulator.h"
#include "tmerge/merge/pipeline.h"
#include "tmerge/merge/tmerge.h"
#include "tmerge/reid/embed_scheduler.h"
#include "tmerge/reid/synthetic_reid_model.h"
#include "tmerge/sim/dataset.h"
#include "tmerge/stream/stream_service.h"
#include "tmerge/track/sort_tracker.h"

namespace tmerge::bench {
namespace {

/// Strict env int: unset -> fallback; anything unparsable or non-positive
/// warns and falls back, so a typo never silently shrinks the soak.
std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0) {
    std::cerr << "bench_stream: ignoring invalid " << name << "='" << raw
              << "' (want a positive integer); using " << fallback << "\n";
    return fallback;
  }
  return value;
}

/// Hard wall-clock bound on the whole bench. A wedged stream (deadlock,
/// lost merge job, stalled admission) must fail the CI soak lane loudly
/// instead of eating the job timeout.
class Watchdog {
 public:
  /// `trace_path`: where the flight-recorder post-mortem goes if the
  /// watchdog fires (no-op unless TMERGE_TRACE armed the recorder). The
  /// recorder's rings are seqlocks, so snapshotting from this thread is
  /// safe even while every other thread is wedged mid-write.
  Watchdog(double seconds, std::string trace_path)
      : trace_path_(std::move(trace_path)) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return disarmed_; })) {
        std::cerr << "bench_stream: WATCHDOG expired after " << seconds
                  << "s — the stream wedged (deadlock or stalled "
                     "admission); failing the soak\n";
        DumpTrace(trace_path_, "watchdog post-mortem");
        std::_Exit(3);
      }
    });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  const std::string trace_path_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

/// Sibling path for StreamService's stall post-mortem: foo.json ->
/// foo_stall.json, so both dumps land in the same artifact directory.
std::string StallDumpPath(const std::string& trace_path) {
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return trace_path.substr(0, trace_path.size() - suffix.size()) +
           "_stall.json";
  }
  return trace_path + "_stall.json";
}

struct SoakSetup {
  sim::Dataset dataset;
  std::vector<detect::DetectionSequence> detections;
  std::vector<std::shared_ptr<const reid::ReidModel>> models;
  merge::PipelineConfig pipeline;
};

/// Builds the camera fleet. Detection and model seeds are derived exactly
/// as merge::PrepareDataset derives them (pipeline.seed + 31 * (i + 1)),
/// which is what lets --check-determinism compare against the batch
/// pipeline bit for bit.
SoakSetup BuildSetup(std::int32_t cameras, std::int32_t frames) {
  SoakSetup setup;
  setup.pipeline.window.length = 120;
  setup.pipeline.seed = 42;
  setup.pipeline.num_threads = 1;

  sim::VideoConfig base = sim::ProfileConfig(sim::DatasetProfile::kKittiLike);
  base.num_frames = frames;
  setup.dataset.name = "stream-soak";
  setup.dataset.profile = sim::DatasetProfile::kKittiLike;
  setup.dataset.videos.reserve(cameras);
  for (std::int32_t i = 0; i < cameras; ++i) {
    setup.dataset.videos.push_back(
        sim::GenerateVideo(base, setup.pipeline.seed + i));
  }
  setup.detections.reserve(cameras);
  setup.models.reserve(cameras);
  for (std::int32_t i = 0; i < cameras; ++i) {
    std::uint64_t seed = setup.pipeline.seed + 31 * (i + 1);
    setup.detections.push_back(detect::SimulateDetections(
        setup.dataset.videos[i], setup.pipeline.detector, seed));
    setup.models.push_back(std::make_shared<reid::SyntheticReidModel>(
        setup.dataset.videos[i], setup.pipeline.reid, seed));
  }
  return setup;
}

merge::SelectorOptions SoakSelectorOptions() {
  merge::SelectorOptions options;
  options.seed = 5;
  return options;
}

/// Streams every camera round-robin. Sim time advances one frame interval
/// per full round; backpressure verdicts retry with an extra sim-time
/// step, which is what arms the director's stall watchdog.
stream::StreamResult RunSoak(const SoakSetup& setup,
                             merge::CandidateSelector& selector,
                             int num_threads,
                             const std::string& stall_dump_path,
                             bool gated) {
  stream::StreamServiceConfig config;
  config.window = setup.pipeline.window;
  config.selector = SoakSelectorOptions();
  config.num_threads = num_threads;
  config.stall_post_mortem_path = stall_dump_path;
  // The gated soak exercises the service-owned EmbedScheduler end to end:
  // merge jobs run on the pool, so the scheduler takes its inline
  // (reentrant) path there; serial runs go through the same commit order.
  config.enable_embed_scheduler = gated;
  // Tight on purpose, and scaled to the fleet. KITTI-like windows carry
  // ~10 pairs, so a min-batch threshold above a full 4-window job (~40
  // pairs) defers every mid-stream merge; pending pairs then accumulate
  // until they hit the fleet-scaled intermediate budget, ingest is
  // denied, queues fill (backpressure), and the 2-sim-second stall
  // watchdog force-flushes the backlog — the complete admission-control
  // cycle, exercised periodically at any TMERGE_STREAM_CAMERAS. The queue
  // cap also bounds peak memory: peak_queued_frames <= cameras *
  // max_queued_frames_per_camera.
  std::int64_t fleet = static_cast<std::int64_t>(setup.detections.size());
  config.max_queued_frames_per_camera = 16;
  config.director.max_intermediate_pairs = 8 * fleet;
  config.director.min_pairs_per_merge_job = 64;
  config.director.max_inflight_merge_jobs = 8;
  config.director.stall_timeout_seconds = 2.0;
  config.ingest_pair_estimate = 8;

  stream::StreamService service(config, selector);
  for (std::size_t i = 0; i < setup.detections.size(); ++i) {
    stream::CameraConfig camera;
    camera.num_frames = setup.detections[i].num_frames;
    camera.frame_width = setup.detections[i].frame_width;
    camera.frame_height = setup.detections[i].frame_height;
    camera.fps = setup.detections[i].fps;
    camera.model = setup.models[i];
    service.AddCamera(camera);
  }

  double now = 0.0;
  std::int32_t max_frames = 0;
  for (const auto& sequence : setup.detections) {
    max_frames = std::max(max_frames, sequence.num_frames);
  }
  double frame_step = 1.0 / (30.0 * static_cast<double>(
                                        setup.detections.size()));
  for (std::int32_t f = 0; f < max_frames; ++f) {
    for (std::size_t cam = 0; cam < setup.detections.size(); ++cam) {
      if (f >= setup.detections[cam].num_frames) continue;
      now += frame_step;
      for (;;) {
        stream::IngestOutcome outcome = service.IngestFrame(
            static_cast<std::int32_t>(cam), setup.detections[cam].frames[f],
            now);
        if (outcome != stream::IngestOutcome::kBackpressure) break;
        now += 0.25;  // Producer stalls; the stall watchdog sees this.
      }
    }
  }
  for (std::size_t cam = 0; cam < setup.detections.size(); ++cam) {
    service.CloseCamera(static_cast<std::int32_t>(cam), now);
  }
  return service.Finish(now + 1.0);
}

double Percentile99(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t index = (values.size() * 99 + 99) / 100;  // ceil(0.99 n)
  if (index > values.size()) index = values.size();
  return values[index - 1];
}

/// Batch reference vs streamed output, camera by camera. Returns the
/// number of divergent cameras (0 = bit-identical).
int CheckDeterminism(const SoakSetup& setup,
                     merge::CandidateSelector& selector,
                     const stream::StreamResult& streamed, int num_threads,
                     bool gated) {
  track::SortTracker tracker;
  std::vector<merge::PreparedVideo> prepared =
      merge::PrepareDataset(setup.dataset, tracker, setup.pipeline);
  merge::SelectorOptions options = SoakSelectorOptions();
  // The gated soak's streaming side prefetched through the service's
  // scheduler; the batch replay needs its own (same config, no pool —
  // sync and async commits are bit-identical) or the charge sequences
  // would legitimately differ.
  reid::EmbedScheduler batch_scheduler{reid::EmbedSchedulerConfig{},
                                       nullptr};
  if (gated) options.embed_scheduler = &batch_scheduler;
  int divergent = 0;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    merge::EvalResult batch =
        merge::EvaluateSelector(prepared[i], selector, options);
    const stream::CameraStreamResult& camera = streamed.cameras[i];
    bool same = camera.candidates == batch.candidates &&
                camera.simulated_seconds == batch.simulated_seconds &&
                camera.windows == batch.windows &&
                camera.pairs == batch.pairs &&
                camera.box_pairs_evaluated == batch.box_pairs_evaluated &&
                camera.usage.single_inferences ==
                    batch.usage.single_inferences &&
                camera.usage.batched_crops == batch.usage.batched_crops &&
                camera.usage.distance_evals == batch.usage.distance_evals &&
                camera.usage.cache_hits == batch.usage.cache_hits;
    if (!same) {
      ++divergent;
      std::cerr << "bench_stream: DETERMINISM VIOLATION camera " << i
                << ": streamed (candidates=" << camera.candidates.size()
                << ", windows=" << camera.windows
                << ", pairs=" << camera.pairs
                << ", sim_s=" << camera.simulated_seconds
                << ") vs batch (candidates=" << batch.candidates.size()
                << ", windows=" << batch.windows
                << ", pairs=" << batch.pairs
                << ", sim_s=" << batch.simulated_seconds << ")\n";
    }
  }
  (void)num_threads;
  return divergent;
}

int Run(bool check_determinism) {
  InitObsFromEnv();
  InitFaultFromEnv();
  bool tracing = InitTraceFromEnv();
  std::string trace_path = TraceOutputPath("bench_stream_trace.json");
  std::int32_t cameras =
      static_cast<std::int32_t>(EnvInt("TMERGE_STREAM_CAMERAS", 100));
  std::int32_t frames =
      static_cast<std::int32_t>(EnvInt("TMERGE_STREAM_FRAMES", 300));
  double timeout_s =
      static_cast<double>(EnvInt("TMERGE_STREAM_TIMEOUT_S", 300));
  int num_threads = BenchNumThreads();
  const char* gate_env = std::getenv("TMERGE_STREAM_GATE");
  bool gated = gate_env != nullptr && std::string(gate_env) == "1";

  std::cout << "bench_stream: " << cameras << " cameras x " << frames
            << " frames, merge workers=" << num_threads
            << " (0 = hardware), watchdog=" << timeout_s << "s"
            << (check_determinism ? ", determinism check on" : "")
            << (gated ? ", gate on" : "") << (tracing ? ", tracing on" : "")
            << "\n";

  Watchdog watchdog(timeout_s, trace_path);
  SoakSetup setup = BuildSetup(cameras, frames);

  merge::TMergeOptions tmerge_options;
  merge::TMergeSelector tmerge_selector(tmerge_options);
  gate::GateConfig gate_config;
  gate_config.enabled = true;
  gate_config.prefetch_ambiguous = true;
  gate::GatedSelector gated_selector(tmerge_selector, gate_config);
  merge::CandidateSelector& selector =
      gated ? static_cast<merge::CandidateSelector&>(gated_selector)
            : tmerge_selector;

  std::int64_t start_ns = obs::TraceClockNanos();
  stream::StreamResult result =
      RunSoak(setup, selector, num_threads, StallDumpPath(trace_path), gated);
  double elapsed_s =
      obs::TraceClockSecondsBetween(start_ns, obs::TraceClockNanos());

  std::vector<double> latencies;
  for (const auto& camera : result.cameras) {
    latencies.insert(latencies.end(),
                     camera.window_close_latency_seconds.begin(),
                     camera.window_close_latency_seconds.end());
  }
  double p99_close_s = Percentile99(std::move(latencies));
  double frames_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(result.frames_ingested) / elapsed_s
                      : 0.0;
  double tracks_per_sec =
      elapsed_s > 0.0
          ? static_cast<double>(result.tracks_finalized) / elapsed_s
          : 0.0;

  core::TablePrinter table(
      {"cameras", "frames", "tracks/s", "frames/s", "p99-close-s",
       "backpressure", "peak-queued", "merge-jobs", "force-flushes"});
  table.AddRow()
      .AddInt(cameras)
      .AddInt(result.frames_ingested)
      .AddNumber(tracks_per_sec, 1)
      .AddNumber(frames_per_sec, 1)
      .AddNumber(p99_close_s, 3)
      .AddInt(result.backpressure_events)
      .AddInt(result.peak_queued_frames)
      .AddInt(result.merge_jobs_run)
      .AddInt(result.director.force_flushes);

  std::cout << "BENCH_JSON {\"bench\":\"stream_soak\",\"cameras\":" << cameras
            << ",\"frames_per_camera\":" << frames
            << ",\"elapsed_ns\":" << elapsed_s * 1e9
            << ",\"tracks_per_sec\":" << tracks_per_sec
            << ",\"frames_per_sec\":" << frames_per_sec
            << ",\"p99_window_close_s\":" << p99_close_s
            << ",\"windows\":" << result.windows
            << ",\"pairs\":" << result.pairs
            << ",\"backpressure_events\":" << result.backpressure_events
            << ",\"peak_queued_frames\":" << result.peak_queued_frames
            << ",\"merge_jobs\":" << result.merge_jobs_run
            << ",\"merge_jobs_deferred\":" << result.director.merge_jobs_deferred
            << ",\"force_flushes\":" << result.director.force_flushes << "}\n";

  std::cout << "=== Streaming soak: admission-controlled multi-camera "
               "ingest ===\n";
  table.Print(std::cout);

  int failures = 0;
  // Soak invariants (ISSUE acceptance): backpressure must have engaged —
  // budgets this tight against this load cannot run entirely in the
  // clear — and the backlog must respect the per-camera queue cap.
  if (result.backpressure_events == 0) {
    std::cerr << "bench_stream: FAIL — backpressure never engaged; the "
                 "soak did not exercise admission control\n";
    ++failures;
  }
  std::int64_t queue_bound =
      static_cast<std::int64_t>(cameras) * 16;  // max_queued_frames_per_camera
  if (result.peak_queued_frames > queue_bound) {
    std::cerr << "bench_stream: FAIL — peak queued frames "
              << result.peak_queued_frames << " exceeds the bound "
              << queue_bound << "\n";
    ++failures;
  }
  if (result.frames_ingested !=
      static_cast<std::int64_t>(cameras) * frames) {
    std::cerr << "bench_stream: FAIL — ingested " << result.frames_ingested
              << " frames, expected "
              << static_cast<std::int64_t>(cameras) * frames << "\n";
    ++failures;
  }

  // Dump before the determinism re-run: the batch reference pipeline is
  // instrumented too, and letting it run with the recorder armed laps the
  // per-thread rings and evicts the soak-era events this artifact exists
  // to hold. Stopping the recorder freezes the flight recording (buffered
  // events stay readable for the watchdog, should it still fire). The
  // success-path artifact is what the CI trace-smoke leg validates and
  // what tools/trace_summarize.py reads; the failure-path dump is the
  // post-mortem next to the BENCH_JSON numbers. A determinism divergence
  // found below still fails the run, and the soak trace on disk is the
  // recording that matters for it.
  DumpTrace(trace_path,
            failures == 0 ? "stream soak" : "soak-failure post-mortem");
  obs::TraceRecorder::Default().Stop();

  if (check_determinism) {
    int divergent =
        CheckDeterminism(setup, selector, result, num_threads, gated);
    if (divergent > 0) {
      std::cerr << "bench_stream: FAIL — " << divergent
                << " camera(s) diverged from the batch pipeline\n";
      ++failures;
    } else {
      std::cout << "determinism check: all " << cameras
                << " cameras bit-identical to the batch pipeline\n";
    }
  }

  EmitObsSnapshot("stream_soak");
  if (failures == 0) {
    std::cout << "bench_stream: OK\n";
    return 0;
  }
  return 1;
}

}  // namespace
}  // namespace tmerge::bench

int main(int argc, char** argv) {
  bool check_determinism = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check-determinism") {
      check_determinism = true;
    } else {
      std::cerr << "usage: bench_stream [--check-determinism]\n";
      return 2;
    }
  }
  return tmerge::bench::Run(check_determinism);
}
