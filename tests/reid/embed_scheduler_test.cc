// EmbedScheduler unit tests: CostModel-driven batch planning, dedup and
// the conservation identity, charge parity with the FeatureCache's own
// batched path, and the compute/commit split's headline guarantee — sync
// (no pool) and async (pool) runs are bit-identical in features, charges
// and stats.

#include "tmerge/reid/embed_scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "testing/merge_fixture.h"
#include "tmerge/core/thread_pool.h"
#include "tmerge/reid/cost_model.h"
#include "tmerge/reid/feature_cache.h"

namespace tmerge::reid {
namespace {

/// Every crop of every pair of the scenario, in pair order — tracks shared
/// by several pairs repeat, which is exactly the dedup workload.
std::vector<CropRef> ScenarioCrops(const testing::MergeScenario& scenario) {
  std::vector<CropRef> crops;
  const merge::PairContext& context = scenario.context();
  for (std::size_t p = 0; p < context.num_pairs(); ++p) {
    const auto& a = context.CropsA(p);
    const auto& b = context.CropsB(p);
    crops.insert(crops.end(), a.begin(), a.end());
    crops.insert(crops.end(), b.begin(), b.end());
  }
  return crops;
}

std::int64_t UniqueCount(const std::vector<CropRef>& crops) {
  std::unordered_set<std::uint64_t> ids;
  for (const CropRef& crop : crops) ids.insert(crop.detection_id);
  return static_cast<std::int64_t>(ids.size());
}

void ExpectConservation(const EmbedSchedulerStats& stats) {
  EXPECT_EQ(stats.requested,
            stats.cache_hits + stats.dedup_hits + stats.batched_crops +
                stats.single_crops + stats.failed_crops);
  EXPECT_EQ(stats.outstanding, 0);
}

TEST(EmbedSchedulerTest, BreakEvenFollowsCostModel) {
  // Defaults: batch_fixed 1e-3 / (single 5e-3 - batch_item 2.5e-4) < 1,
  // so batching pays off immediately.
  EXPECT_EQ(EmbedScheduler::BreakEvenBatchSize(CostModel{}), 1);

  CostModel slow_launch;
  slow_launch.single_inference_seconds = 1e-3;
  slow_launch.batch_item_seconds = 9e-4;
  slow_launch.batch_fixed_seconds = 1e-2;
  EXPECT_EQ(EmbedScheduler::BreakEvenBatchSize(slow_launch), 100);

  // A batched crop no cheaper than a single one never breaks even.
  CostModel degenerate;
  degenerate.batch_item_seconds = degenerate.single_inference_seconds;
  EXPECT_EQ(EmbedScheduler::BreakEvenBatchSize(degenerate),
            std::numeric_limits<std::int32_t>::max());
}

TEST(EmbedSchedulerTest, DedupAndConservation) {
  testing::MergeScenario scenario;
  std::vector<CropRef> crops = ScenarioCrops(scenario);
  const std::int64_t unique = UniqueCount(crops);
  ASSERT_GT(unique, 0);
  ASSERT_LT(unique, static_cast<std::int64_t>(crops.size()))
      << "scenario must share tracks across pairs for dedup to matter";

  EmbedScheduler scheduler{EmbedSchedulerConfig{}, nullptr};
  FeatureCache cache;
  InferenceMeter meter{CostModel{}};
  EmbedSchedulerStats group =
      scheduler.EmbedAll(crops, cache, scenario.model(), meter);

  EXPECT_EQ(group.requested, static_cast<std::int64_t>(crops.size()));
  EXPECT_EQ(group.cache_hits, 0);
  EXPECT_EQ(group.dedup_hits,
            static_cast<std::int64_t>(crops.size()) - unique);
  EXPECT_EQ(group.batched_crops + group.single_crops, unique);
  EXPECT_EQ(group.failed_crops, 0);
  ExpectConservation(group);
  for (const CropRef& crop : crops) {
    EXPECT_TRUE(cache.Contains(crop.detection_id));
  }
  // The meter saw exactly the embedded crops.
  EXPECT_EQ(meter.stats().TotalInferences(), unique);

  // A second identical group is all cache hits: nothing embeds twice.
  EmbedSchedulerStats again =
      scheduler.EmbedAll(crops, cache, scenario.model(), meter);
  EXPECT_EQ(again.cache_hits + again.dedup_hits, again.requested);
  EXPECT_EQ(again.batched_crops + again.single_crops, 0);
  ExpectConservation(again);

  // Lifetime totals fold both groups.
  EmbedSchedulerStats totals = scheduler.stats();
  EXPECT_EQ(totals.groups, 2);
  EXPECT_EQ(totals.requested, 2 * static_cast<std::int64_t>(crops.size()));
  ExpectConservation(totals);
}

TEST(EmbedSchedulerTest, SyncAndAsyncRunsBitIdentical) {
  testing::MergeScenario scenario;
  std::vector<CropRef> crops = ScenarioCrops(scenario);

  EmbedSchedulerConfig config;
  config.max_batch_size = 16;  // Several batches, so async runs overlap.

  EmbedScheduler sync{config, nullptr};
  FeatureCache sync_cache;
  InferenceMeter sync_meter{CostModel{}};
  EmbedSchedulerStats sync_stats =
      sync.EmbedAll(crops, sync_cache, scenario.model(), sync_meter);

  core::ThreadPool pool(4);
  EmbedScheduler async{config, &pool};
  FeatureCache async_cache;
  InferenceMeter async_meter{CostModel{}};
  EmbedSchedulerStats async_stats =
      async.EmbedAll(crops, async_cache, scenario.model(), async_meter);

  // Charges and usage are the commit phase's output: identical sequences.
  EXPECT_EQ(async_meter.elapsed_seconds(), sync_meter.elapsed_seconds());
  EXPECT_EQ(async_meter.stats().single_inferences,
            sync_meter.stats().single_inferences);
  EXPECT_EQ(async_meter.stats().batched_crops,
            sync_meter.stats().batched_crops);
  EXPECT_EQ(async_meter.stats().batch_calls, sync_meter.stats().batch_calls);
  EXPECT_EQ(async_meter.stats().cache_hits, sync_meter.stats().cache_hits);
  EXPECT_EQ(async_meter.stats().failed_embeds,
            sync_meter.stats().failed_embeds);

  // Group accounting matches except the dispatch-shape counters
  // (inline_dispatches / peak_inflight), which describe the execution
  // mode, not the work.
  EXPECT_EQ(async_stats.requested, sync_stats.requested);
  EXPECT_EQ(async_stats.cache_hits, sync_stats.cache_hits);
  EXPECT_EQ(async_stats.dedup_hits, sync_stats.dedup_hits);
  EXPECT_EQ(async_stats.batches, sync_stats.batches);
  EXPECT_EQ(async_stats.batched_crops, sync_stats.batched_crops);
  EXPECT_EQ(async_stats.single_crops, sync_stats.single_crops);
  EXPECT_EQ(async_stats.failed_crops, sync_stats.failed_crops);
  ExpectConservation(async_stats);

  // The committed features themselves are the same floats.
  InferenceMeter scratch{CostModel{}};
  for (const CropRef& crop : crops) {
    FeatureView a = sync_cache.GetOrEmbed(crop, scenario.model(), scratch);
    FeatureView b = async_cache.GetOrEmbed(crop, scenario.model(), scratch);
    ASSERT_TRUE(a.valid());
    ASSERT_TRUE(b.valid());
    ASSERT_EQ(a.dim, b.dim);
    for (std::size_t d = 0; d < a.dim; ++d) {
      EXPECT_EQ(a[d], b[d]) << "crop " << crop.detection_id << " dim " << d;
    }
  }
}

TEST(EmbedSchedulerTest, ChargeParityWithFeatureCacheBatchPath) {
  testing::MergeScenario scenario;
  std::vector<CropRef> all = ScenarioCrops(scenario);
  // One deduped plan that fits a single batch, so both paths issue exactly
  // one batched inference over the same crops.
  std::vector<CropRef> crops;
  std::unordered_set<std::uint64_t> seen;
  for (const CropRef& crop : all) {
    if (seen.insert(crop.detection_id).second) crops.push_back(crop);
    if (crops.size() == 32) break;
  }

  EmbedScheduler scheduler{EmbedSchedulerConfig{}, nullptr};
  FeatureCache sched_cache;
  InferenceMeter sched_meter{CostModel{}};
  scheduler.EmbedAll(crops, sched_cache, scenario.model(), sched_meter);

  FeatureCache direct_cache;
  InferenceMeter direct_meter{CostModel{}};
  direct_cache.TryGetOrEmbedBatch(crops, scenario.model(), direct_meter);

  EXPECT_EQ(sched_meter.elapsed_seconds(), direct_meter.elapsed_seconds());
  EXPECT_EQ(sched_meter.stats().batched_crops,
            direct_meter.stats().batched_crops);
  EXPECT_EQ(sched_meter.stats().batch_calls,
            direct_meter.stats().batch_calls);
  EXPECT_EQ(sched_meter.stats().single_inferences,
            direct_meter.stats().single_inferences);
}

TEST(EmbedSchedulerTest, MaxBatchSizeSplitsThePlan) {
  testing::MergeScenario scenario;
  std::vector<CropRef> crops = ScenarioCrops(scenario);
  const std::int64_t unique = UniqueCount(crops);

  EmbedSchedulerConfig config;
  config.max_batch_size = 8;
  EmbedScheduler scheduler{config, nullptr};
  FeatureCache cache;
  InferenceMeter meter{CostModel{}};
  EmbedSchedulerStats stats =
      scheduler.EmbedAll(crops, cache, scenario.model(), meter);

  // Default CostModel break-even is 1, so every chunk — tail included —
  // goes batched: ceil(unique / 8) batches covering every unique crop.
  EXPECT_EQ(stats.batches, (unique + 7) / 8);
  EXPECT_EQ(stats.batched_crops, unique);
  EXPECT_EQ(stats.single_crops, 0);
  ExpectConservation(stats);
}

TEST(EmbedSchedulerTest, MinBatchSizeForcesSinglePath) {
  testing::MergeScenario scenario;
  std::vector<CropRef> crops = ScenarioCrops(scenario);
  const std::int64_t unique = UniqueCount(crops);

  EmbedSchedulerConfig config;
  config.min_batch_size = std::numeric_limits<std::int32_t>::max();
  EmbedScheduler scheduler{config, nullptr};
  FeatureCache cache;
  InferenceMeter meter{CostModel{}};
  EmbedSchedulerStats stats =
      scheduler.EmbedAll(crops, cache, scenario.model(), meter);

  EXPECT_EQ(stats.batches, 0);
  EXPECT_EQ(stats.batched_crops, 0);
  EXPECT_EQ(stats.single_crops, unique);
  EXPECT_EQ(meter.stats().single_inferences, unique);
  ExpectConservation(stats);
}

TEST(EmbedSchedulerTest, FlushIdlesAtZeroOutstanding) {
  testing::MergeScenario scenario;
  std::vector<CropRef> crops = ScenarioCrops(scenario);

  core::ThreadPool pool(2);
  EmbedScheduler scheduler{EmbedSchedulerConfig{}, &pool};
  FeatureCache cache;
  InferenceMeter meter{CostModel{}};
  scheduler.EmbedAll(crops, cache, scenario.model(), meter);

  scheduler.Flush();
  EXPECT_EQ(scheduler.stats().outstanding, 0);
  // Flush on an idle scheduler is a no-op, not a hang.
  scheduler.Flush();
}

}  // namespace
}  // namespace tmerge::reid
