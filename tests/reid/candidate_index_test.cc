// CoarseClusterIndex (DESIGN.md §15.3): the router's determinism contract
// — identical stores build identical centroids and assignments, rebuilds
// happen on the documented cadence, nearest-cluster ranking is a strict
// (distance, id) total order, and none of it depends on the kernel
// dispatch level.

#include "tmerge/reid/candidate_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tmerge/core/rng.h"
#include "tmerge/reid/distance_kernels.h"
#include "tmerge/reid/feature.h"
#include "tmerge/reid/feature_store.h"

namespace tmerge::reid {
namespace {

constexpr std::size_t kDim = 8;

/// Fills `store` with `rows` features drawn near a handful of well
/// separated centers — clustered data so Lloyd has real structure to find.
void FillClustered(FeatureStore& store, std::size_t rows,
                   std::uint64_t seed) {
  core::Rng rng(seed);
  constexpr std::size_t kCenters = 5;
  std::vector<FeatureVector> centers;
  for (std::size_t c = 0; c < kCenters; ++c) {
    FeatureVector center(kDim);
    for (double& x : center) x = rng.Normal(0.0, 4.0);
    centers.push_back(center);
  }
  for (std::size_t i = 0; i < rows; ++i) {
    FeatureVector row = centers[i % kCenters];
    for (double& x : row) x += rng.Normal(0.0, 0.2);
    store.Append(row);
  }
}

std::vector<std::int32_t> AllAssignments(const CoarseClusterIndex& index) {
  std::vector<std::int32_t> out;
  out.reserve(index.assigned_rows());
  for (std::size_t row = 0; row < index.assigned_rows(); ++row) {
    out.push_back(
        index.AssignmentOf(FeatureRef{static_cast<std::uint32_t>(row)}));
  }
  return out;
}

TEST(CoarseClusterIndexTest, EmptyStoreLeavesIndexUnbuilt) {
  FeatureStore store;
  CoarseClusterIndex index;
  index.Ensure(store);
  EXPECT_FALSE(index.built());
  EXPECT_EQ(index.num_clusters(), 0);
  EXPECT_EQ(index.assigned_rows(), 0u);
}

TEST(CoarseClusterIndexTest, BuildsDeterministically) {
  ClusterIndexOptions options;
  options.clusters = 8;
  FeatureStore store_a, store_b;
  FillClustered(store_a, 300, /*seed=*/71);
  FillClustered(store_b, 300, /*seed=*/71);
  CoarseClusterIndex index_a(options), index_b(options);
  index_a.Ensure(store_a);
  index_b.Ensure(store_b);

  ASSERT_TRUE(index_a.built());
  ASSERT_EQ(index_a.num_clusters(), index_b.num_clusters());
  EXPECT_EQ(AllAssignments(index_a), AllAssignments(index_b));
  for (std::int32_t c = 0; c < index_a.num_clusters(); ++c) {
    EXPECT_EQ(std::memcmp(index_a.Centroid(c), index_b.Centroid(c),
                          kDim * sizeof(double)),
              0)
        << "centroid " << c;
  }
}

TEST(CoarseClusterIndexTest, ClusterCountCappedByStoredRows) {
  FeatureStore store;
  FillClustered(store, 5, /*seed=*/72);
  CoarseClusterIndex index;  // Default asks for 64 clusters.
  index.Ensure(store);
  EXPECT_EQ(index.num_clusters(), 5);
  EXPECT_EQ(index.assigned_rows(), 5u);
}

// The rebuild cadence: rows appended within rebuild_interval of the last
// build are assigned incrementally against frozen centroids; crossing the
// interval triggers a rebuild on the next Ensure.
TEST(CoarseClusterIndexTest, IncrementalAssignThenRebuildOnInterval) {
  ClusterIndexOptions options;
  options.clusters = 8;
  options.rebuild_interval = 100;
  FeatureStore store;
  FillClustered(store, 50, /*seed=*/73);
  CoarseClusterIndex index(options);
  index.Ensure(store);
  ASSERT_EQ(index.rebuilds(), 1);

  std::vector<double> frozen(index.Centroid(0), index.Centroid(0) + kDim);
  FillClustered(store, 99, /*seed=*/74);  // Below the interval.
  index.Ensure(store);
  EXPECT_EQ(index.rebuilds(), 1);
  EXPECT_EQ(index.assigned_rows(), 149u);
  EXPECT_EQ(std::memcmp(index.Centroid(0), frozen.data(),
                        kDim * sizeof(double)),
            0)
      << "incremental assignment must not move centroids";

  FillClustered(store, 1, /*seed=*/75);  // Crosses the interval.
  index.Ensure(store);
  EXPECT_EQ(index.rebuilds(), 2);
  EXPECT_EQ(index.assigned_rows(), 150u);
}

// Every assignment — from the rebuild pass and from the incremental path
// alike — is the row's nearest centroid under the (distance, id) order.
TEST(CoarseClusterIndexTest, AssignmentIsNearestCentroid) {
  ClusterIndexOptions options;
  options.clusters = 8;
  options.rebuild_interval = 1000;
  FeatureStore store;
  FillClustered(store, 120, /*seed=*/76);
  CoarseClusterIndex index(options);
  index.Ensure(store);
  FillClustered(store, 30, /*seed=*/77);  // Incrementally assigned.
  index.Ensure(store);

  std::vector<std::int32_t> nearest;
  for (std::size_t row = 0; row < store.size(); ++row) {
    const FeatureRef ref{static_cast<std::uint32_t>(row)};
    index.NearestClusters(store.View(ref), 1, &nearest);
    ASSERT_EQ(nearest.size(), 1u);
    EXPECT_EQ(index.AssignmentOf(ref), nearest.front()) << "row " << row;
  }
}

TEST(CoarseClusterIndexTest, NearestClustersAscendByDistanceThenId) {
  FeatureStore store;
  FillClustered(store, 200, /*seed=*/78);
  CoarseClusterIndex index;
  index.Ensure(store);
  const FeatureRef probe_ref{3};
  const FeatureView query = store.View(probe_ref);

  std::vector<std::int32_t> probed;
  index.NearestClusters(query, index.num_clusters() / 2, &probed);
  ASSERT_EQ(probed.size(),
            static_cast<std::size_t>(index.num_clusters() / 2));
  auto distance_to = [&](std::int32_t c) {
    return kernels::SquaredDistance(query.data, index.Centroid(c),
                                    index.dim());
  };
  for (std::size_t i = 1; i < probed.size(); ++i) {
    const double prev = distance_to(probed[i - 1]);
    const double cur = distance_to(probed[i]);
    EXPECT_TRUE(prev < cur || (prev == cur && probed[i - 1] < probed[i]))
        << "i=" << i;
  }
  // The returned prefix really is the minimum: every unprobed cluster
  // ranks at or after the last probed one.
  const double last = distance_to(probed.back());
  for (std::int32_t c = 0; c < index.num_clusters(); ++c) {
    if (std::find(probed.begin(), probed.end(), c) != probed.end()) continue;
    EXPECT_GE(distance_to(c), last) << "cluster " << c;
  }
}

// probes >= num_clusters is the exhaustive-fallback mode: every cluster
// comes back, so the router admits every pair.
TEST(CoarseClusterIndexTest, ExhaustiveProbesReturnEveryCluster) {
  FeatureStore store;
  FillClustered(store, 100, /*seed=*/79);
  CoarseClusterIndex index;
  index.Ensure(store);
  std::vector<std::int32_t> probed;
  index.NearestClusters(store.View(FeatureRef{0}),
                        index.num_clusters() + 10, &probed);
  ASSERT_EQ(probed.size(), static_cast<std::size_t>(index.num_clusters()));
  std::vector<std::int32_t> sorted = probed;
  std::sort(sorted.begin(), sorted.end());
  for (std::int32_t c = 0; c < index.num_clusters(); ++c) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(c)], c);
  }
}

// Routing decisions cannot depend on the host's SIMD tier: a build at the
// scalar level and one at the best supported level produce the same
// centroid bits and the same assignments (§15.3 — the distances compared
// are bit-identical at every level).
TEST(CoarseClusterIndexTest, BuildIsKernelLevelInvariant) {
  const kernels::KernelLevel saved = kernels::CurrentKernelLevel();
  ClusterIndexOptions options;
  options.clusters = 8;

  FeatureStore store;
  FillClustered(store, 300, /*seed=*/80);

  ASSERT_TRUE(kernels::SetKernelLevel(kernels::KernelLevel::kScalar));
  CoarseClusterIndex scalar_index(options);
  scalar_index.Ensure(store);

  ASSERT_TRUE(kernels::SetKernelLevel(kernels::DetectedKernelLevel()));
  CoarseClusterIndex best_index(options);
  best_index.Ensure(store);
  kernels::SetKernelLevel(saved);

  ASSERT_EQ(scalar_index.num_clusters(), best_index.num_clusters());
  EXPECT_EQ(AllAssignments(scalar_index), AllAssignments(best_index));
  for (std::int32_t c = 0; c < scalar_index.num_clusters(); ++c) {
    EXPECT_EQ(std::memcmp(scalar_index.Centroid(c), best_index.Centroid(c),
                          kDim * sizeof(double)),
              0)
        << "centroid " << c;
  }
}

TEST(CoarseClusterIndexTest, ClearResetsEverything) {
  FeatureStore store;
  FillClustered(store, 50, /*seed=*/81);
  CoarseClusterIndex index;
  index.Ensure(store);
  ASSERT_TRUE(index.built());
  index.Clear();
  EXPECT_FALSE(index.built());
  EXPECT_EQ(index.num_clusters(), 0);
  EXPECT_EQ(index.assigned_rows(), 0u);
  EXPECT_EQ(index.rebuilds(), 0);
  // A fresh Ensure rebuilds from scratch.
  index.Ensure(store);
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.rebuilds(), 1);
}

}  // namespace
}  // namespace tmerge::reid
