#include "tmerge/reid/feature_cache.h"

#include "tmerge/reid/synthetic_reid_model.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tmerge::reid {
namespace {

class FeatureCacheTest : public ::testing::Test {
 protected:
  FeatureCacheTest() {
    video_.num_frames = 5;
    sim::GroundTruthTrack track;
    track.id = 0;
    track.appearance = sim::AppearanceVector(8, 1.0);
    sim::GroundTruthBox box;
    box.frame = 0;
    box.box = {0, 0, 10, 10};
    track.boxes.push_back(box);
    video_.tracks.push_back(std::move(track));
    model_ = std::make_unique<SyntheticReidModel>(video_, ReidModelConfig{},
                                                  7);
  }

  CropRef Crop(std::uint64_t id) const {
    return CropRef{id, 0, 1.0, false, id * 31};
  }

  sim::SyntheticVideo video_;
  std::unique_ptr<SyntheticReidModel> model_;
  CostModel cost_;
};

TEST_F(FeatureCacheTest, MissChargesHitDoesNot) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  cache.GetOrEmbed(Crop(1), *model_, meter);
  EXPECT_EQ(meter.stats().single_inferences, 1);
  EXPECT_EQ(meter.stats().cache_hits, 0);
  cache.GetOrEmbed(Crop(1), *model_, meter);
  EXPECT_EQ(meter.stats().single_inferences, 1);
  EXPECT_EQ(meter.stats().cache_hits, 1);
}

TEST_F(FeatureCacheTest, ReturnsSameFeature) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  const FeatureVector& a = cache.GetOrEmbed(Crop(5), *model_, meter);
  FeatureVector copy = a;
  const FeatureVector& b = cache.GetOrEmbed(Crop(5), *model_, meter);
  EXPECT_EQ(copy, b);
}

TEST_F(FeatureCacheTest, ContainsAndSize) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  EXPECT_FALSE(cache.Contains(3));
  cache.GetOrEmbed(Crop(3), *model_, meter);
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(FeatureCacheTest, BatchChargesOnlyMisses) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  cache.GetOrEmbed(Crop(1), *model_, meter);

  auto features = cache.GetOrEmbedBatch({Crop(1), Crop(2), Crop(3)}, *model_,
                                        meter);
  ASSERT_EQ(features.size(), 3u);
  EXPECT_EQ(meter.stats().batched_crops, 2);  // Crop 1 was cached.
  EXPECT_EQ(meter.stats().batch_calls, 1);
  EXPECT_EQ(meter.stats().cache_hits, 1);
}

TEST_F(FeatureCacheTest, BatchAllCachedNoCall) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  cache.GetOrEmbedBatch({Crop(1), Crop(2)}, *model_, meter);
  double t = meter.elapsed_seconds();
  cache.GetOrEmbedBatch({Crop(1), Crop(2)}, *model_, meter);
  EXPECT_DOUBLE_EQ(meter.elapsed_seconds(), t);
  EXPECT_EQ(meter.stats().batch_calls, 1);
}

TEST_F(FeatureCacheTest, BatchReturnsInRequestOrder) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  auto features = cache.GetOrEmbedBatch({Crop(9), Crop(8)}, *model_, meter);
  EXPECT_EQ(*features[0], model_->Embed(Crop(9)));
  EXPECT_EQ(*features[1], model_->Embed(Crop(8)));
}

TEST_F(FeatureCacheTest, DuplicateCropsInOneBatchChargedOnce) {
  FeatureCache cache;
  InferenceMeter meter(cost_);
  cache.GetOrEmbedBatch({Crop(4), Crop(4), Crop(4)}, *model_, meter);
  EXPECT_EQ(meter.stats().batched_crops, 1);
}

// Regression guard for the storage contract documented on FeatureCache:
// pointers handed out by GetOrEmbed / GetOrEmbedBatch must survive later
// inserts, including the rehashes a large batch triggers mid-call.
// std::unordered_map guarantees reference stability across rehash, so this
// only fails if the backing container is ever swapped for one without that
// guarantee (e.g. a flat/open-addressing map).
TEST_F(FeatureCacheTest, PointersStableAcrossRehashMidBatch) {
  FeatureCache cache;
  InferenceMeter meter(cost_);

  // Pin a feature before the batch, then force many rehashes: load factor
  // 1.0 with thousands of interleaved inserts in a single batch call.
  const FeatureVector& pinned = cache.GetOrEmbed(Crop(0), *model_, meter);
  FeatureVector pinned_copy = pinned;

  constexpr std::uint64_t kBatch = 5000;
  std::vector<CropRef> crops;
  crops.reserve(kBatch + 1);
  crops.push_back(Crop(0));  // Cached: returned pointer predates the batch.
  for (std::uint64_t id = 1; id <= kBatch; ++id) crops.push_back(Crop(id));

  std::vector<const FeatureVector*> features =
      cache.GetOrEmbedBatch(crops, *model_, meter);
  ASSERT_EQ(features.size(), crops.size());
  ASSERT_GT(cache.size(), 1000u);  // Rehashed several times from empty.

  // The pre-batch pointer still dereferences to the same value...
  EXPECT_EQ(pinned, pinned_copy);
  // ...and every batch result matches a fresh embedding of its crop, in
  // request order, after all inserts of the same call.
  EXPECT_EQ(*features[0], pinned_copy);
  for (std::size_t i : {std::size_t{1}, std::size_t{17}, crops.size() - 1}) {
    EXPECT_EQ(*features[i], model_->Embed(crops[i])) << i;
  }
}

}  // namespace
}  // namespace tmerge::reid
